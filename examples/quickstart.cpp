// Quickstart: build and run one overlapped AllGather+GEMM kernel with
// TileLink's tile-centric primitives on the simulated 8-GPU machine, verify
// its numerics against a serial reference, and print the generated
// (PTX-like) listing plus the simulated timeline comparison.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "baselines/mlp_baselines.h"
#include "common/rng.h"
#include "compute/gemm.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_gemm.h"

using namespace tilelink;

int main() {
  // A small functional world: 4 simulated GPUs, real numerics.
  rt::World world(sim::MachineSpec::Test(/*num_devices=*/4, /*sms=*/16),
                  rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);  // audit acquire/release ordering

  // AG+GEMM: gather a row-sharded activation while the GEMM consumes it.
  tl::AgGemmConfig cfg;
  cfg.m = 256;  // global rows (64 per rank)
  cfg.k = 64;
  cfg.n = 96;
  cfg.gemm = compute::GemmTiling{32, 32, 16};
  cfg.comm_tile_m = 32;
  cfg.comm = tl::CommResource::kSmPull;  // comm on processing cores
  cfg.comm_sms = 4;
  tl::AgGemm kernel(world, cfg);

  // Fill the sharded input and per-rank weights.
  Rng rng(7);
  for (int r = 0; r < world.size(); ++r) {
    FillRandom(kernel.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
    FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.5f);
  }

  std::printf("Generated kernel listing:\n%s\n", kernel.listing().c_str());

  // Run SPMD: every rank launches the fused kernel.
  const sim::TimeNs overlapped = world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });

  // Serial baseline on an identical fresh machine.
  rt::World world2(sim::MachineSpec::Test(4, 16), rt::ExecMode::kFunctional);
  baselines::MlpPartConfig base_cfg{cfg.m, cfg.k, cfg.n, cfg.gemm};
  baselines::NonOverlapAgGemm baseline(world2, base_cfg);
  for (int r = 0; r < world2.size(); ++r) {
    CopyTensor(kernel.a_shards()[static_cast<size_t>(r)],
               baseline.a_shards()[static_cast<size_t>(r)]);
    CopyTensor(kernel.b()[static_cast<size_t>(r)],
               baseline.b()[static_cast<size_t>(r)]);
  }
  const sim::TimeNs serial = world2.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await baseline.Run(ctx); });

  // Verify numerics match the serial implementation exactly.
  float max_diff = 0.0f;
  for (int r = 0; r < world.size(); ++r) {
    max_diff = std::max(max_diff,
                        MaxAbsDiff(kernel.c()[static_cast<size_t>(r)],
                                   baseline.c()[static_cast<size_t>(r)]));
  }
  std::printf("overlapped: %.1f us   serial: %.1f us   speedup: %.2fx\n",
              sim::ToUs(overlapped), sim::ToUs(serial),
              static_cast<double>(serial) / overlapped);
  std::printf("max |overlapped - serial| = %g\n", max_diff);
  std::printf("consistency violations: %zu\n",
              world.checker().violations().size());
  return max_diff < 1e-4f && world.checker().violations().empty() ? 0 : 1;
}
