// Example: search the §3.1 decoupled design space of the AG+GEMM kernel
// with the cost-model autotuner, then inspect the winning kernel.
//
// Runs on the small Test machine so it finishes in well under a second:
//   ./build/autotune_ag_gemm
#include <cstdio>

#include "runtime/world.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/kernels/ag_gemm.h"

int main() {
  using namespace tilelink;
  using namespace tilelink::tl;

  const sim::MachineSpec spec = sim::MachineSpec::Test(/*num_devices=*/4,
                                                       /*sms=*/16);
  const MlpPartShape shape{512, 128, 128};

  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  base.comm_sms = 4;

  TuningSpace space;
  space.CommTileM({16, 32, 64, 128})
      .CommSms({2, 4, 8})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .Orders({TileOrder::kRowMajor, TileOrder::kOwnerFirst});

  Autotuner::Options opts;
  opts.verbose = true;
  const TuneResult result =
      TuneAgGemm(spec, shape, space, base, Autotuner(opts));

  std::printf("\nbest: %s  (%.3f us; %zu simulated, %d pruned, %d "
              "infeasible)\n\n",
              result.best.Describe().c_str(),
              static_cast<double>(result.best_cost) / 1e3,
              result.evaluated.size(), result.pruned, result.infeasible);

  // Rebuild the winner and show the compiled tile-level listing.
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgGemmConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = result.best.gemm;
  cfg.comm_tile_m = result.best.comm_tile_m;
  cfg.comm = result.best.comm;
  cfg.comm_sms = result.best.comm_sms;
  cfg.order = result.best.order;
  AgGemm kernel(world, cfg);
  std::printf("%s", kernel.listing().c_str());
  return 0;
}
