// Example: a full tensor-parallel MLP layer (Figure 1 of the paper) —
// AG+GEMM, SiLU activation, GEMM+ring-RS — with every stage overlapped by
// TileLink kernels, verified against the serial composition and timed at
// paper scale.
//
//   ./build/examples/mlp_tensor_parallel
#include <cstdio>

#include "baselines/mlp_baselines.h"
#include "common/rng.h"
#include "compute/memops.h"
#include "compute/tile_math.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

using namespace tilelink;

int main() {
  // --- part A: functional verification at small scale ---------------------
  {
    const int R = 4;
    rt::World world(sim::MachineSpec::Test(R, 16), rt::ExecMode::kFunctional);
    const int64_t m = 128, h = 32, inner = 48;  // tokens, hidden, I/R
    tl::AgGemmConfig up;
    up.m = m;
    up.k = h;
    up.n = inner;
    up.gemm = compute::GemmTiling{32, 16, 16};
    up.comm_tile_m = 32;
    up.comm = tl::CommResource::kSmPull;
    up.comm_sms = 4;
    tl::AgGemm up_proj(world, up);

    tl::GemmRsConfig down;
    down.m = m;
    down.k = inner;
    down.n = h;
    down.gemm = compute::GemmTiling{32, 16, 16};
    down.rs_block_m = 32;
    down.comm_sms = 4;
    tl::GemmRs down_proj(world, down);

    Rng rng(11);
    for (int r = 0; r < R; ++r) {
      FillRandom(up_proj.a_shards()[static_cast<size_t>(r)], rng, 0.4f);
      FillRandom(up_proj.b()[static_cast<size_t>(r)], rng, 0.4f);
      FillRandom(down_proj.b()[static_cast<size_t>(r)], rng, 0.4f);
    }

    world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await up_proj.Run(ctx);
      // SiLU(x) * x between the projections (one elementwise kernel).
      const size_t r = static_cast<size_t>(ctx.rank);
      compute::LaunchActivationMul(ctx, *ctx.stream, up_proj.c()[r],
                                   up_proj.c()[r], down_proj.a()[r],
                                   compute::Activation::kSiluMul);
      co_await ctx.stream->Synchronize();
      co_await down_proj.Run(ctx);
    });

    // Serial reference for rank 0's output shard.
    Tensor gathered = Tensor::Alloc(world.device(0), "ga", {m, h},
                                    DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor dst = gathered.Slice(0, p * (m / R), m / R);
      CopyTensor(up_proj.a_shards()[static_cast<size_t>(p)], dst);
    }
    Tensor total = Tensor::Alloc(world.device(0), "tot", {m, h},
                                 DType::kBF16);
    Tensor mid = Tensor::Alloc(world.device(0), "mid", {m, inner},
                               DType::kBF16);
    Tensor act = Tensor::Alloc(world.device(0), "act", {m, inner},
                               DType::kBF16);
    Tensor part = Tensor::Alloc(world.device(0), "part", {m, h},
                                DType::kBF16);
    FillConstant(total, 0.0f);
    for (int p = 0; p < R; ++p) {
      compute::GemmRef(gathered, up_proj.b()[static_cast<size_t>(p)], mid);
      compute::SiluMulTile(mid, mid, act, 0, m, 0, inner);
      compute::GemmRef(act, down_proj.b()[static_cast<size_t>(p)], part);
      compute::AddTile(part, total, 0, m, 0, h, true);
    }
    Tensor want = total.Slice(0, 0, m / R);
    std::printf("functional MLP: max |tilelink - reference| = %g\n",
                MaxAbsDiff(down_proj.out()[0], want));
  }

  // --- part B: paper-scale timing (LLaMA-7B MLP, TP=8) --------------------
  {
    rt::World world(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
    tl::AgGemmConfig up;
    up.m = 8192;
    up.k = 4096;
    up.n = 11008 / 8;
    up.gemm = compute::GemmTiling{128, 256, 512};
    up.channels_per_rank = 4;
    up.comm = tl::CommResource::kDma;
    tl::AgGemm up_proj(world, up);
    tl::GemmRsConfig down;
    down.m = 8192;
    down.k = 11008 / 8;
    down.n = 4096;
    down.gemm = compute::GemmTiling{128, 256, 172};
    down.rs_block_m = 128;
    down.dma_push = true;
    tl::GemmRs down_proj(world, down);
    const sim::TimeNs t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await up_proj.Run(ctx);
      co_await down_proj.Run(ctx);
    });
    std::printf("paper-scale MLP-1 layer (TileLink, 8xH800): %.3f ms\n",
                sim::ToMs(t));
  }
  return 0;
}
