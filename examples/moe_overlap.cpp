// Example: overlapped MoE layer with dynamic mapping (paper Figure 5 + the
// three-stage chain of Figure 9). Routing decides at runtime which tokens
// each expert tile needs; TileLink's lookup-table mapping turns that into
// per-tile consumer waits. Verifies numerics and prints the dynamic-mapping
// statistics plus the generated listings.
//
//   ./build/examples/moe_overlap
#include <cstdio>

#include "common/rng.h"
#include "compute/group_gemm.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/moe_rs.h"

using namespace tilelink;

int main() {
  const int R = 4;
  rt::World world(sim::MachineSpec::Test(R, 24), rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);

  const int64_t tokens = 128, hidden = 32, inner = 24;
  const int experts = 8, topk = 2;
  Rng rng(5);
  compute::MoeRouting routing =
      compute::RandomRouting(tokens, experts, topk, rng);

  // Part 1: AllGather + Gather + GroupGEMM.
  tl::AgMoeConfig cfg1;
  cfg1.m = tokens;
  cfg1.hidden = hidden;
  cfg1.n = inner;
  cfg1.num_experts = experts;
  cfg1.topk = topk;
  cfg1.gemm = compute::GemmTiling{16, 24, 16};
  cfg1.comm_tile_m = 16;
  cfg1.comm = tl::CommResource::kSmPull;
  cfg1.comm_sms = 4;
  tl::AgMoe part1(world, cfg1, routing);

  // Part 2: GroupGEMM + Scatter + TopkReduce + ReduceScatter.
  tl::MoeRsConfig cfg2;
  cfg2.m = tokens;
  cfg2.k = inner;
  cfg2.hidden = hidden;
  cfg2.num_experts = experts;
  cfg2.topk = topk;
  cfg2.gemm = compute::GemmTiling{16, 16, 8};
  cfg2.sorted_channel_rows = 32;
  cfg2.reduce_block_tokens = 16;
  cfg2.reduce_sms = 4;
  cfg2.rs_block_m = 32;
  cfg2.comm_sms = 4;
  tl::MoeRs part2(world, cfg2, routing);

  for (int r = 0; r < R; ++r) {
    FillRandom(part1.token_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(part1.weights()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(part2.weights()[static_cast<size_t>(r)], rng, 0.4f);
  }

  // Dynamic-mapping statistics: how many channels each expert tile waits on.
  const tl::DynamicMapping& dyn = part1.dynamic_mapping();
  size_t total_waits = 0;
  for (int64_t t = 0; t < dyn.num_tiles(); ++t) {
    total_waits += dyn.Waits(t).size();
  }
  std::printf("dynamic mapping: %lld expert tiles, %.1f channel waits/tile\n",
              (long long)dyn.num_tiles(),
              static_cast<double>(total_waits) / dyn.num_tiles());

  const sim::TimeNs t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await part1.Run(ctx);
    // Hand part 1's slot-order output to part 2 (identity activation here).
    if (ctx.functional()) {
      CopyTensor(part1.out()[static_cast<size_t>(ctx.rank)],
                 part2.acts()[static_cast<size_t>(ctx.rank)]);
    }
    co_await part2.Run(ctx);
  });

  std::printf("full MoE layer simulated time: %.1f us\n", sim::ToUs(t));
  std::printf("consistency violations: %zu\n",
              world.checker().violations().size());

  // Verify part 1 against the grouped-GEMM reference on rank 0.
  Tensor gathered =
      Tensor::Alloc(world.device(0), "g", {tokens, hidden}, DType::kBF16);
  for (int p = 0; p < R; ++p) {
    Tensor dst = gathered.Slice(0, p * (tokens / R), tokens / R);
    CopyTensor(part1.token_shards()[static_cast<size_t>(p)], dst);
  }
  Tensor want = Tensor::Alloc(world.device(0), "w", {tokens * topk, inner},
                              DType::kBF16);
  compute::GroupGemmRef(gathered, part1.weights()[0], want, routing);
  std::printf("part 1 max error vs reference: %g\n",
              MaxAbsDiff(part1.out()[0], want));
  return world.checker().violations().empty() ? 0 : 1;
}
