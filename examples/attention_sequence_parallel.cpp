// Example: sequence-parallel attention with host-primitive overlap (paper
// Figure 6) — rank_copy_data drives copy engines per KV segment while the
// FlashAttention kernel consumes segments in ring order. Compares against
// RingAttention and the non-overlapped Torch pipeline at one paper shape.
//
//   ./build/examples/attention_sequence_parallel
#include <cstdio>

#include "baselines/attention_baselines.h"
#include "common/rng.h"
#include "compute/flash_attention.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_attention.h"

using namespace tilelink;

int main() {
  // Functional check on a small world.
  {
    const int R = 4;
    rt::World world(sim::MachineSpec::Test(R, 16), rt::ExecMode::kFunctional);
    world.checker().set_enabled(true);
    tl::AgAttentionConfig cfg;
    cfg.batch_heads = 4;
    cfg.seq = 32 * R;
    cfg.head_dim = 16;
    cfg.block_q = 16;
    cfg.block_kv = 16;
    tl::AgAttention kernel(world, cfg);
    Rng rng(3);
    for (int r = 0; r < R; ++r) {
      FillRandom(kernel.q()[static_cast<size_t>(r)], rng, 0.4f);
      FillRandom(kernel.k_shards()[static_cast<size_t>(r)], rng, 0.4f);
      FillRandom(kernel.v_shards()[static_cast<size_t>(r)], rng, 0.4f);
    }
    world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
    // Reference on rank 0.
    const int64_t s_per = cfg.seq / R;
    Tensor kf = Tensor::Alloc(world.device(0), "kf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    Tensor vf = Tensor::Alloc(world.device(0), "vf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor kd = kf.Slice(1, p * s_per, s_per);
      Tensor vd = vf.Slice(1, p * s_per, s_per);
      CopyTensor(kernel.k_shards()[static_cast<size_t>(p)], kd);
      CopyTensor(kernel.v_shards()[static_cast<size_t>(p)], vd);
    }
    Tensor want = Tensor::Alloc(world.device(0), "w",
                                {cfg.batch_heads, s_per, cfg.head_dim},
                                DType::kBF16);
    compute::AttentionRef(kernel.q()[0], kf, vf, want);
    std::printf("functional: max error vs eager reference = %g, "
                "violations = %zu\n",
                MaxAbsDiff(kernel.out()[0], want),
                world.checker().violations().size());
  }

  // Paper-scale timing comparison (Attn-1 at 32k).
  {
    const int heads = 32;
    const int64_t seq = 32768, d = 128;
    auto tilelink_ms = [&](bool skip_comm, bool comm_only) {
      rt::World world(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
      tl::AgAttentionConfig cfg;
      cfg.batch_heads = heads;
      cfg.seq = seq;
      cfg.head_dim = d;
      cfg.block_kv = 2048;
      cfg.skip_comm = skip_comm;
      cfg.comm_only = comm_only;
      tl::AgAttention k(world, cfg);
      return sim::ToMs(world.RunSpmd(
          [&](rt::RankCtx& ctx) -> sim::Coro { co_await k.Run(ctx); }));
    };
    rt::World world(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
    baselines::AttentionConfig rcfg;
    rcfg.batch_heads = heads;
    rcfg.seq = seq;
    rcfg.head_dim = d;
    rcfg.block_kv = 2048;
    baselines::RingAttention ring(world, rcfg);
    const double ring_ms = sim::ToMs(world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await ring.Run(ctx); }));
    const double overlap = tilelink_ms(false, false);
    const double comp = tilelink_ms(true, false);
    const double comm = tilelink_ms(false, true);
    std::printf("Attn-1 @32k: TileLink %.2f ms (comp %.2f, comm %.2f, "
                "overlap ratio %.2f); RingAttention %.2f ms\n",
                overlap, comp, comm, (comp + comm - overlap) / comm, ring_ms);
  }
  return 0;
}
