// Minimal leveled logging. Disabled below the global threshold; the default
// threshold is kWarning so library code stays quiet under test/bench runs.
#pragma once

#include <sstream>
#include <string>

namespace tilelink {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

// RAII stream that emits on destruction; keeps the macro usable as
// TL_LOG(kInfo) << "x=" << x;
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tilelink

#define TL_LOG(severity)                                               \
  if (static_cast<int>(::tilelink::LogLevel::severity) <               \
      static_cast<int>(::tilelink::GetLogLevel())) {                   \
  } else                                                               \
    ::tilelink::internal::LogMessage(::tilelink::LogLevel::severity,   \
                                     __FILE__, __LINE__)               \
        .stream()
