#include "common/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace tilelink {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string HumanTimeNs(uint64_t ns) {
  if (ns < 1000) return StrFormat("%llu ns", (unsigned long long)ns);
  if (ns < 1000 * 1000) return StrFormat("%.3f us", ns / 1e3);
  if (ns < 1000ULL * 1000 * 1000) return StrFormat("%.3f ms", ns / 1e6);
  return StrFormat("%.3f s", ns / 1e9);
}

std::string HumanBytes(uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes < (1ULL << 10)) return StrFormat("%llu B", (unsigned long long)bytes);
  if (bytes < (1ULL << 20)) return StrFormat("%.1f KiB", b / (1ULL << 10));
  if (bytes < (1ULL << 30)) return StrFormat("%.1f MiB", b / (1ULL << 20));
  return StrFormat("%.2f GiB", b / (1ULL << 30));
}

}  // namespace tilelink
