#include "common/log.h"

#include <cstdio>

namespace tilelink {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace internal
}  // namespace tilelink
