// Deterministic pseudo-random generator (splitmix64 core) used everywhere a
// test or workload needs randomness. Deliberately not std::mt19937 so that
// results are identical across standard library implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tilelink {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  // Next raw 64-bit value (splitmix64).
  uint64_t NextU64();

  // Uniform in [0, n).
  uint64_t NextU64(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform float in [0, 1).
  float NextFloat();

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  // Approximately normal(0, 1) via sum of uniforms (deterministic, cheap).
  float NextGaussian();

  // Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace tilelink
