#include "common/check.h"

#include <sstream>

namespace tilelink::internal {

void FailCheck(const char* file, int line, const char* expr,
               const std::string& message) {
  std::ostringstream os;
  os << "TL_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    os << " " << message;
  }
  throw Error(os.str());
}

}  // namespace tilelink::internal
