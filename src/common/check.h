// Error-handling primitives for tilelink-sim.
//
// TL_CHECK(cond) / TL_CHECK_xx(a, b) throw tilelink::Error on failure and are
// always enabled; use them for API-contract violations. TL_DCHECK is compiled
// out in NDEBUG builds; use it for internal invariants on hot paths.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tilelink {

// Exception type thrown by all TL_CHECK macros. Carries the failing
// expression and source location in what().
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& message);

// Builds "lhs vs rhs" detail for binary comparison checks.
template <typename A, typename B>
std::string BinaryDetail(const A& a, const B& b, const char* op) {
  std::ostringstream os;
  os << "(" << a << " " << op << " " << b << ")";
  return os.str();
}

}  // namespace internal
}  // namespace tilelink

#define TL_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tilelink::internal::FailCheck(__FILE__, __LINE__, #cond, "");      \
    }                                                                      \
  } while (false)

#define TL_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream tl_check_os_;                                     \
      tl_check_os_ << msg;                                                 \
      ::tilelink::internal::FailCheck(__FILE__, __LINE__, #cond,           \
                                      tl_check_os_.str());                 \
    }                                                                      \
  } while (false)

#define TL_CHECK_OP_(a, b, op)                                             \
  do {                                                                     \
    if (!((a)op(b))) {                                                     \
      ::tilelink::internal::FailCheck(                                     \
          __FILE__, __LINE__, #a " " #op " " #b,                           \
          ::tilelink::internal::BinaryDetail((a), (b), #op));              \
    }                                                                      \
  } while (false)

#define TL_CHECK_EQ(a, b) TL_CHECK_OP_(a, b, ==)
#define TL_CHECK_NE(a, b) TL_CHECK_OP_(a, b, !=)
#define TL_CHECK_LT(a, b) TL_CHECK_OP_(a, b, <)
#define TL_CHECK_LE(a, b) TL_CHECK_OP_(a, b, <=)
#define TL_CHECK_GT(a, b) TL_CHECK_OP_(a, b, >)
#define TL_CHECK_GE(a, b) TL_CHECK_OP_(a, b, >=)

#ifdef NDEBUG
#define TL_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define TL_DCHECK(cond) TL_CHECK(cond)
#endif

#define TL_UNREACHABLE()                                                  \
  ::tilelink::internal::FailCheck(__FILE__, __LINE__, "unreachable", "")
