// String formatting helpers used by trace export and bench tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tilelink {

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, const std::string& sep);

// Human-readable time from nanoseconds, e.g. "1.234 ms".
std::string HumanTimeNs(uint64_t ns);

// Human-readable byte count, e.g. "64.0 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace tilelink
