// Small integer/math helpers shared across modules.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/check.h"

namespace tilelink {

// ceil(a / b) for non-negative integers.
template <typename T>
constexpr T CeilDiv(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

// Rounds a up to the next multiple of b.
template <typename T>
constexpr T RoundUp(T a, T b) {
  return CeilDiv(a, b) * b;
}

// Floor division that is well-defined for our (non-negative) use sites.
template <typename T>
constexpr T FloorDiv(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return a / b;
}

inline int64_t Pow2RoundUp(int64_t v) {
  TL_CHECK_GT(v, 0);
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace tilelink
