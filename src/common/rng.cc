#include "common/rng.h"

namespace tilelink {

uint64_t Rng::NextU64() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextU64(uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free modulo is fine here: we do not need cryptographic
  // uniformity, only determinism.
  return NextU64() % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextU64(static_cast<uint64_t>(hi - lo + 1)));
}

float Rng::NextFloat() {
  // 24 high bits -> [0, 1) float.
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::Uniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

float Rng::NextGaussian() {
  // Irwin-Hall with 6 uniforms, centered: variance 0.5 -> scale to ~1.
  float s = 0.0f;
  for (int i = 0; i < 6; ++i) s += NextFloat();
  return (s - 3.0f) * 1.4142135f;
}

}  // namespace tilelink
