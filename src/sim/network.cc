#include "sim/network.h"

#include <algorithm>
#include <cmath>

namespace tilelink::sim {

Network::Network(Simulator* sim, int num_ports, double port_bw_gbps,
                 TimeNs latency_ns, std::string name)
    : sim_(sim), port_bw_(port_bw_gbps), latency_ns_(latency_ns),
      name_(std::move(name)) {
  TL_CHECK_GT(num_ports, 0);
  TL_CHECK_GT(port_bw_gbps, 0.0);
  egress_.resize(num_ports, Port{port_bw_gbps, 0});
  ingress_.resize(num_ports, Port{port_bw_gbps, 0});
}

Coro Network::Transfer(int src, int dst, uint64_t bytes) {
  TL_CHECK_GE(src, 0);
  TL_CHECK_LT(src, num_ports());
  TL_CHECK_GE(dst, 0);
  TL_CHECK_LT(dst, num_ports());
  total_bytes_ += bytes;
  if (bytes == 0) {
    co_await Delay{latency_ns_};
    co_return;
  }
  if (src == dst) {
    // Local copy: no fabric contention, HBM-class bandwidth.
    TimeNs t = static_cast<TimeNs>(
        std::ceil(static_cast<double>(bytes) / local_copy_bw_));
    co_await Delay{latency_ns_ + t};
    co_return;
  }
  co_await Delay{latency_ns_};
  const uint64_t id = next_flow_id_++;
  auto [it, inserted] = flows_.emplace(
      id, std::make_unique<Flow>(sim_, src, dst, static_cast<double>(bytes)));
  TL_CHECK(inserted);
  Flow& flow = *it->second;
  flow.last_update = sim_->Now();
  AddFlow(id);
  co_await flow.done.WaitGe(1);
  RemoveFlow(id);
}

void Network::AddFlow(uint64_t id) {
  Flow& f = *flows_.at(id);
  egress_[f.src].active_flows++;
  ingress_[f.dst].active_flows++;
  Rebalance();
}

void Network::RemoveFlow(uint64_t id) {
  Flow& f = *flows_.at(id);
  egress_[f.src].active_flows--;
  ingress_[f.dst].active_flows--;
  TL_CHECK_GE(egress_[f.src].active_flows, 0);
  TL_CHECK_GE(ingress_[f.dst].active_flows, 0);
  flows_.erase(id);
  Rebalance();
}

void Network::Rebalance() {
  const TimeNs now = sim_->Now();
  for (auto& [id, fp] : flows_) {
    Flow& f = *fp;
    if (f.done.value() > 0) continue;  // completed, awaiting pickup
    // Progress under the old rate.
    f.remaining_bytes -= f.rate * static_cast<double>(now - f.last_update);
    f.remaining_bytes = std::max(f.remaining_bytes, 0.0);
    f.last_update = now;
  }
  for (auto& [id, fp] : flows_) {
    Flow& f = *fp;
    if (f.done.value() > 0) continue;
    const double eg = egress_[f.src].bw_bytes_per_ns /
                      std::max(1, egress_[f.src].active_flows);
    const double in = ingress_[f.dst].bw_bytes_per_ns /
                      std::max(1, ingress_[f.dst].active_flows);
    f.rate = std::min(eg, in);
    ScheduleCompletion(id, f);
  }
}

void Network::ScheduleCompletion(uint64_t id, Flow& f) {
  f.generation++;
  const uint64_t gen = f.generation;
  TL_CHECK_GT(f.rate, 0.0);
  const TimeNs eta =
      sim_->Now() + std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(
                        f.remaining_bytes / f.rate)));
  sim_->At(eta, [this, id, gen] { OnCompletionEvent(id, gen); });
}

void Network::OnCompletionEvent(uint64_t id, uint64_t generation) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // flow already retired
  Flow& f = *it->second;
  if (f.generation != generation || f.done.value() > 0) return;  // stale
  const TimeNs now = sim_->Now();
  f.remaining_bytes -= f.rate * static_cast<double>(now - f.last_update);
  f.last_update = now;
  if (f.remaining_bytes <= 0.5) {
    f.remaining_bytes = 0.0;
    // The waiting coroutine wakes at this same timestamp and calls
    // RemoveFlow, which frees the ports and rebalances; the port is "busy"
    // for zero simulated time after completion.
    f.done.Set(1);
  } else {
    ScheduleCompletion(id, f);  // rate changed since scheduling; try again
  }
}

}  // namespace tilelink::sim
