#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "sim/trace.h"

namespace tilelink::sim {

namespace {

std::string RailLane(int rail) { return "rail" + std::to_string(rail); }

}  // namespace

void Network::NoteRetry() {
  stats_.retries++;
  if (TraceRecorder* t = Tracer()) {
    t->AddInstant(trace_pid_, t->Track(trace_pid_, "faults"), "fault.retry",
                  sim_->Now(),
                  {TraceArg::Num("retries", static_cast<double>(stats_.retries))});
  }
}

double Network::InflightBytes(int rail) const {
  double sum = 0;
  for (const auto& [id, fp] : flows_) {
    if (fp->rail == rail && fp->done.value() == 0) sum += fp->remaining_bytes;
  }
  return sum;
}

void Network::TraceRailCounter(int rail) {
  if (TraceRecorder* t = Tracer()) {
    t->AddCounter(trace_pid_, name_ + ".inflight_bytes", RailLane(rail),
                  sim_->Now(), InflightBytes(rail));
  }
}

Network::Network(Simulator* sim, int num_ports, double port_bw_gbps,
                 TimeNs latency_ns, std::string name)
    : sim_(sim), port_bw_(port_bw_gbps), latency_ns_(latency_ns),
      name_(std::move(name)) {
  TL_CHECK_GT(num_ports, 0);
  TL_CHECK_GT(port_bw_gbps, 0.0);
  egress_.resize(num_ports, Port{port_bw_gbps, 0, {0}, {1.0}});
  ingress_.resize(num_ports, Port{port_bw_gbps, 0, {0}, {1.0}});
}

void Network::ConfigureRails(int rails) {
  TL_CHECK_GT(rails, 0);
  TL_CHECK_EQ(active_flow_count(), 0);
  rails_ = rails;
  for (auto* side : {&egress_, &ingress_}) {
    for (Port& p : *side) {
      p.rail_flows.assign(rails, 0);
      p.rail_scale.assign(rails, 1.0);
    }
  }
}

void Network::SetRailScale(int port, int rail, double fraction) {
  TL_CHECK_GE(rail, 0);
  TL_CHECK_LT(rail, rails_);
  TL_CHECK_GE(fraction, 0.0);
  const int lo = port < 0 ? 0 : port;
  const int hi = port < 0 ? num_ports() : port + 1;
  TL_CHECK_LT(lo, num_ports());
  TL_CHECK_LE(hi, num_ports());
  for (int p = lo; p < hi; ++p) {
    egress_[p].rail_scale[rail] = fraction;
    ingress_[p].rail_scale[rail] = fraction;
  }
  rail_generation_++;
  if (TraceRecorder* t = Tracer()) {
    t->AddCounter(trace_pid_, name_ + ".rail_health", RailLane(rail),
                  sim_->Now(), fraction);
    t->AddInstant(trace_pid_, t->Track(trace_pid_, RailLane(rail)),
                  "rail_generation", sim_->Now(),
                  {TraceArg::Num("generation",
                                 static_cast<double>(rail_generation_)),
                   TraceArg::Num("port", port),
                   TraceArg::Num("fraction", fraction)});
  }
  Rebalance();
}

double Network::RailScale(int port, int rail) const {
  TL_CHECK_GE(port, 0);
  TL_CHECK_LT(port, num_ports());
  TL_CHECK_GE(rail, 0);
  TL_CHECK_LT(rail, rails_);
  return egress_[port].rail_scale[rail];
}

void Network::SetFaultPlan(const FaultPlan* plan) {
  plan_ = plan;
  if (plan == nullptr) return;
  edge_ordinal_.assign(
      static_cast<std::size_t>(num_ports()) * num_ports(), 0);
  for (const RailDegrade& d : plan->degrades()) {
    if (d.fabric != name_) continue;
    TL_CHECK_LT(d.rail, rails_);
    const TimeNs when = std::max(sim_->Now(), d.at);
    sim_->At(when, [this, d] { ApplyDegrade(d); });
  }
}

void Network::ApplyDegrade(const RailDegrade& d) {
  const int lo = d.port < 0 ? 0 : d.port;
  const int hi = d.port < 0 ? num_ports() : d.port + 1;
  for (int p = lo; p < hi; ++p) {
    egress_[p].rail_scale[d.rail] = d.fraction;
    ingress_[p].rail_scale[d.rail] = d.fraction;
  }
  rail_generation_++;
  if (TraceRecorder* t = Tracer()) {
    t->AddCounter(trace_pid_, name_ + ".rail_health", RailLane(d.rail),
                  sim_->Now(), d.fraction);
    t->AddInstant(
        trace_pid_, t->Track(trace_pid_, RailLane(d.rail)),
        d.fraction <= 0.0 ? "fault.rail_death" : "fault.rail_degrade",
        sim_->Now(),
        {TraceArg::Num("generation", static_cast<double>(rail_generation_)),
         TraceArg::Num("port", d.port),
         TraceArg::Num("fraction", d.fraction)});
  }
  Rebalance();
}

TimeNs Network::ExpectedFlowTime(uint64_t bytes) const {
  // One rail's serial share: rails_ x the bytes-over-port time.
  return latency_ns_ +
         static_cast<TimeNs>(std::ceil(
             static_cast<double>(bytes) * rails_ / port_bw_));
}

int Network::PickRail(int src, int dst) const {
  int best = -1;
  int best_load = 0;
  for (int r = 0; r < rails_; ++r) {
    if (egress_[src].rail_scale[r] <= 0.0 ||
        ingress_[dst].rail_scale[r] <= 0.0) {
      continue;
    }
    const int load = egress_[src].rail_flows[r] + ingress_[dst].rail_flows[r];
    if (best < 0 || load < best_load) {
      best = r;
      best_load = load;
    }
  }
  return best < 0 ? 0 : best;
}

Coro Network::Transfer(int src, int dst, uint64_t bytes) {
  if (plan_ == nullptr || !plan_->PerturbsFabric(name_)) {
    TransferOutcome out;
    co_await TryTransfer(src, dst, bytes, TransferOpts{}, &out);
    co_return;
  }
  const RetryPolicy& rp = plan_->retry();
  TransferOpts opts;
  opts.ack_timeout = static_cast<TimeNs>(
      rp.timeout_factor * static_cast<double>(ExpectedFlowTime(bytes)));
  const TimeNs backoff =
      rp.backoff_base > 0 ? rp.backoff_base : std::max<TimeNs>(1, latency_ns_);
  for (int attempt = 0;; ++attempt) {
    TransferOutcome out;
    co_await TryTransfer(src, dst, bytes, opts, &out);
    if (out.delivered) co_return;
    if (attempt >= rp.max_retries) {
      throw FaultError(name_ + ".transfer", src,
                       static_cast<int64_t>(out.ordinal), attempt + 1,
                       out.timed_out ? "ack timeout" : "chunk dropped");
    }
    NoteRetry();
    co_await Delay{backoff << std::min(attempt, 10)};
  }
}

Coro Network::TryTransfer(int src, int dst, uint64_t bytes, TransferOpts opts,
                          TransferOutcome* out) {
  TL_CHECK_GE(src, 0);
  TL_CHECK_LT(src, num_ports());
  TL_CHECK_GE(dst, 0);
  TL_CHECK_LT(dst, num_ports());
  TL_CHECK(out != nullptr);
  *out = TransferOutcome{};
  total_bytes_ += bytes;
  if (bytes == 0) {
    co_await Delay{latency_ns_};
    co_return;
  }
  if (src == dst) {
    // Local copy: no fabric contention, HBM-class bandwidth, no faults.
    TimeNs t = static_cast<TimeNs>(
        std::ceil(static_cast<double>(bytes) / local_copy_bw_));
    co_await Delay{latency_ns_ + t};
    co_return;
  }
  TransientFault fate;
  if (plan_ != nullptr) {
    uint64_t& ord = edge_ordinal_[static_cast<std::size_t>(src) * num_ports() +
                                  dst];
    out->ordinal = ord++;
    fate = plan_->OnTransfer(name_, src, dst, out->ordinal);
  }
  const TimeNs start = sim_->Now();
  co_await Delay{latency_ns_};
  const uint64_t id = next_flow_id_++;
  auto [it, inserted] = flows_.emplace(
      id, std::make_unique<Flow>(sim_, src, dst, static_cast<double>(bytes)));
  TL_CHECK(inserted);
  Flow& flow = *it->second;
  flow.last_update = sim_->Now();
  flow.rail = opts.rail >= 0 ? opts.rail : PickRail(src, dst);
  TL_CHECK_LT(flow.rail, rails_);
  out->rail = flow.rail;
  if (opts.ack_timeout > 0) {
    // Flow ids are never reused, so a timer outliving its flow is inert.
    sim_->At(sim_->Now() + opts.ack_timeout, [this, id] {
      auto fit = flows_.find(id);
      if (fit == flows_.end()) return;
      Flow& f = *fit->second;
      if (f.done.value() > 0) return;  // completed, awaiting pickup
      f.timed_out = true;
      stats_.timeouts++;
      if (TraceRecorder* t = Tracer()) {
        t->AddInstant(trace_pid_, t->Track(trace_pid_, RailLane(f.rail)),
                      "fault.timeout", sim_->Now(),
                      {TraceArg::Num("src", f.src), TraceArg::Num("dst", f.dst),
                       TraceArg::Num("rail", f.rail)});
      }
      f.done.Set(1);
    });
  }
  AddFlow(id);
  const TimeNs wire_start = sim_->Now();
  co_await flow.done.WaitGe(1);
  const bool timed_out = flow.timed_out;
  const int rail_used = flow.rail;
  RemoveFlow(id);
  if (TraceRecorder* t = Tracer()) {
    t->AddSpan(trace_pid_, t->Track(trace_pid_, RailLane(rail_used)),
               name_ + ".xfer", wire_start, sim_->Now(), kCatWire,
               {TraceArg::Num("bytes", static_cast<double>(bytes)),
                TraceArg::Num("src", src), TraceArg::Num("dst", dst),
                TraceArg::Num("rail", rail_used),
                TraceArg::Num("delivered", timed_out ? 0 : 1)});
  }
  if (timed_out) {
    out->delivered = false;
    out->timed_out = true;
    co_return;
  }
  if (fate.latency_mult > 1.0) {
    // Straggler: bill the extra fraction of the observed duration.
    const double elapsed = static_cast<double>(sim_->Now() - start);
    stats_.spikes++;
    if (TraceRecorder* t = Tracer()) {
      t->AddInstant(trace_pid_, t->Track(trace_pid_, RailLane(rail_used)),
                    "fault.spike", sim_->Now(),
                    {TraceArg::Num("src", src), TraceArg::Num("dst", dst),
                     TraceArg::Num("latency_mult", fate.latency_mult)});
    }
    co_await Delay{static_cast<TimeNs>(
        std::ceil((fate.latency_mult - 1.0) * elapsed))};
  }
  if (fate.drop) {
    // Wire time was billed, but delivery failed.
    stats_.drops++;
    if (TraceRecorder* t = Tracer()) {
      t->AddInstant(trace_pid_, t->Track(trace_pid_, RailLane(rail_used)),
                    "fault.drop", sim_->Now(),
                    {TraceArg::Num("src", src), TraceArg::Num("dst", dst),
                     TraceArg::Num("rail", rail_used)});
    }
    out->delivered = false;
  }
}

void Network::AddFlow(uint64_t id) {
  Flow& f = *flows_.at(id);
  egress_[f.src].active_flows++;
  ingress_[f.dst].active_flows++;
  egress_[f.src].rail_flows[f.rail]++;
  ingress_[f.dst].rail_flows[f.rail]++;
  Rebalance();
  TraceRailCounter(f.rail);
}

void Network::RemoveFlow(uint64_t id) {
  Flow& f = *flows_.at(id);
  egress_[f.src].active_flows--;
  ingress_[f.dst].active_flows--;
  egress_[f.src].rail_flows[f.rail]--;
  ingress_[f.dst].rail_flows[f.rail]--;
  TL_CHECK_GE(egress_[f.src].active_flows, 0);
  TL_CHECK_GE(ingress_[f.dst].active_flows, 0);
  TL_CHECK_GE(egress_[f.src].rail_flows[f.rail], 0);
  TL_CHECK_GE(ingress_[f.dst].rail_flows[f.rail], 0);
  const int rail = f.rail;
  flows_.erase(id);
  Rebalance();
  TraceRailCounter(rail);
}

void Network::Rebalance() {
  const TimeNs now = sim_->Now();
  for (auto& [id, fp] : flows_) {
    Flow& f = *fp;
    if (f.done.value() > 0) continue;  // completed, awaiting pickup
    // Progress under the old rate.
    f.remaining_bytes -= f.rate * static_cast<double>(now - f.last_update);
    f.remaining_bytes = std::max(f.remaining_bytes, 0.0);
    f.last_update = now;
  }
  for (auto& [id, fp] : flows_) {
    Flow& f = *fp;
    if (f.done.value() > 0) continue;
    // With one healthy rail this is bitwise the flat bw/flows share.
    const Port& ep = egress_[f.src];
    const Port& ip = ingress_[f.dst];
    const double eg = (ep.bw_bytes_per_ns / rails_) * ep.rail_scale[f.rail] /
                      std::max(1, ep.rail_flows[f.rail]);
    const double in = (ip.bw_bytes_per_ns / rails_) * ip.rail_scale[f.rail] /
                      std::max(1, ip.rail_flows[f.rail]);
    f.rate = std::min(eg, in);
    ScheduleCompletion(id, f);
  }
}

void Network::ScheduleCompletion(uint64_t id, Flow& f) {
  f.generation++;
  if (f.rate <= 0.0) return;  // dead rail: park until rescale or ack timeout
  const uint64_t gen = f.generation;
  const TimeNs eta =
      sim_->Now() + std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(
                        f.remaining_bytes / f.rate)));
  sim_->At(eta, [this, id, gen] { OnCompletionEvent(id, gen); });
}

void Network::OnCompletionEvent(uint64_t id, uint64_t generation) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // flow already retired
  Flow& f = *it->second;
  if (f.generation != generation || f.done.value() > 0) return;  // stale
  const TimeNs now = sim_->Now();
  f.remaining_bytes -= f.rate * static_cast<double>(now - f.last_update);
  f.last_update = now;
  if (f.remaining_bytes <= 0.5) {
    f.remaining_bytes = 0.0;
    // The waiting coroutine wakes at this same timestamp and calls
    // RemoveFlow, which frees the ports and rebalances; the port is "busy"
    // for zero simulated time after completion.
    f.done.Set(1);
  } else {
    ScheduleCompletion(id, f);  // rate changed since scheduling; try again
  }
}

}  // namespace tilelink::sim
