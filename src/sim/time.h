// Simulated-time definitions. All simulator timestamps are integer
// nanoseconds so runs are exactly reproducible across platforms.
#pragma once

#include <cstdint>

namespace tilelink::sim {

using TimeNs = int64_t;

constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * 1000;
constexpr TimeNs kNsPerSec = 1000LL * 1000 * 1000;

constexpr TimeNs Us(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
constexpr TimeNs Ms(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }

}  // namespace tilelink::sim
