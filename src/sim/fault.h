// Deterministic fault injection for the simulated fabrics.
//
// A FaultPlan is a seeded, schedule-based description of everything that can
// go wrong on a fabric: transient chunk-send failures (the flow completes on
// the wire but delivery is marked failed), latency spikes (a straggler flow
// is billed a multiplier of its observed duration), persistent rail
// degradation or death (a rail's share of port bandwidth drops to a fraction,
// or to zero, at simulated time T), and the PR 4 rail-reorder bug (a chunk
// whose ready-signal is published before its payload lands). The plan is
// attached to a `sim::Network` (usually via `rt::World::set_fault_plan`), so
// collectives, fused kernels, and raw p2p all see the same fault surface
// through the one `Transfer` hook.
//
// Determinism: a plan is immutable once attached and holds no RNG state.
// Random transients are pure hashes of (seed, fabric, src, dst, ordinal), so
// identical seeds replay identical fault timelines — including across the
// Autotuner's worker threads, where each worker's World keeps its own
// per-edge ordinal counters and shares the plan read-only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/time.h"

namespace tilelink::sim {

// Raised when a link role exhausts its retransmit budget. Names the failing
// role, rank, and chunk so a fault surfaces as a diagnosis instead of a bare
// deadlock.
class FaultError : public Error {
 public:
  FaultError(std::string role, int rank, int64_t chunk, int attempts,
             const std::string& cause)
      : Error("fault: role '" + role + "' rank " + std::to_string(rank) +
              " chunk " + std::to_string(chunk) + " gave up after " +
              std::to_string(attempts) + " attempt" +
              (attempts == 1 ? "" : "s") + " (" + cause + ")"),
        role_(std::move(role)),
        rank_(rank),
        chunk_(chunk),
        attempts_(attempts) {}

  const std::string& role() const { return role_; }
  int rank() const { return rank_; }
  int64_t chunk() const { return chunk_; }
  int attempts() const { return attempts_; }

 private:
  std::string role_;
  int rank_;
  int64_t chunk_;
  int attempts_;
};

// What a single transfer attempt suffers.
struct TransientFault {
  bool drop = false;          // wire time is billed but delivery fails
  double latency_mult = 1.0;  // >1: straggler; observed duration is scaled
  bool active() const { return drop || latency_mult > 1.0; }
};

// A persistent change to one rail's health, applied at simulated time `at`
// and never reverted. fraction=0 kills the rail outright.
struct RailDegrade {
  std::string fabric;
  int port = -1;  // -1: every port on the fabric
  int rail = 0;
  TimeNs at = 0;
  double fraction = 0.0;  // surviving share of the rail's bandwidth
};

// Retransmit budget used by fault-aware senders. backoff_base=0 means "use
// the fabric's wire latency". timeout_factor scales the cost model's
// expected flow time into an ack deadline; it is deliberately generous so
// ordinary max-min contention does not masquerade as loss.
struct RetryPolicy {
  int max_retries = 4;
  TimeNs backoff_base = 0;
  double timeout_factor = 16.0;
};

// Aggregated per-network fault counters (diagnostics; surfaced in the fault
// sweep's JSON report).
struct FaultStats {
  uint64_t drops = 0;     // attempts whose delivery was marked failed
  uint64_t spikes = 0;    // attempts billed a latency multiplier
  uint64_t timeouts = 0;  // attempts abandoned by the ack deadline
  uint64_t retries = 0;   // retransmissions issued after a failed attempt
  FaultStats& operator+=(const FaultStats& o) {
    drops += o.drops;
    spikes += o.spikes;
    timeouts += o.timeouts;
    retries += o.retries;
    return *this;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // --- schedule construction (before attachment) ---

  // Fail delivery of the ordinal-th transfer on edge (src, dst) of `fabric`.
  // Ordinals count per directed edge, so a retry of a dropped chunk carries
  // the next ordinal and is not re-dropped by the same entry.
  FaultPlan& DropTransfer(std::string fabric, int src, int dst,
                          uint64_t ordinal);

  // Bill the ordinal-th transfer on edge (src, dst) `mult`x its duration.
  FaultPlan& SpikeTransfer(std::string fabric, int src, int dst,
                           uint64_t ordinal, double mult);

  // Seeded random mix: every transfer on `fabric` independently drops with
  // drop_prob and spikes with spike_prob (by spike_mult), decided by a pure
  // hash of (seed, fabric, src, dst, ordinal).
  FaultPlan& RandomTransients(std::string fabric, uint64_t seed,
                              double drop_prob, double spike_prob,
                              double spike_mult);

  // At simulated time `at`, scale rail `rail` of `port` (-1: all ports) on
  // `fabric` to `fraction` of its bandwidth share. fraction=0 is rail death.
  FaultPlan& DegradeRail(std::string fabric, int port, int rail, TimeNs at,
                         double fraction);

  // PR 4's ordering bug as a plan entry: sender `src_rank` publishes the
  // ready-signal for rail chunk `chunk` before the payload lands. This is
  // the one mechanism behind the legacy HierConfig::unsafe_rail_* knobs.
  FaultPlan& ReorderRailChunk(int src_rank, int64_t chunk);

  FaultPlan& set_retry(RetryPolicy p) {
    retry_ = p;
    return *this;
  }

  // --- queries (read-only; thread-safe once construction stops) ---

  // The transient fate of one attempt. Targeted entries compose with random
  // mixes (a targeted drop plus a random spike both apply).
  TransientFault OnTransfer(const std::string& fabric, int src, int dst,
                            uint64_t ordinal) const;

  bool IsRailReorder(int src_rank, int64_t chunk) const;

  // True if the plan can change timing on `fabric` (targeted or random
  // transients, or rail degrades). Reorder-only plans return false: they
  // corrupt ordering, never timing.
  bool PerturbsFabric(const std::string& fabric) const;

  bool HasTransients(const std::string& fabric) const;

  const std::vector<RailDegrade>& degrades() const { return degrades_; }
  const RetryPolicy& retry() const { return retry_; }
  bool empty() const {
    return targeted_.empty() && random_.empty() && degrades_.empty() &&
           reorders_.empty();
  }

 private:
  struct Targeted {
    std::string fabric;
    int src;
    int dst;
    uint64_t ordinal;
    bool drop;
    double mult;
  };
  struct RandomMix {
    std::string fabric;
    uint64_t seed;
    double drop_prob;
    double spike_prob;
    double spike_mult;
  };
  struct Reorder {
    int src_rank;
    int64_t chunk;
  };

  std::vector<Targeted> targeted_;
  std::vector<RandomMix> random_;
  std::vector<RailDegrade> degrades_;
  std::vector<Reorder> reorders_;
  RetryPolicy retry_;
};

}  // namespace tilelink::sim
