#include "sim/simulator.h"

#include <sstream>

#include "common/log.h"

namespace tilelink::sim {

std::coroutine_handle<> Coro::promise_type::FinalAwaiter::await_suspend(
    Coro::Handle h) noexcept {
  promise_type& p = h.promise();
  if (p.continuation) {
    return p.continuation;  // resume the awaiting parent at the same time
  }
  if (p.owned_by_sim && p.sim != nullptr) {
    p.sim->NotifyRootDone(h);  // simulator destroys the frame safely later
  }
  return std::noop_coroutine();
}

Simulator::Simulator() = default;

Simulator::~Simulator() {
  DestroyFinishedRoots();
  // Roots still suspended at teardown (e.g. after a DeadlockError) would
  // otherwise leak their frames: destroy them explicitly. Frame destruction
  // only runs local destructors — nothing is resumed.
  for (void* frame : live_root_frames_) {
    Coro::Handle::from_address(frame).destroy();
  }
}

void Simulator::Spawn(Coro coro, std::string name) {
  TL_CHECK(coro.valid());
  Coro::Handle h = coro.Release();
  h.promise().sim = this;
  h.promise().owned_by_sim = true;
  ++live_roots_;
  live_root_frames_.insert(h.address());
  ScheduleResume(now_, h);
  (void)name;
}

void Simulator::At(TimeNs t, std::function<void()> fn) {
  TL_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, {}, std::move(fn)});
}

void Simulator::ScheduleResume(TimeNs t, std::coroutine_handle<> h) {
  TL_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

void Simulator::NotifyRootDone(Coro::Handle h) {
  --live_roots_;
  live_root_frames_.erase(h.address());
  finished_roots_.push_back(h);
}

void Simulator::DestroyFinishedRoots() {
  for (Coro::Handle h : finished_roots_) {
    std::exception_ptr err = h.promise().error;
    h.destroy();
    if (err) std::rethrow_exception(err);
  }
  finished_roots_.clear();
}

void Simulator::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    TL_CHECK_GE(ev.t, now_);
    now_ = ev.t;
    ++processed_events_;
    if (ev.resume) {
      ev.resume.resume();
    } else {
      ev.fn();
    }
    DestroyFinishedRoots();  // rethrows root errors promptly
  }
  if (live_roots_ > 0) {
    std::ostringstream os;
    os << "deadlock: event queue empty with " << live_roots_
       << " live activities; blocked on:";
    for (const auto& [key, what] : blocked_) {
      os << "\n  - " << what;
    }
    throw DeadlockError(os.str());
  }
}

void Simulator::RegisterBlocked(const void* key, std::string what) {
  blocked_[key] = std::move(what);
}

void Simulator::UnregisterBlocked(const void* key) { blocked_.erase(key); }

void Delay::await_suspend(std::coroutine_handle<> h) {
  TL_CHECK_MSG(sim != nullptr, "Delay awaited outside a simulator coroutine");
  sim->ScheduleResume(sim->Now() + (ns < 0 ? 0 : ns), h);
}

}  // namespace tilelink::sim
