#include "sim/simulator.h"

#include <array>
#include <cstdlib>
#include <sstream>

#include "common/log.h"
#include "sim/trace.h"

// Coroutine frame pooling is a no-op under AddressSanitizer so freed frames
// stay poisoned and use-after-free on a frame is still caught.
#if defined(__SANITIZE_ADDRESS__)
#define TILELINK_FRAME_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TILELINK_FRAME_POOL_DISABLED 1
#endif
#endif

namespace tilelink::sim {

#ifndef TILELINK_FRAME_POOL_DISABLED
namespace {

// Size-bucketed free lists for coroutine frames (64-byte granularity, frames
// up to 2 KiB pooled; larger ones fall through to the global allocator).
// Pooled memory is retained for the thread's lifetime — the simulator spawns
// millions of short-lived activity frames of only a handful of distinct
// sizes, so steady state allocates nothing.
constexpr std::size_t kFrameGranularity = 64;
constexpr std::size_t kFrameBuckets = 32;

struct FreeFrame {
  FreeFrame* next;
};

thread_local std::array<FreeFrame*, kFrameBuckets> g_frame_pool = {};

inline std::size_t BucketOf(std::size_t size) {
  return (size + kFrameGranularity - 1) / kFrameGranularity;
}

}  // namespace
#endif  // TILELINK_FRAME_POOL_DISABLED

void* FramePoolAlloc(std::size_t size) {
#ifndef TILELINK_FRAME_POOL_DISABLED
  const std::size_t bucket = BucketOf(size);
  if (bucket < kFrameBuckets) {
    if (FreeFrame* frame = g_frame_pool[bucket]; frame != nullptr) {
      g_frame_pool[bucket] = frame->next;
      return frame;
    }
    return ::operator new(bucket * kFrameGranularity);
  }
#endif
  return ::operator new(size);
}

void FramePoolFree(void* ptr, std::size_t size) noexcept {
#ifndef TILELINK_FRAME_POOL_DISABLED
  const std::size_t bucket = BucketOf(size);
  if (bucket < kFrameBuckets) {
    auto* frame = static_cast<FreeFrame*>(ptr);
    frame->next = g_frame_pool[bucket];
    g_frame_pool[bucket] = frame;
    return;
  }
#endif
  ::operator delete(ptr);
}

std::coroutine_handle<> Coro::promise_type::FinalAwaiter::await_suspend(
    Coro::Handle h) noexcept {
  promise_type& p = h.promise();
  if (p.continuation) {
    return p.continuation;  // resume the awaiting parent at the same time
  }
  if (p.owned_by_sim && p.sim != nullptr) {
    p.sim->NotifyRootDone(h);  // simulator destroys the frame safely later
  }
  return std::noop_coroutine();
}

Simulator::Simulator() = default;

Simulator::~Simulator() {
  DestroyFinishedRoots();
  // Roots still suspended at teardown (e.g. after a DeadlockError) would
  // otherwise leak their frames: destroy them explicitly. Frame destruction
  // only runs local destructors — nothing is resumed.
  for (void* frame : live_root_frames_) {
    Coro::Handle::from_address(frame).destroy();
  }
  // Callables still queued at teardown own captures: destroy without running.
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.callback) {
      auto* node = static_cast<CallbackNode*>(ev.payload);
      node->invoke(node, /*run=*/false);
    }
  }
}

void Simulator::Spawn(Coro coro, std::string name) {
  TL_CHECK(coro.valid());
  Coro::Handle h = coro.Release();
  h.promise().sim = this;
  h.promise().owned_by_sim = true;
  ++live_roots_;
  live_root_frames_.insert(h.address());
  ScheduleResume(now_, h);
  if (trace_ != nullptr && !name.empty()) {
    open_root_spans_.emplace(h.address(), OpenRootSpan{std::move(name), now_});
  }
}

void Simulator::ScheduleResume(TimeNs t, std::coroutine_handle<> h) {
  TL_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, h.address(), /*callback=*/false});
}

void Simulator::NotifyRootDone(Coro::Handle h) {
  --live_roots_;
  live_root_frames_.erase(h.address());
  finished_roots_.push_back(h);
  if (trace_ != nullptr && !open_root_spans_.empty()) {
    auto it = open_root_spans_.find(h.address());
    if (it != open_root_spans_.end()) {
      trace_->AddSpan(trace_pid_, trace_->Track(trace_pid_, it->second.name),
                      it->second.name, it->second.start, now_, kCatTask);
      open_root_spans_.erase(it);
    }
  }
}

void Simulator::DestroyFinishedRoots() {
  // Pop before destroying: rethrowing a root's error must not leave the
  // already-destroyed handle in the list, or the destructor (and the next
  // Run) would touch a freed frame.
  while (!finished_roots_.empty()) {
    Coro::Handle h = finished_roots_.front();
    finished_roots_.erase(finished_roots_.begin());
    std::exception_ptr err = h.promise().error;
    h.destroy();
    if (err) std::rethrow_exception(err);
  }
}

void Simulator::Run() {
  const TimeNs run_start = now_;
  const uint64_t events_before = processed_events_;
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    TL_CHECK_GE(ev.t, now_);
    now_ = ev.t;
    ++processed_events_;
    if (!ev.callback) {
      std::coroutine_handle<>::from_address(ev.payload).resume();
    } else {
      auto* node = static_cast<CallbackNode*>(ev.payload);
      node->invoke(node, /*run=*/true);
      FreeCallbackNode(node);
    }
    DestroyFinishedRoots();  // rethrows root errors promptly
  }
  if (live_roots_ > 0) {
    std::ostringstream os;
    os << "deadlock: event queue empty at t=" << now_ << "ns with "
       << live_roots_ << " live activities; blocked on:";
    for (const auto& [key, info] : blocked_) {
      os << "\n  - "
         << (info.describe != nullptr ? info.describe(info.ctx) : info.what);
    }
    throw DeadlockError(os.str(), now_);
  }
  if (trace_ != nullptr) {
    trace_->AddSpan(
        trace_pid_, trace_->Track(trace_pid_, "event-loop"), "run", run_start,
        now_, kCatTask,
        {TraceArg::Num("events",
                       static_cast<double>(processed_events_ - events_before)),
         TraceArg::Str("result", "drained")});
  }
}

void Simulator::RegisterBlocked(const void* key, std::string what) {
  blocked_[key] = BlockedInfo{std::move(what), nullptr, nullptr};
}

void Simulator::RegisterBlockedDynamic(const void* key, const void* ctx,
                                       std::string (*describe)(const void*)) {
  blocked_[key] = BlockedInfo{{}, describe, ctx};
}

void Simulator::UnregisterBlocked(const void* key) { blocked_.erase(key); }

void Delay::await_suspend(std::coroutine_handle<> h) {
  TL_CHECK_MSG(sim != nullptr, "Delay awaited outside a simulator coroutine");
  sim->ScheduleResume(sim->Now() + (ns < 0 ? 0 : ns), h);
}

}  // namespace tilelink::sim
