// Coroutine composition helpers: access to the owning simulator from inside
// a coroutine body, and structured fork/join (WhenAll).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/flag.h"
#include "sim/simulator.h"

namespace tilelink::sim {

// co_await CurrentSimulator{} yields the Simulator* running this coroutine.
struct CurrentSimulator {
  Simulator* sim = nullptr;
  void Bind(Simulator* s) { sim = s; }
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  Simulator* await_resume() const noexcept { return sim; }
};

namespace internal {

inline Coro RunAndCount(Coro inner, std::shared_ptr<Flag> flag) {
  co_await std::move(inner);
  flag->Add(1);
}

}  // namespace internal

// Runs all coroutines concurrently (as simulator roots) and completes when
// every one of them has finished. Exceptions inside children surface through
// Simulator::Run.
inline Coro WhenAll(std::vector<Coro> coros) {
  Simulator* sim = co_await CurrentSimulator{};
  if (coros.empty()) co_return;
  auto flag = std::make_shared<Flag>(sim, "when_all");
  const uint64_t n = coros.size();
  for (Coro& c : coros) {
    sim->Spawn(internal::RunAndCount(std::move(c), flag), "when_all.child");
  }
  co_await flag->WaitGe(n);
}

}  // namespace tilelink::sim
