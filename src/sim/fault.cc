#include "sim/fault.h"

namespace tilelink::sim {
namespace {

// splitmix64 finalizer: the avalanche stage is enough to decorrelate the
// structured (seed, edge, ordinal) keys we feed it.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a: std::hash<string> is implementation-defined, and fault timelines
// must replay identically everywhere.
uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Pure uniform draw in [0, 1). `salt` separates the drop roll from the
// spike roll of the same attempt.
double Uniform01(uint64_t seed, uint64_t fabric_hash, int src, int dst,
                 uint64_t ordinal, uint64_t salt) {
  uint64_t x = Mix(seed ^ fabric_hash);
  x = Mix(x ^ (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32 |
               static_cast<uint32_t>(dst)));
  x = Mix(x ^ ordinal);
  x = Mix(x ^ salt);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan& FaultPlan::DropTransfer(std::string fabric, int src, int dst,
                                   uint64_t ordinal) {
  targeted_.push_back({std::move(fabric), src, dst, ordinal, true, 1.0});
  return *this;
}

FaultPlan& FaultPlan::SpikeTransfer(std::string fabric, int src, int dst,
                                    uint64_t ordinal, double mult) {
  TL_CHECK_GT(mult, 1.0);
  targeted_.push_back({std::move(fabric), src, dst, ordinal, false, mult});
  return *this;
}

FaultPlan& FaultPlan::RandomTransients(std::string fabric, uint64_t seed,
                                       double drop_prob, double spike_prob,
                                       double spike_mult) {
  TL_CHECK_GE(drop_prob, 0.0);
  TL_CHECK_LT(drop_prob, 1.0);
  TL_CHECK_GE(spike_prob, 0.0);
  TL_CHECK_LT(spike_prob, 1.0);
  random_.push_back(
      {std::move(fabric), seed, drop_prob, spike_prob, spike_mult});
  return *this;
}

FaultPlan& FaultPlan::DegradeRail(std::string fabric, int port, int rail,
                                  TimeNs at, double fraction) {
  TL_CHECK_GE(rail, 0);
  TL_CHECK_GE(fraction, 0.0);
  TL_CHECK_LE(fraction, 1.0);
  degrades_.push_back({std::move(fabric), port, rail, at, fraction});
  return *this;
}

FaultPlan& FaultPlan::ReorderRailChunk(int src_rank, int64_t chunk) {
  reorders_.push_back({src_rank, chunk});
  return *this;
}

TransientFault FaultPlan::OnTransfer(const std::string& fabric, int src,
                                     int dst, uint64_t ordinal) const {
  TransientFault out;
  for (const auto& t : targeted_) {
    if (t.src != src || t.dst != dst || t.ordinal != ordinal ||
        t.fabric != fabric) {
      continue;
    }
    if (t.drop) out.drop = true;
    if (t.mult > out.latency_mult) out.latency_mult = t.mult;
  }
  for (const auto& r : random_) {
    if (r.fabric != fabric) continue;
    const uint64_t fh = HashString(r.fabric);
    if (r.drop_prob > 0.0 &&
        Uniform01(r.seed, fh, src, dst, ordinal, 0x64726f70ull) <
            r.drop_prob) {
      out.drop = true;
    }
    if (r.spike_prob > 0.0 &&
        Uniform01(r.seed, fh, src, dst, ordinal, 0x7370696bull) <
            r.spike_prob) {
      if (r.spike_mult > out.latency_mult) out.latency_mult = r.spike_mult;
    }
  }
  return out;
}

bool FaultPlan::IsRailReorder(int src_rank, int64_t chunk) const {
  for (const auto& r : reorders_) {
    if (r.src_rank == src_rank && r.chunk == chunk) return true;
  }
  return false;
}

bool FaultPlan::PerturbsFabric(const std::string& fabric) const {
  if (HasTransients(fabric)) return true;
  for (const auto& d : degrades_) {
    if (d.fabric == fabric) return true;
  }
  return false;
}

bool FaultPlan::HasTransients(const std::string& fabric) const {
  for (const auto& t : targeted_) {
    if (t.fabric == fabric) return true;
  }
  for (const auto& r : random_) {
    if (r.fabric == fabric) return true;
  }
  return false;
}

}  // namespace tilelink::sim
