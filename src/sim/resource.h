// Counting resource with FIFO admission, used to model SM slots, copy
// engines, and any other unit with finite concurrency. Acquire suspends the
// coroutine until capacity is available; waiters are admitted strictly in
// arrival order (no barging), which models hardware work queues and keeps
// the simulation deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <string>

#include "common/check.h"
#include "sim/simulator.h"

namespace tilelink::sim {

class Resource {
 public:
  Resource(Simulator* sim, int capacity, std::string name)
      : sim_(sim), capacity_(capacity), available_(capacity),
        name_(std::move(name)) {
    TL_CHECK_GT(capacity, 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  int capacity() const { return capacity_; }
  int available() const { return available_; }
  int in_use() const { return capacity_ - available_; }
  const std::string& name() const { return name_; }

  struct [[nodiscard]] Awaiter {
    Resource* res;
    int n;
    bool await_ready() {
      // FIFO: even if capacity is free, queued waiters go first.
      if (res->waiters_.empty() && res->available_ >= n) {
        res->available_ -= n;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      res->waiters_.push_back(Waiter{n, h});
      res->sim_->RegisterBlocked(this, "resource '" + res->name_ + "' acquire");
    }
    void await_resume() { res->sim_->UnregisterBlocked(this); }
  };

  // Acquires n units; pair with Release(n).
  Awaiter Acquire(int n = 1) {
    TL_CHECK_LE(n, capacity_);
    return Awaiter{this, n};
  }

  // Returns n units and admits as many queued waiters as now fit.
  void Release(int n = 1) {
    available_ += n;
    TL_CHECK_LE(available_, capacity_);
    while (!waiters_.empty() && waiters_.front().n <= available_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.n;
      sim_->ScheduleResume(sim_->Now(), w.h);
    }
  }

 private:
  struct Waiter {
    int n;
    std::coroutine_handle<> h;
  };

  Simulator* sim_;
  int capacity_;
  int available_;
  std::string name_;
  std::deque<Waiter> waiters_;

  friend struct Awaiter;
};

// RAII guard releasing a resource on scope exit (for non-coroutine-suspend
// critical sections inside one coroutine).
class ResourceLease {
 public:
  ResourceLease(Resource& res, int n) : res_(&res), n_(n) {}
  ResourceLease(ResourceLease&& o) noexcept : res_(o.res_), n_(o.n_) {
    o.res_ = nullptr;
  }
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;
  ResourceLease& operator=(ResourceLease&&) = delete;
  ~ResourceLease() {
    if (res_ != nullptr) res_->Release(n_);
  }

 private:
  Resource* res_;
  int n_;
};

}  // namespace tilelink::sim
