// Coroutine task type for the discrete-event simulator.
//
// Every simulated activity (a GPU thread block, a host thread, a DMA engine
// program, a collective step) is written as a `Coro`-returning coroutine.
// Awaitables (Delay, Resource::Acquire, Flag::WaitGe, Network transfers)
// carry a `Bind(Simulator*)` hook; the promise's await_transform injects the
// simulator so user code never threads it manually. Child coroutines are
// awaited with plain `co_await Child(...)` and run at the same simulated
// time via symmetric transfer.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

#include "common/check.h"
#include "sim/time.h"

namespace tilelink::sim {

class Simulator;

// Size-bucketed pool for coroutine frames (defined in simulator.cc; no-op
// pass-through to the global allocator under ASan). Simulated programs spawn
// millions of short-lived activity frames of a handful of distinct sizes, so
// recycling them removes the allocator from the event-loop hot path.
void* FramePoolAlloc(std::size_t size);
void FramePoolFree(void* ptr, std::size_t size) noexcept;

template <typename A>
concept BindableAwaitable = requires(A a, Simulator* s) { a.Bind(s); };

class [[nodiscard]] Coro {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Simulator* sim = nullptr;
    std::coroutine_handle<> continuation;  // resumed when this coro finishes
    std::exception_ptr error;
    bool owned_by_sim = false;  // root coroutine: simulator destroys it

    // Route frame allocation through the size-bucketed pool.
    static void* operator new(std::size_t size) {
      return FramePoolAlloc(size);
    }
    static void operator delete(void* ptr, std::size_t size) noexcept {
      FramePoolFree(ptr, size);
    }

    Coro get_return_object() { return Coro(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }

    // Injects the simulator into awaitables that want it.
    template <typename A>
    decltype(auto) await_transform(A&& a) {
      if constexpr (BindableAwaitable<std::remove_reference_t<A>>) {
        a.Bind(sim);
      }
      return std::forward<A>(a);
    }

    // Awaiting a child coroutine: start it immediately (same sim time) and
    // resume the parent when it completes.
    auto await_transform(Coro&& child) {
      struct ChildAwaiter {
        Coro child;  // keeps the child frame alive across the await
        bool await_ready() const noexcept { return false; }
        std::coroutine_handle<> await_suspend(Handle parent) noexcept {
          child.handle_.promise().sim = parent.promise().sim;
          child.handle_.promise().continuation = parent;
          return child.handle_;  // symmetric transfer into the child
        }
        void await_resume() {
          if (child.handle_.promise().error) {
            std::rethrow_exception(child.handle_.promise().error);
          }
        }
      };
      return ChildAwaiter{std::move(child)};
    }
  };

  Coro() = default;
  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Transfers frame ownership to the caller (used by Simulator::Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

// Suspends the current coroutine for `ns` simulated nanoseconds. A delay of
// zero still yields through the event queue (it acts as a scheduling point).
struct Delay {
  TimeNs ns = 0;
  Simulator* sim = nullptr;

  void Bind(Simulator* s) { sim = s; }
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

}  // namespace tilelink::sim
