// Profiler pass over a recorded fabric trace (sim/trace.h).
//
// Consumes the recorder's structured events and derives the overlap-quality
// numbers the paper's claims rest on: per-rank compute utilization, wire
// utilization, exposed-comm time (communication not hidden under compute),
// and a critical-path walk over the span/flow graph. The benches export
// these as `fabric.*` JSON keys and CI gates their internal consistency.
//
// Only spans carrying simulated work participate — categories kCatCompute,
// kCatWire and kCatComm. Structural spans (kCatTask: coroutine roots, the
// event loop) are excluded so the critical path reflects leaf work, not the
// enclosing run envelope.
//
// Definitions (pinned by tests/test_trace.cc):
//  * makespan        = last eligible span end - first eligible span start.
//  * compute_busy[r] = |union of compute spans on pid r|; compute_util[r] =
//    compute_busy[r] / makespan. Aggregate compute_util is the mean over
//    pids that have at least one compute span.
//  * exposed_comm[r] = |union(comm spans on r) \ union(compute spans on r)|
//    — comm time with no concurrent compute on the same rank. Aggregate
//    exposed_comm_frac is the mean of exposed_comm[r]/makespan over pids
//    with at least one comm span. A compute-only run has exactly 0; a
//    comm-only run has exposed_comm == comm_busy.
//  * wire_util       = max over (pid, tid) wire tracks of busy/makespan —
//    the bottleneck rail/link lane.
//  * critical path   = backward walk from the latest-ending span; each
//    step's predecessor is either the producer span of a flow arrow
//    finishing inside the step, or the latest earlier span on the same
//    track — in both cases constrained to end no later than the step
//    starts, so the summed durations never exceed the chain extent and
//    critical_path <= critical_span <= makespan always holds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.h"
#include "sim/trace.h"

namespace tilelink::sim {

struct CriticalPathStep {
  std::string name;
  int pid = 0;
  int tid = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  bool via_flow = false;  // linked to its successor by a flow arrow

  TimeNs dur() const { return end - start; }
};

struct RankProfile {
  int pid = 0;
  TimeNs compute_busy = 0;
  TimeNs comm_busy = 0;
  TimeNs exposed_comm = 0;
  double compute_util = 0;
  double exposed_comm_frac = 0;
};

struct Profile {
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  TimeNs makespan = 0;  // t1 - t0 over eligible spans

  std::vector<RankProfile> ranks;  // pids carrying compute or comm spans
  double compute_util = 0;
  double wire_util = 0;
  TimeNs exposed_comm = 0;  // mean over comm-carrying ranks, in ns
  double exposed_comm_frac = 0;

  TimeNs critical_path = 0;  // sum of span durations along the chain
  TimeNs critical_span = 0;  // chain extent: last end - first start
  std::vector<CriticalPathStep> path;  // in time order

  // Internal-consistency gate used by CI: every utilization in [0,1],
  // exposed_comm <= comm_busy per rank, critical_path <= critical_span <=
  // makespan. Returns false and fills *why (when given) on violation.
  bool Consistent(std::string* why = nullptr) const;
};

// Builds the profile from a recorded trace. Deterministic: ties in the
// critical-path walk break by (end, start, emission index).
Profile BuildProfile(const TraceRecorder& rec);

// Human-readable top-k chain (the k longest steps, chronological), with the
// chain totals on the first line.
std::string FormatCriticalPath(const Profile& p, std::size_t top_k = 12);

// Length (in arrows) of the longest producer->consumer chain through flow
// events whose endpoints land inside eligible spans. The fused-fabric bench
// gates >= 3 (producer publication -> ring chunk -> rail chunk -> reduce).
int LongestFlowChain(const TraceRecorder& rec);

}  // namespace tilelink::sim
