// Flow-level interconnect model.
//
// Each device exposes one egress port and one ingress port per fabric
// (intra-node NVLink-class, inter-node NIC-class). A transfer is a flow from
// (src egress) to (dst ingress); at any instant a flow's rate is
//   min(egress_bw / flows_on_egress, ingress_bw / flows_on_ingress)
// — a deterministic approximation of max-min fair sharing that captures the
// contention effects that matter for overlap studies: concurrent pulls from
// one producer halve each puller's rate, ring transfers run at full port
// bandwidth, and all-to-all traffic divides ingress bandwidth.
//
// Rates are recomputed whenever the flow set changes; completions are
// event-driven with generation counters so stale completion events are
// ignored. Flows are keyed by id (not iterator) so events outliving a flow
// are harmless.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/flag.h"
#include "sim/simulator.h"

namespace tilelink::sim {

// One directional port with fixed bandwidth (bytes per nanosecond, which is
// numerically GB/s) shared equally among active flows.
struct Port {
  double bw_bytes_per_ns = 0.0;
  int active_flows = 0;
};

class Network {
 public:
  // latency_ns is the per-message wire latency added before bytes flow.
  Network(Simulator* sim, int num_ports, double port_bw_gbps,
          TimeNs latency_ns, std::string name);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_ports() const { return static_cast<int>(egress_.size()); }
  TimeNs latency() const { return latency_ns_; }
  double port_bandwidth_gbps() const { return port_bw_; }

  // Coroutine: completes when `bytes` have moved from src's egress port to
  // dst's ingress port. A src==dst transfer models a local HBM-to-HBM copy
  // at local_copy_bw_gbps (no port contention).
  Coro Transfer(int src, int dst, uint64_t bytes);

  void set_local_copy_bw_gbps(double gbps) { local_copy_bw_ = gbps; }

  // Total bytes ever moved (for tests/diagnostics).
  uint64_t total_bytes() const { return total_bytes_; }
  int active_flow_count() const { return static_cast<int>(flows_.size()); }

 private:
  struct Flow {
    int src;
    int dst;
    double remaining_bytes;
    double rate = 0.0;       // bytes/ns
    TimeNs last_update = 0;  // when remaining_bytes was valid
    uint64_t generation = 0; // bumps on every reschedule; stale events ignored
    Flag done;
    Flow(Simulator* sim, int s, int d, double bytes)
        : src(s), dst(d), remaining_bytes(bytes), done(sim, "flow.done") {}
  };

  void AddFlow(uint64_t id);
  void RemoveFlow(uint64_t id);
  // Advances progress of all flows to Now(), recomputes rates, reschedules
  // completion events.
  void Rebalance();
  void ScheduleCompletion(uint64_t id, Flow& f);
  void OnCompletionEvent(uint64_t id, uint64_t generation);

  Simulator* sim_;
  std::vector<Port> egress_;
  std::vector<Port> ingress_;
  double port_bw_;
  double local_copy_bw_ = 3000.0;  // ~HBM-class local copy
  TimeNs latency_ns_;
  std::string name_;
  std::map<uint64_t, std::unique_ptr<Flow>> flows_;  // ordered: determinism
  uint64_t next_flow_id_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace tilelink::sim
