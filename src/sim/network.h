// Flow-level interconnect model.
//
// Each device exposes one egress port and one ingress port per fabric
// (intra-node NVLink-class, inter-node NIC-class). A transfer is a flow from
// (src egress) to (dst ingress); at any instant a flow's rate is
//   min(egress_bw / flows_on_egress, ingress_bw / flows_on_ingress)
// — a deterministic approximation of max-min fair sharing that captures the
// contention effects that matter for overlap studies: concurrent pulls from
// one producer halve each puller's rate, ring transfers run at full port
// bandwidth, and all-to-all traffic divides ingress bandwidth.
//
// Ports can optionally be split into `rails` (ConfigureRails): each rail
// owns an equal 1/rails share of the port bandwidth, scaled by a per-rail
// health factor in [0, 1], and flows contend only within their rail. With
// the default single healthy rail the arithmetic reduces bitwise to the flat
// model. A FaultPlan (sim/fault.h) can drop or straggle individual transfer
// attempts and kill or degrade rails at a simulated time; `TryTransfer`
// reports delivery instead of throwing so callers own the retry policy,
// while the legacy `Transfer` wraps it in the plan's bounded-retry loop.
//
// Rates are recomputed whenever the flow set changes; completions are
// event-driven with generation counters so stale completion events are
// ignored. Flows are keyed by id (not iterator) so events outliving a flow
// are harmless.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/fault.h"
#include "sim/flag.h"
#include "sim/simulator.h"

namespace tilelink::sim {

// One directional port with fixed bandwidth (bytes per nanosecond, which is
// numerically GB/s), split across rails; each rail's share is divided
// equally among its active flows.
struct Port {
  double bw_bytes_per_ns = 0.0;
  int active_flows = 0;                  // across all rails (diagnostics)
  std::vector<int> rail_flows = {0};     // active flows per rail
  std::vector<double> rail_scale = {1.0};  // health in [0, 1] per rail
};

// Per-attempt knobs for TryTransfer.
struct TransferOpts {
  int rail = -1;           // -1: pick the least-loaded live rail
  TimeNs ack_timeout = 0;  // >0: abandon the attempt after this long
};

// What happened to one attempt.
struct TransferOutcome {
  bool delivered = true;
  bool timed_out = false;
  int rail = 0;
  uint64_t ordinal = 0;  // per-edge attempt ordinal (0 when no plan attached)
};

class Network {
 public:
  // latency_ns is the per-message wire latency added before bytes flow.
  Network(Simulator* sim, int num_ports, double port_bw_gbps,
          TimeNs latency_ns, std::string name);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_ports() const { return static_cast<int>(egress_.size()); }
  TimeNs latency() const { return latency_ns_; }
  double port_bandwidth_gbps() const { return port_bw_; }
  const std::string& name() const { return name_; }

  // Coroutine: completes when `bytes` have moved from src's egress port to
  // dst's ingress port. A src==dst transfer models a local HBM-to-HBM copy
  // at local_copy_bw_gbps (no port contention). When a fault plan perturbs
  // this fabric, failed attempts are retried under the plan's RetryPolicy
  // and exhaustion throws FaultError; otherwise this is a single attempt.
  Coro Transfer(int src, int dst, uint64_t bytes);

  // One attempt: applies the fault plan's transient fate for this attempt
  // and reports the outcome in *out instead of retrying or throwing.
  // Callers that need failover (link roles) build their policy on this.
  Coro TryTransfer(int src, int dst, uint64_t bytes, TransferOpts opts,
                   TransferOutcome* out);

  // --- rails ---

  // Split every port into `rails` equal-bandwidth rails (requires no active
  // flows). Resets all rail health to 1.
  void ConfigureRails(int rails);
  int rails() const { return rails_; }

  // Scale rail `rail` of `port` (-1: all ports) to `fraction` of its
  // bandwidth share, on both the egress and ingress side. Bumps the rail
  // health generation so schedulers know to re-plan.
  void SetRailScale(int port, int rail, double fraction);
  double RailScale(int port, int rail) const;
  uint64_t rail_generation() const { return rail_generation_; }

  // --- faults ---

  // Attach a read-only fault plan (caller keeps it alive). Schedules the
  // plan's rail degrades for this fabric onto the simulator clock.
  void SetFaultPlan(const FaultPlan* plan);
  const FaultPlan* fault_plan() const { return plan_; }
  const FaultStats& fault_stats() const { return stats_; }
  void NoteRetry();

  // --- tracing ---

  // Trace process id for this fabric's wire spans, per-rail counters and
  // fault instants (assigned by World::set_trace; -1 keeps the fabric
  // silent even when the simulator has a recorder).
  void set_trace_pid(int pid) { trace_pid_ = pid; }
  int trace_pid() const { return trace_pid_; }

  // Expected serial time of one transfer on a healthy rail: the ack-timeout
  // basis when no cost model is at hand.
  TimeNs ExpectedFlowTime(uint64_t bytes) const;

  void set_local_copy_bw_gbps(double gbps) { local_copy_bw_ = gbps; }

  // Total bytes ever moved (for tests/diagnostics).
  uint64_t total_bytes() const { return total_bytes_; }
  int active_flow_count() const { return static_cast<int>(flows_.size()); }

 private:
  struct Flow {
    int src;
    int dst;
    double remaining_bytes;
    double rate = 0.0;       // bytes/ns
    TimeNs last_update = 0;  // when remaining_bytes was valid
    uint64_t generation = 0; // bumps on every reschedule; stale events ignored
    int rail = 0;
    bool timed_out = false;
    Flag done;
    Flow(Simulator* sim, int s, int d, double bytes)
        : src(s), dst(d), remaining_bytes(bytes), done(sim, "flow.done") {}
  };

  void AddFlow(uint64_t id);
  void RemoveFlow(uint64_t id);
  // The simulator's recorder when this fabric is trace-enabled, else null.
  TraceRecorder* Tracer() const {
    return trace_pid_ >= 0 ? sim_->trace() : nullptr;
  }
  // Sum of remaining bytes across active flows on one rail (trace only).
  double InflightBytes(int rail) const;
  void TraceRailCounter(int rail);
  // Advances progress of all flows to Now(), recomputes rates, reschedules
  // completion events.
  void Rebalance();
  void ScheduleCompletion(uint64_t id, Flow& f);
  void OnCompletionEvent(uint64_t id, uint64_t generation);
  // Least-loaded rail alive on both endpoints (tie: lowest index); rail 0
  // when every rail is dead (the flow parks; an ack-timeout recovers it).
  int PickRail(int src, int dst) const;
  void ApplyDegrade(const RailDegrade& d);

  Simulator* sim_;
  std::vector<Port> egress_;
  std::vector<Port> ingress_;
  double port_bw_;
  double local_copy_bw_ = 3000.0;  // ~HBM-class local copy
  TimeNs latency_ns_;
  std::string name_;
  std::map<uint64_t, std::unique_ptr<Flow>> flows_;  // ordered: determinism
  uint64_t next_flow_id_ = 0;
  uint64_t total_bytes_ = 0;
  int rails_ = 1;
  uint64_t rail_generation_ = 0;
  const FaultPlan* plan_ = nullptr;  // non-owning, read-only
  FaultStats stats_;
  std::vector<uint64_t> edge_ordinal_;  // src * num_ports + dst, plan only
  int trace_pid_ = -1;
};

}  // namespace tilelink::sim
