// Chrome-trace (about://tracing, Perfetto) recorder for simulated timelines.
//
// The recorder stores structured events — duration spans with typed args,
// flow start/finish points ("s"/"f") that Perfetto renders as arrows between
// slices, counter tracks ("C"), and instant markers ("i") — plus interned
// process/thread naming metadata, and serializes the lot as chrome-trace
// JSON (ts/dur in microseconds, sim time is nanoseconds).
//
// Conventions used by the fabric instrumentation (see runtime/world.cc):
//   pid          = global rank for rank-side spans; ranks..ranks+1 for the
//                  nvlink/nic fabrics; further pids for checker + simulator.
//   tid          = a track interned per (pid, name) via Track() — role,
//                  rail, ring lane, reducer, SM pool.
//   category     = kCatCompute / kCatWire / kCatComm for spans that carry
//                  simulated work (the profiler in sim/profile.h classifies
//                  time by these); kCatTask for structural spans (coroutine
//                  roots, event loop) that are excluded from profiler math.
//
// Emission is pay-for-use: every producer site guards on the simulator's
// recorder pointer, so with no recorder attached the hot path neither
// allocates nor branches further, and attaching one never feeds back into
// event scheduling — makespans are bitwise identical with tracing on or off
// (pinned by tests/test_trace.cc).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace tilelink::sim {

// Span categories understood by the profiler (sim/profile.h).
inline constexpr char kCatCompute[] = "compute";  // SM-resident tile work
inline constexpr char kCatWire[] = "wire";        // link-level flow transfers
inline constexpr char kCatComm[] = "comm";        // chunk pipelines + reduces
inline constexpr char kCatTask[] = "task";        // structural, not profiled

// One typed key/value argument attached to a trace event.
struct TraceArg {
  std::string key;
  std::string sval;
  double nval = 0;
  bool is_num = false;

  static TraceArg Num(std::string key, double value) {
    TraceArg a;
    a.key = std::move(key);
    a.nval = value;
    a.is_num = true;
    return a;
  }
  static TraceArg Str(std::string key, std::string value) {
    TraceArg a;
    a.key = std::move(key);
    a.sval = std::move(value);
    return a;
  }
};

class TraceRecorder {
 public:
  enum class Phase : uint8_t {
    kSpan,        // "X" complete event over [start, end]
    kFlowStart,   // "s" at start
    kFlowFinish,  // "f" (bp:"e") at start
    kCounter,     // "C" at start; category holds the series key, value the y
    kInstant,     // "i" thread-scoped at start
  };

  struct Event {
    Phase phase = Phase::kSpan;
    int pid = 0;
    int tid = 0;
    TimeNs start = 0;
    TimeNs end = 0;     // spans only; == start otherwise
    uint64_t flow = 0;  // flow events only; 0 = none
    double value = 0;   // counters only
    std::string name;
    std::string category;
    std::vector<TraceArg> args;

    TimeNs dur() const { return end - start; }
  };

  // ---- naming -----------------------------------------------------------
  void SetProcessName(int pid, const std::string& name);
  // Interns `name` as a thread track of process `pid` and returns its tid
  // (stable across calls; thread_name metadata is emitted at serialization).
  int Track(int pid, const std::string& name);

  // ---- emission (all timestamps in simulated nanoseconds) ---------------
  void AddSpan(int pid, int tid, const std::string& name, TimeNs start,
               TimeNs end, const std::string& category = kCatTask,
               std::vector<TraceArg> args = {});

  // Flow arrows: allocate an id once (never 0), emit "s" at the producer
  // and "f" at the consumer with the same id + name.
  uint64_t NewFlowId() { return ++next_flow_; }
  void AddFlowStart(uint64_t id, int pid, int tid, TimeNs ts,
                    const std::string& name);
  void AddFlowFinish(uint64_t id, int pid, int tid, TimeNs ts,
                     const std::string& name);

  // One sample of series `series` on counter track `track` of process pid.
  void AddCounter(int pid, const std::string& track, const std::string& series,
                  TimeNs ts, double value);

  void AddInstant(int pid, int tid, const std::string& name, TimeNs ts,
                  std::vector<TraceArg> args = {});

  // ---- serialization ----------------------------------------------------
  // Streams the chrome-trace JSON (metadata first, then events in emission
  // order) without materializing it.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
  void Save(const std::string& path) const;

  // Escapes a string for embedding inside a JSON string literal.
  static std::string EscapeJson(const std::string& s);
  static void AppendEscaped(std::ostream& os, const std::string& s);

  // Full-grammar JSON validity check (objects/arrays/strings with escapes/
  // numbers/literals). Returns false and sets *error (when given) on the
  // first malformed byte. Used by tests and the bench --trace self-check.
  static bool ValidateJson(const std::string& text,
                           std::string* error = nullptr);

  // ---- inspection -------------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  // tid -> name for one pid (empty map if the pid has no interned tracks).
  std::map<int, std::string> track_names(int pid) const;

  size_t size() const { return events_.size(); }
  void Clear();

 private:
  std::vector<Event> events_;
  uint64_t next_flow_ = 0;
  std::map<int, std::string> process_names_;
  // (pid, track name) -> tid; tids count up from 1 per pid.
  std::map<std::pair<int, std::string>, int> track_ids_;
  std::map<int, int> next_tid_;
};

}  // namespace tilelink::sim
