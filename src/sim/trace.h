// Chrome-trace (about://tracing, Perfetto) recorder for simulated timelines.
// pid = device id, tid = execution unit (SM slot, copy engine, host thread).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace tilelink::sim {

class TraceRecorder {
 public:
  void AddSpan(int pid, int tid, const std::string& name, TimeNs start,
               TimeNs end, const std::string& category = "task");

  // Serializes to chrome trace JSON.
  std::string ToJson() const;
  void Save(const std::string& path) const;

  size_t size() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

 private:
  struct Span {
    int pid;
    int tid;
    std::string name;
    std::string category;
    TimeNs start;
    TimeNs end;
  };
  std::vector<Span> spans_;
};

}  // namespace tilelink::sim
