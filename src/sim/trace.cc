#include "sim/trace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace tilelink::sim {

namespace {

// Chrome trace wants microseconds; sim time is integral nanoseconds. Write
// ns/1000 with exactly three decimals so serialization is deterministic and
// locale-independent.
void WriteUs(std::ostream& os, TimeNs ns) {
  if (ns < 0) {
    os << '-';
    ns = -ns;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03d",
                static_cast<long long>(ns / 1000), static_cast<int>(ns % 1000));
  os << buf;
}

void WriteNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void WriteArgs(std::ostream& os, const std::vector<TraceArg>& args) {
  os << "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) os << ",";
    first = false;
    os << '"';
    TraceRecorder::AppendEscaped(os, a.key);
    os << "\":";
    if (a.is_num) {
      WriteNumber(os, a.nval);
    } else {
      os << '"';
      TraceRecorder::AppendEscaped(os, a.sval);
      os << '"';
    }
  }
  os << "}";
}

}  // namespace

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  process_names_[pid] = name;
}

int TraceRecorder::Track(int pid, const std::string& name) {
  auto key = std::make_pair(pid, name);
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;
  const int tid = ++next_tid_[pid];
  track_ids_.emplace(std::move(key), tid);
  return tid;
}

std::map<int, std::string> TraceRecorder::track_names(int pid) const {
  std::map<int, std::string> out;
  for (const auto& [key, tid] : track_ids_) {
    if (key.first == pid) out[tid] = key.second;
  }
  return out;
}

void TraceRecorder::AddSpan(int pid, int tid, const std::string& name,
                            TimeNs start, TimeNs end,
                            const std::string& category,
                            std::vector<TraceArg> args) {
  Event e;
  e.phase = Phase::kSpan;
  e.pid = pid;
  e.tid = tid;
  e.start = start;
  e.end = end;
  e.name = name;
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::AddFlowStart(uint64_t id, int pid, int tid, TimeNs ts,
                                 const std::string& name) {
  Event e;
  e.phase = Phase::kFlowStart;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = ts;
  e.flow = id;
  e.name = name;
  e.category = "flow";
  events_.push_back(std::move(e));
}

void TraceRecorder::AddFlowFinish(uint64_t id, int pid, int tid, TimeNs ts,
                                  const std::string& name) {
  Event e;
  e.phase = Phase::kFlowFinish;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = ts;
  e.flow = id;
  e.name = name;
  e.category = "flow";
  events_.push_back(std::move(e));
}

void TraceRecorder::AddCounter(int pid, const std::string& track,
                               const std::string& series, TimeNs ts,
                               double value) {
  Event e;
  e.phase = Phase::kCounter;
  e.pid = pid;
  e.start = e.end = ts;
  e.value = value;
  e.name = track;
  e.category = series;
  events_.push_back(std::move(e));
}

void TraceRecorder::AddInstant(int pid, int tid, const std::string& name,
                               TimeNs ts, std::vector<TraceArg> args) {
  Event e;
  e.phase = Phase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = ts;
  e.name = name;
  e.category = "instant";
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::AppendEscaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

std::string TraceRecorder::EscapeJson(const std::string& s) {
  std::ostringstream os;
  AppendEscaped(os, s);
  return os.str();
}

void TraceRecorder::WriteJson(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Naming metadata first: process names, then interned thread tracks.
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    AppendEscaped(os, name);
    os << "\"}}";
  }
  for (const auto& [key, tid] : track_ids_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << key.first << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(os, key.second);
    os << "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    switch (e.phase) {
      case Phase::kSpan:
        os << "{\"ph\":\"X\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
           << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"cat\":\"";
        AppendEscaped(os, e.category);
        os << "\",\"ts\":";
        WriteUs(os, e.start);
        os << ",\"dur\":";
        WriteUs(os, e.end - e.start);
        if (!e.args.empty()) {
          os << ",\"args\":";
          WriteArgs(os, e.args);
        }
        os << "}";
        break;
      case Phase::kFlowStart:
      case Phase::kFlowFinish:
        os << "{\"ph\":\"" << (e.phase == Phase::kFlowStart ? 's' : 'f')
           << "\"";
        if (e.phase == Phase::kFlowFinish) os << ",\"bp\":\"e\"";
        os << ",\"id\":" << e.flow << ",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"cat\":\"flow\",\"ts\":";
        WriteUs(os, e.start);
        os << "}";
        break;
      case Phase::kCounter:
        os << "{\"ph\":\"C\",\"pid\":" << e.pid << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"ts\":";
        WriteUs(os, e.start);
        os << ",\"args\":{\"";
        AppendEscaped(os, e.category);
        os << "\":";
        WriteNumber(os, e.value);
        os << "}}";
        break;
      case Phase::kInstant:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"ts\":";
        WriteUs(os, e.start);
        if (!e.args.empty()) {
          os << ",\"args\":";
          WriteArgs(os, e.args);
        }
        os << "}";
        break;
    }
  }
  os << "]}";
}

std::string TraceRecorder::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void TraceRecorder::Save(const std::string& path) const {
  std::ofstream out(path);
  TL_CHECK_MSG(out.good(), "cannot open trace file " << path);
  WriteJson(out);  // streams: the full JSON string is never materialized
  out.flush();
  TL_CHECK_MSG(out.good(), "short write on trace file " << path);
}

void TraceRecorder::Clear() {
  events_.clear();
  next_flow_ = 0;
  process_names_.clear();
  track_ids_.clear();
  next_tid_.clear();
}

// ---- JSON validity ------------------------------------------------------

namespace {

struct JsonParser {
  const std::string& s;
  size_t i = 0;
  std::string* err;

  bool Fail(const std::string& what) {
    if (err != nullptr && err->empty()) {
      *err = what + " at byte " + std::to_string(i);
    }
    return false;
  }
  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s.compare(i, n, lit) != 0) return Fail("bad literal");
    i += n;
    return true;
  }
  bool String() {
    if (i >= s.size() || s[i] != '"') return Fail("expected string");
    ++i;
    while (i < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"') {
        ++i;
        return true;
      }
      if (c < 0x20) return Fail("raw control char in string");
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return Fail("truncated escape");
        const char e = s[i];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++i;
        } else if (e == 'u') {
          ++i;
          for (int k = 0; k < 4; ++k, ++i) {
            if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
              return Fail("bad \\u escape");
          }
        } else {
          return Fail("bad escape");
        }
      } else {
        ++i;
      }
    }
    return Fail("unterminated string");
  }
  bool Number() {
    if (i < s.size() && s[i] == '-') ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return Fail("bad number");
    if (s[i] == '0') {
      ++i;
    } else {
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && s[i] == '.') {
      ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return Fail("bad fraction");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return Fail("bad exponent");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    return true;
  }
  bool Value(int depth) {
    if (depth > 256) return Fail("nesting too deep");
    SkipWs();
    if (i >= s.size()) return Fail("truncated value");
    switch (s[i]) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object(int depth) {
    ++i;  // '{'
    SkipWs();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i >= s.size() || s[i] != ':') return Fail("expected ':'");
      ++i;
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }
  bool Array(int depth) {
    ++i;  // '['
    SkipWs();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool TraceRecorder::ValidateJson(const std::string& text, std::string* error) {
  if (error != nullptr) error->clear();
  JsonParser p{text, 0, error};
  if (!p.Value(0)) return false;
  p.SkipWs();
  if (p.i != text.size()) return p.Fail("trailing bytes");
  return true;
}

}  // namespace tilelink::sim
