#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace tilelink::sim {

void TraceRecorder::AddSpan(int pid, int tid, const std::string& name,
                            TimeNs start, TimeNs end,
                            const std::string& category) {
  spans_.push_back(Span{pid, tid, name, category, start, end});
}

std::string TraceRecorder::ToJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    // Chrome trace uses microseconds.
    os << "{\"ph\":\"X\",\"pid\":" << s.pid << ",\"tid\":" << s.tid
       << ",\"name\":\"" << s.name << "\",\"cat\":\"" << s.category
       << "\",\"ts\":" << static_cast<double>(s.start) / 1e3
       << ",\"dur\":" << static_cast<double>(s.end - s.start) / 1e3 << "}";
  }
  os << "]}";
  return os.str();
}

void TraceRecorder::Save(const std::string& path) const {
  std::ofstream out(path);
  TL_CHECK_MSG(out.good(), "cannot open trace file " << path);
  out << ToJson();
}

}  // namespace tilelink::sim
