// Monotonic 64-bit signal flags with waiter lists — the simulator-level
// mechanism under runtime::SignalSet (device barrier words manipulated by
// red.release / polled by ld.global.acquire in the paper's lowered code).
//
// Flags only grow (Set takes max, Add accumulates); waiters wake when the
// value first reaches their threshold. Visibility latency of a remote write
// is modeled by the caller scheduling Set/Add at a later simulated time.
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace tilelink::sim {

class Flag {
 public:
  Flag(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  Flag(Flag&&) = default;
  Flag(const Flag&) = delete;
  Flag& operator=(const Flag&) = delete;

  uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }
  Simulator* sim() const { return sim_; }

  // Raises the flag to at least v (monotonic store, release semantics are
  // the caller's responsibility via scheduling order).
  void Set(uint64_t v) {
    if (v > value_) {
      value_ = v;
      WakeSatisfied();
    }
  }

  // Atomically adds d (models red.global.add).
  void Add(uint64_t d) {
    value_ += d;
    WakeSatisfied();
  }

  void Reset() { value_ = 0; }  // only valid when no waiters are parked

  struct [[nodiscard]] Awaiter {
    Flag* flag;
    uint64_t threshold;
    bool await_ready() const { return flag->value_ >= threshold; }
    void await_suspend(std::coroutine_handle<> h) {
      flag->waiters_.push_back(Waiter{threshold, h});
      // Lazy description: evaluated only if a deadlock is reported, so
      // parking allocates nothing and the report shows the flag's *last*
      // published value rather than its value when the waiter parked.
      flag->sim_->RegisterBlockedDynamic(this, this, &Awaiter::Describe);
    }
    void await_resume() { flag->sim_->UnregisterBlocked(this); }

   private:
    static std::string Describe(const void* ctx) {
      const Awaiter* a = static_cast<const Awaiter*>(ctx);
      return "flag '" + a->flag->name_ + "' wait >= " +
             std::to_string(a->threshold) + " (last published value " +
             std::to_string(a->flag->value_) + ")";
    }
  };

  // Suspends until value() >= threshold (acquire side of the barrier).
  Awaiter WaitGe(uint64_t threshold) { return Awaiter{this, threshold}; }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  struct Waiter {
    uint64_t threshold;
    std::coroutine_handle<> h;
  };

  void WakeSatisfied() {
    // Stable sweep: wake in arrival order for determinism.
    std::vector<Waiter> still;
    still.reserve(waiters_.size());
    for (const Waiter& w : waiters_) {
      if (value_ >= w.threshold) {
        sim_->ScheduleResume(sim_->Now(), w.h);
      } else {
        still.push_back(w);
      }
    }
    waiters_ = std::move(still);
  }

  Simulator* sim_;
  uint64_t value_ = 0;
  std::string name_;
  std::vector<Waiter> waiters_;

  friend struct Awaiter;
};

}  // namespace tilelink::sim
