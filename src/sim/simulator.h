// Deterministic single-threaded discrete-event simulator.
//
// The simulator owns a priority queue of events ordered by (time, sequence).
// Events are either coroutine resumptions or plain callbacks. Determinism:
// ties in time break by insertion sequence, and all state mutation happens on
// the single event loop, so a given program produces bit-identical timing and
// numerics on every run.
//
// Hot path: an Event is a trivially-copyable 32-byte record whose payload is
// either a coroutine frame address or a pointer to a pooled CallbackNode
// (small-buffer storage for the callable), so priority-queue sifts are
// memcpy-speed and scheduling a callback never touches the heap after the
// node pool warms up. Coroutine frames are also pooled (see FramePoolAlloc
// in coro.h) — the autotuner runs thousands of short simulations per search,
// so allocation churn dominates without these.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/coro.h"
#include "sim/time.h"

namespace tilelink::sim {

class TraceRecorder;

// Thrown by Run() when the event queue drains while spawned activities are
// still blocked (a lost-wakeup / miswired-channel bug in the simulated
// program). The message records the simulated time of the stall and lists
// what each blocked activity was waiting for — for flag waits, the awaited
// threshold against the last published value.
class DeadlockError : public tilelink::Error {
 public:
  explicit DeadlockError(const std::string& what, TimeNs stall_time = 0)
      : Error(what), stall_time_(stall_time) {}

  // Simulated time at which the event queue drained.
  TimeNs stall_time() const { return stall_time_; }

 private:
  TimeNs stall_time_;
};

class Simulator {
 private:
  // Pooled storage for one scheduled callback. The callable lives in the
  // inline buffer (or, when larger, in one boxed heap allocation the node
  // points to); `invoke` moves it out, destroys the stored copy and — when
  // `run` — calls it. Nodes are recycled through a free list.
  struct CallbackNode {
    static constexpr std::size_t kInlineBytes = 48;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    void (*invoke)(CallbackNode*, bool run) = nullptr;
    CallbackNode* next_free = nullptr;
  };

  // Trivially copyable: payload is a coroutine frame address (callback ==
  // false) or a CallbackNode* (callback == true).
  struct Event {
    TimeNs t;
    uint64_t seq;
    void* payload;
    bool callback;
  };
  static_assert(std::is_trivially_copyable_v<Event>);

 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Spawns a root coroutine; the simulator owns and destroys its frame.
  void Spawn(Coro coro, std::string name = "");

  // Schedules a plain callback at absolute time t (>= Now()).
  template <typename F>
  void At(TimeNs t, F&& fn) {
    TL_CHECK_GE(t, now_);
    queue_.push(Event{t, next_seq_++, MakeCallback(std::forward<F>(fn)),
                      /*callback=*/true});
  }
  template <typename F>
  void After(TimeNs delta, F&& fn) {
    At(now_ + delta, std::forward<F>(fn));
  }

  // Schedules a coroutine resumption at absolute time t.
  void ScheduleResume(TimeNs t, std::coroutine_handle<> h);

  // Runs until the event queue is empty. Throws the first exception escaping
  // a root coroutine; throws DeadlockError if activities remain blocked.
  void Run();

  // Number of root coroutines spawned and still running.
  int live_roots() const { return live_roots_; }
  uint64_t processed_events() const { return processed_events_; }

  // Blocked-activity registry for deadlock diagnostics. Awaitables register
  // a description keyed by their own address while a coroutine is parked —
  // either an eager string, or (hot path) a describe function evaluated
  // against `ctx` only if a deadlock is actually reported, so parking
  // allocates nothing and the report sees the *final* state (e.g. a flag's
  // last published value, not its value when the waiter parked).
  void RegisterBlocked(const void* key, std::string what);
  void RegisterBlockedDynamic(const void* key, const void* ctx,
                              std::string (*describe)(const void*));
  void UnregisterBlocked(const void* key);

  // Optional chrome-trace recorder (not owned may be null). While attached,
  // Spawn/NotifyRootDone record one structural span per named root
  // coroutine and Run records an event-loop span; with no recorder the hot
  // path allocates nothing.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }
  // Trace process id the simulator's own spans (roots, event loop) land on.
  void set_trace_pid(int pid) { trace_pid_ = pid; }
  int trace_pid() const { return trace_pid_; }

  // Internal: called from Coro final suspend for sim-owned roots.
  void NotifyRootDone(Coro::Handle h);

 private:
  template <typename F>
  CallbackNode* MakeCallback(F&& fn) {
    using Fn = std::decay_t<F>;
    CallbackNode* node = AllocCallbackNode();
    if constexpr (sizeof(Fn) <= CallbackNode::kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      new (static_cast<void*>(node->storage)) Fn(std::forward<F>(fn));
      node->invoke = [](CallbackNode* n, bool run) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(n->storage));
        if (run) {
          Fn local(std::move(*f));
          f->~Fn();
          local();
        } else {
          f->~Fn();
        }
      };
    } else {
      // Callable too large for the inline buffer: box it in one allocation.
      Fn* boxed = new Fn(std::forward<F>(fn));
      std::memcpy(node->storage, &boxed, sizeof(boxed));
      node->invoke = [](CallbackNode* n, bool run) {
        Fn* f;
        std::memcpy(&f, n->storage, sizeof(f));
        std::unique_ptr<Fn> owned(f);
        if (run) (*owned)();
      };
    }
    return node;
  }

  CallbackNode* AllocCallbackNode() {
    if (free_callbacks_ != nullptr) {
      CallbackNode* node = free_callbacks_;
      free_callbacks_ = node->next_free;
      return node;
    }
    callback_arena_.emplace_back();
    return &callback_arena_.back();
  }
  void FreeCallbackNode(CallbackNode* node) {
    node->next_free = free_callbacks_;
    free_callbacks_ = node;
  }

  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void DestroyFinishedRoots();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_events_ = 0;
  int live_roots_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
  // Node storage (std::deque: stable addresses) plus the recycling list.
  std::deque<CallbackNode> callback_arena_;
  CallbackNode* free_callbacks_ = nullptr;
  std::vector<Coro::Handle> finished_roots_;
  // Frames of sim-owned roots still suspended; destroyed at teardown so a
  // deadlocked (never-completing) program does not leak its coroutines.
  std::unordered_set<void*> live_root_frames_;
  struct BlockedInfo {
    std::string what;  // used when describe == nullptr
    std::string (*describe)(const void*) = nullptr;
    const void* ctx = nullptr;
  };
  std::unordered_map<const void*, BlockedInfo> blocked_;
  TraceRecorder* trace_ = nullptr;
  int trace_pid_ = 0;
  // Open root spans (spawn -> completion), populated only while a recorder
  // is attached. Keyed by frame address: safe against frame-pool address
  // reuse because the entry is erased in NotifyRootDone before the frame is
  // destroyed.
  struct OpenRootSpan {
    std::string name;
    TimeNs start;
  };
  std::unordered_map<void*, OpenRootSpan> open_root_spans_;
};

}  // namespace tilelink::sim
