// Deterministic single-threaded discrete-event simulator.
//
// The simulator owns a priority queue of events ordered by (time, sequence).
// Events are either coroutine resumptions or plain callbacks. Determinism:
// ties in time break by insertion sequence, and all state mutation happens on
// the single event loop, so a given program produces bit-identical timing and
// numerics on every run.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/coro.h"
#include "sim/time.h"

namespace tilelink::sim {

class TraceRecorder;

// Thrown by Run() when the event queue drains while spawned activities are
// still blocked (a lost-wakeup / miswired-channel bug in the simulated
// program). The message lists what each blocked activity was waiting for.
class DeadlockError : public tilelink::Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Spawns a root coroutine; the simulator owns and destroys its frame.
  void Spawn(Coro coro, std::string name = "");

  // Schedules a plain callback at absolute time t (>= Now()).
  void At(TimeNs t, std::function<void()> fn);
  void After(TimeNs delta, std::function<void()> fn) { At(now_ + delta, std::move(fn)); }

  // Schedules a coroutine resumption at absolute time t.
  void ScheduleResume(TimeNs t, std::coroutine_handle<> h);

  // Runs until the event queue is empty. Throws the first exception escaping
  // a root coroutine; throws DeadlockError if activities remain blocked.
  void Run();

  // Number of root coroutines spawned and still running.
  int live_roots() const { return live_roots_; }
  uint64_t processed_events() const { return processed_events_; }

  // Blocked-activity registry for deadlock diagnostics. Awaitables register
  // a description keyed by their own address while a coroutine is parked.
  void RegisterBlocked(const void* key, std::string what);
  void UnregisterBlocked(const void* key);

  // Optional chrome-trace recorder (not owned may be null).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  // Internal: called from Coro final suspend for sim-owned roots.
  void NotifyRootDone(Coro::Handle h);

 private:
  struct Event {
    TimeNs t;
    uint64_t seq;
    // Exactly one of these is set.
    std::coroutine_handle<> resume;
    std::function<void()> fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void DestroyFinishedRoots();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_events_ = 0;
  int live_roots_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
  std::vector<Coro::Handle> finished_roots_;
  // Frames of sim-owned roots still suspended; destroyed at teardown so a
  // deadlocked (never-completing) program does not leak its coroutines.
  std::unordered_set<void*> live_root_frames_;
  std::unordered_map<const void*, std::string> blocked_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace tilelink::sim
