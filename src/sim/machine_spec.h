// Machine description: device counts, per-device execution resources, fabric
// bandwidths, and the fixed software latencies (kernel launch, host sync,
// collective setup) that drive the decomposition-vs-fusion trade-off in the
// paper. Defaults are calibrated to an H800 DGX-class node (see DESIGN.md §6).
#pragma once

#include "common/check.h"
#include "sim/time.h"

namespace tilelink::sim {

struct MachineSpec {
  int num_devices = 8;
  int devices_per_node = 8;
  int sms_per_device = 132;
  int copy_engines_per_device = 4;

  // Compute / memory.
  double tensor_tflops = 990.0;  // dense BF16 tensor-core peak per device
  double fp32_tflops = 67.0;     // CUDA-core fp32 peak per device
  double hbm_gbps = 3350.0;      // HBM3

  // Intra-node fabric (H800-reduced NVLink), effective per-direction/device
  // including protocol/chunking overheads.
  double nvlink_gbps = 150.0;
  TimeNs nvlink_latency = Us(2.2);

  // Inter-node fabric (IB NICs, aggregated per device).
  double nic_gbps = 48.0;
  TimeNs nic_latency = Us(6.5);
  // Concurrent RDMA queue pairs a device's NIC sustains at full rate; the
  // per-fabric channel budget for NIC-bound communication roles (clamps the
  // staging depth of multi-node collectives).
  int nic_queue_pairs = 16;
  // Physical NIC rails per device: each rail owns nic_gbps / nic_rails of
  // the port bandwidth and can be degraded or killed independently by a
  // FaultPlan. 1 keeps the flat symmetric model (bitwise identical rates).
  int nic_rails = 1;

  // Software overheads.
  TimeNs kernel_launch_latency = Us(6.0);
  TimeNs host_sync_latency = Us(18.0);        // stream sync / record+wait
  TimeNs collective_setup_latency = Us(22.0); // NCCL-analog per collective
  TimeNs dma_setup_latency = Us(4.0);         // copy-engine program setup
  // Copy engines reach a lower fraction of NVLink peak than multi-channel
  // SM-driven copies (fewer outstanding requests per CE).
  double dma_efficiency = 0.80;
  TimeNs signal_visibility_latency = Us(0.9); // remote flag write visibility
  TimeNs local_signal_latency = Us(0.12);     // local flag write visibility

  int node_of(int device) const {
    TL_CHECK_GE(device, 0);
    TL_CHECK_LT(device, num_devices);
    return device / devices_per_node;
  }
  int num_nodes() const { return (num_devices + devices_per_node - 1) / devices_per_node; }

  // Single 8-GPU H800 node (the paper's main testbed).
  static MachineSpec H800x8() { return MachineSpec{}; }

  // Two 8-GPU H800 nodes connected by NICs (the paper's 16-GPU testbed).
  static MachineSpec H800x16() {
    MachineSpec spec;
    spec.num_devices = 16;
    spec.devices_per_node = 8;
    return spec;
  }

  // Small machine for unit tests: fast to simulate, same code paths.
  static MachineSpec Test(int num_devices, int sms = 8) {
    MachineSpec spec;
    spec.num_devices = num_devices;
    spec.devices_per_node = num_devices;
    spec.sms_per_device = sms;
    return spec;
  }
};

}  // namespace tilelink::sim
