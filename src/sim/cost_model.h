// Analytic per-tile cost functions used by simulated kernels.
//
// Granularity is one thread block performing one tile step; the DES composes
// these into kernels, so wave quantization, SM partitioning and pipeline
// bubbles come from the event schedule, not from these formulas.
#pragma once

#include <cstdint>

#include "sim/machine_spec.h"
#include "sim/time.h"

namespace tilelink::sim {

class CostModel {
 public:
  explicit CostModel(const MachineSpec& spec) : spec_(spec) {}

  const MachineSpec& spec() const { return spec_; }

  // Tensor-core efficiency of a block with tile (bm x bn): large tiles keep
  // the MMA pipeline full; skinny tiles stall it. Calibrated so cuBLAS-class
  // 128x256 tiles reach ~75% and 32x32 tiles ~20%.
  double GemmEfficiency(int bm, int bn) const;

  // Time for one (bm x bn x bk) MMA step of one block on one SM.
  TimeNs GemmTileStep(int bm, int bn, int bk) const;

  // Time for an entire (bm x bn) output tile over reduction depth k.
  TimeNs GemmBlockTime(int bm, int bn, int k, int bk) const;

  // Time for a flash-attention inner step: one (bq x bk_seq) score tile plus
  // online-softmax rescale and PV accumulation, head dim d.
  TimeNs FlashAttnTileStep(int bq, int bkv, int head_dim) const;

  // Eager (non-flash) attention is memory bound on the score matrix; time to
  // stream `bytes` at HBM bandwidth with `sms_used` of the device's SMs.
  TimeNs MemoryBound(uint64_t bytes, int sms_used) const;

  // Elementwise op over `bytes` total traffic using `sms_used` SMs.
  TimeNs Elementwise(uint64_t bytes, int sms_used) const;

  // Per-block epilogue (store accumulators, fences) cost.
  TimeNs BlockEpilogue() const { return Us(0.6); }
  // Per-block prologue (program setup, first loads) cost.
  TimeNs BlockPrologue() const { return Us(0.8); }

  // Aggregate dense-GEMM time for an (m x n x k) problem tiled (bm, bn, bk)
  // over `sms` persistent blocks: wave count times per-tile time. Ignores
  // overlap stalls and launch latency, so it is a lower bound on any fused
  // kernel containing this GEMM — the autotuner uses it to prune candidates
  // without running the simulator.
  TimeNs GemmComputeTime(int64_t m, int64_t n, int64_t k, int bm, int bn,
                         int bk, int sms) const;

  // Time to move `bytes` point-to-point over the intra-node fabric at peak
  // bandwidth (lower bound for any communication role carrying that volume).
  TimeNs NvlinkTransfer(uint64_t bytes) const;

  // Same for the inter-node NIC fabric: expected uncontended flow time of a
  // `bytes` message over one device's full NIC bandwidth. The link roles'
  // ack-timeouts scale off this.
  TimeNs NicTransfer(uint64_t bytes) const;

 private:
  MachineSpec spec_;
};

}  // namespace tilelink::sim
