#include "sim/profile.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace tilelink::sim {

namespace {

using Event = TraceRecorder::Event;
using Phase = TraceRecorder::Phase;
using Interval = std::pair<TimeNs, TimeNs>;

bool EligibleSpan(const Event& e) {
  return e.phase == Phase::kSpan &&
         (e.category == kCatCompute || e.category == kCatWire ||
          e.category == kCatComm);
}

uint64_t TrackKey(int pid, int tid) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(pid)) << 32) |
         static_cast<uint32_t>(tid);
}

std::vector<Interval> Merge(std::vector<Interval> iv) {
  std::sort(iv.begin(), iv.end());
  std::vector<Interval> out;
  for (const Interval& x : iv) {
    if (x.second <= x.first) continue;
    if (!out.empty() && x.first <= out.back().second) {
      out.back().second = std::max(out.back().second, x.second);
    } else {
      out.push_back(x);
    }
  }
  return out;
}

TimeNs TotalLength(const std::vector<Interval>& merged) {
  TimeNs sum = 0;
  for (const Interval& x : merged) sum += x.second - x.first;
  return sum;
}

// |a \ b| for merged interval lists.
TimeNs SubtractLength(const std::vector<Interval>& a,
                      const std::vector<Interval>& b) {
  TimeNs sum = 0;
  size_t j = 0;
  for (const Interval& x : a) {
    TimeNs lo = x.first;
    while (j < b.size() && b[j].second <= lo) ++j;
    size_t k = j;
    while (lo < x.second) {
      if (k >= b.size() || b[k].first >= x.second) {
        sum += x.second - lo;
        break;
      }
      if (b[k].first > lo) sum += b[k].first - lo;
      lo = std::max(lo, b[k].second);
      ++k;
    }
  }
  return sum;
}

// Per-track span index plus flow endpoints, shared by the critical-path
// walk and the flow-chain scan.
struct SpanGraph {
  const std::vector<Event>* events = nullptr;
  std::vector<size_t> spans;  // indices of eligible spans
  // Track -> eligible span indices sorted by (start, end, idx).
  std::unordered_map<uint64_t, std::vector<size_t>> by_track;
  // Track -> flow-finish event indices sorted by ts.
  std::unordered_map<uint64_t, std::vector<size_t>> finishes;
  // flow id -> flow-start event index (first emission wins).
  std::unordered_map<uint64_t, size_t> starts;

  explicit SpanGraph(const TraceRecorder& rec) {
    events = &rec.events();
    const auto& ev = *events;
    for (size_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (EligibleSpan(e)) {
        spans.push_back(i);
        by_track[TrackKey(e.pid, e.tid)].push_back(i);
      } else if (e.phase == Phase::kFlowFinish) {
        finishes[TrackKey(e.pid, e.tid)].push_back(i);
      } else if (e.phase == Phase::kFlowStart) {
        starts.emplace(e.flow, i);
      }
    }
    auto by_start = [&](size_t a, size_t b) {
      const Event& x = ev[a];
      const Event& y = ev[b];
      return std::tie(x.start, x.end, a) < std::tie(y.start, y.end, b);
    };
    for (auto& [key, v] : by_track) std::sort(v.begin(), v.end(), by_start);
    auto by_ts = [&](size_t a, size_t b) {
      return std::tie(ev[a].start, a) < std::tie(ev[b].start, b);
    };
    for (auto& [key, v] : finishes) std::sort(v.begin(), v.end(), by_ts);
  }

  // The eligible span on (pid, tid) containing ts, preferring the latest
  // start (deterministic); npos when none.
  static constexpr size_t kNone = static_cast<size_t>(-1);
  size_t SpanAt(int pid, int tid, TimeNs ts) const {
    auto it = by_track.find(TrackKey(pid, tid));
    if (it == by_track.end()) return kNone;
    const auto& v = it->second;
    const auto& ev = *events;
    size_t best = kNone;
    for (size_t k = v.size(); k-- > 0;) {
      const Event& e = ev[v[k]];
      if (e.start > ts) continue;
      if (e.end >= ts) {
        best = v[k];
        break;  // sorted by start: the latest start containing ts
      }
      // Spans on one track may overlap; keep scanning earlier starts whose
      // end might still reach ts.
    }
    if (best != kNone) return best;
    for (size_t k = v.size(); k-- > 0;) {
      const Event& e = ev[v[k]];
      if (e.start <= ts && e.end >= ts) return v[k];
    }
    return kNone;
  }
};

}  // namespace

bool Profile::Consistent(std::string* why) const {
  auto fail = [&](const std::string& w) {
    if (why != nullptr) *why = w;
    return false;
  };
  auto unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (makespan < 0) return fail("negative makespan");
  if (!unit(compute_util)) return fail("compute_util outside [0,1]");
  if (!unit(wire_util)) return fail("wire_util outside [0,1]");
  if (!unit(exposed_comm_frac)) return fail("exposed_comm_frac outside [0,1]");
  for (const RankProfile& r : ranks) {
    if (!unit(r.compute_util) || !unit(r.exposed_comm_frac)) {
      return fail("rank " + std::to_string(r.pid) + " util outside [0,1]");
    }
    if (r.exposed_comm > r.comm_busy) {
      return fail("rank " + std::to_string(r.pid) + " exposed > comm busy");
    }
    if (r.compute_busy > makespan || r.comm_busy > makespan) {
      return fail("rank " + std::to_string(r.pid) + " busy > makespan");
    }
  }
  if (critical_path > critical_span) return fail("path durations > extent");
  if (critical_span > makespan) return fail("path extent > makespan");
  return true;
}

Profile BuildProfile(const TraceRecorder& rec) {
  Profile p;
  SpanGraph g(rec);
  const auto& ev = rec.events();
  if (g.spans.empty()) return p;

  p.t0 = ev[g.spans.front()].start;
  p.t1 = ev[g.spans.front()].end;
  for (size_t i : g.spans) {
    p.t0 = std::min(p.t0, ev[i].start);
    p.t1 = std::max(p.t1, ev[i].end);
  }
  p.makespan = p.t1 - p.t0;

  // ---- per-rank busy/exposed -------------------------------------------
  std::map<int, std::vector<Interval>> compute_iv, comm_iv;
  std::unordered_map<uint64_t, std::vector<Interval>> wire_iv;
  for (size_t i : g.spans) {
    const Event& e = ev[i];
    if (e.category == kCatCompute) {
      compute_iv[e.pid].emplace_back(e.start, e.end);
    } else if (e.category == kCatComm) {
      comm_iv[e.pid].emplace_back(e.start, e.end);
    } else {
      wire_iv[TrackKey(e.pid, e.tid)].emplace_back(e.start, e.end);
    }
  }
  std::map<int, RankProfile> ranks;
  for (auto& [pid, iv] : compute_iv) {
    RankProfile& r = ranks[pid];
    r.pid = pid;
    r.compute_busy = TotalLength(Merge(std::move(iv)));
  }
  for (auto& [pid, iv] : comm_iv) {
    RankProfile& r = ranks[pid];
    r.pid = pid;
    std::vector<Interval> comm = Merge(std::move(iv));
    r.comm_busy = TotalLength(comm);
    auto cit = compute_iv.find(pid);
    if (cit != compute_iv.end()) {
      // compute_iv was moved-from above; rebuild from spans is avoided by
      // re-merging the rank's compute spans here.
      std::vector<Interval> comp;
      for (size_t i : g.spans) {
        const Event& e = ev[i];
        if (e.pid == pid && e.category == kCatCompute) {
          comp.emplace_back(e.start, e.end);
        }
      }
      r.exposed_comm = SubtractLength(comm, Merge(std::move(comp)));
    } else {
      r.exposed_comm = r.comm_busy;
    }
  }
  double compute_sum = 0, exposed_sum = 0;
  int compute_n = 0, comm_n = 0;
  TimeNs exposed_ns_sum = 0;
  for (auto& [pid, r] : ranks) {
    if (p.makespan > 0) {
      r.compute_util = static_cast<double>(r.compute_busy) / p.makespan;
      r.exposed_comm_frac = static_cast<double>(r.exposed_comm) / p.makespan;
    }
    if (r.compute_busy > 0 || compute_iv.count(pid) != 0) {
      compute_sum += r.compute_util;
      ++compute_n;
    }
    if (r.comm_busy > 0 || comm_iv.count(pid) != 0) {
      exposed_sum += r.exposed_comm_frac;
      exposed_ns_sum += r.exposed_comm;
      ++comm_n;
    }
    p.ranks.push_back(r);
  }
  if (compute_n > 0) p.compute_util = compute_sum / compute_n;
  if (comm_n > 0) {
    p.exposed_comm_frac = exposed_sum / comm_n;
    p.exposed_comm = exposed_ns_sum / comm_n;
  }
  double wire_max = 0;
  for (auto& [key, iv] : wire_iv) {
    if (p.makespan <= 0) break;
    const double u =
        static_cast<double>(TotalLength(Merge(std::move(iv)))) / p.makespan;
    wire_max = std::max(wire_max, u);
  }
  p.wire_util = wire_max;

  // ---- critical-path walk ----------------------------------------------
  size_t cur = g.spans.front();
  for (size_t i : g.spans) {
    const Event& a = ev[i];
    const Event& b = ev[cur];
    if (std::tie(a.end, a.start, i) > std::tie(b.end, b.start, cur)) cur = i;
  }
  std::unordered_set<size_t> visited;
  std::vector<std::pair<size_t, bool>> chain;  // (span idx, linked via flow)
  bool via_flow = false;
  while (true) {
    visited.insert(cur);
    chain.emplace_back(cur, via_flow);
    const Event& c = ev[cur];
    size_t best = SpanGraph::kNone;
    bool best_flow = false;
    auto consider = [&](size_t cand, bool flow) {
      if (cand == SpanGraph::kNone || visited.count(cand) != 0) return;
      const Event& e = ev[cand];
      if (e.end > c.start) return;  // keep the chain non-overlapping
      if (best == SpanGraph::kNone) {
        best = cand;
        best_flow = flow;
        return;
      }
      const Event& b = ev[best];
      auto ka = std::tie(e.end, e.start, cand);
      auto kb = std::tie(b.end, b.start, best);
      if (ka > kb || (ka == kb && flow && !best_flow)) {
        best = cand;
        best_flow = flow;
      }
    };
    // Flow predecessors: arrows finishing inside this span.
    auto fit = g.finishes.find(TrackKey(c.pid, c.tid));
    if (fit != g.finishes.end()) {
      for (size_t fi : fit->second) {
        const Event& f = ev[fi];
        if (f.start < c.start || f.start > c.end) continue;
        auto sit = g.starts.find(f.flow);
        if (sit == g.starts.end()) continue;
        const Event& s = ev[sit->second];
        consider(g.SpanAt(s.pid, s.tid, s.start), /*flow=*/true);
      }
    }
    // Track predecessor: the latest earlier span on the same lane.
    auto tit = g.by_track.find(TrackKey(c.pid, c.tid));
    if (tit != g.by_track.end()) {
      size_t latest = SpanGraph::kNone;
      for (size_t i : tit->second) {
        const Event& e = ev[i];
        if (e.end > c.start || visited.count(i) != 0) continue;
        if (latest == SpanGraph::kNone ||
            std::tie(e.end, e.start, i) >
                std::tie(ev[latest].end, ev[latest].start, latest)) {
          latest = i;
        }
      }
      consider(latest, /*flow=*/false);
    }
    if (best == SpanGraph::kNone) break;
    via_flow = best_flow;
    cur = best;
  }
  std::reverse(chain.begin(), chain.end());
  for (size_t k = 0; k < chain.size(); ++k) {
    const Event& e = ev[chain[k].first];
    CriticalPathStep step;
    step.name = e.name;
    step.pid = e.pid;
    step.tid = e.tid;
    step.start = e.start;
    step.end = e.end;
    // chain[k].second records how step k was reached from its predecessor
    // during the backward walk, i.e. the link between k and k+1 after the
    // reverse; shift so via_flow marks the link to the *previous* step.
    step.via_flow = k > 0 && chain[k - 1].second;
    p.critical_path += step.dur();
    p.path.push_back(std::move(step));
  }
  if (!p.path.empty()) {
    p.critical_span = p.path.back().end - p.path.front().start;
  }
  return p;
}

std::string FormatCriticalPath(const Profile& p, std::size_t top_k) {
  std::ostringstream os;
  os << "critical path: " << p.path.size() << " steps, busy "
     << static_cast<double>(p.critical_path) / 1e3 << " us, extent "
     << static_cast<double>(p.critical_span) / 1e3 << " us, makespan "
     << static_cast<double>(p.makespan) / 1e3 << " us";
  if (p.path.empty()) {
    os << "\n";
    return os.str();
  }
  // The k longest steps, printed chronologically.
  std::vector<size_t> order(p.path.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return p.path[a].dur() > p.path[b].dur();
  });
  if (order.size() > top_k) order.resize(top_k);
  std::sort(order.begin(), order.end());
  for (size_t i : order) {
    const CriticalPathStep& s = p.path[i];
    os << "\n  [" << s.pid << "/" << s.tid << "] " << s.name
       << " ts=" << static_cast<double>(s.start) / 1e3
       << "us dur=" << static_cast<double>(s.dur()) / 1e3 << "us"
       << (s.via_flow ? " (flow)" : "");
  }
  os << "\n";
  return os.str();
}

int LongestFlowChain(const TraceRecorder& rec) {
  SpanGraph g(rec);
  const auto& ev = rec.events();
  // producer span -> consumer spans through each flow arrow.
  std::unordered_map<size_t, std::vector<size_t>> preds;  // consumer -> prods
  for (const auto& [track, fins] : g.finishes) {
    (void)track;
    for (size_t fi : fins) {
      const Event& f = ev[fi];
      auto sit = g.starts.find(f.flow);
      if (sit == g.starts.end()) continue;
      const Event& s = ev[sit->second];
      const size_t prod = g.SpanAt(s.pid, s.tid, s.start);
      const size_t cons = g.SpanAt(f.pid, f.tid, f.start);
      if (prod == SpanGraph::kNone || cons == SpanGraph::kNone) continue;
      if (prod == cons) continue;
      preds[cons].push_back(prod);
    }
  }
  std::unordered_map<size_t, int> memo;
  std::unordered_set<size_t> on_stack;
  // Depth (in arrows) ending at span i; cycles (impossible for causal
  // flows, guarded anyway) contribute 0.
  std::function<int(size_t)> depth = [&](size_t i) -> int {
    auto it = memo.find(i);
    if (it != memo.end()) return it->second;
    if (!on_stack.insert(i).second) return 0;
    int best = 0;
    auto pit = preds.find(i);
    if (pit != preds.end()) {
      for (size_t prod : pit->second) best = std::max(best, depth(prod) + 1);
    }
    on_stack.erase(i);
    memo[i] = best;
    return best;
  };
  int best = 0;
  for (const auto& [cons, v] : preds) {
    (void)v;
    best = std::max(best, depth(cons));
  }
  return best;
}

}  // namespace tilelink::sim
