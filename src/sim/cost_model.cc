#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>

namespace tilelink::sim {

double CostModel::GemmEfficiency(int bm, int bn) const {
  // Saturating curve in tile area, anchored at 128x256 -> ~0.55 (matches the
  // ~0.4-0.5 MFU cuBLAS reaches on the paper's narrow-N TP GEMM shards; see
  // EXPERIMENTS.md calibration notes).
  const double area = static_cast<double>(bm) * static_cast<double>(bn);
  const double full = 128.0 * 256.0;
  const double x = std::min(1.0, area / full);
  // sqrt ramp: 128x128 -> ~0.39, 64x64 -> ~0.19, 32x32 -> ~0.10 of peak.
  double eff = 0.55 * std::sqrt(x);
  // Very skinny tiles (either side < 64) pay an extra fragmentation penalty.
  if (bm < 64 || bn < 64) eff *= 0.8;
  return std::max(eff, 0.05);
}

TimeNs CostModel::GemmTileStep(int bm, int bn, int bk) const {
  const double flops = 2.0 * bm * bn * bk;
  const double per_sm_flops_per_ns =
      spec_.tensor_tflops * 1e3 / spec_.sms_per_device;  // TFLOP/s -> flop/ns
  const double eff = GemmEfficiency(bm, bn);
  const double t = flops / (per_sm_flops_per_ns * eff);
  return std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(t)));
}

TimeNs CostModel::GemmBlockTime(int bm, int bn, int k, int bk) const {
  const int steps = static_cast<int>((k + bk - 1) / bk);
  return BlockPrologue() + steps * GemmTileStep(bm, bn, bk) + BlockEpilogue();
}

TimeNs CostModel::FlashAttnTileStep(int bq, int bkv, int head_dim) const {
  // Two GEMMs (QK^T and PV) plus softmax bookkeeping (~15% overhead).
  const double flops = 2.0 * 2.0 * bq * bkv * head_dim * 1.15;
  const double per_sm_flops_per_ns =
      spec_.tensor_tflops * 1e3 / spec_.sms_per_device;
  const double eff = GemmEfficiency(bq, bkv) * 0.9;  // softmax interleave
  const double t = flops / (per_sm_flops_per_ns * eff);
  return std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(t)));
}

TimeNs CostModel::MemoryBound(uint64_t bytes, int sms_used) const {
  // Achievable bandwidth ramps with SM count, saturating at ~60% occupancy.
  const double frac = std::min(
      1.0, static_cast<double>(sms_used) / (0.6 * spec_.sms_per_device));
  const double bw = spec_.hbm_gbps * std::max(frac, 0.02);  // bytes/ns
  const double t = static_cast<double>(bytes) / bw;
  return std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(t)));
}

TimeNs CostModel::Elementwise(uint64_t bytes, int sms_used) const {
  return MemoryBound(bytes, sms_used);
}

TimeNs CostModel::GemmComputeTime(int64_t m, int64_t n, int64_t k, int bm,
                                  int bn, int bk, int sms) const {
  const int64_t tiles = ((m + bm - 1) / bm) * ((n + bn - 1) / bn);
  const int64_t waves = (tiles + sms - 1) / std::max(sms, 1);
  const int64_t k_steps = (k + bk - 1) / bk;
  // Persistent blocks: one prologue/epilogue per block, `waves` tiles each.
  return BlockPrologue() + waves * k_steps * GemmTileStep(bm, bn, bk) +
         BlockEpilogue();
}

TimeNs CostModel::NvlinkTransfer(uint64_t bytes) const {
  const double t = static_cast<double>(bytes) / spec_.nvlink_gbps;  // bytes/ns
  return spec_.nvlink_latency +
         std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(t)));
}

TimeNs CostModel::NicTransfer(uint64_t bytes) const {
  const double t = static_cast<double>(bytes) / spec_.nic_gbps;  // bytes/ns
  return spec_.nic_latency +
         std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(t)));
}

}  // namespace tilelink::sim
