#include "compute/gemm.h"

#include "common/math_utils.h"
#include "compute/tile_math.h"

namespace tilelink::compute {
namespace {

// One GEMM thread block: bills per-k-step MMA time, then performs the whole
// tile's math once (numerically identical, far fewer host ops).
sim::Coro GemmBlockBody(rt::BlockCtx bctx, Tensor a, Tensor b, Tensor c,
                        GemmOptions options, int64_t tiles_m, int64_t tiles_n,
                        int64_t num_tiles) {
  const sim::CostModel cost(bctx.dev->spec());
  const GemmTiling& t = options.tiling;
  const int64_t k = a.dim(1);
  const int64_t k_steps = CeilDiv<int64_t>(k, t.bk);
  // Persistent style: a block may process several output tiles.
  for (int64_t tile = bctx.block_id; tile < num_tiles; tile += bctx.grid) {
    const int64_t tid_m = tile / tiles_n;
    const int64_t tid_n = tile % tiles_n;
    co_await sim::Delay{cost.BlockPrologue()};
    const sim::TimeNs start = bctx.dev->sim()->Now();
    for (int64_t s = 0; s < k_steps; ++s) {
      co_await sim::Delay{cost.GemmTileStep(t.bm, t.bn, t.bk)};
    }
    co_await sim::Delay{cost.BlockEpilogue()};
    if (bctx.functional()) {
      GemmTile(a, b, c, tid_m * t.bm, t.bm, tid_n * t.bn, t.bn, 0, k,
               options.accumulate);
    }
    (void)start;
    (void)tiles_m;
  }
}

}  // namespace

std::shared_ptr<rt::KernelState> LaunchGemm(rt::RankCtx& /*ctx*/,
                                            rt::Stream& stream,
                                            const Tensor& a, const Tensor& b,
                                            Tensor c,
                                            const GemmOptions& options) {
  TL_CHECK_EQ(a.dim(0), c.dim(0));
  TL_CHECK_EQ(a.dim(1), b.dim(0));
  TL_CHECK_EQ(b.dim(1), c.dim(1));
  const GemmTiling& t = options.tiling;
  const int64_t tiles_m = CeilDiv<int64_t>(c.dim(0), t.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(c.dim(1), t.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  int grid = static_cast<int>(num_tiles);
  if (options.max_blocks > 0 && grid > options.max_blocks) {
    grid = options.max_blocks;
  }
  auto body = [=](rt::BlockCtx bctx) -> sim::Coro {
    return GemmBlockBody(bctx, a, b, c, options, tiles_m, tiles_n, num_tiles);
  };
  return stream.LaunchKernel(grid, body, options.name);
}

void GemmRef(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  GemmTile(a, b, c, 0, c.dim(0), 0, c.dim(1), 0, a.dim(1), accumulate);
}

sim::TimeNs AnalyticGemmTime(const sim::CostModel& cost, int64_t m, int64_t n,
                             int64_t k, const GemmTiling& tiling, int sms) {
  const int64_t tiles =
      CeilDiv(m, static_cast<int64_t>(tiling.bm)) *
      CeilDiv(n, static_cast<int64_t>(tiling.bn));
  const int64_t waves = CeilDiv(tiles, static_cast<int64_t>(sms));
  return waves *
         cost.GemmBlockTime(tiling.bm, tiling.bn, static_cast<int>(k),
                            tiling.bk);
}

}  // namespace tilelink::compute
