#include "compute/tile_math.h"

#include <algorithm>
#include <cmath>

namespace tilelink::compute {
namespace {

int64_t ClipLen(int64_t start, int64_t want, int64_t total) {
  return std::max<int64_t>(0, std::min(start + want, total) - start);
}

}  // namespace

void GemmTile(const Tensor& a, const Tensor& b, Tensor& c, int64_t m0,
              int64_t bm, int64_t n0, int64_t bn, int64_t k0, int64_t bk,
              bool accumulate) {
  const int64_t m_len = ClipLen(m0, bm, c.dim(0));
  const int64_t n_len = ClipLen(n0, bn, c.dim(1));
  const int64_t k_len = ClipLen(k0, bk, a.dim(1));
  for (int64_t m = 0; m < m_len; ++m) {
    for (int64_t n = 0; n < n_len; ++n) {
      float acc = accumulate ? c.at({m0 + m, n0 + n}) : 0.0f;
      for (int64_t k = 0; k < k_len; ++k) {
        acc += a.at({m0 + m, k0 + k}) * b.at({k0 + k, n0 + n});
      }
      c.at({m0 + m, n0 + n}) = acc;
    }
  }
}

void GemmTileGatherA(const Tensor& a, const std::vector<int>& row_index,
                     const Tensor& b, Tensor& c, int64_t m0, int64_t bm,
                     int64_t n0, int64_t bn, int64_t k0, int64_t bk,
                     bool accumulate) {
  const int64_t m_len = ClipLen(m0, bm, c.dim(0));
  const int64_t n_len = ClipLen(n0, bn, c.dim(1));
  const int64_t k_len = ClipLen(k0, bk, a.dim(1));
  for (int64_t m = 0; m < m_len; ++m) {
    const int src = row_index[static_cast<size_t>(m0 + m)];
    for (int64_t n = 0; n < n_len; ++n) {
      float acc = accumulate ? c.at({m0 + m, n0 + n}) : 0.0f;
      if (src >= 0) {
        for (int64_t k = 0; k < k_len; ++k) {
          acc += a.at({src, k0 + k}) * b.at({k0 + k, n0 + n});
        }
      }
      c.at({m0 + m, n0 + n}) = acc;
    }
  }
}

void FlashState::Reset(int64_t bq, int64_t head_dim) {
  row_max.assign(static_cast<size_t>(bq), -1e30f);
  row_sum.assign(static_cast<size_t>(bq), 0.0f);
  acc.assign(static_cast<size_t>(bq * head_dim), 0.0f);
}

void FlashAttnStep(const Tensor& q, const Tensor& k, const Tensor& v,
                   FlashState& state, int64_t q0, int64_t bq, int64_t kv0,
                   int64_t bkv, float scale) {
  const int64_t d = q.dim(1);
  const int64_t q_len = ClipLen(q0, bq, q.dim(0));
  const int64_t kv_len = ClipLen(kv0, bkv, k.dim(0));
  std::vector<float> scores(static_cast<size_t>(kv_len));
  for (int64_t i = 0; i < q_len; ++i) {
    float tile_max = -1e30f;
    for (int64_t j = 0; j < kv_len; ++j) {
      float s = 0.0f;
      for (int64_t x = 0; x < d; ++x) {
        s += q.at({q0 + i, x}) * k.at({kv0 + j, x});
      }
      s *= scale;
      scores[static_cast<size_t>(j)] = s;
      tile_max = std::max(tile_max, s);
    }
    const size_t si = static_cast<size_t>(i);
    const float new_max = std::max(state.row_max[si], tile_max);
    const float correction = std::exp(state.row_max[si] - new_max);
    state.row_sum[si] *= correction;
    for (int64_t x = 0; x < d; ++x) {
      state.acc[static_cast<size_t>(i * d + x)] *= correction;
    }
    for (int64_t j = 0; j < kv_len; ++j) {
      const float p = std::exp(scores[static_cast<size_t>(j)] - new_max);
      state.row_sum[si] += p;
      for (int64_t x = 0; x < d; ++x) {
        state.acc[static_cast<size_t>(i * d + x)] += p * v.at({kv0 + j, x});
      }
    }
    state.row_max[si] = new_max;
  }
}

void FlashFinalize(const FlashState& state, Tensor& out, int64_t q0,
                   int64_t bq) {
  const int64_t d = out.dim(1);
  const int64_t q_len = ClipLen(q0, bq, out.dim(0));
  for (int64_t i = 0; i < q_len; ++i) {
    const float denom = state.row_sum[static_cast<size_t>(i)];
    const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
    for (int64_t x = 0; x < d; ++x) {
      out.at({q0 + i, x}) = state.acc[static_cast<size_t>(i * d + x)] * inv;
    }
  }
}

float Silu(float x) { return x / (1.0f + std::exp(-x)); }

float GeluTanh(float x) {
  const float c = 0.7978845608f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

void SiluMulTile(const Tensor& a, const Tensor& b, Tensor& out, int64_t r0,
                 int64_t rows, int64_t c0, int64_t cols) {
  const int64_t r_len = ClipLen(r0, rows, out.dim(0));
  const int64_t c_len = ClipLen(c0, cols, out.dim(1));
  for (int64_t r = 0; r < r_len; ++r) {
    for (int64_t c = 0; c < c_len; ++c) {
      out.at({r0 + r, c0 + c}) =
          Silu(a.at({r0 + r, c0 + c})) * b.at({r0 + r, c0 + c});
    }
  }
}

void GeluMulTile(const Tensor& a, const Tensor& b, Tensor& out, int64_t r0,
                 int64_t rows, int64_t c0, int64_t cols) {
  const int64_t r_len = ClipLen(r0, rows, out.dim(0));
  const int64_t c_len = ClipLen(c0, cols, out.dim(1));
  for (int64_t r = 0; r < r_len; ++r) {
    for (int64_t c = 0; c < c_len; ++c) {
      out.at({r0 + r, c0 + c}) =
          GeluTanh(a.at({r0 + r, c0 + c})) * b.at({r0 + r, c0 + c});
    }
  }
}

void AddTile(const Tensor& in, Tensor& out, int64_t r0, int64_t rows,
             int64_t c0, int64_t cols, bool accumulate) {
  const int64_t r_len = ClipLen(r0, rows, out.dim(0));
  const int64_t c_len = ClipLen(c0, cols, out.dim(1));
  for (int64_t r = 0; r < r_len; ++r) {
    for (int64_t c = 0; c < c_len; ++c) {
      const float v = in.at({r0 + r, c0 + c});
      if (accumulate) {
        out.at({r0 + r, c0 + c}) += v;
      } else {
        out.at({r0 + r, c0 + c}) = v;
      }
    }
  }
}

void ScaleRowsTile(Tensor& t, const std::vector<float>& weights, int64_t r0,
                   int64_t rows, int64_t c0, int64_t cols) {
  const int64_t r_len = ClipLen(r0, rows, t.dim(0));
  const int64_t c_len = ClipLen(c0, cols, t.dim(1));
  for (int64_t r = 0; r < r_len; ++r) {
    const float w = weights[static_cast<size_t>(r0 + r)];
    for (int64_t c = 0; c < c_len; ++c) {
      t.at({r0 + r, c0 + c}) *= w;
    }
  }
}

}  // namespace tilelink::compute
