// Memory-bound utility kernels: elementwise activations, gather/scatter of
// token rows, top-k reduce, and plain device-local copies. These model the
// standalone epilogue/prologue kernels that unfused baselines must launch
// (and pay launch latency + HBM traffic for), which fused approaches avoid.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compute/moe_routing.h"
#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::compute {

enum class Activation { kSiluMul, kGeluMul };

// out = act(a) * b, elementwise; all [M, N].
std::shared_ptr<rt::KernelState> LaunchActivationMul(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& a, const Tensor& b,
    Tensor out, Activation act, const std::string& name = "act_mul");

// Host reference for the same op.
void ActivationMulRef(const Tensor& a, const Tensor& b, Tensor& out,
                      Activation act);

// dst[i, :] = src[row_index[i], :] for i in [0, dst.M). Used by the unfused
// MoE baseline to materialize sorted activations.
std::shared_ptr<rt::KernelState> LaunchGatherRows(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& src, Tensor dst,
    std::vector<int> row_index, const std::string& name = "gather_rows");

// dst[row_index[i], :] = src[i, :].
std::shared_ptr<rt::KernelState> LaunchScatterRows(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& src, Tensor dst,
    std::vector<int> row_index, const std::string& name = "scatter_rows");

// out[t, :] = sum_k weights[t*topk+k] * in[t*topk+k, :] (MoE combine).
std::shared_ptr<rt::KernelState> LaunchTopkReduce(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& in, Tensor out,
    std::vector<float> weights, int topk,
    const std::string& name = "topk_reduce");

void TopkReduceRef(const Tensor& in, Tensor& out,
                   const std::vector<float>& weights, int topk);

// out (+)= in, both [M, N] on the same device (SM-driven local add).
std::shared_ptr<rt::KernelState> LaunchAddInto(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& in, Tensor out,
    const std::string& name = "add_into");

}  // namespace tilelink::compute
