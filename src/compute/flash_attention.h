// FlashAttention kernel on the simulated device plus an eager host reference.
// The same kernel body serves both the high-efficiency flash path and the
// de-rated "framework eager attention" path used by the Torch baseline in
// Figure 10 (throughput_factor < 1 models non-fused softmax stages).
#pragma once

#include <memory>
#include <string>

#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::compute {

struct FlashOptions {
  int block_q = 128;
  int block_kv = 128;
  float scale = 0.0f;  // 0 -> 1/sqrt(head_dim)
  // Relative throughput vs. a tuned flash kernel: 1.0 for flash, ~0.2 for an
  // eager multi-kernel softmax pipeline.
  double throughput_factor = 1.0;
  int max_blocks = 0;
  std::string name = "flash_attn";
};

// q: [BH, Sq, D], k/v: [BH, Skv, D], out: [BH, Sq, D].
std::shared_ptr<rt::KernelState> LaunchFlashAttention(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& q, const Tensor& k,
    const Tensor& v, Tensor out, const FlashOptions& options = {});

// Host reference: eager softmax(q k^T / sqrt(d)) v per head.
void AttentionRef(const Tensor& q, const Tensor& k, const Tensor& v,
                  Tensor& out, float scale = 0.0f);

}  // namespace tilelink::compute
