// MoE top-k routing and the derived sorted-by-expert layout. Routing is the
// *runtime dynamic logic* that fills TileLink's dynamic-mapping lookup tables
// (paper §4.1): which tokens each expert tile consumes, hence which source
// ranks / channels it must wait on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace tilelink::compute {

struct MoeRouting {
  int64_t num_tokens = 0;
  int num_experts = 0;
  int topk = 0;

  // Per (token, slot): chosen expert and combine weight.
  std::vector<int> topk_ids;        // [num_tokens * topk]
  std::vector<float> topk_weights;  // [num_tokens * topk], sums to 1 per token

  // Sorted layout: slot indices (token * topk + slot) grouped by expert.
  std::vector<int> sorted_slots;    // [num_tokens * topk]
  std::vector<int> expert_offsets;  // [num_experts + 1] prefix sums

  int64_t total_slots() const { return num_tokens * topk; }
  int expert_count(int e) const {
    return expert_offsets[static_cast<size_t>(e) + 1] -
           expert_offsets[static_cast<size_t>(e)];
  }
  int token_of_sorted(int64_t sorted_pos) const {
    return sorted_slots[static_cast<size_t>(sorted_pos)] / topk;
  }

  // Validates internal invariants (offsets monotone, permutation property).
  void CheckValid() const;
};

// Deterministic random routing with distinct experts per token and softmax-
// normalized weights — used in timing-only mode and workload generators.
MoeRouting RandomRouting(int64_t num_tokens, int num_experts, int topk,
                         Rng& rng);

// Routing from gate logits [num_tokens, num_experts] (functional mode).
MoeRouting RoutingFromLogits(const Tensor& logits, int topk);

// Per-expert output-tile block descriptors for grouped GEMM: one descriptor
// per (expert row-chunk, n-tile) pair.
struct GroupBlock {
  int expert;
  int64_t sorted_row_start;  // offset into sorted_slots
  int rows;                  // <= block_m
  int64_t n_start;
  int n_cols;                // <= block_n
};

std::vector<GroupBlock> MakeGroupBlocks(const MoeRouting& routing, int64_t n,
                                        int block_m, int block_n);

}  // namespace tilelink::compute
