#include "compute/memops.h"

#include "common/math_utils.h"
#include "compute/tile_math.h"

namespace tilelink::compute {
namespace {

constexpr int kRowsPerBlock = 64;

// Generic memory-bound row-chunk kernel: bills HBM time for `bytes_per_row`
// traffic and runs `math(row0, rows)` over its chunk in functional mode.
std::shared_ptr<rt::KernelState> LaunchRowKernel(
    rt::Stream& stream, int64_t total_rows, uint64_t bytes_per_row,
    std::function<void(int64_t, int64_t)> math, const std::string& name) {
  rt::Device* dev = stream.device();
  const int64_t chunks = std::max<int64_t>(1, CeilDiv<int64_t>(total_rows, kRowsPerBlock));
  const int grid = static_cast<int>(
      std::min<int64_t>(chunks, dev->spec().sms_per_device));
  auto body = [=](rt::BlockCtx bctx) -> sim::Coro {
    const sim::CostModel cost(bctx.dev->spec());
    for (int64_t chunk = bctx.block_id; chunk < chunks; chunk += bctx.grid) {
      const int64_t row0 = chunk * kRowsPerBlock;
      const int64_t rows = std::min<int64_t>(kRowsPerBlock, total_rows - row0);
      if (rows <= 0) continue;
      co_await sim::Delay{cost.MemoryBound(
          bytes_per_row * static_cast<uint64_t>(rows), bctx.grid)};
      if (bctx.functional() && math) {
        math(row0, rows);
      }
    }
  };
  return stream.LaunchKernel(grid, body, name);
}

}  // namespace

std::shared_ptr<rt::KernelState> LaunchActivationMul(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& a, const Tensor& b,
    Tensor out, Activation act, const std::string& name) {
  TL_CHECK(a.shape() == b.shape());
  TL_CHECK(a.shape() == out.shape());
  const int64_t n = out.dim(1);
  // Traffic: read a + read b + write out.
  const uint64_t bytes_per_row =
      3ULL * static_cast<uint64_t>(n) * DTypeSize(out.dtype());
  auto math = [a, b, out, act, n](int64_t row0, int64_t rows) mutable {
    if (act == Activation::kSiluMul) {
      SiluMulTile(a, b, out, row0, rows, 0, n);
    } else {
      GeluMulTile(a, b, out, row0, rows, 0, n);
    }
  };
  return LaunchRowKernel(stream, out.dim(0), bytes_per_row, math, name);
}

void ActivationMulRef(const Tensor& a, const Tensor& b, Tensor& out,
                      Activation act) {
  if (act == Activation::kSiluMul) {
    SiluMulTile(a, b, out, 0, out.dim(0), 0, out.dim(1));
  } else {
    GeluMulTile(a, b, out, 0, out.dim(0), 0, out.dim(1));
  }
}

std::shared_ptr<rt::KernelState> LaunchGatherRows(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& src, Tensor dst,
    std::vector<int> row_index, const std::string& name) {
  TL_CHECK_EQ(static_cast<int64_t>(row_index.size()), dst.dim(0));
  TL_CHECK_EQ(src.dim(1), dst.dim(1));
  const int64_t n = dst.dim(1);
  const uint64_t bytes_per_row =
      2ULL * static_cast<uint64_t>(n) * DTypeSize(dst.dtype());
  auto idx = std::make_shared<std::vector<int>>(std::move(row_index));
  auto math = [src, dst, idx, n](int64_t row0, int64_t rows) mutable {
    for (int64_t r = row0; r < row0 + rows; ++r) {
      const int s = (*idx)[static_cast<size_t>(r)];
      for (int64_t c = 0; c < n; ++c) {
        dst.at({r, c}) = s >= 0 ? src.at({s, c}) : 0.0f;
      }
    }
  };
  return LaunchRowKernel(stream, dst.dim(0), bytes_per_row, math, name);
}

std::shared_ptr<rt::KernelState> LaunchScatterRows(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& src, Tensor dst,
    std::vector<int> row_index, const std::string& name) {
  TL_CHECK_EQ(static_cast<int64_t>(row_index.size()), src.dim(0));
  TL_CHECK_EQ(src.dim(1), dst.dim(1));
  const int64_t n = src.dim(1);
  const uint64_t bytes_per_row =
      2ULL * static_cast<uint64_t>(n) * DTypeSize(src.dtype());
  auto idx = std::make_shared<std::vector<int>>(std::move(row_index));
  auto math = [src, dst, idx, n](int64_t row0, int64_t rows) mutable {
    for (int64_t r = row0; r < row0 + rows; ++r) {
      const int d = (*idx)[static_cast<size_t>(r)];
      if (d < 0) continue;
      for (int64_t c = 0; c < n; ++c) {
        dst.at({d, c}) = src.at({r, c});
      }
    }
  };
  return LaunchRowKernel(stream, src.dim(0), bytes_per_row, math, name);
}

std::shared_ptr<rt::KernelState> LaunchTopkReduce(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& in, Tensor out,
    std::vector<float> weights, int topk, const std::string& name) {
  TL_CHECK_EQ(in.dim(0), out.dim(0) * topk);
  TL_CHECK_EQ(in.dim(1), out.dim(1));
  const int64_t n = out.dim(1);
  const uint64_t bytes_per_row =
      (static_cast<uint64_t>(topk) + 1) * static_cast<uint64_t>(n) *
      DTypeSize(out.dtype());
  auto w = std::make_shared<std::vector<float>>(std::move(weights));
  auto math = [in, out, w, topk, n](int64_t row0, int64_t rows) mutable {
    for (int64_t t = row0; t < row0 + rows; ++t) {
      for (int64_t c = 0; c < n; ++c) {
        float acc = 0.0f;
        for (int kk = 0; kk < topk; ++kk) {
          const int64_t slot = t * topk + kk;
          acc += (*w)[static_cast<size_t>(slot)] * in.at({slot, c});
        }
        out.at({t, c}) = acc;
      }
    }
  };
  return LaunchRowKernel(stream, out.dim(0), bytes_per_row, math, name);
}

void TopkReduceRef(const Tensor& in, Tensor& out,
                   const std::vector<float>& weights, int topk) {
  for (int64_t t = 0; t < out.dim(0); ++t) {
    for (int64_t c = 0; c < out.dim(1); ++c) {
      float acc = 0.0f;
      for (int kk = 0; kk < topk; ++kk) {
        const int64_t slot = t * topk + kk;
        acc += weights[static_cast<size_t>(slot)] * in.at({slot, c});
      }
      out.at({t, c}) = acc;
    }
  }
}

std::shared_ptr<rt::KernelState> LaunchAddInto(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& in, Tensor out,
    const std::string& name) {
  TL_CHECK(in.shape() == out.shape());
  const int64_t n = out.dim(1);
  const uint64_t bytes_per_row =
      3ULL * static_cast<uint64_t>(n) * DTypeSize(out.dtype());
  auto math = [in, out, n](int64_t row0, int64_t rows) mutable {
    for (int64_t r = row0; r < row0 + rows; ++r) {
      for (int64_t c = 0; c < n; ++c) {
        out.at({r, c}) += in.at({r, c});
      }
    }
  };
  return LaunchRowKernel(stream, out.dim(0), bytes_per_row, math, name);
}

}  // namespace tilelink::compute
