// Pure tile-granularity math (no simulated time). These are the functional
// payloads executed by kernel blocks when the world runs in functional mode;
// baselines and TileLink-generated kernels share them, so numerics are
// identical across methods by construction and any mismatch in tests points
// at scheduling/synchronization bugs, not math drift.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tilelink::compute {

// C[m0:m0+bm, n0:n0+bn] (+)= A[m0:m0+bm, k0:k0+bk] @ B[k0:k0+bk, n0:n0+bn].
// Tile bounds are clipped to tensor shapes; `accumulate=false` overwrites.
void GemmTile(const Tensor& a, const Tensor& b, Tensor& c, int64_t m0,
              int64_t bm, int64_t n0, int64_t bn, int64_t k0, int64_t bk,
              bool accumulate);

// Like GemmTile but A rows are gathered through `row_index`: logical row m of
// the tile reads physical row row_index[m] of `a` (vLLM-style fused gather).
// A row index of -1 produces zeros (padding).
void GemmTileGatherA(const Tensor& a, const std::vector<int>& row_index,
                     const Tensor& b, Tensor& c, int64_t m0, int64_t bm,
                     int64_t n0, int64_t bn, int64_t k0, int64_t bk,
                     bool accumulate);

// Online-softmax flash-attention state for one (bq x head_dim) query block.
struct FlashState {
  std::vector<float> row_max;  // m_i
  std::vector<float> row_sum;  // l_i
  std::vector<float> acc;      // [bq x head_dim] un-normalized output

  void Reset(int64_t bq, int64_t head_dim);
};

// One flash step: scores = Q[q0:q0+bq] K[kv0:kv0+bkv]^T * scale, online
// softmax update into state. q/k/v are [S, D] row-major views for one head.
void FlashAttnStep(const Tensor& q, const Tensor& k, const Tensor& v,
                   FlashState& state, int64_t q0, int64_t bq, int64_t kv0,
                   int64_t bkv, float scale);

// Writes normalized flash output into out[q0:q0+bq, :].
void FlashFinalize(const FlashState& state, Tensor& out, int64_t q0,
                   int64_t bq);

// out = silu(a) * b, elementwise over [r0, r0+rows) x [c0, c0+cols) tiles.
void SiluMulTile(const Tensor& a, const Tensor& b, Tensor& out, int64_t r0,
                 int64_t rows, int64_t c0, int64_t cols);
// out = gelu(a) * b (tanh approximation).
void GeluMulTile(const Tensor& a, const Tensor& b, Tensor& out, int64_t r0,
                 int64_t rows, int64_t c0, int64_t cols);

// out[r, c] (+)= in[r, c] over a tile.
void AddTile(const Tensor& in, Tensor& out, int64_t r0, int64_t rows,
             int64_t c0, int64_t cols, bool accumulate);

// Scales a row range by per-row weights (MoE combine).
void ScaleRowsTile(Tensor& t, const std::vector<float>& weights, int64_t r0,
                   int64_t rows, int64_t c0, int64_t cols);

float Silu(float x);
float GeluTanh(float x);

}  // namespace tilelink::compute
