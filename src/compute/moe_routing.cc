#include "compute/moe_routing.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace tilelink::compute {
namespace {

void BuildSorted(MoeRouting& r) {
  const int64_t slots = r.total_slots();
  std::vector<int> counts(static_cast<size_t>(r.num_experts), 0);
  for (int64_t i = 0; i < slots; ++i) {
    counts[static_cast<size_t>(r.topk_ids[static_cast<size_t>(i)])]++;
  }
  r.expert_offsets.assign(static_cast<size_t>(r.num_experts) + 1, 0);
  for (int e = 0; e < r.num_experts; ++e) {
    r.expert_offsets[static_cast<size_t>(e) + 1] =
        r.expert_offsets[static_cast<size_t>(e)] + counts[static_cast<size_t>(e)];
  }
  r.sorted_slots.assign(static_cast<size_t>(slots), 0);
  std::vector<int> cursor(r.expert_offsets.begin(), r.expert_offsets.end() - 1);
  for (int64_t i = 0; i < slots; ++i) {
    const int e = r.topk_ids[static_cast<size_t>(i)];
    r.sorted_slots[static_cast<size_t>(cursor[static_cast<size_t>(e)]++)] =
        static_cast<int>(i);
  }
}

}  // namespace

void MoeRouting::CheckValid() const {
  TL_CHECK_EQ(static_cast<int64_t>(topk_ids.size()), total_slots());
  TL_CHECK_EQ(static_cast<int64_t>(sorted_slots.size()), total_slots());
  TL_CHECK_EQ(static_cast<int>(expert_offsets.size()), num_experts + 1);
  TL_CHECK_EQ(expert_offsets.front(), 0);
  TL_CHECK_EQ(expert_offsets.back(), static_cast<int>(total_slots()));
  std::vector<bool> seen(static_cast<size_t>(total_slots()), false);
  for (int e = 0; e < num_experts; ++e) {
    TL_CHECK_LE(expert_offsets[static_cast<size_t>(e)],
                expert_offsets[static_cast<size_t>(e) + 1]);
    for (int i = expert_offsets[static_cast<size_t>(e)];
         i < expert_offsets[static_cast<size_t>(e) + 1]; ++i) {
      const int slot = sorted_slots[static_cast<size_t>(i)];
      TL_CHECK(!seen[static_cast<size_t>(slot)]);
      seen[static_cast<size_t>(slot)] = true;
      TL_CHECK_EQ(topk_ids[static_cast<size_t>(slot)], e);
    }
  }
}

MoeRouting RandomRouting(int64_t num_tokens, int num_experts, int topk,
                         Rng& rng) {
  TL_CHECK_LE(topk, num_experts);
  MoeRouting r;
  r.num_tokens = num_tokens;
  r.num_experts = num_experts;
  r.topk = topk;
  r.topk_ids.reserve(static_cast<size_t>(num_tokens * topk));
  r.topk_weights.reserve(static_cast<size_t>(num_tokens * topk));
  std::vector<int> experts(static_cast<size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e) experts[static_cast<size_t>(e)] = e;
  for (int64_t t = 0; t < num_tokens; ++t) {
    // Partial Fisher-Yates: first `topk` entries become the chosen experts.
    for (int k = 0; k < topk; ++k) {
      const size_t j = static_cast<size_t>(k) +
                       static_cast<size_t>(rng.NextU64(
                           static_cast<uint64_t>(num_experts - k)));
      std::swap(experts[static_cast<size_t>(k)], experts[j]);
    }
    float total = 0.0f;
    std::vector<float> raw(static_cast<size_t>(topk));
    for (int k = 0; k < topk; ++k) {
      raw[static_cast<size_t>(k)] = 0.25f + rng.NextFloat();
      total += raw[static_cast<size_t>(k)];
    }
    for (int k = 0; k < topk; ++k) {
      r.topk_ids.push_back(experts[static_cast<size_t>(k)]);
      r.topk_weights.push_back(raw[static_cast<size_t>(k)] / total);
    }
  }
  BuildSorted(r);
  return r;
}

MoeRouting RoutingFromLogits(const Tensor& logits, int topk) {
  MoeRouting r;
  r.num_tokens = logits.dim(0);
  r.num_experts = static_cast<int>(logits.dim(1));
  r.topk = topk;
  TL_CHECK_LE(topk, r.num_experts);
  for (int64_t t = 0; t < r.num_tokens; ++t) {
    std::vector<std::pair<float, int>> scored;
    scored.reserve(static_cast<size_t>(r.num_experts));
    for (int e = 0; e < r.num_experts; ++e) {
      scored.emplace_back(logits.at({t, e}), e);
    }
    std::partial_sort(scored.begin(), scored.begin() + topk, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;  // deterministic ties
                      });
    float denom = 0.0f;
    const float max_logit = scored[0].first;
    std::vector<float> expw(static_cast<size_t>(topk));
    for (int k = 0; k < topk; ++k) {
      expw[static_cast<size_t>(k)] =
          std::exp(scored[static_cast<size_t>(k)].first - max_logit);
      denom += expw[static_cast<size_t>(k)];
    }
    for (int k = 0; k < topk; ++k) {
      r.topk_ids.push_back(scored[static_cast<size_t>(k)].second);
      r.topk_weights.push_back(expw[static_cast<size_t>(k)] / denom);
    }
  }
  BuildSorted(r);
  return r;
}

std::vector<GroupBlock> MakeGroupBlocks(const MoeRouting& routing, int64_t n,
                                        int block_m, int block_n) {
  std::vector<GroupBlock> blocks;
  const int64_t n_tiles = CeilDiv(n, static_cast<int64_t>(block_n));
  for (int e = 0; e < routing.num_experts; ++e) {
    const int64_t lo = routing.expert_offsets[static_cast<size_t>(e)];
    const int64_t hi = routing.expert_offsets[static_cast<size_t>(e) + 1];
    for (int64_t row = lo; row < hi; row += block_m) {
      const int rows = static_cast<int>(std::min<int64_t>(block_m, hi - row));
      for (int64_t tn = 0; tn < n_tiles; ++tn) {
        const int cols = static_cast<int>(
            std::min<int64_t>(block_n, n - tn * block_n));
        blocks.push_back(GroupBlock{e, row, rows, tn * block_n, cols});
      }
    }
  }
  return blocks;
}

}  // namespace tilelink::compute
