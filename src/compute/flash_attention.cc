#include "compute/flash_attention.h"

#include <cmath>

#include "common/math_utils.h"
#include "compute/tile_math.h"

namespace tilelink::compute {
namespace {

sim::Coro FlashBlockBody(rt::BlockCtx bctx, Tensor q, Tensor k, Tensor v,
                         Tensor out, FlashOptions options, int64_t q_tiles,
                         int64_t num_tiles) {
  const sim::CostModel cost(bctx.dev->spec());
  const int64_t head_dim = q.dim(2);
  const int64_t skv = k.dim(1);
  const int64_t kv_steps = CeilDiv<int64_t>(skv, options.block_kv);
  const float scale = options.scale != 0.0f
                          ? options.scale
                          : 1.0f / std::sqrt(static_cast<float>(head_dim));
  const sim::TimeNs step = static_cast<sim::TimeNs>(
      cost.FlashAttnTileStep(options.block_q, options.block_kv,
                             static_cast<int>(head_dim)) /
      options.throughput_factor);
  FlashState state;
  for (int64_t tile = bctx.block_id; tile < num_tiles; tile += bctx.grid) {
    const int64_t head = tile / q_tiles;
    const int64_t q0 = (tile % q_tiles) * options.block_q;
    co_await sim::Delay{cost.BlockPrologue()};
    const bool functional = bctx.functional();
    Tensor qh, kh, vh, oh;
    if (functional) {
      qh = q.Select(0, head);
      kh = k.Select(0, head);
      vh = v.Select(0, head);
      oh = out.Select(0, head);
      state.Reset(options.block_q, head_dim);
    }
    for (int64_t s = 0; s < kv_steps; ++s) {
      co_await sim::Delay{step};
      if (functional) {
        FlashAttnStep(qh, kh, vh, state, q0, options.block_q,
                      s * options.block_kv, options.block_kv, scale);
      }
    }
    co_await sim::Delay{cost.BlockEpilogue()};
    if (functional) {
      FlashFinalize(state, oh, q0, options.block_q);
    }
  }
}

}  // namespace

std::shared_ptr<rt::KernelState> LaunchFlashAttention(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& q, const Tensor& k,
    const Tensor& v, Tensor out, const FlashOptions& options) {
  TL_CHECK_EQ(q.ndim(), 3);
  TL_CHECK_EQ(k.ndim(), 3);
  TL_CHECK_EQ(q.dim(0), k.dim(0));
  TL_CHECK_EQ(q.dim(2), k.dim(2));
  TL_CHECK(k.shape() == v.shape());
  TL_CHECK(q.shape() == out.shape());
  const int64_t q_tiles = CeilDiv<int64_t>(q.dim(1), options.block_q);
  const int64_t num_tiles = q.dim(0) * q_tiles;
  int grid = static_cast<int>(num_tiles);
  if (options.max_blocks > 0 && grid > options.max_blocks) {
    grid = options.max_blocks;
  }
  auto body = [=](rt::BlockCtx bctx) -> sim::Coro {
    return FlashBlockBody(bctx, q, k, v, out, options, q_tiles, num_tiles);
  };
  return stream.LaunchKernel(grid, body, options.name);
}

void AttentionRef(const Tensor& q, const Tensor& k, const Tensor& v,
                  Tensor& out, float scale) {
  const int64_t bh = q.dim(0);
  const int64_t sq = q.dim(1);
  const int64_t skv = k.dim(1);
  const int64_t d = q.dim(2);
  const float sc =
      scale != 0.0f ? scale : 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<float> scores(static_cast<size_t>(skv));
  for (int64_t h = 0; h < bh; ++h) {
    for (int64_t i = 0; i < sq; ++i) {
      float max_s = -1e30f;
      for (int64_t j = 0; j < skv; ++j) {
        float s = 0.0f;
        for (int64_t x = 0; x < d; ++x) {
          s += q.at({h, i, x}) * k.at({h, j, x});
        }
        s *= sc;
        scores[static_cast<size_t>(j)] = s;
        max_s = std::max(max_s, s);
      }
      float denom = 0.0f;
      for (int64_t j = 0; j < skv; ++j) {
        scores[static_cast<size_t>(j)] =
            std::exp(scores[static_cast<size_t>(j)] - max_s);
        denom += scores[static_cast<size_t>(j)];
      }
      for (int64_t x = 0; x < d; ++x) {
        float acc = 0.0f;
        for (int64_t j = 0; j < skv; ++j) {
          acc += scores[static_cast<size_t>(j)] * v.at({h, j, x});
        }
        out.at({h, i, x}) = acc / denom;
      }
    }
  }
}

}  // namespace tilelink::compute
