#include "compute/group_gemm.h"

#include "common/math_utils.h"

namespace tilelink::compute {
namespace {

// Math for one group block: gather token rows, GEMM against the expert's
// weights, scatter into slot-order output rows.
void GroupBlockMath(const Tensor& tokens, const Tensor& weights, Tensor& out,
                    const MoeRouting& routing, const GroupBlock& gb) {
  const int64_t k = tokens.dim(1);
  const Tensor w = weights.Select(0, gb.expert);  // [K, N]
  for (int r = 0; r < gb.rows; ++r) {
    const int slot =
        routing.sorted_slots[static_cast<size_t>(gb.sorted_row_start + r)];
    const int token = slot / routing.topk;
    for (int c = 0; c < gb.n_cols; ++c) {
      float acc = 0.0f;
      for (int64_t x = 0; x < k; ++x) {
        acc += tokens.at({token, x}) * w.at({x, gb.n_start + c});
      }
      out.at({slot, gb.n_start + c}) = acc;
    }
  }
}

sim::Coro GroupGemmBlockBody(rt::BlockCtx bctx, Tensor tokens, Tensor weights,
                             Tensor out, std::shared_ptr<MoeRouting> routing,
                             std::shared_ptr<std::vector<GroupBlock>> blocks,
                             GroupGemmOptions options) {
  const sim::CostModel cost(bctx.dev->spec());
  const GemmTiling& t = options.tiling;
  const int64_t k = tokens.dim(1);
  const int64_t k_steps = CeilDiv<int64_t>(k, t.bk);
  const sim::TimeNs step = static_cast<sim::TimeNs>(
      cost.GemmTileStep(t.bm, t.bn, t.bk) * options.fused_gather_overhead);
  for (size_t tile = static_cast<size_t>(bctx.block_id); tile < blocks->size();
       tile += static_cast<size_t>(bctx.grid)) {
    co_await sim::Delay{cost.BlockPrologue()};
    for (int64_t s = 0; s < k_steps; ++s) {
      co_await sim::Delay{step};
    }
    co_await sim::Delay{cost.BlockEpilogue()};
    if (bctx.functional()) {
      GroupBlockMath(tokens, weights, out, *routing, (*blocks)[tile]);
    }
  }
}

}  // namespace

std::shared_ptr<rt::KernelState> LaunchGroupGemmFused(
    rt::RankCtx& /*ctx*/, rt::Stream& stream, const Tensor& tokens,
    const Tensor& weights, Tensor out, const MoeRouting& routing,
    const GroupGemmOptions& options) {
  TL_CHECK_EQ(weights.ndim(), 3);
  TL_CHECK_EQ(weights.dim(0), routing.num_experts);
  TL_CHECK_EQ(tokens.dim(1), weights.dim(1));
  TL_CHECK_EQ(out.dim(0), routing.total_slots());
  TL_CHECK_EQ(out.dim(1), weights.dim(2));
  auto blocks = std::make_shared<std::vector<GroupBlock>>(MakeGroupBlocks(
      routing, out.dim(1), options.tiling.bm, options.tiling.bn));
  if (blocks->empty()) {
    blocks->push_back(GroupBlock{0, 0, 0, 0, 0});  // degenerate: empty launch
  }
  int grid = static_cast<int>(blocks->size());
  if (options.max_blocks > 0 && grid > options.max_blocks) {
    grid = options.max_blocks;
  }
  // Copy: the kernel may outlive the caller's routing object.
  auto routing_copy = std::make_shared<MoeRouting>(routing);
  auto body = [=](rt::BlockCtx bctx) -> sim::Coro {
    return GroupGemmBlockBody(bctx, tokens, weights, out, routing_copy,
                              blocks, options);
  };
  return stream.LaunchKernel(grid, body, options.name);
}

void GroupGemmRef(const Tensor& tokens, const Tensor& weights, Tensor& out,
                  const MoeRouting& routing) {
  const int64_t k = tokens.dim(1);
  const int64_t n = out.dim(1);
  for (int64_t slot = 0; slot < routing.total_slots(); ++slot) {
    const int e = routing.topk_ids[static_cast<size_t>(slot)];
    const int token = static_cast<int>(slot) / routing.topk;
    const Tensor w = weights.Select(0, e);
    for (int64_t c = 0; c < n; ++c) {
      float acc = 0.0f;
      for (int64_t x = 0; x < k; ++x) {
        acc += tokens.at({token, x}) * w.at({x, c});
      }
      out.at({slot, c}) = acc;
    }
  }
}

}  // namespace tilelink::compute
