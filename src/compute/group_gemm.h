// Grouped GEMM for MoE experts with optional fused gather/scatter (the
// vLLM-style fused op the paper builds on for Figure 9).
//
// Layouts:
//   tokens  [M, K]            activations (possibly gathered from all ranks)
//   weights [E, K, N]         per-expert weight shard
//   out     [M * topk, N]     slot order: row token*topk+slot
//
// The fused kernel processes sorted-by-expert slot chunks, gathering token
// rows and scattering output rows inside the GEMM mainloop. The unfused path
// (cuBLAS analog) must materialize a sorted activation copy first and
// scatter results afterwards — see baselines/vllm_moe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/gemm.h"
#include "compute/moe_routing.h"
#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::compute {

struct GroupGemmOptions {
  GemmTiling tiling{128, 128, 64};
  // Extra per-step cost factor for the in-loop gather/scatter addressing.
  double fused_gather_overhead = 1.05;
  int max_blocks = 0;  // persistent cap; 0 = one block per group tile
  std::string name = "group_gemm";
};

// Fused gather + grouped GEMM + scatter:
//   out[slot_row(token,slot), :] = tokens[token, :] @ weights[expert, :, :]
std::shared_ptr<rt::KernelState> LaunchGroupGemmFused(
    rt::RankCtx& ctx, rt::Stream& stream, const Tensor& tokens,
    const Tensor& weights, Tensor out, const MoeRouting& routing,
    const GroupGemmOptions& options = {});

// Host reference for the same computation.
void GroupGemmRef(const Tensor& tokens, const Tensor& weights, Tensor& out,
                  const MoeRouting& routing);

}  // namespace tilelink::compute
