// Standalone tiled GEMM kernel on the simulated device (the cuBLAS analog
// used by baselines) plus a naive host reference for tests.
#pragma once

#include <memory>
#include <string>

#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::compute {

struct GemmTiling {
  int bm = 128;
  int bn = 256;
  int bk = 64;

  friend bool operator==(const GemmTiling&, const GemmTiling&) = default;
};

struct GemmOptions {
  GemmTiling tiling;
  bool accumulate = false;
  // Caps the number of compute blocks resident at once (persistent-kernel
  // style); 0 means one block per output tile.
  int max_blocks = 0;
  std::string name = "gemm";
};

// C[M,N] (+)= A[M,K] @ B[K,N] launched on `stream`; returns the kernel state
// (await state->Wait() or synchronize the stream for completion).
std::shared_ptr<rt::KernelState> LaunchGemm(rt::RankCtx& ctx,
                                            rt::Stream& stream,
                                            const Tensor& a, const Tensor& b,
                                            Tensor c,
                                            const GemmOptions& options = {});

// Host reference: c = a @ b (+ c if accumulate), fp32.
void GemmRef(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

// Analytic time of a dense GEMM on one device with `sms` SMs available
// (used by cost sanity tests, not by the kernels themselves).
sim::TimeNs AnalyticGemmTime(const sim::CostModel& cost, int64_t m, int64_t n,
                             int64_t k, const GemmTiling& tiling, int sms);

}  // namespace tilelink::compute
