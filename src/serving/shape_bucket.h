// Shape bucketing for the serving path: ragged continuous-batching steps
// are rounded up to power-of-two buckets before they reach the estimator
// (and therefore the config service), so near-miss shapes share one tuned
// config instead of triggering a cold search per distinct ragged shape.
// Bucketing only ever rounds *up* — a config tuned for the bucket is valid
// (and conservative) for every shape inside it.
#pragma once

#include <algorithm>
#include <cstdint>

#include "models/transformer.h"

namespace tilelink::serving {

struct BucketPolicy {
  int64_t prefill_min = 16;  // smallest prefill-token bucket
  int64_t decode_min = 1;    // smallest decode-batch bucket
  int64_t kv_min = 256;      // smallest KV-context bucket
};

// Smallest power-of-two multiple of `min_bucket` that covers `v`.
inline int64_t BucketUp(int64_t v, int64_t min_bucket) {
  int64_t b = min_bucket;
  while (b < v) b *= 2;
  return b;
}

// Buckets each step axis independently; zero axes stay zero (a decode-only
// step must not grow a phantom prefill).
inline models::ServingStep BucketStep(const models::ServingStep& s,
                                      const BucketPolicy& p = {}) {
  models::ServingStep out;
  if (s.prefill_tokens > 0) {
    out.prefill_tokens = BucketUp(s.prefill_tokens, p.prefill_min);
  }
  if (s.decode_requests > 0) {
    out.decode_requests = BucketUp(s.decode_requests, p.decode_min);
    out.kv_len = BucketUp(std::max<int64_t>(s.kv_len, 1), p.kv_min);
  }
  return out;
}

}  // namespace tilelink::serving
