// Continuous-batching scheduler for one serving replica: admits requests
// into the running batch as they arrive, evicts them as they finish, and
// drives the per-step ragged batch shape through a step-cost callback (the
// serving sim routes it through models::E2eEstimator). Iteration-level
// scheduling in the Orca/vLLM sense, reduced to what the DES timing model
// can observe: every step is one fused forward pass whose cost depends on
// the step's prefill tokens, decode width and KV context.
//
// Fully deterministic: the schedule is a pure function of the request
// trace, the config and the step-cost function.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "models/transformer.h"
#include "serving/traffic_gen.h"
#include "sim/time.h"

namespace tilelink::serving {

struct SchedulerConfig {
  // Batch slots: at most this many requests run (prefill or decode) at
  // once; arrived requests past the limit queue outside the batch.
  int max_running = 16;
  // Per-step prefill-token budget: newly admitted prompts are packed into
  // a step until the budget is spent (a prompt larger than the whole
  // budget is admitted alone — requests are never split).
  int64_t max_step_prefill = 2048;
};

struct RequestOutcome {
  int64_t id = 0;
  sim::TimeNs arrival = 0;
  sim::TimeNs admitted = 0;   // when it entered the running batch
  sim::TimeNs finished = 0;   // when its last token was emitted
  sim::TimeNs latency() const { return finished - arrival; }
};

// One executed step, in order: the raw (unbucketed) ragged shape, its
// start time and cost, and the admission/eviction churn.
struct StepRecord {
  models::ServingStep shape;
  sim::TimeNs start = 0;
  sim::TimeNs cost = 0;
  int admitted = 0;
  int finished = 0;
};

// Step cost callback: wall time of one forward pass over `shape` (the
// caller buckets the shape first if it wants config sharing).
using StepCostFn = std::function<sim::TimeNs(const models::ServingStep&)>;

class ContinuousBatchScheduler {
 public:
  // `requests` is the replica's slice of the trace; it is (stably) sorted
  // by arrival time so admission order is deterministic.
  ContinuousBatchScheduler(const SchedulerConfig& cfg,
                           std::vector<Request> requests);

  // Runs the trace to completion. Each step: admit arrived requests under
  // the slot/prefill budgets, emit one decode token per already-running
  // request, advance the clock by step_cost(shape), then evict requests
  // whose decode quota is met (the prefill step emits the first token).
  // Returns per-request outcomes sorted by id.
  std::vector<RequestOutcome> Run(const StepCostFn& step_cost);

  // The executed steps of the last Run(), in order.
  const std::vector<StepRecord>& steps() const { return steps_; }

 private:
  SchedulerConfig cfg_;
  std::vector<Request> requests_;
  std::vector<StepRecord> steps_;
};

}  // namespace tilelink::serving
