#include "serving/serving_sim.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"
#include "common/string_utils.h"

namespace tilelink::serving {

sim::TimeNs Percentile(std::vector<sim::TimeNs> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  idx = std::min(idx, values.size() - 1);
  return values[idx];
}

ServingResult RunServing(const ServingOptions& opts,
                         models::E2eEstimator* est) {
  TL_CHECK_MSG(!opts.models.empty(), "serving needs at least one model");
  ServingResult out;
  TrafficConfig tcfg = opts.traffic;
  tcfg.num_models = static_cast<int>(opts.models.size());
  const std::vector<Request> all = GenerateTraffic(tcfg);
  out.trace = TraceString(all);
  std::vector<sim::TimeNs> fleet_latencies;
  for (std::size_t mi = 0; mi < opts.models.size(); ++mi) {
    const models::ModelConfig& model = opts.models[mi];
    std::vector<Request> mine;
    for (const Request& r : all) {
      if (r.model_index == static_cast<int>(mi)) mine.push_back(r);
    }
    ModelServingResult row;
    row.model = model.name;
    if (!mine.empty()) {
      ContinuousBatchScheduler sched(opts.sched, std::move(mine));
      const std::vector<RequestOutcome> outcomes =
          sched.Run([&](const models::ServingStep& raw) {
            // Bucket before timing so near-miss ragged shapes share one
            // memo entry — and one tuned config — per bucket.
            const models::ServingStep b = BucketStep(raw, opts.buckets);
            return est->ServingStepTime(model, opts.method, b) * model.layers;
          });
      row.requests = static_cast<int64_t>(outcomes.size());
      row.steps = static_cast<int64_t>(sched.steps().size());
      std::vector<sim::TimeNs> latencies;
      latencies.reserve(outcomes.size());
      for (const RequestOutcome& o : outcomes) {
        latencies.push_back(o.latency());
        fleet_latencies.push_back(o.latency());
      }
      row.p50_latency = Percentile(latencies, 0.5);
      row.p99_latency = Percentile(latencies, 0.99);
      const StepRecord& last = sched.steps().back();
      row.makespan = last.start + last.cost;
      for (std::size_t si = 0; si < sched.steps().size(); ++si) {
        const StepRecord& s = sched.steps()[si];
        out.trace += StrFormat(
            "%s step %zu t=%lld prefill=%lld decode=%lld kv=%lld cost=%lld "
            "admitted=%d finished=%d\n",
            model.name.c_str(), si, (long long)s.start,
            (long long)s.shape.prefill_tokens,
            (long long)s.shape.decode_requests, (long long)s.shape.kv_len,
            (long long)s.cost, s.admitted, s.finished);
      }
    }
    out.total_requests += row.requests;
    out.total_steps += row.steps;
    out.per_model.push_back(row);
  }
  out.p50_latency = Percentile(fleet_latencies, 0.5);
  out.p99_latency = Percentile(fleet_latencies, 0.99);
  return out;
}

}  // namespace tilelink::serving
