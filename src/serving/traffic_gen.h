// Deterministic request-level traffic generator for the serving bench: a
// mixed prefill/decode workload across the model zoo with Poisson-like
// arrivals, bitwise reproducible per seed across platforms (splitmix64
// draws only, no libm, no std:: distribution objects — the same contract
// sim::FaultPlan makes for fault schedules).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace tilelink::serving {

// One inference request: `prompt_tokens` enter as a prefill, then the
// request decodes `gen_tokens` tokens (one per scheduler step) before
// leaving the batch.
struct Request {
  int64_t id = 0;
  int model_index = 0;       // which serving replica (model) it targets
  sim::TimeNs arrival = 0;   // ns since trace start
  int64_t prompt_tokens = 0;
  int64_t gen_tokens = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

struct TrafficConfig {
  uint64_t seed = 1;
  int num_requests = 64;
  int num_models = 1;  // model_index drawn uniformly from [0, num_models)
  // Mean of the (approximately exponential) inter-arrival gap.
  sim::TimeNs mean_interarrival = sim::Ms(5);
  int64_t min_prompt = 64;
  int64_t max_prompt = 2048;
  int64_t min_gen = 8;
  int64_t max_gen = 64;
};

// Generates the trace. Arrivals are nondecreasing; requests are numbered
// 0..num_requests-1 in arrival order. Per request the generator draws, in
// this fixed order: model index, arrival gap, prompt length, decode length
// — so the trace is a pure function of the config.
std::vector<Request> GenerateTraffic(const TrafficConfig& cfg);

// One line per request; identical seeds must produce identical strings
// (the serving bench's bitwise reproducibility gate diffs these).
std::string TraceString(const std::vector<Request>& requests);

}  // namespace tilelink::serving
