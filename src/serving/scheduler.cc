#include "serving/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace tilelink::serving {

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const SchedulerConfig& cfg, std::vector<Request> requests)
    : cfg_(cfg), requests_(std::move(requests)) {
  TL_CHECK_MSG(cfg_.max_running > 0, "scheduler needs at least one slot");
  TL_CHECK_MSG(cfg_.max_step_prefill > 0, "prefill budget must be positive");
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
}

std::vector<RequestOutcome> ContinuousBatchScheduler::Run(
    const StepCostFn& step_cost) {
  steps_.clear();
  struct Running {
    const Request* req = nullptr;
    int64_t generated = 0;   // decode tokens emitted so far
    bool prefilled = false;  // true once its prefill step has executed
  };
  std::vector<RequestOutcome> out;
  out.reserve(requests_.size());
  std::vector<Running> running;
  std::size_t next = 0;  // first request not yet admitted
  sim::TimeNs now = 0;
  while (next < requests_.size() || !running.empty()) {
    if (running.empty() && requests_[next].arrival > now) {
      now = requests_[next].arrival;  // replica idle: jump to next arrival
    }
    StepRecord rec;
    rec.start = now;
    // Admission: arrived requests in arrival order, while slots and the
    // prefill-token budget last. A prompt that would overflow a partially
    // spent budget waits for the next step; one larger than the whole
    // budget is admitted into an otherwise prefill-empty step.
    int64_t budget = cfg_.max_step_prefill;
    while (next < requests_.size() && requests_[next].arrival <= now &&
           static_cast<int>(running.size()) < cfg_.max_running &&
           budget > 0) {
      const Request& r = requests_[next];
      if (r.prompt_tokens > budget && budget < cfg_.max_step_prefill) break;
      running.push_back(Running{&r});
      rec.shape.prefill_tokens += r.prompt_tokens;
      budget -= r.prompt_tokens;
      out.push_back(RequestOutcome{r.id, r.arrival, now, 0});
      ++rec.admitted;
      ++next;
    }
    // Decode width and KV context: one token per already-prefilled
    // request, attending over the longest context in the batch.
    for (const Running& ru : running) {
      if (!ru.prefilled) continue;
      ++rec.shape.decode_requests;
      rec.shape.kv_len = std::max(rec.shape.kv_len,
                                  ru.req->prompt_tokens + ru.generated);
    }
    rec.cost = step_cost(rec.shape);
    TL_CHECK_MSG(rec.cost > 0, "serving step cost must be positive");
    now += rec.cost;
    // Token emission: decoders emit one token; fresh prefills emit their
    // first. Requests at their decode quota finish and leave the batch.
    std::vector<Running> still;
    still.reserve(running.size());
    for (Running& ru : running) {
      if (ru.prefilled) {
        ++ru.generated;
      } else {
        ru.prefilled = true;
        ru.generated = 1;
      }
      if (ru.generated >= ru.req->gen_tokens) {
        for (RequestOutcome& o : out) {
          if (o.id == ru.req->id) {
            o.finished = now;
            break;
          }
        }
        ++rec.finished;
      } else {
        still.push_back(ru);
      }
    }
    running = std::move(still);
    steps_.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace tilelink::serving
