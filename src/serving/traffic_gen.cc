#include "serving/traffic_gen.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_utils.h"

namespace tilelink::serving {
namespace {

// Per-mille quantiles of the unit exponential at the 16 bucket midpoints
// (p = 1/32, 3/32, ..., 31/32): an integer-only stand-in for -ln(1-u) that
// keeps the gap distribution's mean within ~2% of the configured one
// without touching libm (bitwise reproducibility across platforms).
constexpr int64_t kExpQuantilePerMille[16] = {
    32,  98,   170,  247,  330,  421,  521,  633,
    758, 901, 1068, 1269, 1520, 1856, 2367, 3466};

}  // namespace

std::vector<Request> GenerateTraffic(const TrafficConfig& cfg) {
  TL_CHECK_MSG(cfg.num_requests >= 0, "negative request count");
  TL_CHECK_MSG(cfg.num_models > 0, "traffic needs at least one model");
  TL_CHECK_MSG(cfg.min_prompt > 0 && cfg.min_prompt <= cfg.max_prompt,
               "bad prompt-length range");
  TL_CHECK_MSG(cfg.min_gen > 0 && cfg.min_gen <= cfg.max_gen,
               "bad decode-length range");
  Rng rng(cfg.seed);
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(cfg.num_requests));
  sim::TimeNs clock = 0;
  for (int i = 0; i < cfg.num_requests; ++i) {
    Request r;
    r.id = i;
    r.model_index = static_cast<int>(
        rng.NextU64(static_cast<uint64_t>(cfg.num_models)));
    const int64_t q = kExpQuantilePerMille[rng.NextU64(16)];
    clock += cfg.mean_interarrival * q / 1000;
    r.arrival = clock;
    r.prompt_tokens = rng.UniformInt(cfg.min_prompt, cfg.max_prompt);
    r.gen_tokens = rng.UniformInt(cfg.min_gen, cfg.max_gen);
    out.push_back(r);
  }
  return out;
}

std::string TraceString(const std::vector<Request>& requests) {
  std::string out;
  for (const Request& r : requests) {
    out += StrFormat("req %lld model=%d arrival_ns=%lld prompt=%lld gen=%lld\n",
                     (long long)r.id, r.model_index, (long long)r.arrival,
                     (long long)r.prompt_tokens, (long long)r.gen_tokens);
  }
  return out;
}

}  // namespace tilelink::serving
