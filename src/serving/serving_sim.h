// Serving-scale simulation: one continuous-batching replica per model zoo
// entry, a shared deterministic request trace, and per-step timing through
// models::E2eEstimator (shapes bucketed so the online config service's
// cache is actually shared). Everything downstream of the seed is a pure
// function of the options: the bench gates bitwise-identical traces and
// cache contents across reruns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/model_zoo.h"
#include "models/transformer.h"
#include "serving/scheduler.h"
#include "serving/shape_bucket.h"
#include "serving/traffic_gen.h"
#include "sim/time.h"

namespace tilelink::serving {

struct ServingOptions {
  models::Method method = models::Method::kTileLink;
  std::vector<models::ModelConfig> models;  // one replica each
  TrafficConfig traffic;  // num_models is overridden to models.size()
  SchedulerConfig sched;
  BucketPolicy buckets;
};

struct ModelServingResult {
  std::string model;
  int64_t requests = 0;
  int64_t steps = 0;
  sim::TimeNs makespan = 0;  // last step end, relative to trace start
  sim::TimeNs p50_latency = 0;
  sim::TimeNs p99_latency = 0;
};

struct ServingResult {
  std::vector<ModelServingResult> per_model;
  int64_t total_requests = 0;
  int64_t total_steps = 0;
  sim::TimeNs p50_latency = 0;  // fleet-wide request latency percentiles
  sim::TimeNs p99_latency = 0;
  // Deterministic text log: the full request trace plus one line per
  // executed step (shape, cost, churn). Identical seeds must produce
  // identical strings — the bench's reproducibility gate.
  std::string trace;
};

// Nearest-rank percentile (p in [0, 1]) of `values`; 0 when empty.
sim::TimeNs Percentile(std::vector<sim::TimeNs> values, double p);

// Runs the trace through every replica. `est` supplies per-step times (pad
// + simulate + memoize); attach a ConfigService first for tuned configs.
ServingResult RunServing(const ServingOptions& opts,
                         models::E2eEstimator* est);

}  // namespace tilelink::serving
