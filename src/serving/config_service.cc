#include "serving/config_service.h"

#include <cmath>

namespace tilelink::serving {

ConfigService::Snapshot ConfigService::Stats() const {
  Snapshot snap;
  const tl::CacheStats s = cache_.stats();
  snap.entries = static_cast<int64_t>(cache_.size());
  snap.hits = s.hits;
  snap.misses = s.misses;
  snap.evictions = s.evictions;
  const int64_t lookups = s.hits + s.misses;
  snap.hit_rate = lookups > 0
                      ? static_cast<double>(s.hits) /
                            static_cast<double>(lookups)
                      : 0.0;
  snap.warm_start_ms = static_cast<double>(s.warm_start_ns) / 1e6;
  snap.max_cold_tune_ms = static_cast<double>(s.max_tune_ns) / 1e6;
  double log_sum = 0.0;
  int n = 0;
  for (const auto& [key, entry] : cache_.Entries()) {
    if (entry.seed_cost <= 0 || entry.cost <= 0) continue;
    log_sum += std::log(static_cast<double>(entry.seed_cost) /
                        static_cast<double>(entry.cost));
    ++n;
  }
  snap.tuned_speedup_geomean = n > 0 ? std::exp(log_sum / n) : 1.0;
  return snap;
}

}  // namespace tilelink::serving
