// Online config service: the serving-facing facade over TunedConfigCache.
// A replica attaches its estimator once; after that every cold config
// lookup runs a laddered multi-fidelity search (bounded cold-tune latency)
// and every warm lookup is a concurrency-safe cache hit. The service owns
// the eviction policy (LRU capacity) and aggregates the operational stats
// the serving bench gates: hit rate, cold-tune wall time and the geomean
// speedup of tuned configs over their hand-picked seeds.
#pragma once

#include <cstddef>
#include <cstdint>

#include "models/transformer.h"
#include "tilelink/builder/tuned_config_cache.h"

namespace tilelink::serving {

class ConfigService {
 public:
  struct Options {
    std::size_t capacity = 0;  // max cached configs (0 = unbounded), LRU
    int tune_threads = 1;      // autotuner workers per cold search
    bool laddered = true;      // laddered multi-fidelity cold tunes
  };

  explicit ConfigService(const Options& opts) : opts_(opts) {
    cache_.SetCapacity(opts_.capacity);
  }

  tl::TunedConfigCache& cache() { return cache_; }
  const tl::TunedConfigCache& cache() const { return cache_; }

  // Routes every tuned-config lookup of `est` (not owned; must not outlive
  // this service) through the cache with this service's tuning policy.
  void Attach(models::E2eEstimator* est) {
    est->EnableTuning(&cache_, opts_.tune_threads, opts_.laddered);
  }

  struct Snapshot {
    int64_t entries = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    double hit_rate = 0.0;          // hits / lookups (0 when no lookups)
    double warm_start_ms = 0.0;     // total cold-tune wall time
    double max_cold_tune_ms = 0.0;  // worst single cold-tune wall time
    // Geomean of seed_cost / best_cost over entries whose search recorded
    // a full-fidelity seed anchor (>= 1.0 by construction: every search is
    // seeded, so tuned never loses to the hand-picked default).
    double tuned_speedup_geomean = 1.0;
  };
  Snapshot Stats() const;

 private:
  Options opts_;
  tl::TunedConfigCache cache_;
};

}  // namespace tilelink::serving
