#include "baselines/moe_baselines.h"

#include "compute/memops.h"
#include "tensor/tensor_ops.h"

namespace tilelink::baselines {
namespace {

// Gather/scatter index vectors for the sorted layout.
std::vector<int> SortedTokenIndex(const compute::MoeRouting& r) {
  std::vector<int> idx(static_cast<size_t>(r.total_slots()));
  for (int64_t i = 0; i < r.total_slots(); ++i) {
    idx[static_cast<size_t>(i)] = r.token_of_sorted(i);
  }
  return idx;
}

std::vector<int> SortedSlotIndex(const compute::MoeRouting& r) {
  std::vector<int> idx(r.sorted_slots.begin(), r.sorted_slots.end());
  return idx;
}

// Runs the expert GEMMs over materialized sorted activations. kCublas
// launches one GEMM per expert; kCutlass launches one grouped kernel.
sim::Coro ExpertGemms(rt::RankCtx& ctx, const compute::MoeRouting& routing,
                      const Tensor& sorted_acts, const Tensor& weights,
                      Tensor sorted_out, const compute::GemmTiling& tiling,
                      MoeImpl impl) {
  if (impl == MoeImpl::kCublas) {
    for (int e = 0; e < routing.num_experts; ++e) {
      const int64_t lo = routing.expert_offsets[static_cast<size_t>(e)];
      const int64_t count = routing.expert_count(e);
      if (count == 0) continue;
      compute::GemmOptions opt;
      opt.tiling = tiling;
      opt.name = "cublas_expert_gemm";
      compute::LaunchGemm(ctx, *ctx.stream, sorted_acts.Slice(0, lo, count),
                          weights.Select(0, e), sorted_out.Slice(0, lo, count),
                          opt);
      // The naive framework loop blocks the host per expert (count lookup,
      // workspace management, cuBLAS handle sync) — the launch storm the
      // paper's 9.82x vLLM-vs-cuBLAS gap comes from.
      co_await ctx.stream->Synchronize();
      co_await sim::Delay{sim::Us(2.0)};
    }
  } else {
    // Grouped kernel: one launch covering all experts (identity routing in
    // sorted space: row i of sorted_acts multiplies its expert's weights).
    compute::MoeRouting sorted_routing = routing;
    // Build a routing whose token_of_sorted is the identity over sorted rows
    // so the fused kernel reads the materialized sorted activations.
    for (int64_t i = 0; i < routing.total_slots(); ++i) {
      sorted_routing.sorted_slots[static_cast<size_t>(i)] =
          static_cast<int>(i);
      sorted_routing.topk_ids[static_cast<size_t>(i)] = 0;
    }
    sorted_routing.topk = 1;
    // Re-tag expert ids per sorted position for MakeGroupBlocks.
    for (int e = 0; e < routing.num_experts; ++e) {
      for (int64_t i = routing.expert_offsets[static_cast<size_t>(e)];
           i < routing.expert_offsets[static_cast<size_t>(e) + 1]; ++i) {
        sorted_routing.topk_ids[static_cast<size_t>(i)] = e;
      }
    }
    sorted_routing.num_tokens = routing.total_slots();
    compute::GroupGemmOptions opt;
    opt.tiling = tiling;
    opt.fused_gather_overhead = 1.0;  // data already contiguous
    opt.name = "cutlass_group_gemm";
    compute::LaunchGroupGemmFused(ctx, *ctx.stream, sorted_acts, weights,
                                  sorted_out, sorted_routing, opt);
  }
  co_await ctx.stream->Synchronize();
}

}  // namespace

// ---------------------------------------------------------------------- //
// Part 1
// ---------------------------------------------------------------------- //

MoePart1::MoePart1(rt::World& world, const MoePartConfig& config,
                   const compute::MoeRouting& routing, MoeImpl impl)
    : world_(&world), cfg_(config), routing_(routing), impl_(impl) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  const int64_t slots = cfg_.m * cfg_.topk;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    token_shards_.push_back(Tensor::Alloc(
        dev, "moe1.shard", {cfg_.m / R, cfg_.hidden}, DType::kBF16));
    tokens_.push_back(Tensor::Alloc(dev, "moe1.tokens",
                                    {cfg_.m, cfg_.hidden}, DType::kBF16));
    weights_.push_back(
        Tensor::Alloc(dev, "moe1.w", {cfg_.num_experts, cfg_.hidden,
                                      cfg_.inner},
                      DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "moe1.out", {slots, cfg_.inner},
                                 DType::kBF16));
    if (impl != MoeImpl::kVllm) {
      sorted_acts_.push_back(Tensor::Alloc(
          dev, "moe1.sorted_acts", {slots, cfg_.hidden}, DType::kBF16));
      sorted_out_.push_back(Tensor::Alloc(dev, "moe1.sorted_out",
                                          {slots, cfg_.inner}, DType::kBF16));
    }
  }
}

sim::Coro MoePart1::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const size_t r = static_cast<size_t>(ctx.rank);
  co_await comm::AllGather(ctx, token_shards_, tokens_);
  if (impl_ == MoeImpl::kVllm) {
    compute::GroupGemmOptions opt;
    opt.tiling = cfg_.gemm;
    opt.name = "vllm_fused_moe1";
    compute::LaunchGroupGemmFused(ctx, *ctx.stream, tokens_[r], weights_[r],
                                  out_[r], routing_, opt);
    co_await ctx.stream->Synchronize();
    co_return;
  }
  // Unfused path: materialize sorted activations, per-expert (or grouped)
  // GEMMs, then scatter back to slot order.
  compute::LaunchGatherRows(ctx, *ctx.stream, tokens_[r], sorted_acts_[r],
                            SortedTokenIndex(routing_));
  co_await ctx.stream->Synchronize();
  co_await ExpertGemms(ctx, routing_, sorted_acts_[r], weights_[r],
                       sorted_out_[r], cfg_.gemm, impl_);
  compute::LaunchScatterRows(ctx, *ctx.stream, sorted_out_[r], out_[r],
                             SortedSlotIndex(routing_));
  co_await ctx.stream->Synchronize();
}

// ---------------------------------------------------------------------- //
// Part 2
// ---------------------------------------------------------------------- //

MoePart2::MoePart2(rt::World& world, const MoePartConfig& config,
                   const compute::MoeRouting& routing, MoeImpl impl)
    : world_(&world), cfg_(config), routing_(routing), impl_(impl) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  const int64_t slots = cfg_.m * cfg_.topk;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    acts_.push_back(
        Tensor::Alloc(dev, "moe2.acts", {slots, cfg_.inner}, DType::kBF16));
    weights_.push_back(Tensor::Alloc(
        dev, "moe2.w", {cfg_.num_experts, cfg_.inner, cfg_.hidden},
        DType::kBF16));
    exp_out_.push_back(Tensor::Alloc(dev, "moe2.exp_out",
                                     {slots, cfg_.hidden}, DType::kBF16));
    token_partial_.push_back(Tensor::Alloc(
        dev, "moe2.tok_partial", {cfg_.m, cfg_.hidden}, DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "moe2.out", {cfg_.m / R, cfg_.hidden},
                                 DType::kBF16));
    if (impl != MoeImpl::kVllm) {
      sorted_acts_.push_back(Tensor::Alloc(
          dev, "moe2.sorted_acts", {slots, cfg_.inner}, DType::kBF16));
      sorted_out_.push_back(Tensor::Alloc(dev, "moe2.sorted_out",
                                          {slots, cfg_.hidden}, DType::kBF16));
    }
  }
}

sim::Coro MoePart2::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const size_t r = static_cast<size_t>(ctx.rank);
  if (impl_ == MoeImpl::kVllm) {
    // Fused grouped GEMM directly over slot-order activations: treat each
    // slot as a "token" with topk=1 so token_of_sorted(pos) indexes the
    // slot row itself; expert grouping (sorted_slots / expert_offsets) is
    // unchanged.
    compute::MoeRouting identity = routing_;
    identity.num_tokens = routing_.total_slots();
    identity.topk = 1;
    compute::GroupGemmOptions opt;
    opt.tiling = cfg_.gemm;
    opt.name = "vllm_fused_moe2";
    compute::LaunchGroupGemmFused(ctx, *ctx.stream, acts_[r], weights_[r],
                                  exp_out_[r], identity, opt);
    co_await ctx.stream->Synchronize();
  } else {
    compute::LaunchGatherRows(ctx, *ctx.stream, acts_[r], sorted_acts_[r],
                              SortedSlotIndex(routing_));
    co_await ctx.stream->Synchronize();
    co_await ExpertGemms(ctx, routing_, sorted_acts_[r], weights_[r],
                         sorted_out_[r], cfg_.gemm, impl_);
    compute::LaunchScatterRows(ctx, *ctx.stream, sorted_out_[r], exp_out_[r],
                               SortedSlotIndex(routing_));
    co_await ctx.stream->Synchronize();
  }
  compute::LaunchTopkReduce(ctx, *ctx.stream, exp_out_[r], token_partial_[r],
                            routing_.topk_weights, cfg_.topk);
  co_await ctx.stream->Synchronize();
  co_await comm::ReduceScatter(ctx, token_partial_, out_);
}

}  // namespace tilelink::baselines
