#include "baselines/attention_baselines.h"

#include "comm/p2p.h"
#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"

namespace tilelink::baselines {

// ---------------------------------------------------------------------- //
// TorchAttention
// ---------------------------------------------------------------------- //

TorchAttention::TorchAttention(rt::World& world,
                               const AttentionConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.seq % R, 0);
  const int64_t s_per = cfg_.seq / R;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    q_.push_back(Tensor::Alloc(dev, "torch_attn.q",
                               {cfg_.batch_heads, s_per, cfg_.head_dim},
                               DType::kBF16));
    k_shards_.push_back(Tensor::Alloc(
        dev, "torch_attn.ks", {cfg_.batch_heads, s_per, cfg_.head_dim},
        DType::kBF16));
    v_shards_.push_back(Tensor::Alloc(
        dev, "torch_attn.vs", {cfg_.batch_heads, s_per, cfg_.head_dim},
        DType::kBF16));
    k_.push_back(Tensor::Alloc(dev, "torch_attn.k",
                               {cfg_.batch_heads, cfg_.seq, cfg_.head_dim},
                               DType::kBF16));
    v_.push_back(Tensor::Alloc(dev, "torch_attn.v",
                               {cfg_.batch_heads, cfg_.seq, cfg_.head_dim},
                               DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "torch_attn.out",
                                 {cfg_.batch_heads, s_per, cfg_.head_dim},
                                 DType::kBF16));
  }
}

sim::Coro TorchAttention::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const int R = world_->size();
  const int64_t s_per = cfg_.seq / R;
  const size_t r = static_cast<size_t>(ctx.rank);
  // NCCL AllGather of K and V (dim-1 sharded; flatten to row-sharded form
  // by copying per-head segments — billed as two collectives).
  // For timing we run two AllGathers over equivalent byte volumes; the
  // functional placement is done per segment below.
  comm::SymTensor k_flat_shards, k_flat_out, v_flat_shards, v_flat_out;
  for (int p = 0; p < R; ++p) {
    k_flat_shards.push_back(k_shards_[static_cast<size_t>(p)]);
    v_flat_shards.push_back(v_shards_[static_cast<size_t>(p)]);
  }
  // Timing: two collectives moving the same bytes as the KV gather.
  const uint64_t shard_bytes = k_shards_[r].logical_bytes();
  co_await world_->comm_barrier().Arrive();
  co_await sim::Delay{world_->spec().collective_setup_latency * 2};
  {
    std::vector<sim::Coro> pulls;
    for (int p = 0; p < R; ++p) {
      if (p == ctx.rank) continue;
      pulls.push_back(world_->Transfer(p, ctx.rank, 2 * shard_bytes));
    }
    co_await sim::WhenAll(std::move(pulls));
  }
  if (world_->functional()) {
    for (int p = 0; p < R; ++p) {
      Tensor kd = k_[r].Slice(1, p * s_per, s_per);
      Tensor vd = v_[r].Slice(1, p * s_per, s_per);
      CopyTensor(k_shards_[static_cast<size_t>(p)], kd);
      CopyTensor(v_shards_[static_cast<size_t>(p)], vd);
    }
  }
  // Eager attention pipeline (de-rated flash-equivalent numerics).
  compute::FlashOptions opt;
  opt.block_q = cfg_.block_q;
  opt.block_kv = cfg_.block_kv;
  opt.throughput_factor = cfg_.eager_throughput;
  opt.name = "torch_eager_attention";
  compute::LaunchFlashAttention(ctx, *ctx.stream, q_[r], k_[r], v_[r],
                                out_[r], opt);
  co_await ctx.stream->Synchronize();
}

// ---------------------------------------------------------------------- //
// RingAttention
// ---------------------------------------------------------------------- //

RingAttention::RingAttention(rt::World& world, const AttentionConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.seq % R, 0);
  const int64_t s_per = cfg_.seq / R;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    q_.push_back(Tensor::Alloc(dev, "ring_attn.q",
                               {cfg_.batch_heads, s_per, cfg_.head_dim},
                               DType::kBF16));
    k_shards_.push_back(Tensor::Alloc(
        dev, "ring_attn.ks", {cfg_.batch_heads, s_per, cfg_.head_dim},
        DType::kBF16));
    v_shards_.push_back(Tensor::Alloc(
        dev, "ring_attn.vs", {cfg_.batch_heads, s_per, cfg_.head_dim},
        DType::kBF16));
    // Double buffers for the ring (current chunk + incoming chunk).
    for (int buf = 0; buf < 2; ++buf) {
      k_buf_.push_back(Tensor::Alloc(
          dev, "ring_attn.kbuf", {cfg_.batch_heads, s_per, cfg_.head_dim},
          DType::kBF16));
      v_buf_.push_back(Tensor::Alloc(
          dev, "ring_attn.vbuf", {cfg_.batch_heads, s_per, cfg_.head_dim},
          DType::kBF16));
    }
    out_.push_back(Tensor::Alloc(dev, "ring_attn.out",
                                 {cfg_.batch_heads, s_per, cfg_.head_dim},
                                 DType::kBF16));
  }
}

sim::Coro RingAttention::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const int R = world_->size();
  const int64_t s_per = cfg_.seq / R;
  const int r = ctx.rank;
  // Scratch output per step (the real system merges partials online; the
  // merge is numerically equivalent to one full softmax, which we compute
  // below from the gathered shards).
  Tensor scratch = Tensor::Alloc(world_->device(r), "ring_attn.scratch",
                                 {cfg_.batch_heads, s_per, cfg_.head_dim},
                                 DType::kBF16);
  const int next = (r + 1) % R;
  for (int s = 0; s < R; ++s) {
    const size_t cur = static_cast<size_t>(r * 2 + (s % 2));
    const size_t nxt = static_cast<size_t>(r * 2 + ((s + 1) % 2));
    if (s == 0) {
      // Load own shard into the current buffer (local copy, not hidden).
      co_await comm::CopyTensorP2P(*world_, world_->device(r),
                                   k_shards_[static_cast<size_t>(r)],
                                   k_buf_[cur]);
      co_await comm::CopyTensorP2P(*world_, world_->device(r),
                                   v_shards_[static_cast<size_t>(r)],
                                   v_buf_[cur]);
    }
    // Send current chunk to the next rank's alternate buffer while
    // computing on it (the overlap RingAttention does achieve).
    if (s < R - 1) {
      Tensor k_dst = k_buf_[static_cast<size_t>(next * 2 + ((s + 1) % 2))];
      Tensor v_dst = v_buf_[static_cast<size_t>(next * 2 + ((s + 1) % 2))];
      ctx.comm_stream->Enqueue(
          [this, r, cur, k_dst]() mutable -> sim::Coro {
            co_await comm::CopyTensorP2P(*world_, world_->device(r),
                                         k_buf_[cur], k_dst);
          });
      ctx.comm_stream->Enqueue(
          [this, r, cur, v_dst]() mutable -> sim::Coro {
            co_await comm::CopyTensorP2P(*world_, world_->device(r),
                                         v_buf_[cur], v_dst);
          });
    }
    compute::FlashOptions opt;
    opt.block_q = cfg_.block_q;
    opt.block_kv = cfg_.block_kv;
    // Public blockwise-attention kernels (RingAttention's steps) reach
    // roughly half of a tuned flash kernel's throughput, and every step
    // repeats the softmax-merge rescale.
    opt.throughput_factor = 0.55;
    opt.name = "ring_attn.step";
    compute::LaunchFlashAttention(ctx, *ctx.stream, q_[static_cast<size_t>(r)],
                                  k_buf_[cur], v_buf_[cur], scratch, opt);
    // Host-driven step boundary: sync both streams, then a rendezvous so
    // no rank reads a buffer before its producer rewrote it.
    co_await ctx.stream->Synchronize();
    co_await ctx.comm_stream->Synchronize();
    co_await world_->barrier().Arrive();
    (void)nxt;
  }
  // Functional result: full-softmax over the gathered KV (equivalent to the
  // online partial merges).
  if (world_->functional()) {
    Tensor kf = Tensor::Alloc(world_->device(r), "ring_attn.kf",
                              {cfg_.batch_heads, cfg_.seq, cfg_.head_dim},
                              DType::kBF16);
    Tensor vf = Tensor::Alloc(world_->device(r), "ring_attn.vf",
                              {cfg_.batch_heads, cfg_.seq, cfg_.head_dim},
                              DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor kd = kf.Slice(1, p * s_per, s_per);
      Tensor vd = vf.Slice(1, p * s_per, s_per);
      CopyTensor(k_shards_[static_cast<size_t>(p)], kd);
      CopyTensor(v_shards_[static_cast<size_t>(p)], vd);
    }
    compute::AttentionRef(q_[static_cast<size_t>(r)], kf, vf,
                          out_[static_cast<size_t>(r)]);
  }
}

}  // namespace tilelink::baselines
