// MoE baselines (Figure 9):
//  - CublasMoe*: unfused — AllGather, a standalone gather kernel that
//    materializes sorted activations, one cuBLAS GEMM *launch per expert*,
//    a scatter kernel, (part 2: topk-reduce kernel, ReduceScatter). Pays
//    launch latency per expert and full HBM round-trips for gather/scatter.
//  - CutlassMoe*: same data path but one grouped-GEMM launch (no per-expert
//    launch storm); gather/scatter still unfused.
//  - VllmMoe*: vLLM-style fused gather/scatter inside the grouped GEMM, but
//    communication does not overlap compute.
// TileLink's overlapped versions are tilelink/kernels/{ag_moe,moe_rs}.
#pragma once

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "compute/group_gemm.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"

namespace tilelink::baselines {

struct MoePartConfig {
  int64_t m = 0;       // global tokens
  int64_t hidden = 0;  // H (part 1 K; part 2 output dim)
  int64_t inner = 0;   // I / R (part 1 N; part 2 K)
  int num_experts = 0;
  int topk = 0;
  compute::GemmTiling gemm{128, 128, 64};
};

enum class MoeImpl { kCublas, kCutlass, kVllm };

// Part 1: AG + Gather + GroupGEMM. Output [M*topk, inner] in slot order.
class MoePart1 {
 public:
  MoePart1(rt::World& world, const MoePartConfig& config,
           const compute::MoeRouting& routing, MoeImpl impl);
  comm::SymTensor& token_shards() { return token_shards_; }
  comm::SymTensor& weights() { return weights_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MoePartConfig cfg_;
  compute::MoeRouting routing_;
  MoeImpl impl_;
  comm::SymTensor token_shards_, tokens_, sorted_acts_, sorted_out_, weights_,
      out_;
};

// Part 2: GroupGEMM + Scatter + TopkReduce + RS. Output [M/R, hidden].
class MoePart2 {
 public:
  MoePart2(rt::World& world, const MoePartConfig& config,
           const compute::MoeRouting& routing, MoeImpl impl);
  comm::SymTensor& acts() { return acts_; }  // [M*topk, inner] slot order
  comm::SymTensor& weights() { return weights_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MoePartConfig cfg_;
  compute::MoeRouting routing_;
  MoeImpl impl_;
  comm::SymTensor acts_, sorted_acts_, sorted_out_, exp_out_, token_partial_,
      weights_, out_;
};

}  // namespace tilelink::baselines
