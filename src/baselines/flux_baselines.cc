#include "baselines/flux_baselines.h"

#include <algorithm>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tensor/tensor_ops.h"
#include "tilelink/mapping.h"
#include "tilelink/primitives.h"

namespace tilelink::baselines {
namespace {

using tl::BlockChannel;
using tl::ChannelWait;
using tl::Compiler;
using tl::DataSpec;
using tl::Env;
using tl::FusedKernelSpec;
using tl::NotifyEntry;
using tl::NotifySpec;
using tl::Role;
using tl::SignalSpace;
using tl::StaticMapping;
using tl::TileProgramBuilder;
using tl::TileRange;
using tl::WaitSpec;

int64_t TilesForBlock(int64_t total, const Env& env) {
  if (env.block_id >= total) return 0;
  return (total - env.block_id - 1) / env.grid + 1;
}

sim::Coro AwaitKernel(std::shared_ptr<rt::KernelState> state) {
  co_await state->Wait();
}

}  // namespace

// ---------------------------------------------------------------------- //
// FluxAgGemm: coupled pull-inside-GEMM fusion.
// ---------------------------------------------------------------------- //

FluxAgGemm::FluxAgGemm(rt::World& world, const FluxConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  const int64_t m_per = cfg_.m / R;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    a_shards_.push_back(Tensor::Alloc(dev, "flux_ag.a_shard",
                                      {m_per, cfg_.k}, DType::kBF16));
    a_full_.push_back(
        Tensor::Alloc(dev, "flux_ag.a_full", {cfg_.m, cfg_.k}, DType::kBF16));
    b_.push_back(
        Tensor::Alloc(dev, "flux_ag.b", {cfg_.k, cfg_.n}, DType::kBF16));
    c_.push_back(
        Tensor::Alloc(dev, "flux_ag.c", {cfg_.m, cfg_.n}, DType::kBF16));
  }
  // Coupled: comm tile == GEMM m-tile; one channel per m-tile.
  const StaticMapping map(cfg_.m, cfg_.gemm.bm, R,
                          static_cast<int>(m_per / cfg_.gemm.bm));
  bcs_ = BlockChannel::CreateSymmetric(world, "flux_ag", map.num_channels(),
                                       1, 1);
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t tiles_m = CeilDiv<int64_t>(cfg_.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(cfg_.k, tiling.bk);
  const int64_t k = cfg_.k;
  const int64_t tiles_m_per_rank = tiles_m / R;
  auto shards = a_shards_;
  auto fulls = a_full_;
  auto weights = b_;
  auto outs = c_;
  // Tile enumeration: m-tiles rotate so local rows go first; pulls are
  // issued as blocks reach their tiles, so transfers stagger and complete
  // progressively (cp.async pipelining).
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t raw_m = t / tiles_n;
    const int64_t tn = t % tiles_n;
    const int64_t tm = (raw_m + e.rank * tiles_m_per_rank) % tiles_m;
    return std::pair<int64_t, int64_t>(tm, tn);
  };
  TileProgramBuilder b;
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          // The tn==0 block of each m-tile pulls the rows inline; others
          // find the data in L2 (zero-byte probe) and wait on the barrier.
          body.Add(tl::ops::TilePullData(
              "flux.inline_pull",
              [map, shards, fulls, m_per, tid_mn, tiling](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                DataSpec d;
                d.src_rank = e.rank;
                d.dst_rank = e.rank;
                d.bytes = 0;
                if (tn == 0) {
                  const int src = map.Rank(tm);
                  d.src_rank = src;
                  d.bytes = static_cast<uint64_t>(tiling.bm) *
                            shards[0].dim(1) * DTypeSize(shards[0].dtype());
                  const Tensor src_view =
                      shards[static_cast<size_t>(src)].Slice(
                          0, tm * tiling.bm - src * m_per, tiling.bm);
                  const Tensor dst_view =
                      fulls[static_cast<size_t>(e.rank)].Slice(
                          0, tm * tiling.bm, tiling.bm);
                  src_view.BufferRange(&d.read_lo, &d.read_hi);
                  d.read_buf = src_view.buffer();
                  dst_view.BufferRange(&d.write_lo, &d.write_hi);
                  d.write_buf = dst_view.buffer();
                }
                return d;
              },
              [map, shards, fulls, m_per, tid_mn, tiling](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                if (tn != 0) return;
                const int src = map.Rank(tm);
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, tm * tiling.bm - src * m_per, tiling.bm);
                Tensor dst_view = fulls[static_cast<size_t>(e.rank)].Slice(
                    0, tm * tiling.bm, tiling.bm);
                CopyTensor(src_view, dst_view);
              }));
          body.Add(tl::ops::ProducerTileNotify(
              "flux.notify", [map, tid_mn](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                NotifySpec spec;
                if (tn == 0) {
                  spec.entries.push_back(
                      NotifyEntry{SignalSpace::kProducerConsumer,
                                  {e.rank},
                                  map.Channel(tm),
                                  1});
                }
                return spec;
              }));
          body.Add(tl::ops::ConsumerTileWait(
              "flux.wait", [map, tid_mn](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                (void)tn;
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                spec.waits.push_back(ChannelWait{map.Channel(tm), 1});
                return spec;
              }));
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(tl::ops::Mma(
                         "flux.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [fulls, weights, outs, tid_mn, tiling,
                          k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               fulls[static_cast<size_t>(e.rank)],
                               weights[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               e.iv(1) != 0);
                         }));
                   });
          body.Add(tl::ops::Store("flux.store", nullptr));
        });
  FusedKernelSpec spec;
  spec.name = "flux_ag_gemm";
  spec.roles.push_back(Role{
      "fused",
      static_cast<int>(std::min<int64_t>(num_tiles,
                                         world.spec().sms_per_device)),
      b.Build()});
  compiled_ = Compiler().Compile(std::move(spec));
}

sim::Coro FluxAgGemm::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  auto state =
      compiled_.Launch(ctx, *ctx.stream, bcs_[static_cast<size_t>(ctx.rank)]);
  co_await AwaitKernel(state);
}

// ---------------------------------------------------------------------- //
// FluxGemmRs: coupled push-after-GEMM fusion with atomic reduction.
// ---------------------------------------------------------------------- //

FluxGemmRs::FluxGemmRs(rt::World& world, const FluxConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  const int64_t m_per = cfg_.m / R;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    a_.push_back(
        Tensor::Alloc(dev, "flux_rs.a", {cfg_.m, cfg_.k}, DType::kBF16));
    b_.push_back(
        Tensor::Alloc(dev, "flux_rs.b", {cfg_.k, cfg_.n}, DType::kBF16));
    staging_.push_back(Tensor::Alloc(dev, "flux_rs.staging",
                                     {cfg_.m, cfg_.n}, DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "flux_rs.out", {m_per, cfg_.n},
                                 DType::kBF16));
  }
  bcs_ = BlockChannel::CreateSymmetric(world, "flux_rs", 1, 1, 1);
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t tiles_m = CeilDiv<int64_t>(cfg_.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(cfg_.k, tiling.bk);
  const int64_t k = cfg_.k;
  auto as = a_;
  auto bs = b_;
  auto staging = staging_;
  // Per-block accumulator tile: FLUX keeps the output in registers and
  // pushes it without a local round-trip.
  struct Acc {
    std::vector<float> vals;
  };
  auto tid_mn = [tiles_n](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    return std::pair<int64_t, int64_t>(t / tiles_n, t % tiles_n);
  };
  TileProgramBuilder b;
  b.Scratch([tiling](const Env&) {
    auto acc = std::make_shared<Acc>();
    acc->vals.assign(static_cast<size_t>(tiling.bm) * tiling.bn, 0.0f);
    return acc;
  });
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(tl::ops::Elementwise(
              "flux.acc_init",
              [](const Env&, const sim::CostModel&) { return sim::TimeNs{0}; },
              [tiling](const Env& e) {
                static_cast<Acc*>(e.scratch)->vals.assign(
                    static_cast<size_t>(tiling.bm) * tiling.bn, 0.0f);
              }));
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(tl::ops::Mma(
                         "flux.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [as, bs, tid_mn, tiling, k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           const int64_t kl =
                               std::min<int64_t>(tiling.bk, k - k0);
                           auto* acc = static_cast<Acc*>(e.scratch);
                           const Tensor& A = as[static_cast<size_t>(e.rank)];
                           const Tensor& B = bs[static_cast<size_t>(e.rank)];
                           for (int64_t i = 0; i < tiling.bm; ++i) {
                             const int64_t row = tm * tiling.bm + i;
                             if (row >= A.dim(0)) break;
                             for (int64_t j = 0; j < tiling.bn; ++j) {
                               const int64_t col = tn * tiling.bn + j;
                               if (col >= B.dim(1)) break;
                               float s = acc->vals[static_cast<size_t>(
                                   i * tiling.bn + j)];
                               for (int64_t x = k0; x < k0 + kl; ++x) {
                                 s += A.at({row, x}) * B.at({x, col});
                               }
                               acc->vals[static_cast<size_t>(i * tiling.bn +
                                                             j)] = s;
                             }
                           }
                         }));
                   });
          // Inline push with atomic reduction at the owner. The write is
          // pipelined (fire-and-forget RDMA through a copy engine), but the
          // coupled tile size means many small transfers contending for the
          // engines, and the kernel cannot retire until every atomic lands.
          body.Add(tl::ops::TilePushData(
              "flux.atomic_push",
              [staging, tid_mn, tiling, m_per](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const int owner =
                    static_cast<int>(tm * tiling.bm / m_per);
                DataSpec d;
                d.src_rank = e.rank;
                d.dst_rank = owner;
                d.bytes = static_cast<uint64_t>(tiling.bm) * tiling.bn *
                          DTypeSize(staging[0].dtype());
                const Tensor dst_view =
                    staging[static_cast<size_t>(owner)]
                        .Slice(0, tm * tiling.bm, tiling.bm)
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 staging[0].dim(1) -
                                                     tn * tiling.bn));
                dst_view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = dst_view.buffer();
                return d;
              },
              /*notify_after=*/nullptr, /*async_dma=*/false,
              [staging, tid_mn, tiling, m_per](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const int owner = static_cast<int>(tm * tiling.bm / m_per);
                auto* acc = static_cast<Acc*>(e.scratch);
                Tensor dst = staging[static_cast<size_t>(owner)];
                for (int64_t i = 0; i < tiling.bm; ++i) {
                  const int64_t row = tm * tiling.bm + i;
                  if (row >= dst.dim(0)) break;
                  for (int64_t j = 0; j < tiling.bn; ++j) {
                    const int64_t col = tn * tiling.bn + j;
                    if (col >= dst.dim(1)) break;
                    dst.at({row, col}) +=
                        acc->vals[static_cast<size_t>(i * tiling.bn + j)];
                  }
                }
              }));
        });
  FusedKernelSpec spec;
  spec.name = "flux_gemm_rs";
  spec.roles.push_back(Role{
      "fused",
      static_cast<int>(std::min<int64_t>(num_tiles,
                                         world.spec().sms_per_device)),
      b.Build()});
  compiled_ = Compiler().Compile(std::move(spec));
}

sim::Coro FluxGemmRs::Run(rt::RankCtx& ctx) {
  const int R = world_->size();
  const int64_t m_per = cfg_.m / R;
  if (world_->functional()) {
    staging_[static_cast<size_t>(ctx.rank)].buffer()->Zero();
  }
  co_await world_->barrier().Arrive();
  auto state =
      compiled_.Launch(ctx, *ctx.stream, bcs_[static_cast<size_t>(ctx.rank)]);
  co_await AwaitKernel(state);
  co_await world_->barrier().Arrive();  // all atomics landed everywhere
  // Epilogue: copy my accumulated row block to the output.
  if (world_->functional()) {
    Tensor src = staging_[static_cast<size_t>(ctx.rank)].Slice(
        0, ctx.rank * m_per, m_per);
    CopyTensor(src, out_[static_cast<size_t>(ctx.rank)]);
  }
  co_await sim::Delay{world_->cost().MemoryBound(
      static_cast<uint64_t>(m_per) * cfg_.n * 2 * 2, 40)};
}

}  // namespace tilelink::baselines
