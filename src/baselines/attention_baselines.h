// Sequence-parallel attention baselines (Figure 10):
//  - TorchAttention: NCCL AllGather of KV, then the framework's eager
//    (non-flash) attention pipeline — modeled as the same attention kernel
//    de-rated to ~1/5 of flash throughput (separate softmax stages, score
//    materialization in HBM).
//  - RingAttention: flash attention over ring-passed KV chunks; every step
//    is host-driven (kernel launch + P2P of the next chunk + stream syncs),
//    so each ring step exposes launch/sync bubbles and the first chunk's
//    transfer is not hidden.
// TileLink's overlapped version is tilelink/kernels/ag_attention.
#pragma once

#include "comm/collectives.h"
#include "compute/flash_attention.h"
#include "runtime/world.h"

namespace tilelink::baselines {

struct AttentionConfig {
  int64_t batch_heads = 0;
  int64_t seq = 0;
  int64_t head_dim = 128;
  int block_q = 128;
  int block_kv = 128;
  // Eager-pipeline throughput relative to flash (Torch baseline).
  double eager_throughput = 0.20;
};

class TorchAttention {
 public:
  TorchAttention(rt::World& world, const AttentionConfig& config);
  comm::SymTensor& q() { return q_; }
  comm::SymTensor& k_shards() { return k_shards_; }
  comm::SymTensor& v_shards() { return v_shards_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  AttentionConfig cfg_;
  comm::SymTensor q_, k_shards_, v_shards_, k_, v_, out_;
};

// Ring attention: timing is fully simulated (per-step kernels, ring P2P,
// host syncs). Numerics: each step's flash partial is combined with the
// running output using the standard log-sum-exp merge.
class RingAttention {
 public:
  RingAttention(rt::World& world, const AttentionConfig& config);
  comm::SymTensor& q() { return q_; }
  comm::SymTensor& k_shards() { return k_shards_; }
  comm::SymTensor& v_shards() { return v_shards_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  AttentionConfig cfg_;
  comm::SymTensor q_, k_shards_, v_shards_, k_buf_, v_buf_, out_;
};

}  // namespace tilelink::baselines
