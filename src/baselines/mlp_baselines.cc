#include "baselines/mlp_baselines.h"

#include "comm/p2p.h"
#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"

namespace tilelink::baselines {
namespace {

void AllocParts(rt::World& world, const MlpPartConfig& cfg,
                const std::string& name, comm::SymTensor* a_shards,
                comm::SymTensor* a_full, comm::SymTensor* b,
                comm::SymTensor* c) {
  const int R = world.size();
  TL_CHECK_EQ(cfg.m % R, 0);
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    if (a_shards != nullptr) {
      a_shards->push_back(Tensor::Alloc(dev, name + ".a_shard",
                                        {cfg.m / R, cfg.k}, DType::kBF16));
    }
    if (a_full != nullptr) {
      a_full->push_back(
          Tensor::Alloc(dev, name + ".a_full", {cfg.m, cfg.k}, DType::kBF16));
    }
    if (b != nullptr) {
      b->push_back(
          Tensor::Alloc(dev, name + ".b", {cfg.k, cfg.n}, DType::kBF16));
    }
    if (c != nullptr) {
      c->push_back(
          Tensor::Alloc(dev, name + ".c", {cfg.m, cfg.n}, DType::kBF16));
    }
  }
}

}  // namespace

// ---- NonOverlapAgGemm ---------------------------------------------------

NonOverlapAgGemm::NonOverlapAgGemm(rt::World& world,
                                   const MlpPartConfig& config)
    : world_(&world), cfg_(config) {
  AllocParts(world, cfg_, "no_ag_gemm", &a_shards_, &a_full_, &b_, &c_);
}

sim::Coro NonOverlapAgGemm::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  // NCCL AllGather, then cuBLAS GEMM — strictly serialized.
  co_await comm::AllGather(ctx, a_shards_, a_full_);
  compute::GemmOptions opt;
  opt.tiling = cfg_.gemm;
  opt.name = "no_ag_gemm.gemm";
  compute::LaunchGemm(ctx, *ctx.stream,
                      a_full_[static_cast<size_t>(ctx.rank)],
                      b_[static_cast<size_t>(ctx.rank)],
                      c_[static_cast<size_t>(ctx.rank)], opt);
  co_await ctx.stream->Synchronize();
}

// ---- DecomposeAgGemm ----------------------------------------------------

DecomposeAgGemm::DecomposeAgGemm(rt::World& world,
                                 const MlpPartConfig& config)
    : world_(&world), cfg_(config) {
  AllocParts(world, cfg_, "dec_ag_gemm", &a_shards_, &a_full_, &b_, &c_);
}

sim::Coro DecomposeAgGemm::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const int R = world_->size();
  const int64_t m_per = cfg_.m / R;
  const int r = ctx.rank;
  // Async-TP: per step, copy the next shard on the comm stream while the
  // compute stream runs the GEMM for the shard that just arrived. Each step
  // pays event plumbing plus a host synchronization.
  Tensor my_dst = a_full_[static_cast<size_t>(r)].Slice(0, r * m_per, m_per);
  ctx.comm_stream->Enqueue(
      [this, r, my_dst]() mutable -> sim::Coro {
        co_await comm::CopyTensorSM(*world_, a_shards_[static_cast<size_t>(r)],
                                    my_dst);
      });
  for (int s = 0; s < R; ++s) {
    const int src = (r + s) % R;
    if (s > 0) {
      Tensor dst =
          a_full_[static_cast<size_t>(r)].Slice(0, src * m_per, m_per);
      ctx.comm_stream->Enqueue(
          [this, src, r, dst]() mutable -> sim::Coro {
            co_await comm::CopyTensorP2P(*world_, world_->device(r),
                                         a_shards_[static_cast<size_t>(src)],
                                         dst);
          });
    }
    auto ev = ctx.comm_stream->RecordEvent();
    ctx.stream->WaitEvent(ev);
    compute::GemmOptions opt;
    opt.tiling = cfg_.gemm;
    opt.name = "dec_ag_gemm.chunk";
    Tensor a_chunk =
        a_full_[static_cast<size_t>(r)].Slice(0, src * m_per, m_per);
    Tensor c_chunk = c_[static_cast<size_t>(r)].Slice(0, src * m_per, m_per);
    compute::LaunchGemm(ctx, *ctx.stream, a_chunk,
                        b_[static_cast<size_t>(r)], c_chunk, opt);
    // Host-driven plumbing per chunk: the host blocks on the chunk GEMM
    // before reusing buffers, plus event record/wait overhead — the "too
    // many host-driven synchronizations" the paper's traces attribute to
    // Async-TP.
    co_await ctx.stream->Synchronize();
    co_await sim::Delay{2 * world_->spec().host_sync_latency};
  }
  co_await ctx.stream->Synchronize();
}

// ---- NonOverlapGemmRs ---------------------------------------------------

NonOverlapGemmRs::NonOverlapGemmRs(rt::World& world,
                                   const MlpPartConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    a_.push_back(
        Tensor::Alloc(dev, "no_gemm_rs.a", {cfg_.m, cfg_.k}, DType::kBF16));
    b_.push_back(
        Tensor::Alloc(dev, "no_gemm_rs.b", {cfg_.k, cfg_.n}, DType::kBF16));
    gemm_out_.push_back(Tensor::Alloc(dev, "no_gemm_rs.gemm_out",
                                      {cfg_.m, cfg_.n}, DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "no_gemm_rs.out", {cfg_.m / R, cfg_.n},
                                 DType::kBF16));
  }
}

sim::Coro NonOverlapGemmRs::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  compute::GemmOptions opt;
  opt.tiling = cfg_.gemm;
  opt.name = "no_gemm_rs.gemm";
  compute::LaunchGemm(ctx, *ctx.stream, a_[static_cast<size_t>(ctx.rank)],
                      b_[static_cast<size_t>(ctx.rank)],
                      gemm_out_[static_cast<size_t>(ctx.rank)], opt);
  co_await ctx.stream->Synchronize();
  co_await comm::ReduceScatter(ctx, gemm_out_, out_);
}

// ---- DecomposeGemmRs ----------------------------------------------------

DecomposeGemmRs::DecomposeGemmRs(rt::World& world,
                                 const MlpPartConfig& config)
    : world_(&world), cfg_(config) {
  const int R = world.size();
  TL_CHECK_EQ(cfg_.m % R, 0);
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    a_.push_back(
        Tensor::Alloc(dev, "dec_gemm_rs.a", {cfg_.m, cfg_.k}, DType::kBF16));
    b_.push_back(
        Tensor::Alloc(dev, "dec_gemm_rs.b", {cfg_.k, cfg_.n}, DType::kBF16));
    gemm_out_.push_back(Tensor::Alloc(dev, "dec_gemm_rs.gemm_out",
                                      {cfg_.m, cfg_.n}, DType::kBF16));
    partial_.push_back(Tensor::Alloc(dev, "dec_gemm_rs.partial",
                                     {cfg_.m, cfg_.n}, DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, "dec_gemm_rs.out",
                                 {cfg_.m / R, cfg_.n}, DType::kBF16));
  }
}

sim::Coro DecomposeGemmRs::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  const int R = world_->size();
  const int64_t m_per = cfg_.m / R;
  const int r = ctx.rank;
  // Chunked GEMMs; after each chunk completes, its rows are pushed to the
  // owner rank (simplified pairwise reduce-scatter on the comm stream),
  // with host syncs between chunks.
  for (int s = 0; s < R; ++s) {
    const int owner = (r + s) % R;
    compute::GemmOptions opt;
    opt.tiling = cfg_.gemm;
    opt.name = "dec_gemm_rs.chunk";
    Tensor a_chunk =
        a_[static_cast<size_t>(r)].Slice(0, owner * m_per, m_per);
    Tensor c_chunk =
        gemm_out_[static_cast<size_t>(r)].Slice(0, owner * m_per, m_per);
    compute::LaunchGemm(ctx, *ctx.stream, a_chunk,
                        b_[static_cast<size_t>(r)], c_chunk, opt);
    auto ev = ctx.stream->RecordEvent();
    ctx.comm_stream->WaitEvent(ev);
    if (owner != r) {
      Tensor dst =
          partial_[static_cast<size_t>(owner)].Slice(0, r * m_per, m_per);
      ctx.comm_stream->Enqueue([this, r, c_chunk, dst]() mutable -> sim::Coro {
        co_await comm::CopyTensorP2P(*world_, world_->device(r), c_chunk, dst);
      });
    }
    co_await ctx.stream->Synchronize();
    co_await sim::Delay{2 * world_->spec().host_sync_latency};
  }
  co_await ctx.stream->Synchronize();
  co_await ctx.comm_stream->Synchronize();
  co_await world_->barrier().Arrive();  // all partials delivered
  // Local reduction of R partial row-blocks into the owned shard.
  if (world_->functional()) {
    Tensor out = out_[static_cast<size_t>(r)];
    for (int64_t i = 0; i < m_per; ++i) {
      for (int64_t c = 0; c < cfg_.n; ++c) {
        float acc =
            gemm_out_[static_cast<size_t>(r)].at({r * m_per + i, c});
        for (int p = 0; p < R; ++p) {
          if (p == r) continue;
          acc += partial_[static_cast<size_t>(r)].at({p * m_per + i, c});
        }
        out.at({i, c}) = acc;
      }
    }
  }
  co_await sim::Delay{world_->cost().MemoryBound(
      static_cast<uint64_t>(R) * m_per * cfg_.n * 2 * 3, 20)};
}

}  // namespace tilelink::baselines
