// Baselines for the tensor-parallel MLP experiments (Table 2, Figure 8).
//
//  - NonOverlapAgGemm / NonOverlapGemmRs: cuBLAS+NCCL analog — the
//    collective completes before the GEMM starts (or after it ends).
//  - DecomposeAgGemm / DecomposeGemmRs: Async-TP PyTorch analog — the
//    operators are split into R chunks pipelined on two streams with
//    host-driven synchronization between chunks. Small chunks lose wave
//    efficiency and every step pays host sync latency (paper §2.2).
//  - FLUX analogs live in flux_baselines.h (coupled kernel fusion).
//
// All baselines own buffers of the same shapes as the TileLink kernels so
// tests can verify identical numerics across methods.
#pragma once

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"

namespace tilelink::baselines {

struct MlpPartConfig {
  int64_t m = 0;  // global rows
  int64_t k = 0;
  int64_t n = 0;
  compute::GemmTiling gemm{128, 256, 64};
};

// ---- AllGather + GEMM ---------------------------------------------------

class NonOverlapAgGemm {
 public:
  NonOverlapAgGemm(rt::World& world, const MlpPartConfig& config);
  comm::SymTensor& a_shards() { return a_shards_; }
  comm::SymTensor& a_full() { return a_full_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& c() { return c_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MlpPartConfig cfg_;
  comm::SymTensor a_shards_, a_full_, b_, c_;
};

class DecomposeAgGemm {
 public:
  DecomposeAgGemm(rt::World& world, const MlpPartConfig& config);
  comm::SymTensor& a_shards() { return a_shards_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& c() { return c_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MlpPartConfig cfg_;
  comm::SymTensor a_shards_, a_full_, b_, c_;
};

// ---- GEMM + ReduceScatter ----------------------------------------------

class NonOverlapGemmRs {
 public:
  NonOverlapGemmRs(rt::World& world, const MlpPartConfig& config);
  comm::SymTensor& a() { return a_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MlpPartConfig cfg_;
  comm::SymTensor a_, b_, gemm_out_, out_;
};

class DecomposeGemmRs {
 public:
  DecomposeGemmRs(rt::World& world, const MlpPartConfig& config);
  comm::SymTensor& a() { return a_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  MlpPartConfig cfg_;
  comm::SymTensor a_, b_, gemm_out_, partial_, out_;
};

}  // namespace tilelink::baselines
