// FLUX-analog baselines (paper §2.2, §7): kernel fusion with a *tightly
// coupled* design space. FLUX fuses communication into the GEMM kernel
// itself — the comm tile size equals the GEMM tile size and communication
// shares the GEMM's SMs:
//  - AG+GEMM: every GEMM block pulls its own input tile inline before the
//    mainloop (cp.async-style). Highly effective — transfers of one block
//    overlap compute of others with zero DMA/host overhead, which is why
//    FLUX wins AG+GEMM in the paper (TileLink reaches ~94.5%).
//  - GEMM+RS: every GEMM block pushes its output tile to the owner rank
//    inline after the mainloop and the owner reduces. The coupled tile size
//    and SM-held transfers serialize the scatter behind compute, which is
//    why FLUX loses to TileLink's hybrid DMA mapping there.
// Both are built from TileLink's own primitives: FLUX is expressible as a
// specific (coupled) point of the design space (§3.1).
#pragma once

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"
#include "tilelink/block_channel.h"
#include "tilelink/program.h"

namespace tilelink::baselines {

struct FluxConfig {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  compute::GemmTiling gemm{128, 256, 64};
};

class FluxAgGemm {
 public:
  FluxAgGemm(rt::World& world, const FluxConfig& config);
  comm::SymTensor& a_shards() { return a_shards_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& c() { return c_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  FluxConfig cfg_;
  comm::SymTensor a_shards_, a_full_, b_, c_;
  std::vector<tl::BlockChannel> bcs_;
  tl::CompiledKernel compiled_;
};

class FluxGemmRs {
 public:
  FluxGemmRs(rt::World& world, const FluxConfig& config);
  comm::SymTensor& a() { return a_; }
  comm::SymTensor& b() { return b_; }
  comm::SymTensor& out() { return out_; }
  sim::Coro Run(rt::RankCtx& ctx);

 private:
  rt::World* world_;
  FluxConfig cfg_;
  comm::SymTensor a_, b_, staging_, out_;
  std::vector<tl::BlockChannel> bcs_;
  tl::CompiledKernel compiled_;
};

}  // namespace tilelink::baselines
