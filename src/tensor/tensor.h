// Host-backed device tensors.
//
// A Tensor is a strided view over a runtime Buffer. The dtype is *logical*:
// it determines the byte widths billed by communication and memory-bound
// cost functions (the paper's workloads are BF16), while functional numerics
// always run in fp32 for simplicity and exact reproducibility.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.h"
#include "runtime/device.h"
#include "runtime/memory.h"

namespace tilelink {

enum class DType { kBF16, kFP16, kFP32 };

inline int DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kBF16:
    case DType::kFP16:
      return 2;
    case DType::kFP32:
      return 4;
  }
  return 4;
}

inline const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kBF16:
      return "bf16";
    case DType::kFP16:
      return "fp16";
    case DType::kFP32:
      return "fp32";
  }
  return "?";
}

class Tensor {
 public:
  Tensor() = default;
  Tensor(rt::Buffer* buf, std::vector<int64_t> shape, DType dtype,
         int64_t offset = 0);
  Tensor(rt::Buffer* buf, std::vector<int64_t> shape,
         std::vector<int64_t> strides, DType dtype, int64_t offset);

  // Allocates a fresh buffer on `dev` sized to `shape`.
  static Tensor Alloc(rt::Device& dev, const std::string& name,
                      std::vector<int64_t> shape, DType dtype);
  // Control tensors are always materialized (routing tables etc.).
  static Tensor AllocControl(rt::Device& dev, const std::string& name,
                             std::vector<int64_t> shape, DType dtype);

  bool defined() const { return buf_ != nullptr; }
  rt::Buffer* buffer() const { return buf_; }
  int device() const { return buf_->device(); }
  DType dtype() const { return dtype_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const { return shape_.at(static_cast<size_t>(i)); }
  const std::vector<int64_t>& shape() const { return shape_; }
  const std::vector<int64_t>& strides() const { return strides_; }
  int64_t offset() const { return offset_; }

  int64_t numel() const;
  uint64_t logical_bytes() const {
    return static_cast<uint64_t>(numel()) * DTypeSize(dtype_);
  }
  bool materialized() const { return buf_->materialized(); }

  // Linear buffer offset of an index tuple.
  int64_t OffsetOf(std::initializer_list<int64_t> idx) const;

  float& at(std::initializer_list<int64_t> idx) {
    return buf_->at(OffsetOf(idx));
  }
  float at(std::initializer_list<int64_t> idx) const {
    return buf_->at(OffsetOf(idx));
  }

  // View of [start, start+len) along `dim` (no copy).
  Tensor Slice(int dim, int64_t start, int64_t len) const;
  // View with `dim` removed at position `index` (like torch.select).
  Tensor Select(int dim, int64_t index) const;
  // Collapses all dims into one (requires contiguous layout).
  Tensor Flatten() const;
  bool contiguous() const;

  // Element range [lo, hi) in the underlying buffer spanned by this view,
  // conservative for strided views (used by the consistency checker).
  void BufferRange(int64_t* lo, int64_t* hi) const;

 private:
  rt::Buffer* buf_ = nullptr;
  std::vector<int64_t> shape_;
  std::vector<int64_t> strides_;
  DType dtype_ = DType::kFP32;
  int64_t offset_ = 0;
};

}  // namespace tilelink
