// Host-side tensor utilities for tests, examples and workload setup.
// These manipulate functional payloads directly (no simulated time).
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tilelink {

// Fills with deterministic uniform values in [-scale, scale].
void FillRandom(Tensor& t, Rng& rng, float scale = 1.0f);
void FillConstant(Tensor& t, float value);
// t[i] = base + i * step over the flattened view.
void FillIota(Tensor& t, float base = 0.0f, float step = 1.0f);
// Deterministic integer-valued fill in (-range/2, range/2]. Integer-valued
// fp32 payloads make multi-rank reductions bit-exact under any accumulation
// order (sums of small integers are exact in fp32), which is what the
// functional collectives' bit-exactness tests rely on.
void FillIntLattice(Tensor& t, uint32_t seed, int range = 17);

// Copies src into dst (same shape, both materialized).
void CopyTensor(const Tensor& src, Tensor& dst);

// Largest |a-b| over all elements (shapes must match).
float MaxAbsDiff(const Tensor& a, const Tensor& b);
// True when every element pair is bitwise identical (shapes must match).
bool BitExact(const Tensor& a, const Tensor& b);
// True when MaxAbsDiff <= atol + rtol * |b|, elementwise.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f,
              float atol = 1e-5f);

// Sum of all elements (fp64 accumulation).
double Sum(const Tensor& t);

}  // namespace tilelink
