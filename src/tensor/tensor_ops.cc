#include "tensor/tensor_ops.h"

#include <bit>
#include <cmath>
#include <functional>

namespace tilelink {
namespace {

// Applies fn to every linear buffer offset of the view, in row-major order.
void ForEachOffset(const Tensor& t, const std::function<void(int64_t)>& fn) {
  const int nd = t.ndim();
  if (t.numel() == 0) return;
  std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
  while (true) {
    int64_t off = t.offset();
    for (int i = 0; i < nd; ++i) {
      off += idx[static_cast<size_t>(i)] * t.strides()[static_cast<size_t>(i)];
    }
    fn(off);
    int i = nd - 1;
    for (; i >= 0; --i) {
      if (++idx[static_cast<size_t>(i)] < t.dim(i)) break;
      idx[static_cast<size_t>(i)] = 0;
    }
    if (i < 0) break;
  }
}

}  // namespace

void FillRandom(Tensor& t, Rng& rng, float scale) {
  auto data = t.buffer()->data();
  ForEachOffset(t, [&](int64_t off) {
    data[static_cast<size_t>(off)] = rng.Uniform(-scale, scale);
  });
}

void FillConstant(Tensor& t, float value) {
  auto data = t.buffer()->data();
  ForEachOffset(t,
                [&](int64_t off) { data[static_cast<size_t>(off)] = value; });
}

void FillIota(Tensor& t, float base, float step) {
  auto data = t.buffer()->data();
  int64_t i = 0;
  ForEachOffset(t, [&](int64_t off) {
    data[static_cast<size_t>(off)] = base + static_cast<float>(i++) * step;
  });
}

void FillIntLattice(Tensor& t, uint32_t seed, int range) {
  TL_CHECK_GT(range, 0);
  auto data = t.buffer()->data();
  int64_t i = 0;
  ForEachOffset(t, [&](int64_t off) {
    // Knuth multiplicative hash over (seed, position): well-spread, cheap,
    // and identical on every platform.
    const uint32_t h =
        (seed + static_cast<uint32_t>(i++) * 2654435761u) * 2654435761u;
    const int v = static_cast<int>(h % static_cast<uint32_t>(range)) -
                  range / 2;
    data[static_cast<size_t>(off)] = static_cast<float>(v);
  });
}

void CopyTensor(const Tensor& src, Tensor& dst) {
  TL_CHECK(src.shape() == dst.shape());
  auto s = src.buffer()->data();
  auto d = dst.buffer()->data();
  std::vector<int64_t> src_offs;
  src_offs.reserve(static_cast<size_t>(src.numel()));
  ForEachOffset(src, [&](int64_t off) { src_offs.push_back(off); });
  int64_t i = 0;
  ForEachOffset(dst, [&](int64_t off) {
    d[static_cast<size_t>(off)] = s[static_cast<size_t>(src_offs[i++])];
  });
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TL_CHECK(a.shape() == b.shape());
  auto da = a.buffer()->data();
  auto db = b.buffer()->data();
  std::vector<int64_t> a_offs;
  a_offs.reserve(static_cast<size_t>(a.numel()));
  ForEachOffset(a, [&](int64_t off) { a_offs.push_back(off); });
  float max_diff = 0.0f;
  int64_t i = 0;
  ForEachOffset(b, [&](int64_t off) {
    const float diff = std::fabs(da[static_cast<size_t>(a_offs[i++])] -
                                 db[static_cast<size_t>(off)]);
    if (diff > max_diff) max_diff = diff;
  });
  return max_diff;
}

bool BitExact(const Tensor& a, const Tensor& b) {
  TL_CHECK(a.shape() == b.shape());
  auto da = a.buffer()->data();
  auto db = b.buffer()->data();
  std::vector<int64_t> a_offs;
  a_offs.reserve(static_cast<size_t>(a.numel()));
  ForEachOffset(a, [&](int64_t off) { a_offs.push_back(off); });
  bool ok = true;
  int64_t i = 0;
  ForEachOffset(b, [&](int64_t off) {
    const float va = da[static_cast<size_t>(a_offs[i++])];
    const float vb = db[static_cast<size_t>(off)];
    if (std::bit_cast<uint32_t>(va) != std::bit_cast<uint32_t>(vb)) ok = false;
  });
  return ok;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  TL_CHECK(a.shape() == b.shape());
  auto da = a.buffer()->data();
  auto db = b.buffer()->data();
  std::vector<int64_t> a_offs;
  a_offs.reserve(static_cast<size_t>(a.numel()));
  ForEachOffset(a, [&](int64_t off) { a_offs.push_back(off); });
  bool ok = true;
  int64_t i = 0;
  ForEachOffset(b, [&](int64_t off) {
    const float va = da[static_cast<size_t>(a_offs[i++])];
    const float vb = db[static_cast<size_t>(off)];
    if (std::fabs(va - vb) > atol + rtol * std::fabs(vb)) ok = false;
  });
  return ok;
}

double Sum(const Tensor& t) {
  auto data = t.buffer()->data();
  double acc = 0.0;
  ForEachOffset(t, [&](int64_t off) { acc += data[static_cast<size_t>(off)]; });
  return acc;
}

}  // namespace tilelink
