#include "tensor/tensor.h"

namespace tilelink {
namespace {

std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i) + 1] * shape[static_cast<size_t>(i) + 1];
  }
  return strides;
}

}  // namespace

Tensor::Tensor(rt::Buffer* buf, std::vector<int64_t> shape, DType dtype,
               int64_t offset)
    : Tensor(buf, shape, RowMajorStrides(shape), dtype, offset) {}

Tensor::Tensor(rt::Buffer* buf, std::vector<int64_t> shape,
               std::vector<int64_t> strides, DType dtype, int64_t offset)
    : buf_(buf), shape_(std::move(shape)), strides_(std::move(strides)),
      dtype_(dtype), offset_(offset) {
  TL_CHECK(buf != nullptr);
  TL_CHECK_EQ(shape_.size(), strides_.size());
  for (int64_t d : shape_) TL_CHECK_GE(d, 0);
}

Tensor Tensor::Alloc(rt::Device& dev, const std::string& name,
                     std::vector<int64_t> shape, DType dtype) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return Tensor(dev.Alloc(name, n), std::move(shape), dtype, 0);
}

Tensor Tensor::AllocControl(rt::Device& dev, const std::string& name,
                            std::vector<int64_t> shape, DType dtype) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return Tensor(dev.AllocControl(name, n), std::move(shape), dtype, 0);
}

int64_t Tensor::numel() const {
  int64_t n = 1;
  for (int64_t d : shape_) n *= d;
  return n;
}

int64_t Tensor::OffsetOf(std::initializer_list<int64_t> idx) const {
  TL_DCHECK(static_cast<int>(idx.size()) == ndim());
  int64_t off = offset_;
  int i = 0;
  for (int64_t v : idx) {
    TL_DCHECK(v >= 0 && v < shape_[static_cast<size_t>(i)]);
    off += v * strides_[static_cast<size_t>(i)];
    ++i;
  }
  return off;
}

Tensor Tensor::Slice(int dim, int64_t start, int64_t len) const {
  TL_CHECK_GE(dim, 0);
  TL_CHECK_LT(dim, ndim());
  TL_CHECK_GE(start, 0);
  TL_CHECK_LE(start + len, shape_[static_cast<size_t>(dim)]);
  std::vector<int64_t> new_shape = shape_;
  new_shape[static_cast<size_t>(dim)] = len;
  return Tensor(buf_, std::move(new_shape), strides_, dtype_,
                offset_ + start * strides_[static_cast<size_t>(dim)]);
}

Tensor Tensor::Select(int dim, int64_t index) const {
  TL_CHECK_GE(dim, 0);
  TL_CHECK_LT(dim, ndim());
  TL_CHECK_GE(index, 0);
  TL_CHECK_LT(index, shape_[static_cast<size_t>(dim)]);
  std::vector<int64_t> new_shape;
  std::vector<int64_t> new_strides;
  for (int i = 0; i < ndim(); ++i) {
    if (i == dim) continue;
    new_shape.push_back(shape_[static_cast<size_t>(i)]);
    new_strides.push_back(strides_[static_cast<size_t>(i)]);
  }
  return Tensor(buf_, std::move(new_shape), std::move(new_strides), dtype_,
                offset_ + index * strides_[static_cast<size_t>(dim)]);
}

bool Tensor::contiguous() const {
  int64_t expect = 1;
  for (int i = ndim() - 1; i >= 0; --i) {
    if (shape_[static_cast<size_t>(i)] == 1) continue;
    if (strides_[static_cast<size_t>(i)] != expect) return false;
    expect *= shape_[static_cast<size_t>(i)];
  }
  return true;
}

Tensor Tensor::Flatten() const {
  TL_CHECK_MSG(contiguous(), "Flatten requires a contiguous tensor");
  return Tensor(buf_, {numel()}, {1}, dtype_, offset_);
}

void Tensor::BufferRange(int64_t* lo, int64_t* hi) const {
  int64_t span = 0;
  for (int i = 0; i < ndim(); ++i) {
    if (shape_[static_cast<size_t>(i)] > 0) {
      span += (shape_[static_cast<size_t>(i)] - 1) *
              strides_[static_cast<size_t>(i)];
    }
  }
  *lo = offset_;
  *hi = offset_ + span + 1;
}

}  // namespace tilelink
