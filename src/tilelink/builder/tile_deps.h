// Declarative tile-dependence layer: which tiles of which operand each
// producer/consumer role reads and writes (ROADMAP "automatic overlap
// generation"; Syncopate/T3 in PAPERS.md are the grounding).
//
// An OverlapSpec is the input to the OverlapPlanner (overlap_gen.h): a set
// of named tile spaces (one per operand, in units of that operand's comm
// tile) and a set of roles, each declaring its kind (compute, ring RS,
// NIC rail, row AllGather, ...), its resource request and the tile ranges
// it reads/writes. The planner derives from this everything a kernel
// constructor used to encode by hand: work-item counts, block/channel
// claims against the ResourceBudget, ring chunk schedules (including the
// small-m column split) and NIC rail windows.
//
// Validate() rejects malformed specs with named-field messages (mirroring
// HierConfig::Validate) before any role is built: dangling tile
// references, consumer reads of a non-resident space no writer covers,
// and cyclic producer/consumer dependences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/kernel_common.h"

namespace tilelink::tl {

// One operand's tile space: `tiles` tiles of `tile_rows` rows each. A
// resident space needs no producer (shard inputs, weights); reads of a
// non-resident space must be covered by some role's writes.
struct TileSpaceSpec {
  std::string name;
  int64_t tiles = 0;
  int64_t tile_rows = 1;
  bool resident = false;
};

// Half-open tile range [lo, hi) of a named space; lo == hi == 0 means the
// whole space. (TileRange in mapping.h is the row-range type; this one is
// in tile units.)
struct TileRef {
  std::string space;
  int64_t lo = 0;
  int64_t hi = 0;

  bool whole() const { return lo == 0 && hi == 0; }
};

// The role archetypes the planner knows how to schedule. kComm is a
// generic explicitly-sized communication role (e.g. moe_rs's topk
// reduce); the link-role kinds carry ring/rail geometry the planner turns
// into chunk schedules.
enum class OverlapRoleKind {
  kCompute,           // tiles from writes (or work_items override)
  kComm,              // explicit work_items
  kRowAllGather,      // pull: work = dest tiles; push: work = shard tiles
  kRingReduceScatter, // NVLink ring, seg_blocks * (block_rows/chunk_rows)
  kHierAgRing,        // node-local AG ring of the fused hierarchical AG
  kNicRailPush,       // NIC rail chunks, window-clamped
  kNicRailReduce,     // rail arrival reduce, one block per rail chunk
  kHostDma,           // host copy-engine program; no device role
};

const char* OverlapRoleKindName(OverlapRoleKind kind);

struct OverlapRoleSpec {
  std::string name;
  OverlapRoleKind kind = OverlapRoleKind::kCompute;
  // Resource binding (§3.1): kRowAllGather switches pull/push/DMA on it;
  // ring roles use it only for the dma_push flag.
  CommResource resource = CommResource::kSmPush;
  int want_sms = 0;
  std::vector<TileRef> reads;
  std::vector<TileRef> writes;
  // Explicit work-item override (dynamic shapes: MoE group blocks).
  int64_t work_items = -1;

  // Link-role geometry (ring / rail kinds).
  int group_size = 0;      // ring group (0: whole world)
  int seg_blocks = 1;      // destination blocks per ring segment
  int64_t block_rows = 0;  // rows of one global destination block
  int chunk_rows = 0;      // ring chunk rows (comm tile m)
  int64_t cols = 0;        // row width the ring moves (n, or k for AG)
  bool allow_col_split = false;  // small-m fix: split columns when the
                                 // row-wise chunk count is too small
  int nic_chunk_blocks = 0;  // rail chunk granularity, in comm tiles
  int staging_depth = 0;     // requested rail staging slots per peer
  int peers = 0;             // rail peers (nodes - 1)
};

// The declarative fused kernel: spaces + roles, in role claim order.
struct OverlapSpec {
  std::string kernel;
  std::vector<TileSpaceSpec> spaces;
  std::vector<OverlapRoleSpec> roles;

  // Empty string when well-formed; otherwise one named-field error
  // message per the first violation found (deterministic order).
  std::string Validate() const;

  // Deterministic textual form (round-trip/determinism tests).
  std::string Describe() const;
};

}  // namespace tilelink::tl
