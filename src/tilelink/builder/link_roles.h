// Tile-centric link roles: the chunk-pipeline machinery every multi-fabric
// communication stage shares, lifted out of the multinode collectives so
// the builder layer owns exactly one implementation of it.
//
// A *link role* is the communication half of a tile-centric pipeline on one
// fabric: tiles are grouped into chunks, at most `window` chunks are in
// flight at once (NVLink ring channels, NIC staging depth), each chunk's
// departure is gated on upstream tile readiness (a producer's notify, the
// previous pipeline stage's reduction), and each arrival is published to
// downstream consumers as a contiguous tile prefix (InOrderSignal). The two
// concrete roles mirror the FabricBinding variants a RolePlan budgets:
//
//  * NvlinkRingRole (FabricBinding::kNvlink): intra-node ring stages —
//    chunk size `intra_chunk_tiles`, window `intra_channels`.
//  * NicRailRole (FabricBinding::kNic): inter-node rail exchanges — chunk
//    size `nic_chunk_tiles`, window `staging_depth` clamped by the device's
//    NIC queue-pair budget (ResourceBudget::ClaimFabric), shared across the
//    role's concurrent peer exchanges.
//
// Each role has two forms with identical pipeline semantics:
//  * Host-driven streams (Stream() + RunLinkStream): coroutines driving
//    fabric transfers directly — the form the multinode collectives run.
//  * Device block programs (BuildNicRailPush / BuildNicRailReduce here,
//    BuildRingReduceScatter in kernels/ring_rs.h for the NVLink ring):
//    ConsumerTileWait/PeerTileWait gates, TilePushData chunk sends and
//    notify-on-landing, compiled and verified like any other role —
//    the form fused kernels hand to RolePlan::Comm with their
//    FabricBinding (kernels/gemm_hier_rs is the first kNic user).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "comm/collectives.h"
#include "runtime/world.h"
#include "sim/coro.h"
#include "sim/flag.h"
#include "sim/network.h"
#include "tilelink/program.h"

namespace tilelink::tl {

// Per-sender chunk-completion reordering: flow completions under max-min
// sharing are only approximately FIFO, but downstream consumers must see a
// prefix ("tiles 0..k arrived"), so completions are published in order.
class InOrderSignal {
 public:
  InOrderSignal(sim::Simulator* sim, std::string name)
      : arrived_(sim, std::move(name)) {}

  // Marks chunk `index` (covering `tiles` tiles) complete; publishes every
  // contiguous finished prefix to the flag. When a trace recorder is
  // attached and set_trace_pid was called, every publication allocates a
  // flow id (its "s" point anchored at span_pid/span_tid — the caller's
  // current span — when given, else the signal's own lane) and bumps the
  // per-rank published-prefix watermark counter.
  void Complete(std::size_t index, int64_t tiles, int span_pid = -1,
                int span_tid = 0);

  // Consumes the flow arrow of the publication that first covered
  // `tiles_threshold` cumulative tiles: returns (flow id, flow name), or
  // (0, "") when untraced or already consumed. Each arrow binds exactly
  // once (pinned by tests/test_trace.cc).
  std::pair<uint64_t, std::string> TakeFlowCovering(uint64_t tiles_threshold);

  sim::Flag& tiles_arrived() { return arrived_; }
  const std::string& name() const { return arrived_.name(); }

  // Trace process the watermark counter and unanchored flow starts land on
  // (the receiver's rank pid). -1 (default) keeps the signal silent.
  void set_trace_pid(int pid) { trace_pid_ = pid; }
  int trace_pid() const { return trace_pid_; }

 private:
  sim::Flag arrived_;
  std::vector<int64_t> done_;  // tiles of chunk i, 0 = not yet complete
  std::size_t cursor_ = 0;
  int trace_pid_ = -1;
  // Publication ledger (trace only): cumulative tiles and flow id per
  // published chunk, in publication order.
  struct FlowEntry {
    uint64_t cum;
    uint64_t id;
  };
  std::vector<FlowEntry> flows_;
};

// Trace-only ledger pairing plain-Flag publications with flow arrows (the
// reducer -> rail-send bridge: the publisher is a cumulative Flag, not an
// InOrderSignal). The publisher registers (cumulative value, flow id); a
// downstream chunk consumes the arrow covering its gate threshold.
class FlowLedger {
 public:
  void Publish(uint64_t cum, uint64_t flow_id, std::string name) {
    entries_.push_back(Entry{cum, flow_id, std::move(name)});
  }
  std::pair<uint64_t, std::string> TakeCovering(uint64_t threshold) {
    for (Entry& e : entries_) {
      if (e.cum >= threshold && e.id != 0) {
        const uint64_t id = e.id;
        e.id = 0;
        return {id, e.name};
      }
    }
    return {0, std::string()};
  }

 private:
  struct Entry {
    uint64_t cum;
    uint64_t id;
    std::string name;
  };
  std::vector<Entry> entries_;
};

// One contiguous fp32 run moved by a payload chunk.
struct CopyRun {
  int64_t src_lo, dst_lo, elems;
};

// Payload + checker instrumentation for one chunk. Empty (world == nullptr)
// in timing-only mode, so the timing path allocates no strings or runs.
struct ChunkIo {
  rt::World* world = nullptr;
  rt::Buffer* src = nullptr;
  rt::Buffer* dst = nullptr;
  std::vector<CopyRun> runs;
  std::string reader;  // sender-side consume probe (reads of `src`)
  std::string writer;  // receiver-side write interval (writes of `dst`)
};

// Upstream readiness gate of one chunk: wait until `flag` reaches
// `threshold` (null flag: the chunk may leave immediately).
struct FlagGate {
  sim::Flag* flag = nullptr;
  uint64_t threshold = 0;
};

// One chunk of a link stream.
struct LinkChunk {
  int64_t tiles = 0;
  FlagGate gate;
  // §4.2 fault injection: publish the arrival signal when the send starts
  // instead of when the payload lands.
  bool eager_publish = false;
  ChunkIo io;
  // Trace-only: consumes the flow arrow of the upstream publication this
  // chunk's gate waited on, so the chunk's span binds the arrow's finish.
  // Unset (and never touched) in untraced runs.
  std::function<std::pair<uint64_t, std::string>()> take_flow;
};

// One windowed chunk stream over a fabric edge — the producer side of a
// link role. RunLinkStream walks chunks 0..num_chunks-1: await the chunk's
// gate, throttle to `window` chunks in flight, then launch the transfer;
// each landing publishes the receiver-side InOrderSignal and returns the
// stream's window credit. Completes when every chunk has landed.
struct LinkStream {
  sim::Network* fabric = nullptr;
  int src = -1;
  int dst = -1;
  uint64_t tile_bytes = 0;
  int window = 1;
  InOrderSignal* arrival = nullptr;
  std::string name;              // sender-side drain flag name
  const char* chunk_label = "";  // spawned transfer coroutine label
  int64_t num_chunks = 0;
  std::function<LinkChunk(int64_t)> chunk;

  // --- reliability (defaults keep the legacy exact-timing path) ---
  // Per-attempt ack deadline; 0 disables timeouts entirely.
  sim::TimeNs ack_timeout = 0;
  // Retransmit budget after a failed attempt; exhaustion raises FaultError.
  int max_retries = 0;
  // Exponential-backoff unit billed in simulated time between attempts
  // (0: the fabric's wire latency).
  sim::TimeNs backoff_base = 0;
  // Name reported in FaultError (set before `name` is consumed).
  std::string role;
  // (chunk index, attempt) -> rail, or -1 to let the fabric pick the
  // least-loaded live rail. Installed by ApplyLinkFaultPolicy on
  // multi-rail fabrics; retries always pass attempt > 0 so failover
  // re-picks among survivors.
  std::function<int(int64_t, int)> rail_of;
  // Trace process id of the sender rank (-1: stream untraced). Role
  // Stream() builders fill it from World::trace_pid(src); chunk spans,
  // window-occupancy counters and flow finishes all land on it.
  int trace_pid = -1;
};

sim::Coro RunLinkStream(sim::Simulator* sim, LinkStream stream);

// Arms a built stream against the world's fault plan and rail topology:
// on a multi-rail fabric installs the self-healing rail scheduler (chunks
// apportioned across rails by surviving bandwidth via WeightedExtents,
// re-planned whenever rail health changes, retries falling over to the
// least-loaded live rail); when the plan perturbs the stream's fabric,
// arms ack-timeout (cost model's expected chunk flow time x the plan's
// timeout_factor), bounded retransmit, and backoff. A default-constructed
// world (no plan, one rail) leaves the stream untouched. `chunk_bytes` is
// the size of a full chunk (tail chunks may be smaller).
void ApplyLinkFaultPolicy(rt::World& world, uint64_t chunk_bytes,
                          LinkStream* stream);

// Intra-node NVLink ring link role (host-driven form). The device-program
// form of the same role is kernels/ring_rs.h's BuildRingReduceScatter,
// which fused kernels bind through RolePlan::Comm(FabricBinding::kNvlink).
class NvlinkRingRole {
 public:
  static constexpr FabricBinding kFabric = FabricBinding::kNvlink;

  NvlinkRingRole(rt::World& world, int chunk_tiles, int channels);

  int chunk_tiles() const { return chunk_tiles_; }
  int window() const { return channels_; }

  LinkStream Stream(int src, int dst, uint64_t tile_bytes,
                    InOrderSignal* arrival, std::string name,
                    const char* chunk_label, int64_t num_chunks,
                    std::function<LinkChunk(int64_t)> chunk) const;

 private:
  rt::World* world_;
  int chunk_tiles_;
  int channels_;
};

// Inter-node NIC rail link role (host-driven form): one stream per rail
// peer, window = per-peer staging depth after the NIC queue-pair budget
// clamp (`peers` concurrent exchanges share the device's budget).
class NicRailRole {
 public:
  static constexpr FabricBinding kFabric = FabricBinding::kNic;

  NicRailRole(rt::World& world, int chunk_tiles, int staging_depth,
              int peers);

  int chunk_tiles() const { return chunk_tiles_; }
  // Effective per-peer staging depth after the channel-budget clamp.
  int window() const { return staging_depth_; }

  LinkStream Stream(int src, int dst, uint64_t tile_bytes,
                    InOrderSignal* arrival, std::string name,
                    const char* chunk_label, int64_t num_chunks,
                    std::function<LinkChunk(int64_t)> chunk) const;

 private:
  rt::World* world_;
  int chunk_tiles_;
  int staging_depth_;
};

// ---------------------------------------------------------------------------
// Device-program form of the NIC rail role (fused kernels)
// ---------------------------------------------------------------------------

// NIC rail push: each comm block walks its share of (peer node, chunk) work
// items — wait for the node-reduced chunk (ConsumerTileWait on a caller-
// supplied spec, typically the ring role's completion channels), acquire-
// load it, then tile_push_data it across the NIC to the rail peer and
// notify the peer's rail arrival channel with release semantics once it
// lands. RolePlan::Comm binds the program to FabricBinding::kNic so the
// blocks double as the stream window: `staging_depth * peers` blocks keep
// that many NIC messages in flight, clamped by the queue-pair budget.
struct NicRailPushParams {
  int nodes = 0;
  int per_node = 0;
  int64_t block_rows = 0;  // rows of one global destination block
  int64_t n = 0;           // row width
  int64_t chunk_rows = 0;  // rows per NIC message
  DType dtype = DType::kBF16;
  comm::SymTensor src;      // per-rank node-reduced rows (see src_row)
  comm::SymTensor staging;  // per-rank rail staging
                            // [(nodes-1) * block_rows, n], per-source slots
  // Row of `src[rank]` holding the node-reduced chunk destined for peer
  // node `peer_node`, offset `row` within the block.
  std::function<int64_t(const Env&, int peer_node, int64_t row)> src_row;
  // Wait spec gating the chunk send (node reduction of those rows done).
  std::function<WaitSpec(const Env&, int peer_node, int64_t chunk)> wait;
  int rail_channel_base = 0;  // kPeer channels: base + src_index*cpb + chunk
};

BlockProgram BuildNicRailPush(const NicRailPushParams& params);

// NIC rail reduce: the receiver side — for each chunk of the rank's own
// block, wait for the local node partial, then fold in every rail peer's
// partial as it lands (PeerTileWait on the rail arrival channel, acquire
// load, memory-bound reduce) and store the fully reduced chunk.
struct NicRailReduceParams {
  int nodes = 0;
  int per_node = 0;
  int64_t block_rows = 0;
  int64_t n = 0;
  int64_t chunk_rows = 0;
  DType dtype = DType::kBF16;
  comm::SymTensor src;      // per-rank node-reduced rows (see src_row)
  comm::SymTensor staging;  // rail staging, same layout as the push side
  comm::SymTensor outs;     // per-rank reduced block [block_rows, n]
  // Row of `src[rank]` holding the own-node partial at block offset `row`.
  std::function<int64_t(const Env&, int64_t row)> src_row;
  // Wait spec for the own-node partial of `chunk`.
  std::function<WaitSpec(const Env&, int64_t chunk)> wait;
  int rail_channel_base = 0;
};

BlockProgram BuildNicRailReduce(const NicRailReduceParams& params);

// Work items of the rail roles: chunks per block and per role.
int64_t RailChunksPerBlock(int64_t block_rows, int64_t chunk_rows);

// Receiver-side per-source slot indexing shared by every rail consumer
// (device rail roles and the host collectives): slot of source node
// `src_node` in an array that skips the receiver's own node, and its
// inverse.
int RailSourceIndex(int src_node, int my_node);
int RailSourceNode(int slot, int my_node);

}  // namespace tilelink::tl
