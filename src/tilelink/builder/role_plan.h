// RolePlan / ResourceBudget: the resource-binding subspace of §3.1.
//
// A fused kernel's roles occupy consecutive block-id ranges on one device;
// communication roles claim their SMs first and compute roles fill the
// remainder, capped by their tile counts. Every kernel constructor used to
// duplicate this arithmetic; RolePlan centralizes it and is the single
// place the autotuner's resource-binding knob (comm SM count, SM vs. DMA)
// feeds into.
//
// TileOrder is the tile-order subspace: the m-tile visit order of a
// compute role, rotated so a chosen rank's segment is produced/consumed
// first (ring schedules).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_spec.h"
#include "tilelink/kernels/kernel_common.h"
#include "tilelink/program.h"

namespace tilelink::tl {

const char* FabricBindingName(FabricBinding fabric);

// Default fabric of a §3.1 resource binding: SM roles move tiles over
// NVLink, DMA roles occupy copy engines.
FabricBinding FabricForResource(CommResource r);

// Compute-role m-tile visit order (§3.1 tile order).
enum class TileOrder {
  kRowMajor,        // natural order, no rotation
  kOwnerFirst,      // start at this rank's own segment (AG consumers: local
                    // data is ready first)
  kNextRankFirst,   // start at the right neighbor's segment (RS producers:
                    // the ring consumes that segment first)
};

const char* TileOrderName(TileOrder order);

// Rotated m-tile index: visit order `raw_m` -> actual tile, with the
// segment of (rank + offset) mapped to the front. Degenerates to raw_m when
// tiles_m is not evenly divisible across ranks.
int64_t SwizzleTileM(int64_t raw_m, int64_t tiles_m, int64_t tiles_m_per_rank,
                     int rank, int ranks, TileOrder order);

// Splits one device's SMs among the roles of a fused kernel, in role order,
// and tracks per-fabric channel budgets so communication roles bound to
// different fabrics (NVLink channels, NIC queue pairs, copy engines) are
// capped independently of the SM split.
class ResourceBudget {
 public:
  explicit ResourceBudget(int total_sms) : total_(total_sms) {}

  // Budget for one device of `spec`: its SMs, its copy engines, and the
  // fabric channel counts the runtime exposes (NVLink SM-copy channels are
  // effectively unbounded at kernel granularity; NIC queue pairs are not).
  static ResourceBudget ForDevice(const sim::MachineSpec& spec);

  int total() const { return total_; }
  int used() const { return used_; }
  int remaining() const { return total_ - used_; }

  // Communication role: claims min(want, work_items) blocks. Comm roles are
  // sized by configuration, not by what is left — a misconfigured split
  // (comm SMs >= all SMs) still leaves at least one compute block below.
  int ClaimComm(int want, int64_t work_items);

  // Compute role: claims min(tiles, remaining) blocks, at least 1.
  int ClaimCompute(int64_t tiles);

  // Caps the number of channels a role may open on `fabric` (negative:
  // unlimited, the default).
  void SetFabricChannels(FabricBinding fabric, int capacity);
  int fabric_capacity(FabricBinding fabric) const;
  int fabric_used(FabricBinding fabric) const;

  // Claims up to `want` channels on `fabric`; returns the granted count
  // (at least 1 so a clamped role still makes progress, like ClaimCompute).
  int ClaimFabric(FabricBinding fabric, int want);

 private:
  static constexpr int kNumFabrics = 3;
  int total_;
  int used_ = 0;
  int fabric_capacity_[kNumFabrics] = {-1, -1, -1};  // -1: unlimited
  int fabric_used_[kNumFabrics] = {0, 0, 0};
};

// Ordered role list with budget-driven block counts; produces the
// FusedKernelSpec a kernel hands to FusedKernelBase::Finalize.
class RolePlan {
 public:
  RolePlan(std::string kernel_name, int total_sms)
      : budget_(total_sms) {
    spec_.name = std::move(kernel_name);
  }

  ResourceBudget& budget() { return budget_; }

  // Adds a communication role sized by ClaimComm, bound to the NVLink
  // fabric (the single-node default every intra-node kernel uses).
  RolePlan& Comm(const std::string& name, int want_sms, int64_t work_items,
                 BlockProgram program);
  // Adds a communication role bound to an explicit fabric; the role's
  // channel count is additionally clamped by the budget's per-fabric
  // channel capacity (`want_channels` defaults to the block count).
  RolePlan& Comm(const std::string& name, FabricBinding fabric, int want_sms,
                 int64_t work_items, BlockProgram program,
                 int want_channels = 0);
  // Adds a compute role sized by ClaimCompute.
  RolePlan& Compute(const std::string& name, int64_t tiles,
                    BlockProgram program);

  FusedKernelSpec Build() { return std::move(spec_); }

 private:
  ResourceBudget budget_;
  FusedKernelSpec spec_;
};

}  // namespace tilelink::tl
