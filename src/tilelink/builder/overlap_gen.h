// OverlapPlanner: the scheduling pass that turns a declarative OverlapSpec
// (tile_deps.h) plus the fabric topology (MachineSpec: nodes x devices,
// NIC rails, copy engines) into the complete role schedule a fused kernel
// used to encode by hand — work-item counts, block/channel claims against
// the ResourceBudget, ring chunk schedules (including the small-m
// column-split fix) and NIC rail windows.
//
// The planner replays the exact claim arithmetic RolePlan performs, in
// declared role order, so BuildFromPlan can construct the RolePlan from
// the planned roles and TL_CHECK that the realized block/channel counts
// match the plan: the generated path is nanosecond-exact against the
// hand-built path by construction, not by luck.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine_spec.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/program.h"

namespace tilelink::tl {

// Ring chunks per destination block below which the planner splits the
// ring role column-wise (the ROADMAP small-m fix): fewer chunks than this
// cannot pipeline against the producer, so the fused kernel loses to the
// layer-level compose.
inline constexpr int kMinRingChunksPerBlock = 8;

// One scheduled role: the claim inputs (want_sms, work_items,
// want_channels) and the planner's prediction of what RolePlan will grant
// (blocks, channels) given every earlier role's claims.
struct PlannedRole {
  std::string name;
  OverlapRoleKind kind = OverlapRoleKind::kCompute;
  FabricBinding fabric = FabricBinding::kNvlink;
  bool device = true;  // false: host DMA program, no RolePlan entry
  int want_sms = 0;
  int64_t work_items = 0;
  int want_channels = 0;  // 0: defaults to the block count
  int blocks = 0;
  int channels = 0;
  // Ring-family schedule: column splits (1 = row-wise only) and row
  // chunks per destination block.
  int col_splits = 1;
  int64_t chunks_per_block = 0;
  // Rail schedule: granted staging window per peer.
  int window = 0;
};

struct OverlapPlan {
  std::string kernel;
  std::vector<PlannedRole> roles;

  const PlannedRole* Find(const std::string& name) const;
  const PlannedRole& At(const std::string& name) const;  // TL_CHECKs
  std::string Describe() const;
};

class OverlapPlanner {
 public:
  explicit OverlapPlanner(const sim::MachineSpec& spec) : spec_(spec) {}

  // TL_CHECKs spec.Validate() passes, then schedules every role in
  // declared order against one device's ResourceBudget.
  OverlapPlan Plan(const OverlapSpec& spec) const;

 private:
  sim::MachineSpec spec_;
};

// Builds the RolePlan from a plan: `program_of` maps a planned role to
// its BlockProgram (link-role geometry is already resolved, so kernels
// only supply the per-role tile programs). Device roles are claimed in
// plan order; the realized block/channel counts are TL_CHECKed against
// the plan's predictions.
FusedKernelSpec BuildFromPlan(
    const OverlapPlan& plan, int total_sms,
    const std::function<BlockProgram(const PlannedRole&)>& program_of);

}  // namespace tilelink::tl
