#include "tilelink/builder/link_roles.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/math_utils.h"
#include "sim/trace.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/mapping/interval_mapping.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

void InOrderSignal::Complete(std::size_t index, int64_t tiles, int span_pid,
                             int span_tid) {
  TL_CHECK_GT(tiles, 0);
  if (done_.size() <= index) done_.resize(index + 1, 0);
  TL_CHECK_EQ(done_[index], 0);
  done_[index] = tiles;
  sim::TraceRecorder* tr = trace_pid_ >= 0 ? arrived_.sim()->trace() : nullptr;
  bool advanced = false;
  while (cursor_ < done_.size() && done_[cursor_] > 0) {
    arrived_.Add(static_cast<uint64_t>(done_[cursor_]));
    if (tr != nullptr) {
      // One flow arrow per published chunk, anchored inside the caller's
      // span when it supplied one.
      const uint64_t id = tr->NewFlowId();
      flows_.push_back(FlowEntry{arrived_.value(), id});
      const int pid = span_pid >= 0 ? span_pid : trace_pid_;
      const int tid =
          span_pid >= 0 ? span_tid : tr->Track(trace_pid_, name());
      tr->AddFlowStart(id, pid, tid, arrived_.sim()->Now(), name());
    }
    ++cursor_;
    advanced = true;
  }
  if (tr != nullptr && advanced) {
    tr->AddCounter(trace_pid_, "published_prefix", name(),
                   arrived_.sim()->Now(),
                   static_cast<double>(arrived_.value()));
  }
}

std::pair<uint64_t, std::string> InOrderSignal::TakeFlowCovering(
    uint64_t tiles_threshold) {
  for (FlowEntry& e : flows_) {
    if (e.cum >= tiles_threshold && e.id != 0) {
      const uint64_t id = e.id;
      e.id = 0;
      return {id, name()};
    }
  }
  return {0, std::string()};
}

namespace {

// One chunk moving over an explicit fabric; publishes the in-order arrival
// signal at the receiver and the sender's drain counter. In payload mode the
// runs are copied when the transfer lands, the source reads are probed at
// send time and the destination write interval spans the transfer — with
// OpenWrite bracketing so checker retirement cannot outrun the audit. With
// `eager_publish` (fault injection) the arrival signal fires when the send
// starts: consumers wake mid-transfer, which the checker must catch.
//
// Reliability: each attempt is one TryTransfer under the stream's
// ack-timeout; a failed attempt closes its write interval with no
// RecordWrite (nothing landed, so retirement is unpinned and the retry
// cannot be flagged against the abort), backs off exponentially in
// simulated time, and retries on a freshly picked rail. Exhausting the
// budget throws FaultError naming the role, rank, and chunk; the arrival
// prefix is only ever published for delivered payloads (or eagerly at the
// first attempt when the fault plan injects the §4.2 reorder), so
// InOrderSignal is delayed, never corrupted.
//
// `stream` outlives every spawned chunk: RunLinkStream's frame holds it
// until the final drain wait completes.
sim::Coro TransferChunk(const LinkStream* stream, std::size_t index,
                        int64_t tiles, sim::Flag* done, bool eager_publish,
                        ChunkIo io,
                        std::function<std::pair<uint64_t, std::string>()>
                            take_flow) {
  sim::Network* net = stream->fabric;
  const uint64_t bytes = static_cast<uint64_t>(tiles) * stream->tile_bytes;
  InOrderSignal* sig = stream->arrival;
  rt::ConsistencyChecker* chk =
      io.world != nullptr ? &io.world->checker() : nullptr;
  sim::Simulator* simp = done->sim();
  sim::TraceRecorder* tr =
      stream->trace_pid >= 0 ? simp->trace() : nullptr;
  const int span_pid = tr != nullptr ? stream->trace_pid : -1;
  // `stream->name` was moved into `done` by RunLinkStream; the flag keeps it.
  const int span_tid = tr != nullptr ? tr->Track(span_pid, done->name()) : 0;
  if (tr != nullptr && take_flow) {
    const std::pair<uint64_t, std::string> f = take_flow();
    if (f.first != 0) {
      tr->AddFlowFinish(f.first, span_pid, span_tid, simp->Now(), f.second);
    }
  }
  const int max_attempts = 1 + std::max(0, stream->max_retries);
  const sim::TimeNs backoff =
      stream->backoff_base > 0
          ? stream->backoff_base
          : std::max<sim::TimeNs>(1, net->latency());
  for (int attempt = 0;; ++attempt) {
    const sim::TimeNs attempt_start = simp->Now();
    sim::TimeNs start = 0;
    uint64_t wt = 0;
    if (chk != nullptr) {
      start = io.world->sim().Now();
      for (const CopyRun& run : io.runs) {
        chk->CheckRead(io.src, run.src_lo, run.src_lo + run.elems, start,
                       io.reader);
      }
      wt = chk->OpenWrite(start);
    }
    if (attempt == 0 && eager_publish && sig != nullptr) {
      sig->Complete(index, tiles, span_pid, span_tid);
    }
    sim::TransferOpts opts;
    opts.ack_timeout = stream->ack_timeout;
    if (stream->rail_of) {
      opts.rail = stream->rail_of(static_cast<int64_t>(index), attempt);
    }
    sim::TransferOutcome out;
    co_await net->TryTransfer(stream->src, stream->dst, bytes, opts, &out);
    if (tr != nullptr) {
      // One span per attempt, aborted retransmits included, so the timeline
      // shows the retry storm rather than just the winning attempt.
      tr->AddSpan(span_pid, span_tid, stream->chunk_label, attempt_start,
                  simp->Now(), sim::kCatComm,
                  {sim::TraceArg::Num("chunk", static_cast<double>(index)),
                   sim::TraceArg::Num("tiles", static_cast<double>(tiles)),
                   sim::TraceArg::Num("bytes", static_cast<double>(bytes)),
                   sim::TraceArg::Num("attempt", attempt),
                   sim::TraceArg::Num("rail", out.rail),
                   sim::TraceArg::Num("delivered", out.delivered ? 1 : 0)});
    }
    if (out.delivered) {
      if (chk != nullptr) {
        const sim::TimeNs end = io.world->sim().Now();
        auto s = io.src->data();
        auto d = io.dst->data();
        for (const CopyRun& run : io.runs) {
          std::copy_n(s.data() + run.src_lo, run.elems, d.data() + run.dst_lo);
          chk->RecordWrite(io.dst, run.dst_lo, run.dst_lo + run.elems, start,
                           end, io.writer);
        }
        chk->CloseWrite(wt);
      }
      break;
    }
    // Aborted attempt: nothing landed, so close the interval unrecorded.
    if (chk != nullptr) chk->CloseWrite(wt);
    if (attempt + 1 >= max_attempts) {
      throw sim::FaultError(
          stream->role.empty() ? std::string(stream->chunk_label)
                               : stream->role,
          stream->src, static_cast<int64_t>(index), attempt + 1,
          out.timed_out ? "ack timeout" : "chunk dropped");
    }
    net->NoteRetry();
    co_await sim::Delay{backoff << std::min(attempt, 10)};
  }
  if (!eager_publish && sig != nullptr) {
    sig->Complete(index, tiles, span_pid, span_tid);
  }
  done->Add(1);
}

// Self-healing rail schedule for one stream: chunks are apportioned across
// rails proportionally to surviving bandwidth (WeightedExtents over the
// min of the two endpoints' rail health) and interleaved smoothly; any
// rail-health change re-plans the stream's remaining chunks, and retry
// attempts always defer to the fabric's live least-loaded pick.
class RailScheduler {
 public:
  RailScheduler(sim::Network* net, int src, int dst, int64_t total_chunks)
      : net_(net), src_(src), dst_(dst), remaining_(total_chunks) {}

  int RailFor(int64_t /*chunk*/, int attempt) {
    if (attempt > 0) return -1;  // failover: live least-loaded rail
    if (gen_ != net_->rail_generation()) {
      gen_ = net_->rail_generation();
      Rebuild();
    }
    const int rail =
        qpos_ < queue_.size() ? queue_[qpos_++] : -1;  // -1: all rails dead
    if (remaining_ > 0) remaining_--;
    return rail;
  }

 private:
  void Rebuild() {
    queue_.clear();
    qpos_ = 0;
    const int rails = net_->rails();
    std::vector<double> health(static_cast<size_t>(rails), 0.0);
    for (int r = 0; r < rails; ++r) {
      health[static_cast<size_t>(r)] =
          std::min(net_->RailScale(src_, r), net_->RailScale(dst_, r));
    }
    std::vector<int64_t> left = WeightedExtents(remaining_, health);
    queue_.reserve(static_cast<size_t>(remaining_));
    for (int64_t i = 0; i < remaining_; ++i) {
      int best = -1;
      for (int r = 0; r < rails; ++r) {
        if (left[static_cast<size_t>(r)] > 0 &&
            (best < 0 ||
             left[static_cast<size_t>(r)] > left[static_cast<size_t>(best)])) {
          best = r;
        }
      }
      if (best < 0) break;
      queue_.push_back(best);
      left[static_cast<size_t>(best)]--;
    }
  }

  sim::Network* net_;
  int src_;
  int dst_;
  int64_t remaining_;
  uint64_t gen_ = ~0ull;  // force a build on first use
  std::vector<int> queue_;
  std::size_t qpos_ = 0;
};

}  // namespace

void ApplyLinkFaultPolicy(rt::World& world, uint64_t chunk_bytes,
                          LinkStream* stream) {
  TL_CHECK(stream->fabric != nullptr);
  stream->role = stream->name;
  sim::Network* net = stream->fabric;
  if (net->rails() > 1) {
    auto sched = std::make_shared<RailScheduler>(net, stream->src, stream->dst,
                                                 stream->num_chunks);
    stream->rail_of = [sched](int64_t chunk, int attempt) {
      return sched->RailFor(chunk, attempt);
    };
  }
  const sim::FaultPlan* plan = world.fault_plan();
  if (plan == nullptr || !plan->PerturbsFabric(net->name())) return;
  const sim::RetryPolicy& rp = plan->retry();
  stream->max_retries = rp.max_retries;
  stream->backoff_base = rp.backoff_base;
  // Expected uncontended chunk time on one rail (a rail owns 1/rails of the
  // port), scaled by the plan's generous timeout factor so fair-share
  // contention does not read as loss.
  const bool inter = net == &world.inter_fabric();
  const sim::TimeNs expect =
      inter ? world.cost().NicTransfer(chunk_bytes *
                                       static_cast<uint64_t>(net->rails()))
            : world.cost().NvlinkTransfer(chunk_bytes);
  stream->ack_timeout = static_cast<sim::TimeNs>(
      rp.timeout_factor * static_cast<double>(expect));
}

sim::Coro RunLinkStream(sim::Simulator* sim, LinkStream stream) {
  TL_CHECK(stream.fabric != nullptr);
  TL_CHECK_GT(stream.window, 0);
  sim::Flag done(sim, std::move(stream.name));
  std::size_t idx = 0;
  for (int64_t k = 0; k < stream.num_chunks; ++k) {
    LinkChunk c = stream.chunk(k);
    TL_CHECK_GT(c.tiles, 0);
    if (c.gate.flag != nullptr) {
      co_await c.gate.flag->WaitGe(c.gate.threshold);
    }
    if (idx >= static_cast<std::size_t>(stream.window)) {
      co_await done.WaitGe(idx - static_cast<std::size_t>(stream.window) + 1);
    }
    sim->Spawn(TransferChunk(&stream, idx, c.tiles, &done, c.eager_publish,
                             std::move(c.io), std::move(c.take_flow)),
               stream.chunk_label);
    ++idx;
    if (stream.trace_pid >= 0) {
      if (sim::TraceRecorder* tr = sim->trace()) {
        tr->AddCounter(stream.trace_pid, done.name() + ".window", "in_flight",
                       sim->Now(),
                       static_cast<double>(idx - done.value()));
      }
    }
  }
  co_await done.WaitGe(idx);
  if (stream.trace_pid >= 0) {
    if (sim::TraceRecorder* tr = sim->trace()) {
      tr->AddCounter(stream.trace_pid, done.name() + ".window", "in_flight",
                     sim->Now(), 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Host-driven role forms
// ---------------------------------------------------------------------------

NvlinkRingRole::NvlinkRingRole(rt::World& world, int chunk_tiles,
                               int channels)
    : world_(&world), chunk_tiles_(chunk_tiles), channels_(channels) {
  TL_CHECK_GT(chunk_tiles, 0);
  TL_CHECK_GT(channels, 0);
}

LinkStream NvlinkRingRole::Stream(
    int src, int dst, uint64_t tile_bytes, InOrderSignal* arrival,
    std::string name, const char* chunk_label, int64_t num_chunks,
    std::function<LinkChunk(int64_t)> chunk) const {
  LinkStream s;
  s.fabric = &world_->intra_fabric();
  s.trace_pid = world_->trace_pid(src);
  s.src = src;
  s.dst = dst;
  s.tile_bytes = tile_bytes;
  s.window = channels_;
  s.arrival = arrival;
  s.name = std::move(name);
  s.chunk_label = chunk_label;
  s.num_chunks = num_chunks;
  s.chunk = std::move(chunk);
  ApplyLinkFaultPolicy(*world_,
                       static_cast<uint64_t>(chunk_tiles_) * tile_bytes, &s);
  return s;
}

NicRailRole::NicRailRole(rt::World& world, int chunk_tiles, int staging_depth,
                         int peers)
    : world_(&world), chunk_tiles_(chunk_tiles) {
  TL_CHECK_GT(chunk_tiles, 0);
  TL_CHECK_GT(staging_depth, 0);
  // Clamp the per-peer staging depth by the device's NIC channel budget
  // (queue pairs shared across all `peers` concurrent rail exchanges). A
  // single-node topology has no rail peers and claims no NIC channels.
  if (peers <= 0) {
    staging_depth_ = std::max(1, staging_depth);
    return;
  }
  ResourceBudget budget = ResourceBudget::ForDevice(world.spec());
  const int granted =
      budget.ClaimFabric(FabricBinding::kNic, staging_depth * peers);
  staging_depth_ = std::max(1, granted / peers);
}

LinkStream NicRailRole::Stream(
    int src, int dst, uint64_t tile_bytes, InOrderSignal* arrival,
    std::string name, const char* chunk_label, int64_t num_chunks,
    std::function<LinkChunk(int64_t)> chunk) const {
  LinkStream s;
  s.fabric = &world_->inter_fabric();
  s.trace_pid = world_->trace_pid(src);
  s.src = src;
  s.dst = dst;
  s.tile_bytes = tile_bytes;
  s.window = staging_depth_;
  s.arrival = arrival;
  s.name = std::move(name);
  s.chunk_label = chunk_label;
  s.num_chunks = num_chunks;
  s.chunk = std::move(chunk);
  ApplyLinkFaultPolicy(*world_,
                       static_cast<uint64_t>(chunk_tiles_) * tile_bytes, &s);
  return s;
}

// ---------------------------------------------------------------------------
// Device-program role forms (NIC rail)
// ---------------------------------------------------------------------------

int64_t RailChunksPerBlock(int64_t block_rows, int64_t chunk_rows) {
  return CeilDiv(block_rows, chunk_rows);
}

int RailSourceIndex(int src_node, int my_node) {
  return src_node < my_node ? src_node : src_node - 1;
}

int RailSourceNode(int slot, int my_node) {
  return slot < my_node ? slot : slot + 1;
}

BlockProgram BuildNicRailPush(const NicRailPushParams& p) {
  TL_CHECK_GT(p.nodes, 1);
  TL_CHECK_GT(p.per_node, 0);
  TL_CHECK_GT(p.chunk_rows, 0);
  const int nodes = p.nodes;
  const int per_node = p.per_node;
  const int64_t block_rows = p.block_rows;
  const int64_t n = p.n;
  const int64_t chunk_rows = p.chunk_rows;
  const DType dtype = p.dtype;
  auto src = p.src;
  auto staging = p.staging;
  auto src_row = p.src_row;
  auto wait = p.wait;
  const int rail_base = p.rail_channel_base;
  const int64_t cpb = RailChunksPerBlock(block_rows, chunk_rows);
  const int64_t items = static_cast<int64_t>(nodes - 1) * cpb;

  // Work item -> (rail peer slot k, chunk c within the peer's block).
  auto item_of = [](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  auto peer_node_of = [cpb, per_node](const Env& e, int64_t item) {
    return RailSourceNode(static_cast<int>(item / cpb),
                          e.rank / per_node);
  };
  auto rows_of = [cpb, chunk_rows, block_rows](int64_t item) {
    const int64_t c = item % cpb;
    const int64_t lo = c * chunk_rows;
    return TileRange{lo, std::min(block_rows, lo + chunk_rows)};
  };

  TileProgramBuilder b;
  b.For("rail", [items](const Env& e) { return TilesForBlock(items, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "rail.wait_reduced", [=](const Env& e) {
                const int64_t item = item_of(e);
                return wait(e, peer_node_of(e, item), item % cpb);
              }));
          body.Add(ops::Load(
              "rail.load", /*acquire=*/true, [=](const Env& e) {
                const int64_t item = item_of(e);
                const TileRange rows = rows_of(item);
                const Tensor view =
                    src[static_cast<size_t>(e.rank)].Slice(
                        0, src_row(e, peer_node_of(e, item), rows.lo),
                        rows.len());
                DataSpec d;
                view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = view.buffer();
                return d;
              }));
          body.Add(ops::TilePushData(
              "rail.push",
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const TileRange rows = rows_of(item);
                const int my_node = e.rank / per_node;
                const int peer_node = peer_node_of(e, item);
                const int peer =
                    peer_node * per_node + e.rank % per_node;
                const int64_t slot =
                    static_cast<int64_t>(
                        RailSourceIndex(my_node, peer_node)) *
                        block_rows +
                    rows.lo;
                DataSpec d;
                d.src_rank = e.rank;
                d.dst_rank = peer;
                d.bytes = static_cast<uint64_t>(rows.len()) * n *
                          DTypeSize(dtype);
                const Tensor src_view =
                    src[static_cast<size_t>(e.rank)].Slice(
                        0, src_row(e, peer_node, rows.lo), rows.len());
                const Tensor dst_view =
                    staging[static_cast<size_t>(peer)].Slice(0, slot,
                                                             rows.len());
                src_view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = src_view.buffer();
                dst_view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = dst_view.buffer();
                return d;
              },
              // Release once the chunk landed at the rail peer.
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const int my_node = e.rank / per_node;
                const int peer_node = peer_node_of(e, item);
                const int peer =
                    peer_node * per_node + e.rank % per_node;
                return NotifyOne(
                    SignalSpace::kPeer, {peer},
                    rail_base +
                        RailSourceIndex(my_node, peer_node) *
                            static_cast<int>(cpb) +
                        static_cast<int>(item % cpb));
              },
              /*async_dma=*/false,
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const TileRange rows = rows_of(item);
                const int my_node = e.rank / per_node;
                const int peer_node = peer_node_of(e, item);
                const int peer =
                    peer_node * per_node + e.rank % per_node;
                const int64_t slot =
                    static_cast<int64_t>(
                        RailSourceIndex(my_node, peer_node)) *
                        block_rows +
                    rows.lo;
                const Tensor mine = src[static_cast<size_t>(e.rank)];
                Tensor dst = staging[static_cast<size_t>(peer)];
                const int64_t src_lo = src_row(e, peer_node, rows.lo);
                for (int64_t i = 0; i < rows.len(); ++i) {
                  for (int64_t c = 0; c < n; ++c) {
                    dst.at({slot + i, c}) = mine.at({src_lo + i, c});
                  }
                }
              }));
        });
  return b.Build();
}

BlockProgram BuildNicRailReduce(const NicRailReduceParams& p) {
  TL_CHECK_GT(p.nodes, 1);
  TL_CHECK_GT(p.per_node, 0);
  TL_CHECK_GT(p.chunk_rows, 0);
  const int nodes = p.nodes;
  const int64_t block_rows = p.block_rows;
  const int64_t n = p.n;
  const int64_t chunk_rows = p.chunk_rows;
  const DType dtype = p.dtype;
  auto src = p.src;
  auto staging = p.staging;
  auto outs = p.outs;
  auto src_row = p.src_row;
  auto wait = p.wait;
  const int rail_base = p.rail_channel_base;
  const int64_t cpb = RailChunksPerBlock(block_rows, chunk_rows);

  auto chunk_of = [](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  auto rows_of = [chunk_rows, block_rows](int64_t c) {
    const int64_t lo = c * chunk_rows;
    return TileRange{lo, std::min(block_rows, lo + chunk_rows)};
  };

  TileProgramBuilder b;
  b.For("chunk", [cpb](const Env& e) { return TilesForBlock(cpb, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "rail.wait_own", [=](const Env& e) {
                return wait(e, chunk_of(e));
              }));
          body.Add(ops::Load(
              "rail.load_own", /*acquire=*/true, [=](const Env& e) {
                const TileRange rows = rows_of(chunk_of(e));
                const Tensor view = src[static_cast<size_t>(e.rank)].Slice(
                    0, src_row(e, rows.lo), rows.len());
                DataSpec d;
                view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = view.buffer();
                return d;
              }));
          body.For(
              "peer",
              [nodes](const Env&) { return static_cast<int64_t>(nodes - 1); },
              [&](TileProgramBuilder& inner) {
                inner.Add(ops::PeerTileWait(
                    "rail.wait_arrival", [=](const Env& e) {
                      WaitSpec spec;
                      spec.space = SignalSpace::kPeer;
                      spec.waits.push_back(ChannelWait{
                          rail_base +
                              static_cast<int>(e.iv(1)) *
                                  static_cast<int>(cpb) +
                              static_cast<int>(chunk_of(e)),
                          1});
                      return spec;
                    }));
                inner.Add(ops::Load(
                    "rail.load_arrival", /*acquire=*/true,
                    [=](const Env& e) {
                      const TileRange rows = rows_of(chunk_of(e));
                      const Tensor view =
                          staging[static_cast<size_t>(e.rank)].Slice(
                              0, e.iv(1) * block_rows + rows.lo, rows.len());
                      DataSpec d;
                      view.BufferRange(&d.read_lo, &d.read_hi);
                      d.read_buf = view.buffer();
                      return d;
                    }));
                inner.Add(ops::Elementwise(
                    "rail.reduce",
                    [=](const Env& e, const sim::CostModel& cost) {
                      const TileRange rows = rows_of(chunk_of(e));
                      const uint64_t bytes =
                          3ULL * static_cast<uint64_t>(rows.len()) * n *
                          DTypeSize(dtype);
                      return cost.MemoryBound(bytes, e.grid);
                    }));
              });
          body.Add(ops::Store(
              "rail.store_out",
              [=](const Env& e) {
                const TileRange rows = rows_of(chunk_of(e));
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                            rows.len());
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              },
              [=](const Env& e) {
                const TileRange rows = rows_of(chunk_of(e));
                const Tensor mine = src[static_cast<size_t>(e.rank)];
                const Tensor acc = staging[static_cast<size_t>(e.rank)];
                Tensor out = outs[static_cast<size_t>(e.rank)];
                const int64_t src_lo = src_row(e, rows.lo);
                for (int64_t i = 0; i < rows.len(); ++i) {
                  for (int64_t c = 0; c < n; ++c) {
                    float v = mine.at({src_lo + i, c});
                    for (int k = 0; k + 1 < nodes; ++k) {
                      v += acc.at({k * block_rows + rows.lo + i, c});
                    }
                    out.at({rows.lo + i, c}) = v;
                  }
                }
              }));
        });
  return b.Build();
}

}  // namespace tilelink::tl
