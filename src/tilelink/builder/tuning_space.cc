#include "tilelink/builder/tuning_space.h"

#include <sstream>

namespace tilelink::tl {

namespace {

const char* ResourceName(CommResource r) {
  switch (r) {
    case CommResource::kSmPull:
      return "sm_pull";
    case CommResource::kSmPush:
      return "sm_push";
    case CommResource::kDma:
      return "dma";
  }
  return "?";
}

}  // namespace

std::string TuneCandidate::Describe() const {
  std::ostringstream os;
  os << "gemm=" << gemm.bm << "x" << gemm.bn << " comm_tile=" << comm_tile_m
     << " resource=" << ResourceName(comm);
  if (comm != CommResource::kDma) os << " comm_sms=" << comm_sms;
  os << " order=" << TileOrderName(order);
  return os.str();
}

TuningSpace& TuningSpace::GemmTiles(std::vector<std::pair<int, int>> bm_bn) {
  gemm_tiles_ = std::move(bm_bn);
  return *this;
}

TuningSpace& TuningSpace::CommTileM(std::vector<int> values) {
  comm_tile_m_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::CommSms(std::vector<int> values) {
  comm_sms_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::Resources(std::vector<CommResource> values) {
  resources_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::Orders(std::vector<TileOrder> values) {
  orders_ = std::move(values);
  return *this;
}

std::vector<TuneCandidate> TuningSpace::Enumerate(
    const TuneCandidate& base) const {
  std::vector<TuneCandidate> out;
  const auto gemms = gemm_tiles_.empty()
                         ? std::vector<std::pair<int, int>>{
                               {base.gemm.bm, base.gemm.bn}}
                         : gemm_tiles_;
  const auto comm_tiles =
      comm_tile_m_.empty() ? std::vector<int>{base.comm_tile_m} : comm_tile_m_;
  const auto sms = comm_sms_.empty() ? std::vector<int>{base.comm_sms}
                                     : comm_sms_;
  const auto resources = resources_.empty()
                             ? std::vector<CommResource>{base.comm}
                             : resources_;
  const auto orders =
      orders_.empty() ? std::vector<TileOrder>{base.order} : orders_;
  for (const auto& [bm, bn] : gemms) {
    for (int ct : comm_tiles) {
      for (CommResource r : resources) {
        // DMA ignores the comm-SM axis; emit one candidate for it.
        const auto& sm_axis =
            r == CommResource::kDma ? std::vector<int>{base.comm_sms} : sms;
        for (int s : sm_axis) {
          for (TileOrder o : orders) {
            TuneCandidate c = base;
            c.gemm.bm = bm;
            c.gemm.bn = bn;
            c.comm_tile_m = ct;
            c.comm = r;
            c.comm_sms = s;
            c.order = o;
            out.push_back(c);
          }
        }
      }
    }
  }
  return out;
}

TuningSpace TuningSpace::Mlp() {
  TuningSpace space;
  space.CommTileM({64, 128, 256, 512, 1024})
      .CommSms({8, 20, 32})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .Orders({TileOrder::kOwnerFirst, TileOrder::kNextRankFirst});
  return space;
}

}  // namespace tilelink::tl
