#include "tilelink/builder/tuning_space.h"

#include <sstream>

namespace tilelink::tl {

const char* CommResourceName(CommResource r) {
  switch (r) {
    case CommResource::kSmPull:
      return "sm_pull";
    case CommResource::kSmPush:
      return "sm_push";
    case CommResource::kDma:
      return "dma";
  }
  return "?";
}

bool ParseCommResource(const std::string& name, CommResource* out) {
  for (CommResource r : {CommResource::kSmPull, CommResource::kSmPush,
                         CommResource::kDma}) {
    if (name == CommResourceName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

bool ParseTileOrder(const std::string& name, TileOrder* out) {
  for (TileOrder o : {TileOrder::kRowMajor, TileOrder::kOwnerFirst,
                      TileOrder::kNextRankFirst}) {
    if (name == TileOrderName(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

std::string TuneCandidate::Describe() const {
  const TuneCandidate def;
  std::ostringstream os;
  os << "gemm=" << gemm.bm << "x" << gemm.bn << " comm_tile=" << comm_tile_m
     << " resource=" << CommResourceName(comm);
  if (comm != CommResource::kDma) os << " comm_sms=" << comm_sms;
  os << " order=" << TileOrderName(order);
  // Kernel-family knobs print only when they deviate from the defaults, so
  // MLP-kernel logs keep their compact historical shape.
  if (channels_per_rank != def.channels_per_rank) {
    os << " channels=" << channels_per_rank;
  }
  if (block_q != def.block_q || block_kv != def.block_kv) {
    os << " flash=" << block_q << "x" << block_kv;
  }
  if (sorted_channel_rows != def.sorted_channel_rows) {
    os << " sorted_rows=" << sorted_channel_rows;
  }
  if (reduce_block_tokens != def.reduce_block_tokens) {
    os << " reduce_tokens=" << reduce_block_tokens;
  }
  if (reduce_sms != def.reduce_sms) os << " reduce_sms=" << reduce_sms;
  if (nic_chunk_tiles != def.nic_chunk_tiles) {
    os << " nic_chunk=" << nic_chunk_tiles;
  }
  if (staging_depth != def.staging_depth) {
    os << " staging=" << staging_depth;
  }
  return os.str();
}

TuningSpace& TuningSpace::GemmTiles(std::vector<std::pair<int, int>> bm_bn) {
  gemm_tiles_ = std::move(bm_bn);
  return *this;
}

TuningSpace& TuningSpace::CommTileM(std::vector<int> values) {
  comm_tile_m_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::CommSms(std::vector<int> values) {
  comm_sms_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::Resources(std::vector<CommResource> values) {
  resources_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::Orders(std::vector<TileOrder> values) {
  orders_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::ChannelsPerRank(std::vector<int> values) {
  channels_per_rank_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::AttnBlocks(std::vector<std::pair<int, int>> q_kv) {
  attn_blocks_ = std::move(q_kv);
  return *this;
}

TuningSpace& TuningSpace::SortedChannelRows(std::vector<int> values) {
  sorted_channel_rows_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::ReduceBlockTokens(std::vector<int> values) {
  reduce_block_tokens_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::ReduceSms(std::vector<int> values) {
  reduce_sms_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::NicChunkTiles(std::vector<int> values) {
  nic_chunk_tiles_ = std::move(values);
  return *this;
}

TuningSpace& TuningSpace::StagingDepth(std::vector<int> values) {
  staging_depth_ = std::move(values);
  return *this;
}

std::vector<TuneCandidate> TuningSpace::Enumerate(
    const TuneCandidate& base) const {
  // Progressive cartesian product: each set axis multiplies the candidate
  // list; unset axes leave the base value in place. Expansion order keeps
  // the earlier-set axes slow-varying (matching the historical nested-loop
  // enumeration order).
  std::vector<TuneCandidate> out{base};
  auto expand = [&out](const auto& values, auto apply) {
    if (values.empty()) return;
    std::vector<TuneCandidate> next;
    next.reserve(out.size() * values.size());
    for (const TuneCandidate& c : out) {
      for (const auto& v : values) {
        TuneCandidate cc = c;
        apply(cc, v);
        next.push_back(cc);
      }
    }
    out = std::move(next);
  };
  expand(gemm_tiles_, [](TuneCandidate& c, const std::pair<int, int>& t) {
    c.gemm.bm = t.first;
    c.gemm.bn = t.second;
  });
  expand(comm_tile_m_, [](TuneCandidate& c, int v) { c.comm_tile_m = v; });
  expand(channels_per_rank_,
         [](TuneCandidate& c, int v) { c.channels_per_rank = v; });
  expand(resources_,
         [](TuneCandidate& c, CommResource r) { c.comm = r; });
  // DMA ignores the comm-SM axis: expand it only for SM-resource candidates
  // so DMA variants are evaluated once (at the base SM count).
  if (!comm_sms_.empty()) {
    std::vector<TuneCandidate> next;
    next.reserve(out.size() * comm_sms_.size());
    for (const TuneCandidate& c : out) {
      if (c.comm == CommResource::kDma) {
        next.push_back(c);
        continue;
      }
      for (int s : comm_sms_) {
        TuneCandidate cc = c;
        cc.comm_sms = s;
        next.push_back(cc);
      }
    }
    out = std::move(next);
  }
  expand(orders_, [](TuneCandidate& c, TileOrder o) { c.order = o; });
  expand(attn_blocks_, [](TuneCandidate& c, const std::pair<int, int>& b) {
    c.block_q = b.first;
    c.block_kv = b.second;
  });
  expand(sorted_channel_rows_,
         [](TuneCandidate& c, int v) { c.sorted_channel_rows = v; });
  expand(reduce_block_tokens_,
         [](TuneCandidate& c, int v) { c.reduce_block_tokens = v; });
  expand(reduce_sms_, [](TuneCandidate& c, int v) { c.reduce_sms = v; });
  expand(nic_chunk_tiles_,
         [](TuneCandidate& c, int v) { c.nic_chunk_tiles = v; });
  expand(staging_depth_, [](TuneCandidate& c, int v) { c.staging_depth = v; });
  return out;
}

TuningSpace TuningSpace::Mlp() {
  TuningSpace space;
  // Synchronization granularity stays at the base candidate's value (the
  // finest supported unless the seed overrides it): the coarse {0, 4} axis
  // doubled the space for configs the halving round never kept.
  space.CommTileM({64, 128, 256, 512, 1024})
      .CommSms({8, 20, 32})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .Orders({TileOrder::kOwnerFirst, TileOrder::kNextRankFirst});
  return space;
}

TuningSpace TuningSpace::ServingMlp() {
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128, 256})
      .CommSms({8, 20, 32})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .Orders({TileOrder::kOwnerFirst, TileOrder::kNextRankFirst});
  return space;
}

TuningSpace TuningSpace::Attention() {
  TuningSpace space;
  space.AttnBlocks({{64, 128},
                    {64, 256},
                    {128, 128},
                    {128, 256},
                    {128, 512},
                    {128, 1024},
                    {256, 256},
                    {256, 512}});
  return space;
}

TuningSpace TuningSpace::MoePart1() {
  TuningSpace space;
  space.CommTileM({128, 256, 512})
      .CommSms({8, 20, 32})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .ChannelsPerRank({0, 4});
  return space;
}

TuningSpace TuningSpace::MultiNode() {
  TuningSpace space;
  // NIC messages pay ~3x the NVLink latency, so the chunk axis reaches much
  // coarser sizes than the intra-node comm-tile axis; depths beyond the NIC
  // queue-pair budget are clamped by ResourceBudget at bind time.
  space.NicChunkTiles({1, 2, 4, 8, 16}).StagingDepth({1, 2, 4, 8});
  return space;
}

TuningSpace TuningSpace::GemmHierRs() {
  TuningSpace space;
  // Joint compute x link space: the GEMM tile shape changes when the
  // epilogue tiles become ring chunks, and the rail knobs trade NIC message
  // latency against staging. bm must still divide the ring chunk rows, so
  // infeasible (bm, comm_tile_m) pairs are rejected by the evaluator.
  space.GemmTiles({{128, 128}, {128, 256}, {256, 128}})
      .NicChunkTiles({1, 2, 4})
      .StagingDepth({1, 2, 4});
  return space;
}

TuningSpace TuningSpace::AgGemmHier() {
  TuningSpace space;
  // Joint compute x link space for the fused hierarchical AllGather: the
  // AG chunk rows gate consumer tiles (finer chunks release GEMM tiles
  // earlier, coarser chunks amortize NIC latency), the rail knobs trade
  // message latency against staging.
  space.GemmTiles({{128, 128}, {128, 256}, {256, 128}})
      .CommTileM({64, 128})
      .NicChunkTiles({1, 2, 4})
      .StagingDepth({1, 2, 4});
  return space;
}

TuningSpace TuningSpace::MoePart2() {
  TuningSpace space;
  // comm_tile_m doubles as the RS chunk rows for the RS role.
  space.CommTileM({128, 256, 512})
      .CommSms({8, 20})
      .Resources({CommResource::kSmPush, CommResource::kDma})
      .SortedChannelRows({1024, 2048, 4096})
      .ReduceBlockTokens({64, 128})
      .ReduceSms({8, 16});
  return space;
}

}  // namespace tilelink::tl
