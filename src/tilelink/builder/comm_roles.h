// Shared communication roles for row-sharded AllGather in the three §3.1
// resource bindings: SM pull blocks, SM push blocks, or copy engines driven
// by host primitives. ag_gemm and ag_moe used to carry identical copies of
// these programs; the tile mapping (and thus the gathered tensor) is the
// only thing that varies.
#pragma once

#include "comm/collectives.h"
#include "runtime/world.h"
#include "tilelink/block_channel.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct RowAllGatherParams {
  StaticMapping map;        // row mapping of the gathered dimension
  comm::SymTensor shards;   // [m/R, width] per rank
  comm::SymTensor fulls;    // [m, width] per rank
  int ranks = 0;
  int64_t m_per_rank = 0;
};

// Pull mode (Figure 3b left): every rank pulls each remote tile into its own
// gathered copy and notifies its local consumers. Ring tile order: every
// rank starts at its own shard and walks the ring, spreading concurrent
// pulls across source ports.
BlockProgram BuildRowAllGatherPull(const RowAllGatherParams& params);

// Push mode (Figure 3b right): every rank pushes its own shard's tiles to
// all peers (right neighbor first) and notifies the remote consumers.
BlockProgram BuildRowAllGatherPush(const RowAllGatherParams& params);

// DMA resource: host primitives drive copy engines, one copy per channel
// chunk in ring order (own shard first); each completed chunk notifies the
// producer-consumer barrier it covers with the chunk's tile count.
sim::Coro DmaRowAllGather(rt::RankCtx& ctx, BlockChannel bc,
                          RowAllGatherParams params);

}  // namespace tilelink::tl
