// Autotuner: search over a TuningSpace scored by the simulator.
//
// The evaluator runs one candidate end-to-end (typically: build a
// timing-only World, construct the kernel with the candidate's knobs,
// RunSpmd, return the makespan). Two optional accelerators make large
// spaces tractable:
//
//  - An analytic lower bound — built from sim::CostModel formulas (the
//    overlap-aware max(compute, comm) + launch latency), which cost
//    nanoseconds instead of a full DES run — prunes candidates that cannot
//    beat the best simulated time found so far. When a bound is supplied,
//    candidates are visited in ascending-bound order so the likely argmin
//    is simulated first and the bound prunes the rest.
//
//  - A coarse evaluator (same metric on a cheapened simulation — e.g. the
//    reduction loop collapsed to one k-step) enables successive halving:
//    every candidate is scored coarsely, only the best keep_fraction
//    survive to full-fidelity simulation. The base candidate is always
//    re-evaluated at full fidelity, so a halved search can never return a
//    config worse than the seed it started from.
//
// Candidates the evaluator rejects as infeasible (by returning kInfeasible)
// are skipped.
//
// Parallel determinism (Options::threads > 1): both the coarse round and
// the full-fidelity round shard candidates across a pool of worker threads
// pulling indices from a shared atomic counter, one evaluator call per
// candidate on the worker's own Simulator/World (evaluators build fresh
// worlds per call, so there is no shared mutable state). Pruning stays
// effective across workers through a shared completed-cost table: a worker
// about to evaluate candidate i skips it only if some *earlier-indexed*
// candidate j < i has already finished with cost <= bound(i). Because a
// sound bound satisfies bound(j) <= cost(j), any such j would also have
// forced the serial search to prune i, so the speculative skip can never
// drop a candidate the serial order would have simulated. A final serial
// replay in candidate-index order then rebuilds TuneResult exactly as the
// single-threaded search would have: identical argmin (ties broken by
// enumeration index, never completion order), identical `evaluated` list,
// identical pruned/infeasible/halved counts, and identical verbose output
// — bitwise the same for every thread count.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "sim/time.h"
#include "tilelink/builder/tuning_space.h"

namespace tilelink::tl {

struct TuneResult {
  TuneCandidate best;
  sim::TimeNs best_cost = 0;
  // Every (candidate, simulated cost) pair actually evaluated at full
  // fidelity, in evaluation order.
  std::vector<std::pair<TuneCandidate, sim::TimeNs>> evaluated;
  int pruned = 0;        // skipped via the lower bound
  int infeasible = 0;    // rejected by the evaluator (either fidelity)
  int halved = 0;        // eliminated by the coarse successive-halving round
  int coarse_evals = 0;  // coarse scores paid for the halving round
};

class Autotuner {
 public:
  // Sentinel: the evaluator returns this for candidates whose constraints
  // (divisibility, capacity) the kernel cannot satisfy.
  static constexpr sim::TimeNs kInfeasible =
      std::numeric_limits<sim::TimeNs>::max();

  using EvalFn = std::function<sim::TimeNs(const TuneCandidate&)>;
  using BoundFn = std::function<sim::TimeNs(const TuneCandidate&)>;

  struct Options {
    bool verbose = false;  // print one line per candidate to stdout
    // Worker threads for candidate evaluation (<= 1 runs fully serial).
    // Any value yields a bitwise-identical TuneResult; see the determinism
    // note in the file comment.
    int threads = 1;
    // Successive halving (active when Search is given a coarse evaluator
    // and the space has at least min_coarse_space candidates): keep the
    // best keep_fraction of coarse scores, at least min_survivors.
    double keep_fraction = 0.125;
    int min_survivors = 4;
    int min_coarse_space = 8;
  };

  Autotuner() = default;
  explicit Autotuner(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  // Returns the argmin candidate over space.Enumerate(base) plus the base
  // itself. `lower_bound` and `coarse` may be null. Requires a non-empty,
  // not-all-infeasible space.
  TuneResult Search(const TuningSpace& space, const TuneCandidate& base,
                    const EvalFn& eval, const BoundFn& lower_bound = nullptr,
                    const EvalFn& coarse = nullptr) const;

 private:
  Options options_{};
};

}  // namespace tilelink::tl
