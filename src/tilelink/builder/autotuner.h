// Autotuner: search over a TuningSpace scored by the simulator.
//
// The evaluator runs one candidate end-to-end (typically: build a
// timing-only World, construct the kernel with the candidate's knobs,
// RunSpmd, return the makespan). Two optional accelerators make large
// spaces tractable:
//
//  - An analytic lower bound — built from sim::CostModel formulas (the
//    overlap-aware max(compute, comm) + launch latency), which cost
//    nanoseconds instead of a full DES run — prunes candidates that cannot
//    beat the best simulated time found so far. When a bound is supplied,
//    candidates are visited in ascending-bound order so the likely argmin
//    is simulated first and the bound prunes the rest.
//
//  - A coarse evaluator (same metric on a cheapened simulation — e.g. the
//    reduction loop collapsed to one k-step) enables successive halving:
//    every candidate is scored coarsely, only the best keep_fraction
//    survive to full-fidelity simulation. The base candidate is always
//    re-evaluated at full fidelity, so a halved search can never return a
//    config worse than the seed it started from.
//
// Candidates the evaluator rejects as infeasible (by returning kInfeasible)
// are skipped.
//
// Parallel determinism (Options::threads > 1): both the coarse round and
// the full-fidelity round shard candidates across a pool of worker threads
// pulling indices from a shared atomic counter, one evaluator call per
// candidate on the worker's own Simulator/World (evaluators build fresh
// worlds per call, so there is no shared mutable state). Pruning stays
// effective across workers through a shared completed-cost table: a worker
// about to evaluate candidate i skips it only if some *earlier-indexed*
// candidate j < i has already finished with cost <= bound(i). Because a
// sound bound satisfies bound(j) <= cost(j), any such j would also have
// forced the serial search to prune i, so the speculative skip can never
// drop a candidate the serial order would have simulated. A final serial
// replay in candidate-index order then rebuilds TuneResult exactly as the
// single-threaded search would have: identical argmin (ties broken by
// enumeration index, never completion order), identical `evaluated` list,
// identical pruned/infeasible/halved counts, and identical verbose output
// — bitwise the same for every thread count.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "sim/time.h"
#include "tilelink/builder/tuning_space.h"

namespace tilelink::tl {

struct TuneResult {
  TuneCandidate best;
  sim::TimeNs best_cost = 0;
  // Every (candidate, simulated cost) pair actually evaluated at full
  // fidelity, in evaluation order.
  std::vector<std::pair<TuneCandidate, sim::TimeNs>> evaluated;
  int pruned = 0;        // skipped via the lower bound
  int infeasible = 0;    // rejected by the evaluator (either fidelity)
  int halved = 0;        // eliminated by a coarse round (halving or ladder)
  int coarse_evals = 0;  // reduced-fidelity scores paid (halving or ladder)
  // Full-fidelity cost of the seed (base) candidate, when the search
  // evaluated it: SearchLaddered always anchors on it; Search records it
  // when the seed reaches full fidelity unpruned. 0 = not measured.
  sim::TimeNs seed_cost = 0;
  // SearchLaddered only, one slot per rung (coarsest first): candidates
  // scored at that rung's fidelity, and candidates promoted out of it by
  // rank (the final rung's promotion is the argmin, so its slot is 1;
  // deferred coarse-infeasible candidates ride along unscored and are not
  // counted as promoted).
  std::vector<int> evaluated_per_rung;
  std::vector<int> promoted_per_rung;
};

class Autotuner {
 public:
  // Sentinel: the evaluator returns this for candidates whose constraints
  // (divisibility, capacity) the kernel cannot satisfy.
  static constexpr sim::TimeNs kInfeasible =
      std::numeric_limits<sim::TimeNs>::max();

  using EvalFn = std::function<sim::TimeNs(const TuneCandidate&)>;
  using BoundFn = std::function<sim::TimeNs(const TuneCandidate&)>;
  // Multi-fidelity evaluator: the same metric on a problem shrunk by
  // ~1/denom along an axis that scales compute and communication together
  // (see kernel_tuning.h's FidelitySimulate*). denom == 1 must be exact
  // full fidelity.
  using FidelityEvalFn =
      std::function<sim::TimeNs(const TuneCandidate&, int denom)>;

  struct Options {
    bool verbose = false;  // print one line per candidate to stdout
    // Worker threads for candidate evaluation (<= 1 runs fully serial).
    // Any value yields a bitwise-identical TuneResult; see the determinism
    // note in the file comment.
    int threads = 1;
    // Successive halving (active when Search is given a coarse evaluator
    // and the space has at least min_coarse_space candidates): keep the
    // best keep_fraction of coarse scores, at least min_survivors.
    double keep_fraction = 0.125;
    int min_survivors = 4;
    int min_coarse_space = 8;
    // Laddered multi-fidelity schedule (SearchLaddered): fidelity
    // denominators per rung, coarsest first; the last must be 1 (full
    // fidelity). The last coarse rung promotes the best promote_fraction of
    // its scores (at least min_promote); earlier (blunter) rungs taper
    // geometrically toward it — rung i of n keeps fraction^((i+1)/n), so
    // e.g. with two coarse rungs and 0.25 the 1/16 rung keeps half and the
    // 1/4 rung a quarter. Fixed per-tile costs do not shrink with the
    // problem, so the coarsest ranking is the least trustworthy and gets
    // the widest survivor set. The seed candidate is promoted
    // unconditionally, so no rung can regress past the seed.
    // Spaces smaller than min_ladder_space skip the ladder (the coarse
    // rungs would cost more than they save) and search plain.
    std::vector<int> ladder_rungs = {16, 4, 1};
    double promote_fraction = 0.25;
    int min_promote = 4;
    int min_ladder_space = 16;
  };

  Autotuner() = default;
  explicit Autotuner(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  // Returns the argmin candidate over space.Enumerate(base) plus the base
  // itself. `lower_bound` and `coarse` may be null. Requires a non-empty,
  // not-all-infeasible space.
  TuneResult Search(const TuningSpace& space, const TuneCandidate& base,
                    const EvalFn& eval, const BoundFn& lower_bound = nullptr,
                    const EvalFn& coarse = nullptr) const;

  // Laddered multi-fidelity search (the serving-path cold-tune schedule):
  //   1. the seed is evaluated once at full fidelity, anchoring the search;
  //      with a lower bound, candidates whose floor already meets or
  //      exceeds the seed's cost are dropped before any rung runs
  //      (comm_bounds floors deciding rung admission);
  //   2. each coarse rung (Options::ladder_rungs, e.g. 1/16 then 1/4)
  //      scores the survivors at that fidelity and promotes the best
  //      promote_fraction — ranked by (rung score, lower bound, enumeration
  //      index) — to the next rung, the seed always riding along;
  //   3. the final rung runs full fidelity in ascending-bound order with
  //      lower-bound pruning, exactly like Search's finalist pass.
  // Candidates a coarse rung rejects as infeasible are deferred to the next
  // rung unscored (a shrunken problem can have tighter divisibility), like
  // Search's coarse round. Deterministic and bitwise thread-count-invariant
  // for the same reasons as Search: coarse rungs are pure index-sharded
  // maps, promotion and the final replay are serial.
  TuneResult SearchLaddered(const TuningSpace& space,
                            const TuneCandidate& base,
                            const FidelityEvalFn& eval,
                            const BoundFn& lower_bound = nullptr) const;

 private:
  Options options_{};
};

}  // namespace tilelink::tl
