// Autotuner: exhaustive search over a TuningSpace scored by the simulator.
//
// The evaluator runs one candidate end-to-end (typically: build a
// timing-only World, construct the kernel with the candidate's knobs,
// RunSpmd, return the makespan). An optional analytic lower bound — built
// from sim::CostModel formulas, which cost nanoseconds instead of a full
// DES run — prunes candidates that cannot beat the best simulated time
// found so far. Candidates the evaluator rejects as infeasible (by
// returning kInfeasible) are skipped.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "sim/time.h"
#include "tilelink/builder/tuning_space.h"

namespace tilelink::tl {

struct TuneResult {
  TuneCandidate best;
  sim::TimeNs best_cost = 0;
  // Every (candidate, simulated cost) pair actually evaluated, in order.
  std::vector<std::pair<TuneCandidate, sim::TimeNs>> evaluated;
  int pruned = 0;      // skipped via the lower bound
  int infeasible = 0;  // rejected by the evaluator
};

class Autotuner {
 public:
  // Sentinel: the evaluator returns this for candidates whose constraints
  // (divisibility, capacity) the kernel cannot satisfy.
  static constexpr sim::TimeNs kInfeasible =
      std::numeric_limits<sim::TimeNs>::max();

  using EvalFn = std::function<sim::TimeNs(const TuneCandidate&)>;
  using BoundFn = std::function<sim::TimeNs(const TuneCandidate&)>;

  struct Options {
    bool verbose = false;  // print one line per candidate to stdout
  };

  Autotuner() = default;
  explicit Autotuner(Options options) : options_(options) {}

  // Returns the argmin candidate over space.Enumerate(base). `lower_bound`
  // may be null. Requires a non-empty, not-all-infeasible space.
  TuneResult Search(const TuningSpace& space, const TuneCandidate& base,
                    const EvalFn& eval,
                    const BoundFn& lower_bound = nullptr) const;

 private:
  Options options_{};
};

}  // namespace tilelink::tl
