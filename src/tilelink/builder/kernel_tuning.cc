#include "tilelink/builder/kernel_tuning.h"

#include <algorithm>

#include "runtime/world.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

namespace tilelink::tl {
namespace {

bool AgGemmFeasible(const sim::MachineSpec& spec, const MlpPartShape& s,
                    const TuneCandidate& c) {
  const int R = spec.num_devices;
  if (s.m % R != 0) return false;
  const int64_t m_per_rank = s.m / R;
  // One channel per comm tile: the shard must tile evenly.
  return c.comm_tile_m > 0 && m_per_rank % c.comm_tile_m == 0;
}

bool GemmRsFeasible(const sim::MachineSpec& spec, const MlpPartShape& s,
                    const TuneCandidate& c) {
  // The RS role has no pull mode: a chunk is reduced where it was produced
  // and pushed around the ring (SM-driven or handed to a copy engine).
  if (c.comm == CommResource::kSmPull) return false;
  const int R = spec.num_devices;
  if (s.m % R != 0) return false;
  const int64_t m_per_rank = s.m / R;
  return c.comm_tile_m > 0 && m_per_rank % c.comm_tile_m == 0 &&
         c.comm_tile_m % c.gemm.bm == 0;
}

}  // namespace

sim::TimeNs SimulateAgGemm(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c) {
  if (!AgGemmFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgGemmConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.comm_tile_m = c.comm_tile_m;
  cfg.comm = c.comm;
  cfg.comm_sms = c.comm_sms;
  cfg.order = c.order;
  AgGemm kernel(world, cfg);
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateGemmRs(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c) {
  if (!GemmRsFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  GemmRsConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.rs_block_m = c.comm_tile_m;
  cfg.comm_sms = c.comm_sms;
  cfg.dma_push = c.comm == CommResource::kDma;
  cfg.order = c.order;
  GemmRs kernel(world, cfg);
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs AgGemmLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c) {
  if (!AgGemmFeasible(spec, shape, c)) return 0;  // never prune; eval rejects
  const sim::CostModel cost(spec);
  // Mirror RolePlan's ClaimComm: comm blocks are capped by the role's work
  // (all tiles in pull mode, this rank's tiles in push mode). Overstating
  // the comm SM claim would overstate the bound and could prune the argmin.
  const int64_t comm_work = c.comm == CommResource::kSmPush
                                ? shape.m / spec.num_devices / c.comm_tile_m
                                : shape.m / c.comm_tile_m;
  const int comm_sms =
      c.comm == CommResource::kDma
          ? 0
          : static_cast<int>(std::min<int64_t>(c.comm_sms, comm_work));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, compute_sms);
  // Each rank must receive (R-1)/R of the gathered activation over the wire.
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.k * 2;
  return std::max(compute, cost.NvlinkTransfer(bytes));
}

sim::TimeNs GemmRsLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c) {
  if (!GemmRsFeasible(spec, shape, c)) return 0;
  const sim::CostModel cost(spec);
  const int64_t chunks = shape.m / spec.num_devices / c.comm_tile_m;
  const int comm_sms =
      static_cast<int>(std::min<int64_t>(c.comm_sms, chunks));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, compute_sms);
  // Ring RS: each rank forwards (R-1)/R of the partial-sum matrix.
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.n * 2;
  return std::max(compute, cost.NvlinkTransfer(bytes));
}

TuneResult TuneAgGemm(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) { return SimulateAgGemm(spec, shape, c); },
      [&](const TuneCandidate& c) { return AgGemmLowerBound(spec, shape, c); });
}

TuneResult TuneGemmRs(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) { return SimulateGemmRs(spec, shape, c); },
      [&](const TuneCandidate& c) { return GemmRsLowerBound(spec, shape, c); });
}

}  // namespace tilelink::tl
