#include "tilelink/builder/kernel_tuning.h"

#include <algorithm>
#include <limits>

#include "common/math_utils.h"
#include "common/rng.h"
#include "compute/flash_attention.h"
#include "runtime/world.h"
#include "tilelink/builder/comm_bounds.h"
#include "tilelink/kernels/ag_attention.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/gemm_rs.h"
#include "tilelink/kernels/moe_rs.h"
#include "tilelink/mapping.h"

namespace tilelink::tl {
namespace {

// Mirrors the StaticMapping constructor checks so evaluators reject a
// candidate instead of tripping a TL_CHECK inside the kernel.
bool MappingFeasible(int64_t m, int ranks, int tile_m, int requested_cpr) {
  if (tile_m <= 0 || m <= 0 || m % ranks != 0) return false;
  const int cpr =
      StaticMapping::ResolveChannelsPerRank(m, tile_m, ranks, requested_cpr);
  if (cpr <= 0) return false;
  const int64_t m_per_rank = CeilDiv<int64_t>(m, ranks);
  const int64_t m_per_channel =
      CeilDiv<int64_t>(m, static_cast<int64_t>(ranks) * cpr);
  return m_per_rank % tile_m == 0 && m_per_channel % tile_m == 0;
}

bool AgGemmFeasible(const sim::MachineSpec& spec, const MlpPartShape& s,
                    const TuneCandidate& c) {
  return MappingFeasible(s.m, spec.num_devices, c.comm_tile_m,
                         c.channels_per_rank);
}

bool GemmRsFeasible(const sim::MachineSpec& spec, const MlpPartShape& s,
                    const TuneCandidate& c) {
  // The RS role has no pull mode: a chunk is reduced where it was produced
  // and pushed around the ring (SM-driven or handed to a copy engine).
  if (c.comm == CommResource::kSmPull) return false;
  const int R = spec.num_devices;
  if (s.m % R != 0) return false;
  const int64_t m_per_rank = s.m / R;
  return c.comm_tile_m > 0 && m_per_rank % c.comm_tile_m == 0 &&
         c.comm_tile_m % c.gemm.bm == 0;
}

bool AgAttentionFeasible(const sim::MachineSpec& spec, const AttnShape& s,
                         const TuneCandidate& c) {
  return s.seq > 0 && s.seq % spec.num_devices == 0 && c.block_q > 0 &&
         c.block_kv > 0;
}

bool AgMoeFeasible(const sim::MachineSpec& spec, const MoeShape& s,
                   const TuneCandidate& c) {
  return s.topk > 0 && MappingFeasible(s.m, spec.num_devices, c.comm_tile_m,
                                       c.channels_per_rank);
}

bool MoeRsFeasible(const sim::MachineSpec& spec, const MoeShape& s,
                   const TuneCandidate& c) {
  // Like GEMM+RS, the RS role is push-only (SM push or DMA push).
  if (c.comm == CommResource::kSmPull) return false;
  const int R = spec.num_devices;
  if (s.m % R != 0 || c.comm_tile_m <= 0 || c.reduce_block_tokens <= 0 ||
      c.sorted_channel_rows <= 0) {
    return false;
  }
  const int64_t m_per_rank = s.m / R;
  return m_per_rank % c.comm_tile_m == 0 &&
         c.comm_tile_m % c.reduce_block_tokens == 0;
}

// Collapses the reduction loop to a single k-step: per-tile MMA cost is
// linear in bk, so the makespan is nearly unchanged while the event count
// drops by ~k/bk.
TuneCandidate CoarsenReduction(const TuneCandidate& c, int64_t k) {
  TuneCandidate coarse = c;
  coarse.gemm.bk = static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(k, 1),
                        std::numeric_limits<int>::max()));
  return coarse;
}

AgGemmConfig MakeAgGemmConfig(const MlpPartShape& shape,
                              const TuneCandidate& c) {
  AgGemmConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.comm_tile_m = c.comm_tile_m;
  cfg.channels_per_rank = c.channels_per_rank;
  cfg.comm = c.comm;
  cfg.comm_sms = c.comm_sms;
  cfg.order = c.order;
  return cfg;
}

GemmRsConfig MakeGemmRsConfig(const MlpPartShape& shape,
                              const TuneCandidate& c) {
  GemmRsConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.rs_block_m = c.comm_tile_m;
  cfg.comm_sms = c.comm_sms;
  cfg.dma_push = c.comm == CommResource::kDma;
  cfg.order = c.order;
  return cfg;
}

AgMoeConfig MakeAgMoeConfig(const MoeShape& shape, const TuneCandidate& c) {
  AgMoeConfig cfg;
  cfg.m = shape.m;
  cfg.hidden = shape.hidden;
  cfg.n = shape.inner;
  cfg.num_experts = shape.num_experts;
  cfg.topk = shape.topk;
  cfg.gemm = c.gemm;
  cfg.comm_tile_m = c.comm_tile_m;
  cfg.channels_per_rank = c.channels_per_rank;
  cfg.comm = c.comm;
  cfg.comm_sms = c.comm_sms;
  return cfg;
}

MoeRsConfig MakeMoeRsConfig(const MoeShape& shape, const TuneCandidate& c) {
  MoeRsConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.inner;
  cfg.hidden = shape.hidden;
  cfg.num_experts = shape.num_experts;
  cfg.topk = shape.topk;
  cfg.gemm = c.gemm;
  cfg.sorted_channel_rows = c.sorted_channel_rows;
  cfg.reduce_block_tokens = c.reduce_block_tokens;
  cfg.reduce_sms = c.reduce_sms;
  cfg.rs_block_m = c.comm_tile_m;
  cfg.comm_sms = c.comm_sms;
  cfg.dma_push = c.comm == CommResource::kDma;
  return cfg;
}

}  // namespace

int RsBlockRows(int64_t m_per_rank, int bm) {
  if (bm <= 0 || m_per_rank % bm != 0) return std::max(bm, 1);
  int64_t chunk = m_per_rank / 8;
  chunk = std::max<int64_t>(bm, chunk - chunk % bm);
  while (m_per_rank % chunk != 0) chunk -= bm;
  return static_cast<int>(std::max<int64_t>(bm, chunk));
}

// ---- Full-fidelity evaluators -------------------------------------------

sim::TimeNs SimulateAgGemm(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c) {
  if (!AgGemmFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgGemm kernel(world, MakeAgGemmConfig(shape, c));
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateGemmRs(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c) {
  if (!GemmRsFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  GemmRs kernel(world, MakeGemmRsConfig(shape, c));
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateAgAttention(const sim::MachineSpec& spec,
                                const AttnShape& shape,
                                const TuneCandidate& c) {
  if (!AgAttentionFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgAttentionConfig cfg;
  cfg.batch_heads = shape.batch_heads;
  cfg.seq = shape.seq;
  cfg.head_dim = shape.head_dim;
  cfg.block_q = c.block_q;
  cfg.block_kv = c.block_kv;
  AgAttention kernel(world, cfg);
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateFlashCore(const sim::MachineSpec& spec,
                              const FlashShape& shape,
                              const TuneCandidate& c) {
  if (shape.seq_q <= 0 || shape.seq_kv <= 0 || c.block_q <= 0 ||
      c.block_kv <= 0) {
    return Autotuner::kInfeasible;
  }
  // The flash core has no communication: every rank would simulate the same
  // local kernel, so run one device only (identical makespan, 1/R events).
  sim::MachineSpec one = spec;
  one.num_devices = 1;
  one.devices_per_node = 1;
  rt::World world(one, rt::ExecMode::kTimingOnly);
  Tensor q = Tensor::Alloc(world.device(0), "q",
                           {shape.batch_heads, shape.seq_q, shape.head_dim},
                           DType::kBF16);
  Tensor k = Tensor::Alloc(world.device(0), "k",
                           {shape.batch_heads, shape.seq_kv, shape.head_dim},
                           DType::kBF16);
  Tensor v = Tensor::Alloc(world.device(0), "v",
                           {shape.batch_heads, shape.seq_kv, shape.head_dim},
                           DType::kBF16);
  Tensor o = Tensor::Alloc(world.device(0), "o",
                           {shape.batch_heads, shape.seq_q, shape.head_dim},
                           DType::kBF16);
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    compute::FlashOptions opt;
    opt.block_q = c.block_q;
    opt.block_kv = c.block_kv;
    compute::LaunchFlashAttention(ctx, *ctx.stream, q, k, v, o, opt);
    co_await ctx.stream->Synchronize();
  });
}

sim::TimeNs SimulateAgMoe(const sim::MachineSpec& spec, const MoeShape& shape,
                          const compute::MoeRouting& routing,
                          const TuneCandidate& c) {
  if (!AgMoeFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgMoe kernel(world, MakeAgMoeConfig(shape, c), routing);
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateMoeRs(const sim::MachineSpec& spec, const MoeShape& shape,
                          const compute::MoeRouting& routing,
                          const TuneCandidate& c) {
  if (!MoeRsFeasible(spec, shape, c)) return Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  MoeRs kernel(world, MakeMoeRsConfig(shape, c), routing);
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs SimulateMoeLayer(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuneCandidate& part1,
                             const TuneCandidate& part2) {
  if (!AgMoeFeasible(spec, shape, part1) ||
      !MoeRsFeasible(spec, shape, part2)) {
    return Autotuner::kInfeasible;
  }
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  AgMoe p1(world, MakeAgMoeConfig(shape, part1), routing);
  MoeRs p2(world, MakeMoeRsConfig(shape, part2), routing);
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await p1.Run(ctx);
    co_await p2.Run(ctx);
  });
}

// ---- Coarse evaluators --------------------------------------------------

sim::TimeNs CoarseSimulateAgGemm(const sim::MachineSpec& spec,
                                 const MlpPartShape& shape,
                                 const TuneCandidate& c) {
  return SimulateAgGemm(spec, shape, CoarsenReduction(c, shape.k));
}

sim::TimeNs CoarseSimulateGemmRs(const sim::MachineSpec& spec,
                                 const MlpPartShape& shape,
                                 const TuneCandidate& c) {
  return SimulateGemmRs(spec, shape, CoarsenReduction(c, shape.k));
}

namespace {

// Shrinks a sequence extent for the coarse round: a quarter of the full
// extent, kept divisible by `granularity` (ranks and the largest block
// size), never below one granule.
int64_t CoarseSeq(int64_t seq, int64_t granularity) {
  const int64_t target = seq / 4;
  const int64_t granules = target / granularity;
  if (granules < 1) return seq;
  return granules * granularity;
}

}  // namespace

sim::TimeNs CoarseSimulateAgAttention(const sim::MachineSpec& spec,
                                      const AttnShape& shape,
                                      const TuneCandidate& c) {
  AttnShape coarse = shape;
  coarse.seq = CoarseSeq(shape.seq, 2048L * spec.num_devices);
  return SimulateAgAttention(spec, coarse, c);
}

sim::TimeNs CoarseSimulateFlashCore(const sim::MachineSpec& spec,
                                    const FlashShape& shape,
                                    const TuneCandidate& c) {
  FlashShape coarse = shape;
  coarse.seq_q = CoarseSeq(shape.seq_q, 2048);
  coarse.seq_kv = CoarseSeq(shape.seq_kv, 2048);
  return SimulateFlashCore(spec, coarse, c);
}

namespace {

// Coarse MoE round: a quarter of the token count (kept divisible by every
// chunking knob the spaces expose) with a fresh deterministic routing of the
// same distribution. Token-linear compute, comm and reduce events all shrink
// together, so the candidate ranking is preserved at ~4x fewer events (on
// top of the collapsed reduction loop).
constexpr int64_t kMoeCoarseGranule = 1024;
constexpr uint64_t kMoeCoarseRoutingSeed = 1234;

MoeShape CoarseMoeShape(const sim::MachineSpec& spec, const MoeShape& shape) {
  MoeShape coarse = shape;
  const int64_t granule = kMoeCoarseGranule * spec.num_devices;
  const int64_t granules = shape.m / 4 / granule;
  if (granules >= 1) coarse.m = granules * granule;
  return coarse;
}

}  // namespace

sim::TimeNs CoarseSimulateAgMoe(const sim::MachineSpec& spec,
                                const MoeShape& shape,
                                const compute::MoeRouting& routing,
                                const TuneCandidate& c) {
  const MoeShape coarse = CoarseMoeShape(spec, shape);
  if (coarse.m == shape.m) {
    return SimulateAgMoe(spec, shape, routing,
                         CoarsenReduction(c, shape.hidden));
  }
  Rng rng(kMoeCoarseRoutingSeed);
  const compute::MoeRouting coarse_routing = compute::RandomRouting(
      coarse.m, shape.num_experts, shape.topk, rng);
  return SimulateAgMoe(spec, coarse, coarse_routing,
                       CoarsenReduction(c, shape.hidden));
}

sim::TimeNs CoarseSimulateMoeRs(const sim::MachineSpec& spec,
                                const MoeShape& shape,
                                const compute::MoeRouting& routing,
                                const TuneCandidate& c) {
  const MoeShape coarse = CoarseMoeShape(spec, shape);
  if (coarse.m == shape.m) {
    return SimulateMoeRs(spec, shape, routing,
                         CoarsenReduction(c, shape.inner));
  }
  Rng rng(kMoeCoarseRoutingSeed);
  const compute::MoeRouting coarse_routing = compute::RandomRouting(
      coarse.m, shape.num_experts, shape.topk, rng);
  return SimulateMoeRs(spec, coarse, coarse_routing,
                       CoarsenReduction(c, shape.inner));
}

// ---- Multi-fidelity (ladder) evaluators ---------------------------------

namespace {

// Shrinks an extent to ~1/denom, kept a multiple of `granule`; floors at
// one granule, and returns the full extent when even that would not shrink
// it (the shape is then too small for this fidelity to save anything).
int64_t FidelityExtent(int64_t extent, int denom, int64_t granule) {
  if (denom <= 1) return extent;
  const int64_t granules = extent / denom / granule;
  if (granules >= 1) return granules * granule;
  return extent >= 2 * granule ? granule : extent;
}

// Fidelity granules: the k/n axes only need the bk/bn quantum; the flash KV
// axis keeps at least the largest block so every candidate still runs a
// whole step.
constexpr int64_t kMlpFidelityGranule = 64;
constexpr int64_t kFlashFidelityGranule = 1024;

}  // namespace

bool FidelityMlpCanShrink(const MlpPartShape& shape, bool shrink_k,
                          int denom) {
  const int64_t extent = shrink_k ? shape.k : shape.n;
  return FidelityExtent(extent, denom, kMlpFidelityGranule) < extent;
}

bool FidelityFlashCanShrink(const FlashShape& shape, int denom) {
  return FidelityExtent(shape.seq_kv, denom, kFlashFidelityGranule) <
         shape.seq_kv;
}

bool FidelityAttnCanShrink(const sim::MachineSpec& spec,
                           const AttnShape& shape, int denom) {
  return FidelityExtent(shape.seq, denom, 2048L * spec.num_devices) <
         shape.seq;
}

bool FidelityMoeCanShrink(const sim::MachineSpec& spec, const MoeShape& shape,
                          int denom) {
  return FidelityExtent(shape.m, denom,
                        kMoeCoarseGranule * spec.num_devices) < shape.m;
}

sim::TimeNs FidelitySimulateAgGemm(const sim::MachineSpec& spec,
                                   const MlpPartShape& shape,
                                   const TuneCandidate& c, int denom) {
  // GEMM flops and AG wire bytes are both linear in k, so the
  // compute-vs-comm balance every candidate is ranked on survives the
  // shrink.
  MlpPartShape s = shape;
  s.k = FidelityExtent(shape.k, denom, kMlpFidelityGranule);
  return SimulateAgGemm(spec, s, c);
}

sim::TimeNs FidelitySimulateGemmRs(const sim::MachineSpec& spec,
                                   const MlpPartShape& shape,
                                   const TuneCandidate& c, int denom) {
  // Flops and RS wire bytes are both linear in n; the m axis (which the
  // feasibility predicates constrain) stays untouched, so feasibility is
  // fidelity-invariant for this family.
  MlpPartShape s = shape;
  s.n = FidelityExtent(shape.n, denom, kMlpFidelityGranule);
  return SimulateGemmRs(spec, s, c);
}

sim::TimeNs FidelitySimulateAgAttention(const sim::MachineSpec& spec,
                                        const AttnShape& shape,
                                        const TuneCandidate& c, int denom) {
  AttnShape s = shape;
  s.seq = FidelityExtent(shape.seq, denom, 2048L * spec.num_devices);
  return SimulateAgAttention(spec, s, c);
}

sim::TimeNs FidelitySimulateFlashCore(const sim::MachineSpec& spec,
                                      const FlashShape& shape,
                                      const TuneCandidate& c, int denom) {
  FlashShape s = shape;
  s.seq_kv = FidelityExtent(shape.seq_kv, denom, kFlashFidelityGranule);
  return SimulateFlashCore(spec, s, c);
}

sim::TimeNs FidelitySimulateAgMoe(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c, int denom) {
  MoeShape s = shape;
  s.m = FidelityExtent(shape.m, denom, kMoeCoarseGranule * spec.num_devices);
  if (s.m == shape.m) return SimulateAgMoe(spec, shape, routing, c);
  Rng rng(kMoeCoarseRoutingSeed);
  const compute::MoeRouting r =
      compute::RandomRouting(s.m, shape.num_experts, shape.topk, rng);
  return SimulateAgMoe(spec, s, r, c);
}

sim::TimeNs FidelitySimulateMoeRs(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c, int denom) {
  MoeShape s = shape;
  s.m = FidelityExtent(shape.m, denom, kMoeCoarseGranule * spec.num_devices);
  if (s.m == shape.m) return SimulateMoeRs(spec, shape, routing, c);
  Rng rng(kMoeCoarseRoutingSeed);
  const compute::MoeRouting r =
      compute::RandomRouting(s.m, shape.num_experts, shape.topk, rng);
  return SimulateMoeRs(spec, s, r, c);
}

// ---- Analytic lower bounds ----------------------------------------------

sim::TimeNs AgGemmOverlapBound(const sim::MachineSpec& spec,
                               const MlpPartShape& shape,
                               const TuneCandidate& c) {
  if (!AgGemmFeasible(spec, shape, c)) return 0;  // never prune; eval rejects
  const sim::CostModel cost(spec);
  // Mirror RolePlan's ClaimComm: comm blocks are capped by the role's work
  // (all tiles in pull mode, this rank's tiles in push mode). Overstating
  // the comm SM claim would overstate the bound and could prune the argmin.
  const int64_t comm_work = c.comm == CommResource::kSmPush
                                ? shape.m / spec.num_devices / c.comm_tile_m
                                : shape.m / c.comm_tile_m;
  const int comm_sms =
      c.comm == CommResource::kDma
          ? 0
          : static_cast<int>(std::min<int64_t>(c.comm_sms, comm_work));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, compute_sms);
  // Each rank must receive (R-1)/R of the gathered activation over the wire.
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.k * 2;
  // Overlap-aware: compute and communication proceed concurrently, so the
  // fused kernel can never beat the larger of the two. The launch latency
  // delays the device kernel (compute side) but not host-driven copies.
  return std::max<sim::TimeNs>(compute + spec.kernel_launch_latency,
                               cost.NvlinkTransfer(bytes));
}

sim::TimeNs AgGemmLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c) {
  const sim::TimeNs overlap = AgGemmOverlapBound(spec, shape, c);
  if (overlap == 0) return 0;  // infeasible: never prune
  return std::max(overlap, AgGemmCommFloor(spec, shape, c));
}

sim::TimeNs GemmRsOverlapBound(const sim::MachineSpec& spec,
                               const MlpPartShape& shape,
                               const TuneCandidate& c) {
  if (!GemmRsFeasible(spec, shape, c)) return 0;
  const sim::CostModel cost(spec);
  const int64_t chunks = shape.m / spec.num_devices / c.comm_tile_m;
  // Unlike the AG kernels, the ring-RS role claims its SM blocks even in
  // DMA mode (hybrid mapping: reduction on SMs, only the scatter moves to
  // copy engines), so comm_sms is subtracted for every resource binding.
  const int comm_sms =
      static_cast<int>(std::min<int64_t>(c.comm_sms, chunks));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, compute_sms);
  // Ring RS: each rank forwards (R-1)/R of the partial-sum matrix.
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.n * 2;
  return std::max<sim::TimeNs>(compute + spec.kernel_launch_latency,
                               cost.NvlinkTransfer(bytes));
}

sim::TimeNs GemmRsLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c) {
  const sim::TimeNs overlap = GemmRsOverlapBound(spec, shape, c);
  if (overlap == 0) return 0;
  return std::max(overlap, GemmRsCommFloor(spec, shape, c));
}

sim::TimeNs AgAttentionLowerBound(const sim::MachineSpec& spec,
                                  const AttnShape& shape,
                                  const TuneCandidate& c) {
  if (!AgAttentionFeasible(spec, shape, c)) return 0;
  const sim::CostModel cost(spec);
  const int R = spec.num_devices;
  const int64_t s_per = shape.seq / R;
  const int64_t q_tiles = CeilDiv<int64_t>(s_per, c.block_q);
  const int64_t tiles = shape.batch_heads * q_tiles;
  const int64_t waves = CeilDiv<int64_t>(tiles, spec.sms_per_device);
  const int64_t kv_steps =
      static_cast<int64_t>(R) * CeilDiv<int64_t>(s_per, c.block_kv);
  const sim::TimeNs compute =
      waves * kv_steps *
      cost.FlashAttnTileStep(c.block_q, c.block_kv,
                             static_cast<int>(shape.head_dim));
  // K and V shards from every remote rank land over the wire.
  const uint64_t bytes = 2ULL *
                         static_cast<uint64_t>(R - 1) * shape.batch_heads *
                         s_per * shape.head_dim * 2;
  return std::max<sim::TimeNs>(compute + spec.kernel_launch_latency,
                               cost.NvlinkTransfer(bytes));
}

sim::TimeNs FlashCoreLowerBound(const sim::MachineSpec& spec,
                                const FlashShape& shape,
                                const TuneCandidate& c) {
  if (shape.seq_q <= 0 || shape.seq_kv <= 0 || c.block_q <= 0 ||
      c.block_kv <= 0) {
    return 0;
  }
  const sim::CostModel cost(spec);
  const int64_t tiles =
      shape.batch_heads * CeilDiv<int64_t>(shape.seq_q, c.block_q);
  const int64_t waves = CeilDiv<int64_t>(tiles, spec.sms_per_device);
  const int64_t kv_steps = CeilDiv<int64_t>(shape.seq_kv, c.block_kv);
  return waves * kv_steps *
             cost.FlashAttnTileStep(c.block_q, c.block_kv,
                                    static_cast<int>(shape.head_dim)) +
         spec.kernel_launch_latency;
}

sim::TimeNs AgMoeLowerBound(const sim::MachineSpec& spec,
                            const MoeShape& shape, const TuneCandidate& c) {
  if (!AgMoeFeasible(spec, shape, c)) return 0;
  const sim::CostModel cost(spec);
  const int64_t comm_work = c.comm == CommResource::kSmPush
                                ? shape.m / spec.num_devices / c.comm_tile_m
                                : shape.m / c.comm_tile_m;
  const int comm_sms =
      c.comm == CommResource::kDma
          ? 0
          : static_cast<int>(std::min<int64_t>(c.comm_sms, comm_work));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  // Dense-GEMM time over the slot space is a lower bound on the group GEMM:
  // per-expert fragmentation only adds tiles.
  const sim::TimeNs compute = cost.GemmComputeTime(
      shape.m * shape.topk, shape.inner, shape.hidden, c.gemm.bm, c.gemm.bn,
      c.gemm.bk, compute_sms);
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.hidden * 2;
  return std::max<sim::TimeNs>(compute + spec.kernel_launch_latency,
                               cost.NvlinkTransfer(bytes));
}

sim::TimeNs MoeRsLowerBound(const sim::MachineSpec& spec,
                            const MoeShape& shape, const TuneCandidate& c) {
  if (!MoeRsFeasible(spec, shape, c)) return 0;
  const sim::CostModel cost(spec);
  const int64_t rs_chunks = shape.m / spec.num_devices / c.comm_tile_m;
  const int64_t reduce_chunks = shape.m / c.reduce_block_tokens;
  // Both comm roles keep their SM claims in DMA mode (the ring reduction
  // and topk-reduce run on SMs; DMA only moves the scatter).
  const int claimed =
      static_cast<int>(std::min<int64_t>(c.comm_sms, rs_chunks)) +
      static_cast<int>(std::min<int64_t>(c.reduce_sms, reduce_chunks));
  const int compute_sms = std::max(1, spec.sms_per_device - claimed);
  const sim::TimeNs compute = cost.GemmComputeTime(
      shape.m * shape.topk, shape.hidden, shape.inner, c.gemm.bm, c.gemm.bn,
      c.gemm.bk, compute_sms);
  const int R = spec.num_devices;
  const uint64_t bytes =
      static_cast<uint64_t>(shape.m / R * (R - 1)) * shape.hidden * 2;
  return std::max<sim::TimeNs>(compute + spec.kernel_launch_latency,
                               cost.NvlinkTransfer(bytes));
}

// ---- Pre-wired searches -------------------------------------------------

TuneResult TuneAgGemm(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) { return SimulateAgGemm(spec, shape, c); },
      [&](const TuneCandidate& c) { return AgGemmLowerBound(spec, shape, c); },
      [&](const TuneCandidate& c) {
        return CoarseSimulateAgGemm(spec, shape, c);
      });
}

TuneResult TuneGemmRs(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) { return SimulateGemmRs(spec, shape, c); },
      [&](const TuneCandidate& c) { return GemmRsLowerBound(spec, shape, c); },
      [&](const TuneCandidate& c) {
        return CoarseSimulateGemmRs(spec, shape, c);
      });
}

TuneResult TuneAgAttention(const sim::MachineSpec& spec,
                           const AttnShape& shape, const TuningSpace& space,
                           const TuneCandidate& base, const Autotuner& tuner) {
  // When the sequence is too short to shrink, a "coarse" score would be a
  // full-fidelity run — halving would only double the work. Search plain.
  const bool can_coarsen =
      CoarseSeq(shape.seq, 2048L * spec.num_devices) < shape.seq;
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) {
        return SimulateAgAttention(spec, shape, c);
      },
      [&](const TuneCandidate& c) {
        return AgAttentionLowerBound(spec, shape, c);
      },
      can_coarsen ? Autotuner::EvalFn([&](const TuneCandidate& c) {
        return CoarseSimulateAgAttention(spec, shape, c);
      })
                  : Autotuner::EvalFn());
}

TuneResult TuneFlashCore(const sim::MachineSpec& spec, const FlashShape& shape,
                         const TuningSpace& space, const TuneCandidate& base,
                         const Autotuner& tuner) {
  const bool can_coarsen = CoarseSeq(shape.seq_q, 2048) < shape.seq_q ||
                           CoarseSeq(shape.seq_kv, 2048) < shape.seq_kv;
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) { return SimulateFlashCore(spec, shape, c); },
      [&](const TuneCandidate& c) {
        return FlashCoreLowerBound(spec, shape, c);
      },
      can_coarsen ? Autotuner::EvalFn([&](const TuneCandidate& c) {
        return CoarseSimulateFlashCore(spec, shape, c);
      })
                  : Autotuner::EvalFn());
}

TuneResult TuneAgMoe(const sim::MachineSpec& spec, const MoeShape& shape,
                     const compute::MoeRouting& routing,
                     const TuningSpace& space, const TuneCandidate& base,
                     const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) {
        return SimulateAgMoe(spec, shape, routing, c);
      },
      [&](const TuneCandidate& c) {
        return AgMoeRoutedLowerBound(spec, shape, routing, c);
      },
      [&](const TuneCandidate& c) {
        return CoarseSimulateAgMoe(spec, shape, routing, c);
      });
}

TuneResult TuneMoeRs(const sim::MachineSpec& spec, const MoeShape& shape,
                     const compute::MoeRouting& routing,
                     const TuningSpace& space, const TuneCandidate& base,
                     const Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const TuneCandidate& c) {
        return SimulateMoeRs(spec, shape, routing, c);
      },
      [&](const TuneCandidate& c) {
        return MoeRsRoutedLowerBound(spec, shape, routing, c);
      },
      [&](const TuneCandidate& c) {
        return CoarseSimulateMoeRs(spec, shape, routing, c);
      });
}

// ---- Laddered multi-fidelity searches -----------------------------------

namespace {

int CoarsestRung(const Autotuner& tuner) {
  const std::vector<int>& rungs = tuner.options().ladder_rungs;
  return rungs.empty() ? 1 : rungs.front();
}

}  // namespace

TuneResult TuneAgGemmLaddered(const sim::MachineSpec& spec,
                              const MlpPartShape& shape,
                              const TuningSpace& space,
                              const TuneCandidate& base,
                              const Autotuner& tuner) {
  if (!FidelityMlpCanShrink(shape, /*shrink_k=*/true, CoarsestRung(tuner))) {
    return TuneAgGemm(spec, shape, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateAgGemm(spec, shape, c, denom);
      },
      [&](const TuneCandidate& c) {
        return AgGemmLowerBound(spec, shape, c);
      });
}

TuneResult TuneGemmRsLaddered(const sim::MachineSpec& spec,
                              const MlpPartShape& shape,
                              const TuningSpace& space,
                              const TuneCandidate& base,
                              const Autotuner& tuner) {
  if (!FidelityMlpCanShrink(shape, /*shrink_k=*/false, CoarsestRung(tuner))) {
    return TuneGemmRs(spec, shape, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateGemmRs(spec, shape, c, denom);
      },
      [&](const TuneCandidate& c) {
        return GemmRsLowerBound(spec, shape, c);
      });
}

TuneResult TuneAgAttentionLaddered(const sim::MachineSpec& spec,
                                   const AttnShape& shape,
                                   const TuningSpace& space,
                                   const TuneCandidate& base,
                                   const Autotuner& tuner) {
  if (!FidelityAttnCanShrink(spec, shape, CoarsestRung(tuner))) {
    return TuneAgAttention(spec, shape, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateAgAttention(spec, shape, c, denom);
      },
      [&](const TuneCandidate& c) {
        return AgAttentionLowerBound(spec, shape, c);
      });
}

TuneResult TuneFlashCoreLaddered(const sim::MachineSpec& spec,
                                 const FlashShape& shape,
                                 const TuningSpace& space,
                                 const TuneCandidate& base,
                                 const Autotuner& tuner) {
  if (!FidelityFlashCanShrink(shape, CoarsestRung(tuner))) {
    return TuneFlashCore(spec, shape, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateFlashCore(spec, shape, c, denom);
      },
      [&](const TuneCandidate& c) {
        return FlashCoreLowerBound(spec, shape, c);
      });
}

TuneResult TuneAgMoeLaddered(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuningSpace& space,
                             const TuneCandidate& base,
                             const Autotuner& tuner) {
  if (!FidelityMoeCanShrink(spec, shape, CoarsestRung(tuner))) {
    return TuneAgMoe(spec, shape, routing, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateAgMoe(spec, shape, routing, c, denom);
      },
      [&](const TuneCandidate& c) {
        return AgMoeRoutedLowerBound(spec, shape, routing, c);
      });
}

TuneResult TuneMoeRsLaddered(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuningSpace& space,
                             const TuneCandidate& base,
                             const Autotuner& tuner) {
  if (!FidelityMoeCanShrink(spec, shape, CoarsestRung(tuner))) {
    return TuneMoeRs(spec, shape, routing, space, base, tuner);
  }
  return tuner.SearchLaddered(
      space, base,
      [&](const TuneCandidate& c, int denom) {
        return FidelitySimulateMoeRs(spec, shape, routing, c, denom);
      },
      [&](const TuneCandidate& c) {
        return MoeRsRoutedLowerBound(spec, shape, routing, c);
      });
}

}  // namespace tilelink::tl
