#include "tilelink/builder/comm_roles.h"

#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

BlockProgram BuildRowAllGatherPull(const RowAllGatherParams& params) {
  TileProgramBuilder b;
  const StaticMapping map = params.map;
  auto shards = params.shards;
  auto fulls = params.fulls;
  const int64_t m_per_rank = params.m_per_rank;
  const int64_t num_tiles = map.num_tiles();
  const int64_t tiles_per_rank = map.tiles_per_rank();
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          // Ring tile order (§3.1): every rank starts pulling at its own
          // shard and walks the ring, so concurrent pulls spread across all
          // source ports instead of stampeding the same one.
          auto tile_of = [num_tiles, tiles_per_rank](const Env& e) {
            return (static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid +
                    e.rank * tiles_per_rank) %
                   num_tiles;
          };
          body.Add(ops::TilePullData(
              "ag.pull",
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                DataSpec d;
                d.src_rank = src;
                d.dst_rank = e.rank;
                d.bytes = static_cast<uint64_t>(rows.len()) *
                          shards[0].dim(1) * DTypeSize(shards[0].dtype());
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                const Tensor dst_view =
                    fulls[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                             rows.len());
                src_view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = src_view.buffer();
                dst_view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = dst_view.buffer();
                return d;
              },
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                Tensor dst_view = fulls[static_cast<size_t>(e.rank)].Slice(
                    0, rows.lo, rows.len());
                CopyTensor(src_view, dst_view);
              }));
          body.Add(ops::ProducerTileNotify(
              "ag.notify(p2p)", [map, tile_of](const Env& e) {
                // Pull mode: the local consumer.
                return NotifyOne(SignalSpace::kProducerConsumer, {e.rank},
                                 map.Channel(tile_of(e)));
              }));
        });
  return b.Build();
}

BlockProgram BuildRowAllGatherPush(const RowAllGatherParams& params) {
  TileProgramBuilder b;
  const StaticMapping map = params.map;
  auto shards = params.shards;
  auto fulls = params.fulls;
  const int R = params.ranks;
  const int64_t m_per_rank = params.m_per_rank;
  const int64_t tiles_per_rank = map.tiles_per_rank();
  b.For("t",
        [tiles_per_rank](const Env& e) {
          return TilesForBlock(tiles_per_rank, e);
        },
        [&](TileProgramBuilder& body) {
          auto tile_of = [tiles_per_rank](const Env& e) {
            // Global tile id of this rank's local tile.
            return static_cast<int64_t>(e.rank) * tiles_per_rank +
                   e.block_id + e.iv(0) * e.grid;
          };
          body.For("p", [R](const Env&) { return static_cast<int64_t>(R); },
                   [&](TileProgramBuilder& inner) {
                     auto target_of = [R](const Env& e) {
                       // Ring offset: start with my right neighbor.
                       return static_cast<int>((e.rank + 1 + e.iv(1)) % R);
                     };
                     inner.Add(ops::TilePushData(
                         "ag.push",
                         [map, shards, fulls, m_per_rank, tile_of,
                          target_of](const Env& e) {
                           const int64_t t = tile_of(e);
                           const TileRange rows = map.ShapeRange(t);
                           const int dst = target_of(e);
                           DataSpec d;
                           d.src_rank = e.rank;
                           d.dst_rank = dst;
                           d.bytes = static_cast<uint64_t>(rows.len()) *
                                     shards[0].dim(1) *
                                     DTypeSize(shards[0].dtype());
                           const Tensor src_view =
                               shards[static_cast<size_t>(e.rank)].Slice(
                                   0, rows.lo - e.rank * m_per_rank,
                                   rows.len());
                           const Tensor dst_view =
                               fulls[static_cast<size_t>(dst)].Slice(
                                   0, rows.lo, rows.len());
                           src_view.BufferRange(&d.read_lo, &d.read_hi);
                           d.read_buf = src_view.buffer();
                           dst_view.BufferRange(&d.write_lo, &d.write_hi);
                           d.write_buf = dst_view.buffer();
                           return d;
                         },
                         /*notify_after=*/nullptr, /*async_dma=*/false,
                         [map, shards, fulls, m_per_rank, tile_of,
                          target_of](const Env& e) {
                           const int64_t t = tile_of(e);
                           const TileRange rows = map.ShapeRange(t);
                           const int dst = target_of(e);
                           const Tensor src_view =
                               shards[static_cast<size_t>(e.rank)].Slice(
                                   0, rows.lo - e.rank * m_per_rank,
                                   rows.len());
                           Tensor dst_view =
                               fulls[static_cast<size_t>(dst)].Slice(
                                   0, rows.lo, rows.len());
                           CopyTensor(src_view, dst_view);
                         }));
                     inner.Add(ops::ProducerTileNotify(
                         "ag.notify(p2p)",
                         [map, tile_of, target_of](const Env& e) {
                           return NotifyOne(SignalSpace::kProducerConsumer,
                                            {target_of(e)},
                                            map.Channel(tile_of(e)));
                         }));
                   });
        });
  return b.Build();
}

namespace {

sim::Coro CopyAndNotify(rt::RankCtx& ctx, Tensor src, Tensor dst,
                        BlockChannel bc, int channel, uint64_t inc) {
  co_await RankCopyData(ctx, src, dst);
  // Host-side release: the DMA completed before this notify issues.
  bc.set(SignalSpace::kProducerConsumer, ctx.rank)
      ->AddFrom(ctx.rank, channel, inc);
}

}  // namespace

sim::Coro DmaRowAllGather(rt::RankCtx& ctx, BlockChannel bc,
                          RowAllGatherParams params) {
  const int R = params.ranks;
  const int64_t m_per_rank = params.m_per_rank;
  std::vector<sim::Coro> copies;
  // Ring order: own shard first (cheap local copy), then increasing
  // distance, one copy per channel chunk so notifications are fine-grained.
  for (int s = 0; s < R; ++s) {
    const int src = (ctx.rank + s) % R;
    for (int c = 0; c < params.map.channels_per_rank(); ++c) {
      const int channel = src * params.map.channels_per_rank() + c;
      const TileRange rows = params.map.ChannelRows(channel);
      if (rows.len() <= 0) continue;
      Tensor src_view = params.shards[static_cast<size_t>(src)].Slice(
          0, rows.lo - src * m_per_rank, rows.len());
      Tensor dst_view = params.fulls[static_cast<size_t>(ctx.rank)].Slice(
          0, rows.lo, rows.len());
      copies.push_back(CopyAndNotify(ctx, src_view, dst_view, bc, channel,
                                     params.map.TilesInChannel(channel)));
    }
  }
  co_await sim::WhenAll(std::move(copies));
}

}  // namespace tilelink::tl
