// FusedKernelBase: shared scaffolding of every TileLink overlapped kernel.
//
// Each kernel in tilelink/kernels is one fused SPMD program: symmetric
// per-rank tensors, a set of barrier channels (BlockChannel), a compiled
// FusedKernelSpec, and a host Run() coroutine that launches the device
// kernel and (optionally) drives copy engines concurrently. Before this
// layer existed every kernel hand-rolled all four; the base class owns them
// so a kernel's .cc holds only its role programs — the part of the design
// space the paper actually varies (§3.1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/collectives.h"
#include "runtime/world.h"
#include "tensor/tensor.h"
#include "tilelink/block_channel.h"
#include "tilelink/program.h"

namespace tilelink::tl {

// Number of tiles a block processes when `total` tiles are dealt
// round-robin over the role's grid.
int64_t TilesForBlock(int64_t total, const Env& env);

class FusedKernelBase {
 public:
  virtual ~FusedKernelBase() = default;
  FusedKernelBase(const FusedKernelBase&) = delete;
  FusedKernelBase& operator=(const FusedKernelBase&) = delete;

  const std::string& name() const { return name_; }
  const std::string& listing() const { return compiled_.listing(); }
  const FusedKernelSpec& spec() const { return compiled_.spec(); }

  // SPMD body: call once per rank inside World::RunSpmd. Arrives at the
  // world barrier, launches the fused kernel (unless LaunchesDevice() is
  // false), runs HostComm() concurrently, and awaits both.
  sim::Coro Run(rt::RankCtx& ctx);

 protected:
  FusedKernelBase(rt::World& world, std::string name, CompilerOptions copts);

  rt::World& world() const { return *world_; }
  int ranks() const { return world_->size(); }
  int sms() const { return world_->spec().sms_per_device; }

  // One identically-shaped tensor per rank, named "<kernel>.<suffix>".
  comm::SymTensor AllocSymmetric(const std::string& suffix,
                                 const std::vector<int64_t>& shape,
                                 DType dtype = DType::kBF16) const;

  // Allocates the symmetric signal storage for the three signal spaces.
  void CreateChannels(int num_pc, int num_peer, int num_host);
  const BlockChannel& channel(int rank) const {
    return bcs_.at(static_cast<size_t>(rank));
  }

  // Compiles the role plan into the launchable kernel. Must be called once,
  // at the end of the subclass constructor.
  void Finalize(FusedKernelSpec spec);

  // Hook: host-driven communication (copy-engine programs built from host
  // primitives) overlapped with the device kernel. Default: none.
  virtual std::optional<sim::Coro> HostComm(rt::RankCtx& ctx);
  // Hook: comm-only measurement variants skip the device launch.
  virtual bool LaunchesDevice() const { return true; }

  static sim::Coro AwaitKernel(std::shared_ptr<rt::KernelState> state);

 private:
  rt::World* world_;
  std::string name_;
  CompilerOptions copts_;
  std::vector<BlockChannel> bcs_;
  CompiledKernel compiled_;
};

}  // namespace tilelink::tl
