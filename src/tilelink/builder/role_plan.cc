#include "tilelink/builder/role_plan.h"

#include <algorithm>

namespace tilelink::tl {

const char* FabricBindingName(FabricBinding fabric) {
  switch (fabric) {
    case FabricBinding::kNvlink:
      return "nvlink";
    case FabricBinding::kNic:
      return "nic";
    case FabricBinding::kCopyEngine:
      return "copy_engine";
  }
  return "?";
}

FabricBinding FabricForResource(CommResource r) {
  return r == CommResource::kDma ? FabricBinding::kCopyEngine
                                 : FabricBinding::kNvlink;
}

const char* TileOrderName(TileOrder order) {
  switch (order) {
    case TileOrder::kRowMajor:
      return "row_major";
    case TileOrder::kOwnerFirst:
      return "owner_first";
    case TileOrder::kNextRankFirst:
      return "next_rank_first";
  }
  return "?";
}

int64_t SwizzleTileM(int64_t raw_m, int64_t tiles_m, int64_t tiles_m_per_rank,
                     int rank, int ranks, TileOrder order) {
  if (order == TileOrder::kRowMajor || tiles_m_per_rank <= 0) return raw_m;
  const int first_rank =
      order == TileOrder::kOwnerFirst ? rank : (rank + 1) % ranks;
  return (raw_m + first_rank * tiles_m_per_rank) % tiles_m;
}

ResourceBudget ResourceBudget::ForDevice(const sim::MachineSpec& spec) {
  ResourceBudget budget(spec.sms_per_device);
  // NVLink SM-copy channels are plentiful at kernel granularity (one per
  // comm block); copy engines and NIC queue pairs are the scarce resources.
  budget.SetFabricChannels(FabricBinding::kCopyEngine,
                           spec.copy_engines_per_device);
  budget.SetFabricChannels(FabricBinding::kNic, spec.nic_queue_pairs);
  return budget;
}

void ResourceBudget::SetFabricChannels(FabricBinding fabric, int capacity) {
  fabric_capacity_[static_cast<int>(fabric)] = capacity;
}

int ResourceBudget::fabric_capacity(FabricBinding fabric) const {
  return fabric_capacity_[static_cast<int>(fabric)];
}

int ResourceBudget::fabric_used(FabricBinding fabric) const {
  return fabric_used_[static_cast<int>(fabric)];
}

int ResourceBudget::ClaimFabric(FabricBinding fabric, int want) {
  const int f = static_cast<int>(fabric);
  int granted = std::max(want, 1);
  if (fabric_capacity_[f] >= 0) {
    granted = std::max(1, std::min(granted,
                                   fabric_capacity_[f] - fabric_used_[f]));
  }
  fabric_used_[f] += granted;
  return granted;
}

int ResourceBudget::ClaimComm(int want, int64_t work_items) {
  const int blocks =
      static_cast<int>(std::min<int64_t>(want, work_items));
  used_ += blocks;
  return blocks;
}

int ResourceBudget::ClaimCompute(int64_t tiles) {
  const int blocks = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(tiles, 1), std::max(1, total_ - used_)));
  used_ += blocks;
  return blocks;
}

RolePlan& RolePlan::Comm(const std::string& name, int want_sms,
                         int64_t work_items, BlockProgram program) {
  return Comm(name, FabricBinding::kNvlink, want_sms, work_items,
              std::move(program));
}

RolePlan& RolePlan::Comm(const std::string& name, FabricBinding fabric,
                         int want_sms, int64_t work_items,
                         BlockProgram program, int want_channels) {
  const int blocks = budget_.ClaimComm(want_sms, work_items);
  const int channels =
      budget_.ClaimFabric(fabric, want_channels > 0 ? want_channels : blocks);
  spec_.roles.push_back(
      Role{name, blocks, std::move(program), fabric, channels});
  return *this;
}

RolePlan& RolePlan::Compute(const std::string& name, int64_t tiles,
                            BlockProgram program) {
  spec_.roles.push_back(Role{name, budget_.ClaimCompute(tiles),
                             std::move(program), FabricBinding::kNvlink, 0});
  return *this;
}

}  // namespace tilelink::tl
