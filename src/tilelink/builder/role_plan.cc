#include "tilelink/builder/role_plan.h"

#include <algorithm>

namespace tilelink::tl {

const char* TileOrderName(TileOrder order) {
  switch (order) {
    case TileOrder::kRowMajor:
      return "row_major";
    case TileOrder::kOwnerFirst:
      return "owner_first";
    case TileOrder::kNextRankFirst:
      return "next_rank_first";
  }
  return "?";
}

int64_t SwizzleTileM(int64_t raw_m, int64_t tiles_m, int64_t tiles_m_per_rank,
                     int rank, int ranks, TileOrder order) {
  if (order == TileOrder::kRowMajor || tiles_m_per_rank <= 0) return raw_m;
  const int first_rank =
      order == TileOrder::kOwnerFirst ? rank : (rank + 1) % ranks;
  return (raw_m + first_rank * tiles_m_per_rank) % tiles_m;
}

int ResourceBudget::ClaimComm(int want, int64_t work_items) {
  const int blocks =
      static_cast<int>(std::min<int64_t>(want, work_items));
  used_ += blocks;
  return blocks;
}

int ResourceBudget::ClaimCompute(int64_t tiles) {
  const int blocks = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(tiles, 1), std::max(1, total_ - used_)));
  used_ += blocks;
  return blocks;
}

RolePlan& RolePlan::Comm(const std::string& name, int want_sms,
                         int64_t work_items, BlockProgram program) {
  spec_.roles.push_back(
      Role{name, budget_.ClaimComm(want_sms, work_items), std::move(program)});
  return *this;
}

RolePlan& RolePlan::Compute(const std::string& name, int64_t tiles,
                            BlockProgram program) {
  spec_.roles.push_back(
      Role{name, budget_.ClaimCompute(tiles), std::move(program)});
  return *this;
}

}  // namespace tilelink::tl
