#include "tilelink/builder/tile_deps.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/string_utils.h"

namespace tilelink::tl {

namespace {

const TileSpaceSpec* FindSpace(const OverlapSpec& spec,
                               const std::string& name) {
  for (const TileSpaceSpec& s : spec.spaces) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// Resolved half-open tile interval of a ref (whole() -> [0, tiles)).
std::pair<int64_t, int64_t> RefInterval(const TileRef& ref,
                                        const TileSpaceSpec& space) {
  if (ref.whole()) return {0, space.tiles};
  return {ref.lo, ref.hi};
}

// True when [lo, hi) is covered by the union of `intervals`.
bool Covered(int64_t lo, int64_t hi,
             std::vector<std::pair<int64_t, int64_t>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  int64_t reach = lo;
  for (const auto& [ilo, ihi] : intervals) {
    if (ilo > reach) break;
    reach = std::max(reach, ihi);
    if (reach >= hi) return true;
  }
  return reach >= hi;
}

// DFS cycle search over writer -> reader edges; returns the cycle as
// "a -> b -> a" or empty.
std::string FindCycle(const OverlapSpec& spec,
                      const std::vector<std::vector<int>>& edges) {
  const int n = static_cast<int>(spec.roles.size());
  // 0: unvisited, 1: on stack, 2: done.
  std::vector<int> state(static_cast<size_t>(n), 0);
  std::vector<int> stack;
  std::string cycle;
  std::function<bool(int)> dfs = [&](int u) {
    state[static_cast<size_t>(u)] = 1;
    stack.push_back(u);
    for (int v : edges[static_cast<size_t>(u)]) {
      if (state[static_cast<size_t>(v)] == 1) {
        auto it = std::find(stack.begin(), stack.end(), v);
        for (; it != stack.end(); ++it) {
          cycle += spec.roles[static_cast<size_t>(*it)].name + " -> ";
        }
        cycle += spec.roles[static_cast<size_t>(v)].name;
        return true;
      }
      if (state[static_cast<size_t>(v)] == 0 && dfs(v)) return true;
    }
    stack.pop_back();
    state[static_cast<size_t>(u)] = 2;
    return false;
  };
  for (int u = 0; u < n; ++u) {
    if (state[static_cast<size_t>(u)] == 0 && dfs(u)) return cycle;
  }
  return "";
}

}  // namespace

const char* OverlapRoleKindName(OverlapRoleKind kind) {
  switch (kind) {
    case OverlapRoleKind::kCompute: return "compute";
    case OverlapRoleKind::kComm: return "comm";
    case OverlapRoleKind::kRowAllGather: return "row_allgather";
    case OverlapRoleKind::kRingReduceScatter: return "ring_rs";
    case OverlapRoleKind::kHierAgRing: return "hier_ag_ring";
    case OverlapRoleKind::kNicRailPush: return "nic_rail_push";
    case OverlapRoleKind::kNicRailReduce: return "nic_rail_reduce";
    case OverlapRoleKind::kHostDma: return "host_dma";
  }
  return "?";
}

std::string OverlapSpec::Validate() const {
  if (kernel.empty()) return "kernel: must be non-empty";
  if (spaces.empty()) return "spaces: must be non-empty";
  for (size_t i = 0; i < spaces.size(); ++i) {
    const TileSpaceSpec& s = spaces[i];
    if (s.name.empty()) {
      return StrFormat("spaces[%zu].name: must be non-empty", i);
    }
    for (size_t j = 0; j < i; ++j) {
      if (spaces[j].name == s.name) {
        return StrFormat("spaces[%zu].name: duplicate space \"%s\"", i,
                         s.name.c_str());
      }
    }
    if (s.tiles <= 0) {
      return StrFormat("spaces[%zu](%s).tiles: must be > 0, got %lld", i,
                       s.name.c_str(), static_cast<long long>(s.tiles));
    }
    if (s.tile_rows <= 0) {
      return StrFormat("spaces[%zu](%s).tile_rows: must be > 0, got %lld", i,
                       s.name.c_str(), static_cast<long long>(s.tile_rows));
    }
  }
  if (roles.empty()) return "roles: must be non-empty";
  for (size_t i = 0; i < roles.size(); ++i) {
    const OverlapRoleSpec& r = roles[i];
    if (r.name.empty()) {
      return StrFormat("roles[%zu].name: must be non-empty", i);
    }
    for (size_t j = 0; j < i; ++j) {
      if (roles[j].name == r.name) {
        return StrFormat("roles[%zu].name: duplicate role \"%s\"", i,
                         r.name.c_str());
      }
    }
    auto check_refs = [&](const std::vector<TileRef>& refs,
                          const char* field) -> std::string {
      for (size_t k = 0; k < refs.size(); ++k) {
        const TileRef& ref = refs[k];
        const TileSpaceSpec* space = FindSpace(*this, ref.space);
        if (space == nullptr) {
          return StrFormat(
              "roles[%zu](%s).%s[%zu].space: dangling tile reference "
              "\"%s\" (no such space)",
              i, r.name.c_str(), field, k, ref.space.c_str());
        }
        if (!ref.whole() &&
            (ref.lo < 0 || ref.hi <= ref.lo || ref.hi > space->tiles)) {
          return StrFormat(
              "roles[%zu](%s).%s[%zu]: range [%lld, %lld) outside space "
              "\"%s\" [0, %lld)",
              i, r.name.c_str(), field, k, static_cast<long long>(ref.lo),
              static_cast<long long>(ref.hi), ref.space.c_str(),
              static_cast<long long>(space->tiles));
        }
      }
      return "";
    };
    if (std::string err = check_refs(r.reads, "reads"); !err.empty()) {
      return err;
    }
    if (std::string err = check_refs(r.writes, "writes"); !err.empty()) {
      return err;
    }
    switch (r.kind) {
      case OverlapRoleKind::kComm:
        if (r.work_items < 0) {
          return StrFormat("roles[%zu](%s).work_items: comm role needs an "
                           "explicit work-item count",
                           i, r.name.c_str());
        }
        break;
      case OverlapRoleKind::kRowAllGather:
        if (r.reads.empty() || r.writes.empty()) {
          return StrFormat("roles[%zu](%s): row_allgather needs a shard "
                           "read and a gathered write",
                           i, r.name.c_str());
        }
        break;
      case OverlapRoleKind::kRingReduceScatter:
      case OverlapRoleKind::kHierAgRing:
        if (r.block_rows <= 0 || r.chunk_rows <= 0 ||
            r.block_rows % r.chunk_rows != 0) {
          return StrFormat(
              "roles[%zu](%s).block_rows/chunk_rows: need chunk_rows > 0 "
              "dividing block_rows, got %lld / %d",
              i, r.name.c_str(), static_cast<long long>(r.block_rows),
              r.chunk_rows);
        }
        if (r.seg_blocks <= 0) {
          return StrFormat("roles[%zu](%s).seg_blocks: must be > 0, got %d",
                           i, r.name.c_str(), r.seg_blocks);
        }
        if (r.allow_col_split && r.cols <= 0) {
          return StrFormat("roles[%zu](%s).cols: col split needs the row "
                           "width, got %lld",
                           i, r.name.c_str(), static_cast<long long>(r.cols));
        }
        break;
      case OverlapRoleKind::kNicRailPush:
        if (r.peers <= 0 || r.nic_chunk_blocks <= 0 || r.staging_depth <= 0 ||
            r.block_rows <= 0 || r.chunk_rows <= 0) {
          return StrFormat(
              "roles[%zu](%s): nic_rail_push needs peers/nic_chunk_blocks/"
              "staging_depth > 0 and block geometry, got peers=%d "
              "nic_chunk_blocks=%d staging_depth=%d",
              i, r.name.c_str(), r.peers, r.nic_chunk_blocks,
              r.staging_depth);
        }
        break;
      case OverlapRoleKind::kNicRailReduce:
        if (r.nic_chunk_blocks <= 0 || r.block_rows <= 0 ||
            r.chunk_rows <= 0) {
          return StrFormat("roles[%zu](%s): nic_rail_reduce needs chunk "
                           "geometry (nic_chunk_blocks/block_rows/chunk_rows)",
                           i, r.name.c_str());
        }
        break;
      case OverlapRoleKind::kCompute:
      case OverlapRoleKind::kHostDma:
        break;
    }
  }
  // Consumer reads of a non-resident space must be covered by writes.
  for (size_t i = 0; i < roles.size(); ++i) {
    const OverlapRoleSpec& r = roles[i];
    for (size_t k = 0; k < r.reads.size(); ++k) {
      const TileSpaceSpec* space = FindSpace(*this, r.reads[k].space);
      if (space->resident) continue;
      const auto [lo, hi] = RefInterval(r.reads[k], *space);
      std::vector<std::pair<int64_t, int64_t>> writes;
      for (const OverlapRoleSpec& w : roles) {
        for (const TileRef& ref : w.writes) {
          if (ref.space == space->name) {
            writes.push_back(RefInterval(ref, *space));
          }
        }
      }
      if (!Covered(lo, hi, std::move(writes))) {
        return StrFormat(
            "roles[%zu](%s).reads[%zu]: non-covering read of \"%s\" "
            "[%lld, %lld) — no writer produces every tile",
            i, r.name.c_str(), k, space->name.c_str(),
            static_cast<long long>(lo), static_cast<long long>(hi));
      }
    }
  }
  // Cyclic producer/consumer dependences (self-loops — a ring forwarding
  // through its own destination buffer — are legal and skipped).
  std::vector<std::vector<int>> edges(roles.size());
  for (size_t w = 0; w < roles.size(); ++w) {
    for (const TileRef& ref : roles[w].writes) {
      for (size_t rd = 0; rd < roles.size(); ++rd) {
        if (rd == w) continue;
        for (const TileRef& read : roles[rd].reads) {
          if (read.space == ref.space) {
            edges[w].push_back(static_cast<int>(rd));
          }
        }
      }
    }
  }
  if (std::string cycle = FindCycle(*this, edges); !cycle.empty()) {
    return StrFormat("roles: cyclic producer/consumer dependence: %s",
                     cycle.c_str());
  }
  return "";
}

std::string OverlapSpec::Describe() const {
  std::string out = StrFormat("overlap_spec %s\n", kernel.c_str());
  for (const TileSpaceSpec& s : spaces) {
    out += StrFormat("  space %s tiles=%lld tile_rows=%lld%s\n",
                     s.name.c_str(), static_cast<long long>(s.tiles),
                     static_cast<long long>(s.tile_rows),
                     s.resident ? " resident" : "");
  }
  for (const OverlapRoleSpec& r : roles) {
    out += StrFormat("  role %s kind=%s sms=%d", r.name.c_str(),
                     OverlapRoleKindName(r.kind), r.want_sms);
    if (r.work_items >= 0) {
      out += StrFormat(" work=%lld", static_cast<long long>(r.work_items));
    }
    if (r.kind == OverlapRoleKind::kRingReduceScatter ||
        r.kind == OverlapRoleKind::kHierAgRing) {
      out += StrFormat(" group=%d seg_blocks=%d block_rows=%lld "
                       "chunk_rows=%d cols=%lld%s",
                       r.group_size, r.seg_blocks,
                       static_cast<long long>(r.block_rows), r.chunk_rows,
                       static_cast<long long>(r.cols),
                       r.allow_col_split ? " col_split" : "");
    }
    if (r.kind == OverlapRoleKind::kNicRailPush ||
        r.kind == OverlapRoleKind::kNicRailReduce) {
      out += StrFormat(" nic_chunk_blocks=%d staging_depth=%d peers=%d",
                       r.nic_chunk_blocks, r.staging_depth, r.peers);
    }
    auto refs = [&out](const char* tag, const std::vector<TileRef>& v) {
      if (v.empty()) return;
      out += StrFormat(" %s=", tag);
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out += ",";
        if (v[i].whole()) {
          out += v[i].space;
        } else {
          out += StrFormat("%s[%lld:%lld]", v[i].space.c_str(),
                           static_cast<long long>(v[i].lo),
                           static_cast<long long>(v[i].hi));
        }
      }
    };
    refs("reads", r.reads);
    refs("writes", r.writes);
    out += "\n";
  }
  return out;
}

}  // namespace tilelink::tl
