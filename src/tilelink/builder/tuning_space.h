// TuningSpace: enumeration of the §3.1 decoupled design space.
//
// One TuneCandidate fixes every knob the paper decouples per role —
// compute tile size, communication tile size, communication resource
// binding (SM pull / SM push / DMA), comm SM count, and compute tile
// order. A TuningSpace is a per-axis value list; Enumerate() takes the
// cartesian product over the axes that are set and inherits the rest from
// a base candidate, so kernels only pay for the knobs they expose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compute/gemm.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/kernel_common.h"

namespace tilelink::tl {

struct TuneCandidate {
  compute::GemmTiling gemm{128, 256, 64};
  int comm_tile_m = 128;      // comm role tile rows (AG tile / RS chunk)
  int comm_sms = 20;          // SM-resource variants only
  CommResource comm = CommResource::kDma;
  TileOrder order = TileOrder::kOwnerFirst;

  std::string Describe() const;
};

class TuningSpace {
 public:
  // Axis setters; an unset axis keeps the base candidate's value.
  TuningSpace& GemmTiles(std::vector<std::pair<int, int>> bm_bn);
  TuningSpace& CommTileM(std::vector<int> values);
  TuningSpace& CommSms(std::vector<int> values);
  TuningSpace& Resources(std::vector<CommResource> values);
  TuningSpace& Orders(std::vector<TileOrder> values);

  // Cartesian product. DMA candidates ignore comm_sms, so that axis is
  // collapsed to the base value for them (no duplicate evaluations).
  std::vector<TuneCandidate> Enumerate(const TuneCandidate& base) const;

  // The default search space for the paper's MLP kernels: comm tiles from
  // 64 to 1024 rows, 8-32 comm SMs, all three resource bindings, both ring
  // tile orders.
  static TuningSpace Mlp();

 private:
  std::vector<std::pair<int, int>> gemm_tiles_;
  std::vector<int> comm_tile_m_;
  std::vector<int> comm_sms_;
  std::vector<CommResource> resources_;
  std::vector<TileOrder> orders_;
};

}  // namespace tilelink::tl
