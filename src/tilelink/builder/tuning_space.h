// TuningSpace: enumeration of the §3.1 decoupled design space.
//
// One TuneCandidate fixes every knob the paper decouples per role —
// compute tile size, communication tile size, communication resource
// binding (SM pull / SM push / DMA), comm SM count, synchronization
// granularity (channels per rank), compute tile order, and the
// kernel-family-specific knobs (flash block sizes, MoE channel/reduce
// granularities). A TuningSpace is a per-axis value list; Enumerate() takes
// the cartesian product over the axes that are set and inherits the rest
// from a base candidate, so kernels only pay for the knobs they expose.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "compute/gemm.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/kernel_common.h"

namespace tilelink::tl {

struct TuneCandidate {
  compute::GemmTiling gemm{128, 256, 64};
  int comm_tile_m = 128;       // comm role tile rows (AG tile / RS chunk)
  int comm_sms = 20;           // SM-resource variants only
  CommResource comm = CommResource::kDma;
  TileOrder order = TileOrder::kOwnerFirst;
  // Synchronization granularity: barrier channels per rank (0 -> one channel
  // per comm tile, the finest granularity the counting protocol supports).
  int channels_per_rank = 0;
  // Attention kernels (ag_attention / flash core).
  int block_q = 128;
  int block_kv = 128;
  // MoE part-2 kernel (moe_rs).
  int sorted_channel_rows = 512;  // pc1 granularity over sorted slots
  int reduce_block_tokens = 64;   // topk-reduce chunk
  int reduce_sms = 16;
  // Multi-node collectives (tilelink/multinode): tiles per NIC message and
  // the number of NIC messages kept in flight per peer (staging depth,
  // clamped by the NIC channel budget).
  int nic_chunk_tiles = 4;
  int staging_depth = 2;

  std::string Describe() const;

  friend bool operator==(const TuneCandidate&, const TuneCandidate&) = default;
};

// Printable names shared with the tuned-config cache serialization.
const char* CommResourceName(CommResource r);
bool ParseCommResource(const std::string& name, CommResource* out);
bool ParseTileOrder(const std::string& name, TileOrder* out);

class TuningSpace {
 public:
  // Axis setters; an unset axis keeps the base candidate's value.
  TuningSpace& GemmTiles(std::vector<std::pair<int, int>> bm_bn);
  TuningSpace& CommTileM(std::vector<int> values);
  TuningSpace& CommSms(std::vector<int> values);
  TuningSpace& Resources(std::vector<CommResource> values);
  TuningSpace& Orders(std::vector<TileOrder> values);
  TuningSpace& ChannelsPerRank(std::vector<int> values);
  TuningSpace& AttnBlocks(std::vector<std::pair<int, int>> q_kv);
  TuningSpace& SortedChannelRows(std::vector<int> values);
  TuningSpace& ReduceBlockTokens(std::vector<int> values);
  TuningSpace& ReduceSms(std::vector<int> values);
  TuningSpace& NicChunkTiles(std::vector<int> values);
  TuningSpace& StagingDepth(std::vector<int> values);

  // Cartesian product. DMA candidates ignore comm_sms, so that axis is
  // collapsed to the base value for them (no duplicate evaluations).
  std::vector<TuneCandidate> Enumerate(const TuneCandidate& base) const;

  // The default search space for the paper's MLP kernels: comm tiles from
  // 64 to 1024 rows, 8-32 comm SMs, all three resource bindings, both ring
  // tile orders, and coarse/fine synchronization granularity.
  static TuningSpace Mlp();

  // The MLP space for serving-path shapes: same axes as Mlp() with the
  // comm-tile range shifted down (16-256 rows). Continuous-batching steps
  // pad ragged decode batches to a few hundred rows, where a 32-row
  // per-rank shard makes every >=64-row comm tile infeasible; training-
  // scale shapes keep using Mlp() (the estimator picks by per-rank rows).
  static TuningSpace ServingMlp();

  // AG-KV + flash attention: flash block sizes (comm is always DMA-driven
  // host copies, so no resource/SM axes).
  static TuningSpace Attention();

  // MoE part 1 (AG + Gather + GroupGEMM): comm tile rows, resource binding,
  // comm SM count, synchronization granularity.
  static TuningSpace MoePart1();

  // MoE part 2 (GroupGEMM + Scatter + TopkReduce + RS): sorted-slot channel
  // granularity, reduce chunking/SMs, RS chunk rows, SM-push vs DMA-push.
  static TuningSpace MoePart2();

  // Multi-node collectives (hierarchical AG/RS, DP gradient sync): NIC
  // chunk size in tiles and per-peer staging depth.
  static TuningSpace MultiNode();

  // Fused GEMM + hierarchical ReduceScatter (kernels/gemm_hier_rs): the
  // joint space coupling the GEMM tile axes with the NIC rail knobs.
  static TuningSpace GemmHierRs();

  // Fused hierarchical AllGather + GEMM (kernels/ag_gemm_hier): AG chunk
  // rows join the GEMM tile axes and the NIC rail knobs.
  static TuningSpace AgGemmHier();

 private:
  std::vector<std::pair<int, int>> gemm_tiles_;
  std::vector<int> comm_tile_m_;
  std::vector<int> comm_sms_;
  std::vector<CommResource> resources_;
  std::vector<TileOrder> orders_;
  std::vector<int> channels_per_rank_;
  std::vector<std::pair<int, int>> attn_blocks_;
  std::vector<int> sorted_channel_rows_;
  std::vector<int> reduce_block_tokens_;
  std::vector<int> reduce_sms_;
  std::vector<int> nic_chunk_tiles_;
  std::vector<int> staging_depth_;
};

}  // namespace tilelink::tl
