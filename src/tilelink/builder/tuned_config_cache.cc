#include "tilelink/builder/tuned_config_cache.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/string_utils.h"
#include "sim/cost_model.h"

namespace tilelink::tl {
namespace {

void HashMix(uint32_t* h, uint64_t value) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= static_cast<uint32_t>((value >> (8 * i)) & 0xff);
    *h *= 16777619u;
  }
}

void HashMixDouble(uint32_t* h, double value) {
  // Hash the canonical bit pattern, not the raw one: -0.0 == 0.0, so two
  // numerically identical calibrations must not produce different cache
  // generations. NaN has no meaningful value identity (and many payloads) —
  // a NaN calibration parameter is a corrupted spec, reject it.
  TL_CHECK_MSG(!std::isnan(value), "NaN calibration parameter");
  if (value == 0.0) value = 0.0;  // collapses -0.0
  HashMix(h, std::bit_cast<uint64_t>(value));
}

}  // namespace

uint32_t CostCalibrationHash(const sim::MachineSpec& spec) {
  // Fingerprint the cost model by what it *outputs* at fixed probe points,
  // not by which constants it happens to contain: any recalibration — a
  // MachineSpec number or a formula coefficient — changes some probe and
  // therefore the hash, so stale cached costs stop matching their keys.
  const sim::CostModel cost(spec);
  uint32_t h = 2166136261u;
  HashMix(&h, static_cast<uint64_t>(cost.GemmTileStep(128, 256, 64)));
  HashMix(&h, static_cast<uint64_t>(cost.GemmTileStep(32, 32, 64)));
  HashMix(&h, static_cast<uint64_t>(cost.FlashAttnTileStep(128, 128, 128)));
  HashMix(&h, static_cast<uint64_t>(cost.MemoryBound(1 << 20, 20)));
  HashMix(&h, static_cast<uint64_t>(cost.NvlinkTransfer(1 << 20)));
  HashMix(&h, static_cast<uint64_t>(cost.BlockPrologue()));
  HashMix(&h, static_cast<uint64_t>(cost.BlockEpilogue()));
  // Fabric parameters and software latencies the DES bills directly (not
  // via CostModel); bandwidths hash their full bit patterns so fractional
  // recalibrations change the key too.
  HashMix(&h, static_cast<uint64_t>(spec.nic_latency));
  HashMixDouble(&h, spec.nic_gbps);
  HashMix(&h, static_cast<uint64_t>(spec.nic_queue_pairs));
  HashMixDouble(&h, spec.nvlink_gbps);
  HashMix(&h, static_cast<uint64_t>(spec.copy_engines_per_device));
  HashMix(&h, static_cast<uint64_t>(spec.kernel_launch_latency));
  HashMix(&h, static_cast<uint64_t>(spec.host_sync_latency));
  HashMix(&h, static_cast<uint64_t>(spec.collective_setup_latency));
  HashMix(&h, static_cast<uint64_t>(spec.dma_setup_latency));
  HashMixDouble(&h, spec.dma_efficiency);
  HashMix(&h, static_cast<uint64_t>(spec.signal_visibility_latency));
  HashMix(&h, static_cast<uint64_t>(spec.local_signal_latency));
  return h;
}

namespace {

// Minimal recursive-descent parser for the flat JSON this cache writes:
// { "key": { "field": value-or-string, ... }, ... }. Not a general JSON
// parser — but strict enough to reject anything it did not produce.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      // Keys/values never contain escapes; reject rather than mis-parse.
      if (text_[pos_] == '\\') return false;
      out->push_back(text_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseInt(int64_t* out) {
    SkipWs();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    bool any = false;
    int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const int digit = text_[pos_] - '0';
      // Reject overflow instead of wrapping: a corrupted cache file must
      // fail the parse, not produce a garbage config.
      if (value > (std::numeric_limits<int64_t>::max() - digit) / 10) {
        return false;
      }
      value = value * 10 + digit;
      any = true;
      ++pos_;
    }
    if (!any) return false;  // also rejects a bare "-"
    *out = negative ? -value : value;
    return true;
  }

  // True when only whitespace remains: FromJson must consume the whole
  // document, a cache file with trailing garbage is corrupted.
  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

bool ParseEntryObject(JsonScanner& scan, TunedEntry* entry) {
  if (!scan.Consume('{')) return false;
  bool first = true;
  while (!scan.Peek('}')) {
    if (!first && !scan.Consume(',')) return false;
    first = false;
    std::string field;
    if (!scan.ParseString(&field) || !scan.Consume(':')) return false;
    TuneCandidate& c = entry->config;
    if (field == "comm" || field == "order") {
      std::string name;
      if (!scan.ParseString(&name)) return false;
      if (field == "comm" && !ParseCommResource(name, &c.comm)) return false;
      if (field == "order" && !ParseTileOrder(name, &c.order)) return false;
      continue;
    }
    int64_t value = 0;
    if (!scan.ParseInt(&value)) return false;
    // Every config field is an int; out-of-range means a corrupted file.
    // (The two cost fields are int64 nanoseconds.)
    if (field != "cost_ns" && field != "seed_cost_ns" &&
        (value > std::numeric_limits<int>::max() ||
         value < std::numeric_limits<int>::min())) {
      return false;
    }
    const int v = static_cast<int>(value);
    if (field == "bm") {
      c.gemm.bm = v;
    } else if (field == "bn") {
      c.gemm.bn = v;
    } else if (field == "bk") {
      c.gemm.bk = v;
    } else if (field == "comm_tile_m") {
      c.comm_tile_m = v;
    } else if (field == "comm_sms") {
      c.comm_sms = v;
    } else if (field == "channels_per_rank") {
      c.channels_per_rank = v;
    } else if (field == "block_q") {
      c.block_q = v;
    } else if (field == "block_kv") {
      c.block_kv = v;
    } else if (field == "sorted_channel_rows") {
      c.sorted_channel_rows = v;
    } else if (field == "reduce_block_tokens") {
      c.reduce_block_tokens = v;
    } else if (field == "reduce_sms") {
      c.reduce_sms = v;
    } else if (field == "nic_chunk_tiles") {
      c.nic_chunk_tiles = v;
    } else if (field == "staging_depth") {
      c.staging_depth = v;
    } else if (field == "cost_ns") {
      entry->cost = value;
    } else if (field == "seed_cost_ns") {
      entry->seed_cost = value;
    } else if (field == "full_evals") {
      entry->full_evals = v;
    } else {
      return false;  // unknown field: not ours
    }
  }
  return scan.Consume('}');
}

}  // namespace

std::string TunedConfigCache::Key(const std::string& kind,
                                  std::initializer_list<int64_t> dims,
                                  const sim::MachineSpec& spec) {
  std::ostringstream os;
  os << kind << "/";
  bool first = true;
  for (int64_t d : dims) {
    os << (first ? "" : "x") << d;
    first = false;
  }
  // Node topology is part of the machine: a 2x8 and a 4x4 sixteen-device
  // machine tune multi-node collectives completely differently.
  os << "/R" << spec.num_devices << ".n" << spec.devices_per_node << ".sm"
     << spec.sms_per_device << ".nv"
     << static_cast<int64_t>(spec.nvlink_gbps);
  // Calibration hash: recalibrating the cost model changes the key, so a
  // warm-started cache silently re-tunes instead of serving stale costs.
  char cal[16];
  std::snprintf(cal, sizeof(cal), ".c%08x", CostCalibrationHash(spec));
  os << cal;
  return os.str();
}

std::size_t TunedConfigCache::PruneStaleCalibration(
    uint32_t calibration_hash) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".c%08x", calibration_hash);
  const std::string want(suffix);
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::string& key = it->first;
    if (key.size() < want.size() ||
        key.compare(key.size() - want.size(), want.size(), want) != 0) {
      recency_.erase(key);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const TunedEntry* TunedConfigCache::Find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void TunedConfigCache::TouchLocked(const std::string& key) {
  recency_[key] = ++tick_;
}

void TunedConfigCache::EvictOverflowLocked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    auto victim = recency_.end();
    for (auto it = recency_.begin(); it != recency_.end(); ++it) {
      if (victim == recency_.end() || it->second < victim->second) {
        victim = it;
      }
    }
    if (victim == recency_.end()) break;  // recency lost track: keep all
    entries_.erase(victim->first);
    recency_.erase(victim);
    ++stats_.evictions;
  }
}

void TunedConfigCache::StoreLocked(const std::string& key,
                                   const TunedEntry& entry) {
  entries_[key] = entry;
  TouchLocked(key);
  ++stats_.stores;
  EvictOverflowLocked();
}

void TunedConfigCache::SetCapacity(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_entries;
  EvictOverflowLocked();
}

std::vector<std::pair<std::string, TunedEntry>> TunedConfigCache::Entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

void TunedConfigCache::Put(const std::string& key, const TunedEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  StoreLocked(key, entry);
}

TunedEntry TunedConfigCache::GetOrTune(
    const std::string& key, const std::function<TunedEntry()>& tune) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      TouchLocked(key);
      return it->second;
    }
  }
  // Search with the lock dropped: a concurrent tuner missing the same key
  // runs its own (deterministic, hence identical) search, and last-wins
  // below leaves the same entry either way. The wall clock around the
  // search feeds the warm-start accounting only — never the cache contents.
  const auto t0 = std::chrono::steady_clock::now();
  TunedEntry fresh = tune();
  const int64_t tune_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  stats_.warm_start_ns += tune_ns;
  stats_.max_tune_ns = std::max(stats_.max_tune_ns, tune_ns);
  StoreLocked(key, fresh);
  return fresh;
}

std::string TunedConfigCache::ToJson() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    const TuneCandidate& c = entry.config;
    os << (first ? "" : ",\n");
    first = false;
    os << "  \"" << key << "\": {\"bm\": " << c.gemm.bm
       << ", \"bn\": " << c.gemm.bn << ", \"bk\": " << c.gemm.bk
       << ", \"comm_tile_m\": " << c.comm_tile_m
       << ", \"comm_sms\": " << c.comm_sms << ", \"comm\": \""
       << CommResourceName(c.comm) << "\", \"order\": \""
       << TileOrderName(c.order)
       << "\", \"channels_per_rank\": " << c.channels_per_rank
       << ", \"block_q\": " << c.block_q << ", \"block_kv\": " << c.block_kv
       << ", \"sorted_channel_rows\": " << c.sorted_channel_rows
       << ", \"reduce_block_tokens\": " << c.reduce_block_tokens
       << ", \"reduce_sms\": " << c.reduce_sms
       << ", \"nic_chunk_tiles\": " << c.nic_chunk_tiles
       << ", \"staging_depth\": " << c.staging_depth
       << ", \"cost_ns\": " << entry.cost
       << ", \"seed_cost_ns\": " << entry.seed_cost
       << ", \"full_evals\": " << entry.full_evals << "}";
  }
  os << "\n}\n";
  return os.str();
}

bool TunedConfigCache::FromJson(const std::string& json) {
  // Parse into a scratch map and merge only on full success: a corrupted
  // file must not leave the cache half-loaded. Duplicate keys are
  // last-wins, both across entries and for repeated fields within one
  // entry (matching how entries_[key] assignment always behaved).
  JsonScanner scan(json);
  std::unordered_map<std::string, TunedEntry> parsed;
  if (!scan.Consume('{')) return false;
  bool first = true;
  while (!scan.Peek('}')) {
    if (!first && !scan.Consume(',')) return false;
    first = false;
    std::string key;
    if (!scan.ParseString(&key) || !scan.Consume(':')) return false;
    TunedEntry entry;
    if (!ParseEntryObject(scan, &entry)) return false;
    parsed[key] = entry;
  }
  if (!scan.Consume('}')) return false;
  if (!scan.AtEnd()) return false;  // trailing garbage: not our file
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : parsed) {
    entries_[key] = std::move(entry);
  }
  // Loaded entries get recency ticks in key order (deterministic; recency
  // itself is never serialized), then any capacity overflow is evicted.
  for (const auto& [key, entry] : entries_) {
    if (recency_.find(key) == recency_.end()) TouchLocked(key);
  }
  EvictOverflowLocked();
  return true;
}

bool TunedConfigCache::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

bool TunedConfigCache::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

}  // namespace tilelink::tl
