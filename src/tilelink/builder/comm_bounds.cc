#include "tilelink/builder/comm_bounds.h"

#include <algorithm>

#include "common/math_utils.h"
#include "sim/cost_model.h"

namespace tilelink::tl {
namespace {

// Grain count of `rows` at `grain` rows per tile (feasibility guarantees
// divisibility for the kernels below, but stay safe on ragged inputs).
int64_t Tiles(int64_t rows, int64_t grain) {
  return grain > 0 ? CeilDiv<int64_t>(rows, grain) : 0;
}

// Fragmented grouped-GEMM compute floor shared by the MoE kernels: the
// group launches one full-billed (bm, bn) tile per (expert row fragment,
// n-tile) pair, `waves` of them per compute block.
sim::TimeNs FragmentedGroupGemmFloor(const sim::MachineSpec& spec,
                                     const compute::MoeRouting& routing,
                                     int64_t n, int64_t k, int compute_sms,
                                     const TuneCandidate& c) {
  std::vector<int64_t> extents;
  extents.reserve(static_cast<size_t>(routing.num_experts));
  for (int e = 0; e < routing.num_experts; ++e) {
    extents.push_back(routing.expert_count(e));
  }
  const int64_t row_tiles =
      FragmentedGrains(IntervalsFromExtents(extents), c.gemm.bm);
  const int64_t tiles = row_tiles * Tiles(n, c.gemm.bn);
  const int64_t waves = CeilDiv<int64_t>(tiles, std::max(compute_sms, 1));
  const int64_t k_steps = Tiles(k, c.gemm.bk);
  const sim::CostModel cost(spec);
  return cost.BlockPrologue() +
         waves * k_steps * cost.GemmTileStep(c.gemm.bm, c.gemm.bn, c.gemm.bk) +
         cost.BlockEpilogue();
}

}  // namespace

PortBytes AllGatherPortBytes(const TileIntervals& shards,
                             int64_t bytes_per_element) {
  const int64_t ranks = static_cast<int64_t>(shards.size());
  if (ranks <= 1) return {};
  const int64_t total = TotalElements(shards);
  PortBytes pb;
  // The rank owning the least must receive the most; the rank owning the
  // most must send each of its elements to every peer (the flow network
  // has no multicast).
  pb.ingress = static_cast<uint64_t>(total - MinTileElements(shards)) *
               static_cast<uint64_t>(bytes_per_element);
  pb.egress = static_cast<uint64_t>(MaxTileElements(shards)) *
              static_cast<uint64_t>(ranks - 1) *
              static_cast<uint64_t>(bytes_per_element);
  return pb;
}

PortBytes ReduceScatterPortBytes(const TileIntervals& shards,
                                 int64_t bytes_per_element) {
  const int64_t ranks = static_cast<int64_t>(shards.size());
  if (ranks <= 1) return {};
  const int64_t total = TotalElements(shards);
  PortBytes pb;
  // Information floor, valid for any reduction schedule (including
  // en-route accumulation): one accumulated copy of a rank's shard must
  // reach it, and its partial contributions to every remote shard must
  // leave it.
  pb.ingress = static_cast<uint64_t>(MaxTileElements(shards)) *
               static_cast<uint64_t>(bytes_per_element);
  pb.egress = static_cast<uint64_t>(total - MinTileElements(shards)) *
              static_cast<uint64_t>(bytes_per_element);
  return pb;
}

sim::TimeNs AgGemmCommFloor(const sim::MachineSpec& spec,
                            const MlpPartShape& shape,
                            const TuneCandidate& c) {
  const int R = spec.num_devices;
  if (R <= 1 || c.comm_tile_m <= 0) return 0;
  const sim::CostModel cost(spec);
  const TileIntervals shards = LinearTileMapping(shape.m, R, c.comm_tile_m);
  const PortBytes pb = AllGatherPortBytes(shards, shape.k * 2);  // bf16
  sim::TimeNs floor = cost.NvlinkTransfer(std::max(pb.ingress, pb.egress));
  // Dependency-chain latency floor: each comm block issues its transfers
  // one at a time, paying the per-message wire latency before any bytes
  // flow, so the busiest block's transfer count is a serial chain. Pull
  // blocks split all tiles; push blocks split this rank's tiles. DMA mode
  // hands transfers to copy engines, which this floor does not model.
  if (c.comm != CommResource::kDma && c.comm_sms > 0) {
    const int64_t remote_tiles =
        Tiles(shape.m - MinTileElements(shards), c.comm_tile_m);
    const int64_t own_tiles = Tiles(MaxTileElements(shards), c.comm_tile_m);
    const int64_t work = c.comm == CommResource::kSmPull
                             ? Tiles(shape.m, c.comm_tile_m)
                             : own_tiles;
    const int64_t grid = std::min<int64_t>(c.comm_sms, work);
    const int64_t chain_ops = c.comm == CommResource::kSmPull
                                  ? CeilDiv<int64_t>(remote_tiles, grid)
                                  : CeilDiv<int64_t>(own_tiles, grid);
    floor = std::max<sim::TimeNs>(floor, chain_ops * spec.nvlink_latency);
  }
  return floor;
}

sim::TimeNs GemmRsCommFloor(const sim::MachineSpec& spec,
                            const MlpPartShape& shape,
                            const TuneCandidate& c) {
  const int R = spec.num_devices;
  if (R <= 1 || c.comm_tile_m <= 0) return 0;
  const sim::CostModel cost(spec);
  const TileIntervals shards = LinearTileMapping(shape.m, R, c.comm_tile_m);
  const PortBytes pb = ReduceScatterPortBytes(shards, shape.n * 2);  // bf16
  sim::TimeNs floor = cost.NvlinkTransfer(std::max(pb.ingress, pb.egress));
  // Ring accumulation chain: a chunk's reduced value traverses R-1 hops in
  // order (hop s+1 waits for hop s's payload to land, SM push or DMA push
  // alike), each hop a full chunk transfer.
  const uint64_t chunk_bytes =
      static_cast<uint64_t>(c.comm_tile_m) * shape.n * 2;
  floor = std::max<sim::TimeNs>(
      floor, static_cast<sim::TimeNs>(R - 1) * cost.NvlinkTransfer(chunk_bytes));
  return floor;
}

sim::TimeNs GemmHierRsCommFloor(const sim::MachineSpec& spec,
                                const MlpPartShape& shape,
                                const TuneCandidate& c) {
  const int nodes = spec.num_nodes();
  if (nodes <= 1 || c.comm_tile_m <= 0) return 0;
  const int64_t m_per_rank = shape.m / spec.num_devices;
  const double block_bytes = static_cast<double>(m_per_rank) * shape.n * 2;
  // Rail port floor: every rank sends one node-reduced block per peer node
  // through its NIC.
  const sim::TimeNs rail =
      spec.nic_latency + static_cast<sim::TimeNs>(
                             (nodes - 1) * block_bytes / spec.nic_gbps);
  // Staging-window chain: per rail peer at most staging_depth messages are
  // in flight, so message i+depth starts only after message i completes —
  // the message count divided by the window is a serial latency chain.
  const int64_t num_tiles = Tiles(m_per_rank, c.comm_tile_m);
  const int64_t msgs =
      CeilDiv<int64_t>(num_tiles, std::max(1, c.nic_chunk_tiles));
  const int64_t window = std::max(1, c.staging_depth);
  const sim::TimeNs chain = CeilDiv<int64_t>(msgs, window) * spec.nic_latency;
  return std::max(rail, chain);
}

sim::TimeNs AgMoeRoutedLowerBound(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c) {
  const sim::TimeNs base = AgMoeLowerBound(spec, shape, c);
  if (base == 0) return 0;  // infeasible: never prune, the evaluator rejects
  // Same comm-SM claim as AgMoeLowerBound, so the two compute floors see
  // the same grid.
  const int64_t comm_work = c.comm == CommResource::kSmPush
                                ? shape.m / spec.num_devices / c.comm_tile_m
                                : shape.m / c.comm_tile_m;
  const int comm_sms =
      c.comm == CommResource::kDma
          ? 0
          : static_cast<int>(std::min<int64_t>(c.comm_sms, comm_work));
  const int compute_sms = std::max(1, spec.sms_per_device - comm_sms);
  const sim::TimeNs frag =
      FragmentedGroupGemmFloor(spec, routing, shape.inner, shape.hidden,
                               compute_sms, c) +
      spec.kernel_launch_latency;
  return std::max(base, frag);
}

sim::TimeNs MoeRsRoutedLowerBound(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c) {
  const sim::TimeNs base = MoeRsLowerBound(spec, shape, c);
  if (base == 0) return 0;
  const int64_t rs_chunks = shape.m / spec.num_devices / c.comm_tile_m;
  const int64_t reduce_chunks = shape.m / c.reduce_block_tokens;
  const int claimed =
      static_cast<int>(std::min<int64_t>(c.comm_sms, rs_chunks)) +
      static_cast<int>(std::min<int64_t>(c.reduce_sms, reduce_chunks));
  const int compute_sms = std::max(1, spec.sms_per_device - claimed);
  const sim::TimeNs frag =
      FragmentedGroupGemmFloor(spec, routing, shape.hidden, shape.inner,
                               compute_sms, c) +
      spec.kernel_launch_latency;
  const sim::CostModel cost(spec);
  // Ring accumulation chain over the scattered tokens, as in GEMM+RS.
  const uint64_t chunk_bytes =
      static_cast<uint64_t>(c.comm_tile_m) * shape.hidden * 2;
  const sim::TimeNs chain =
      static_cast<sim::TimeNs>(spec.num_devices - 1) *
      cost.NvlinkTransfer(chunk_bytes);
  return std::max(base, std::max(frag, chain));
}

}  // namespace tilelink::tl
