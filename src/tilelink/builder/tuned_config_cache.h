// TunedConfigCache: per-shape store of autotuned kernel configs.
//
// The e2e model sweep tunes every fused kernel it composes; identical
// layers (and identical shapes across models) share one search. Keys
// combine the kernel kind, the problem shape, and a MachineSpec fingerprint
// so a cache never leaks configs across machines. The whole cache
// round-trips through a small JSON document, letting benchmarks warm-start
// from a previous run's search results (scripts/ci.sh keeps one per bench).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine_spec.h"
#include "sim/time.h"
#include "tilelink/builder/tuning_space.h"

namespace tilelink::tl {

// Fingerprint of the cost model's calibration: a hash of its outputs at
// fixed probe points plus the simulator-billed latencies. Part of every
// cache key, so recalibration invalidates cached costs instead of silently
// serving them. Floating-point parameters hash their canonical bit pattern
// (-0.0 normalized to 0.0, so numerically identical calibrations share one
// generation); a NaN parameter throws tilelink::Error.
uint32_t CostCalibrationHash(const sim::MachineSpec& spec);

struct TunedEntry {
  TuneCandidate config;
  sim::TimeNs cost = 0;  // simulated makespan of `config`
  // Serving-path accounting (serialized; files written before these fields
  // existed parse with both at 0, meaning "unknown"). Both are produced by
  // the deterministic search replay, so they are as thread-count- and
  // rerun-invariant as config/cost.
  sim::TimeNs seed_cost = 0;  // full-fidelity cost of the search's seed
  int full_evals = 0;         // full-fidelity simulations the search paid

  friend bool operator==(const TunedEntry&, const TunedEntry&) = default;
};

// Online-config-service counters (stats() accessor). Hit/miss/store counts
// are the search-avoidance tallies GetOrTune always kept; warm_start_ns and
// max_tune_ns are *wall-clock* nanoseconds spent inside GetOrTune's tune()
// callbacks — the cold-start latency a warm-started cache avoids, and the
// largest single search (the serving path's per-unseen-shape bound). Wall
// times are observability only and never serialized: cache files must stay
// bitwise identical across reruns and thread counts.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stores = 0;     // Put + GetOrTune-miss stores (incl. overwrites)
  int64_t evictions = 0;  // LRU evictions under SetCapacity
  int64_t warm_start_ns = 0;
  int64_t max_tune_ns = 0;
};

// Thread safety: every member locks an internal mutex, so one cache can be
// shared by concurrent tuners (the e2e estimator tunes independent layers
// in parallel). GetOrTune deliberately drops the lock while `tune` runs —
// searches take seconds and serializing them would defeat the parallelism.
// Two threads missing the same key may therefore both search, but searches
// are deterministic, so they store identical entries and the cache contents
// stay bitwise independent of the interleaving; only the hit/miss tallies
// (which count searches avoided/performed) can vary. Find()'s pointer is
// only stable while no other thread mutates the cache — concurrent callers
// should use GetOrTune, which returns by value.
class TunedConfigCache {
 public:
  // "kind/d0xd1x.../R8.n8.sm132.nv150.c<hash>": stable, human-greppable
  // key; the trailing component is CostCalibrationHash(spec).
  static std::string Key(const std::string& kind,
                         std::initializer_list<int64_t> dims,
                         const sim::MachineSpec& spec);

  // nullptr on miss. The pointer is invalidated by Put/LoadJson.
  const TunedEntry* Find(const std::string& key) const;
  void Put(const std::string& key, const TunedEntry& entry);

  // Returns the cached entry, running `tune` (and storing its result) on a
  // miss. This is the one call sites use: every config flows through here,
  // so hits()/misses() count real searches avoided/performed. Returned by
  // value: a reference into the map would race with concurrent Put/LoadJson
  // overwrites.
  TunedEntry GetOrTune(const std::string& key,
                       const std::function<TunedEntry()>& tune);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  int hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(stats_.hits);
  }
  int misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(stats_.misses);
  }
  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  // Online-config-service mode: a capacity > 0 bounds the entry count, with
  // least-recently-*used* eviction (GetOrTune hits/stores and Puts refresh
  // recency; Find and serialization do not). 0 (the default) disables
  // eviction — the offline benches keep every search. Shrinking the
  // capacity below the current size evicts immediately.
  void SetCapacity(std::size_t max_entries);

  // Snapshot of every entry in key order (the ToJson order) — the config
  // service derives its tuned-vs-seed speedup stats from this.
  std::vector<std::pair<std::string, TunedEntry>> Entries() const;

  // Drops entries whose key's calibration suffix does not match
  // `calibration_hash` — the generations a recalibration orphaned. Without
  // this, a warm-started cache file grows by one full generation per
  // recalibration and never shrinks. Returns the number removed.
  std::size_t PruneStaleCalibration(uint32_t calibration_hash);

  // Deterministic (sorted-key) JSON document of every entry.
  std::string ToJson() const;
  // Merges entries parsed from `json` into the cache; false on malformed
  // input, in which case the cache is left untouched (all-or-nothing).
  // Rejected inputs include anything this cache does not write: trailing
  // content after the root object, unknown fields, and integer literals
  // outside int64 (INT64_MIN's magnitude overflows the positive
  // accumulator and is rejected rather than wrapped). Duplicate keys —
  // across entries or repeated fields within one entry — are last-wins.
  bool FromJson(const std::string& json);

  // File convenience wrappers; Load returns false if the file is absent or
  // malformed.
  bool SaveFile(const std::string& path) const;
  bool LoadFile(const std::string& path);

 private:
  // Pre: mu_ held. Records a store, refreshes recency, evicts LRU overflow.
  void StoreLocked(const std::string& key, const TunedEntry& entry);
  void TouchLocked(const std::string& key);
  void EvictOverflowLocked();

  mutable std::mutex mu_;
  std::map<std::string, TunedEntry> entries_;
  // Monotonic recency ticks for LRU eviction; entries loaded from JSON get
  // ticks in key order. Not serialized (recency is a runtime property).
  std::map<std::string, uint64_t> recency_;
  uint64_t tick_ = 0;
  std::size_t capacity_ = 0;  // 0 = unbounded
  CacheStats stats_;
};

}  // namespace tilelink::tl
