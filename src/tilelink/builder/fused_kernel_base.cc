#include "tilelink/builder/fused_kernel_base.h"

#include "sim/coro_utils.h"

namespace tilelink::tl {

int64_t TilesForBlock(int64_t total, const Env& env) {
  if (env.block_id >= total) return 0;
  return (total - env.block_id - 1) / env.grid + 1;
}

FusedKernelBase::FusedKernelBase(rt::World& world, std::string name,
                                 CompilerOptions copts)
    : world_(&world), name_(std::move(name)), copts_(copts) {}

comm::SymTensor FusedKernelBase::AllocSymmetric(
    const std::string& suffix, const std::vector<int64_t>& shape,
    DType dtype) const {
  comm::SymTensor tensors;
  tensors.reserve(static_cast<size_t>(ranks()));
  for (int r = 0; r < ranks(); ++r) {
    tensors.push_back(
        Tensor::Alloc(world_->device(r), name_ + "." + suffix, shape, dtype));
  }
  return tensors;
}

void FusedKernelBase::CreateChannels(int num_pc, int num_peer, int num_host) {
  bcs_ = BlockChannel::CreateSymmetric(*world_, name_, num_pc, num_peer,
                                       num_host);
}

void FusedKernelBase::Finalize(FusedKernelSpec spec) {
  compiled_ = Compiler(copts_).Compile(std::move(spec));
}

std::optional<sim::Coro> FusedKernelBase::HostComm(rt::RankCtx&) {
  return std::nullopt;
}

sim::Coro FusedKernelBase::AwaitKernel(
    std::shared_ptr<rt::KernelState> state) {
  co_await state->Wait();
}

sim::Coro FusedKernelBase::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  std::optional<sim::Coro> host = HostComm(ctx);
  if (!LaunchesDevice()) {
    if (host) co_await std::move(*host);
    co_return;
  }
  auto state =
      compiled_.Launch(ctx, *ctx.stream, bcs_[static_cast<size_t>(ctx.rank)]);
  if (!host) {
    co_await AwaitKernel(std::move(state));
    co_return;
  }
  std::vector<sim::Coro> work;
  work.push_back(std::move(*host));
  work.push_back(AwaitKernel(std::move(state)));
  co_await sim::WhenAll(std::move(work));
}

}  // namespace tilelink::tl
