#include "tilelink/builder/autotuner.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace tilelink::tl {
namespace {

void PrintCandidate(const char* tag, const TuneCandidate& c, sim::TimeNs cost,
                    const char* suffix) {
  std::printf("[%s] %-60s %8.3f ms%s\n", tag, c.Describe().c_str(),
              static_cast<double>(cost) / 1e6, suffix);
}

}  // namespace

TuneResult Autotuner::Search(const TuningSpace& space,
                             const TuneCandidate& base, const EvalFn& eval,
                             const BoundFn& lower_bound,
                             const EvalFn& coarse) const {
  std::vector<TuneCandidate> candidates = space.Enumerate(base);
  TL_CHECK_MSG(!candidates.empty(), "empty tuning space");
  // The base (seed) config always gets a full-fidelity run: a halved or
  // pruned search can then never return something worse than the seed.
  if (std::find(candidates.begin(), candidates.end(), base) ==
      candidates.end()) {
    candidates.push_back(base);
  }

  TuneResult result;
  result.best_cost = kInfeasible;

  // --- Successive halving: coarse-score everyone, keep the top fraction. --
  std::vector<TuneCandidate> finalists;
  if (coarse && static_cast<int>(candidates.size()) >=
                    options_.min_coarse_space) {
    std::vector<std::pair<sim::TimeNs, std::size_t>> scored;
    std::vector<std::size_t> unscored;
    scored.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const sim::TimeNs cost = coarse(candidates[i]);
      ++result.coarse_evals;
      if (cost == kInfeasible) {
        // A coarse evaluator may judge feasibility on a shrunken problem
        // whose divisibility constraints are tighter: defer to the
        // full-fidelity round (a cheap feasibility check there) instead of
        // dropping a possibly-feasible candidate.
        unscored.push_back(i);
        if (options_.verbose) {
          PrintCandidate("tune/coarse", candidates[i], 0,
                         "  coarse-infeasible (deferred)");
        }
        continue;
      }
      scored.emplace_back(cost, i);
      if (options_.verbose) {
        PrintCandidate("tune/coarse", candidates[i], cost, "");
      }
    }
    std::stable_sort(scored.begin(), scored.end());
    const std::size_t keep = std::min<std::size_t>(
        scored.size(),
        std::max<std::size_t>(
            static_cast<std::size_t>(options_.min_survivors),
            static_cast<std::size_t>(options_.keep_fraction *
                                         static_cast<double>(scored.size()) +
                                     0.999)));
    result.halved = static_cast<int>(scored.size() - keep);
    finalists.reserve(keep + unscored.size() + 1);
    // Survivors are in ascending coarse-score order, so the lower bound
    // starts pruning right after the first (likely-argmin) simulation.
    for (std::size_t i = 0; i < keep; ++i) {
      finalists.push_back(candidates[scored[i].second]);
    }
    for (std::size_t i : unscored) finalists.push_back(candidates[i]);
    if (std::find(finalists.begin(), finalists.end(), base) ==
        finalists.end()) {
      finalists.push_back(base);
    }
  } else {
    finalists = std::move(candidates);
    if (lower_bound) {
      // Visit in ascending-bound order: the likely argmin is simulated
      // first, which makes the bound prune most of the rest.
      std::vector<std::pair<sim::TimeNs, std::size_t>> order;
      order.reserve(finalists.size());
      for (std::size_t i = 0; i < finalists.size(); ++i) {
        order.emplace_back(lower_bound(finalists[i]), i);
      }
      std::stable_sort(order.begin(), order.end());
      std::vector<TuneCandidate> sorted;
      sorted.reserve(finalists.size());
      for (const auto& [bound, i] : order) sorted.push_back(finalists[i]);
      finalists = std::move(sorted);
    }
  }

  // --- Full-fidelity evaluation with lower-bound pruning. -----------------
  for (const TuneCandidate& c : finalists) {
    if (lower_bound && result.best_cost != kInfeasible) {
      const sim::TimeNs bound = lower_bound(c);
      if (bound >= result.best_cost) {
        result.pruned++;
        if (options_.verbose) {
          std::printf("[tune] %-60s pruned (bound %.3f ms >= best %.3f ms)\n",
                      c.Describe().c_str(), static_cast<double>(bound) / 1e6,
                      static_cast<double>(result.best_cost) / 1e6);
        }
        continue;
      }
    }
    const sim::TimeNs cost = eval(c);
    if (cost == kInfeasible) {
      result.infeasible++;
      if (options_.verbose) {
        std::printf("[tune] %-60s infeasible\n", c.Describe().c_str());
      }
      continue;
    }
    result.evaluated.emplace_back(c, cost);
    const bool improved = cost < result.best_cost;
    if (improved) {
      result.best = c;
      result.best_cost = cost;
    }
    if (options_.verbose) {
      PrintCandidate("tune", c, cost, improved ? "  <- best" : "");
    }
  }
  TL_CHECK_MSG(result.best_cost != kInfeasible,
               "every candidate in the tuning space was infeasible");
  return result;
}

}  // namespace tilelink::tl
