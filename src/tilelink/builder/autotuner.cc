#include "tilelink/builder/autotuner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "common/check.h"

namespace tilelink::tl {
namespace {

// Serialized line sink: every verbose line is formatted into one string and
// written with a single locked fwrite, so lines can never interleave even
// if another thread is printing. Workers themselves never print — all
// verbose output is produced by the serial replay pass, which also keeps
// the line *order* identical to the single-threaded search.
void EmitLine(const std::string& line) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), stdout);
}

void PrintCandidate(const char* tag, const TuneCandidate& c, sim::TimeNs cost,
                    const char* suffix) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "[%s] %-60s %8.3f ms%s\n", tag,
                c.Describe().c_str(), static_cast<double>(cost) / 1e6, suffix);
  EmitLine(buf);
}

// Runs `body` on `threads` threads (the calling thread counts as one) and
// joins; the first exception any worker throws is rethrown on the caller.
void RunWorkers(int threads, const std::function<void()>& body) {
  if (threads <= 1) {
    body();
    return;
  }
  std::mutex mu;
  std::exception_ptr err;
  auto guarded = [&body, &mu, &err] {
    try {
      body();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(guarded);
  guarded();
  for (std::thread& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

// Sentinels in the shared completed-cost table. Real costs are >= 0 and
// kInfeasible is int64 max, so negatives are free.
constexpr sim::TimeNs kPending = -1;  // not finished yet
constexpr sim::TimeNs kSkipped = -2;  // speculatively pruned by a worker

// Full-fidelity finalist pass shared by Search and SearchLaddered: parallel
// speculative evaluation + serial replay in finalist order (see the
// determinism note in the header). Appends to `result`'s evaluated/pruned/
// infeasible tallies, updates best/best_cost, and records seed_cost when
// `base` reaches full fidelity.
void FullFidelityPass(const Autotuner::Options& options, int threads,
                      const std::vector<TuneCandidate>& finalists,
                      const TuneCandidate& base, const Autotuner::EvalFn& eval,
                      const Autotuner::BoundFn& lower_bound,
                      TuneResult* result) {
  const std::size_t n = finalists.size();
  std::vector<sim::TimeNs> bounds;
  if (lower_bound) {
    bounds.reserve(n);
    for (const TuneCandidate& c : finalists) bounds.push_back(lower_bound(c));
  }

  // Parallel speculative pass: workers pull candidate indices off a shared
  // counter and record full-fidelity costs in `done`. The prune test for
  // candidate i only consults *completed earlier-indexed* candidates, whose
  // costs are upper bounds on the serial best-so-far before i (each such j
  // has bound(j) <= cost(j), so serial would have reached a best no worse
  // than cost(j) by index i). Hence a worker skip implies the serial skip,
  // and everything serial evaluates is evaluated here — just possibly more,
  // which the replay below discards.
  std::vector<std::atomic<sim::TimeNs>> done;
  if (threads > 1 && n > 1) {
    done = std::vector<std::atomic<sim::TimeNs>>(n);
    for (std::atomic<sim::TimeNs>& d : done) {
      d.store(kPending, std::memory_order_relaxed);
    }
    std::atomic<std::size_t> next{0};
    RunWorkers(std::min<int>(threads, static_cast<int>(n)), [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        if (!bounds.empty()) {
          sim::TimeNs best_done = Autotuner::kInfeasible;
          for (std::size_t j = 0; j < i; ++j) {
            const sim::TimeNs v = done[j].load(std::memory_order_acquire);
            if (v >= 0 && v < best_done) best_done = v;
          }
          if (best_done != Autotuner::kInfeasible && bounds[i] >= best_done) {
            done[i].store(kSkipped, std::memory_order_release);
            continue;
          }
        }
        done[i].store(eval(finalists[i]), std::memory_order_release);
      }
    });
  }

  // Serial replay in candidate-index order: identical control flow to the
  // single-threaded search, with eval() replaced by a table lookup. This is
  // where TuneResult and all verbose lines are produced, so both are
  // bitwise independent of the thread count.
  for (std::size_t i = 0; i < n; ++i) {
    const TuneCandidate& c = finalists[i];
    if (!bounds.empty() && result->best_cost != Autotuner::kInfeasible &&
        bounds[i] >= result->best_cost) {
      result->pruned++;
      if (options.verbose) {
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "[tune] %-60s pruned (bound %.3f ms >= best %.3f ms)\n",
                      c.Describe().c_str(),
                      static_cast<double>(bounds[i]) / 1e6,
                      static_cast<double>(result->best_cost) / 1e6);
        EmitLine(buf);
      }
      continue;
    }
    sim::TimeNs cost =
        done.empty() ? eval(c) : done[i].load(std::memory_order_acquire);
    if (cost < 0) {
      // The worker speculatively skipped a candidate the serial order
      // evaluates — only possible with an unsound bound (bound > cost
      // somewhere). Recover determinism by evaluating it here.
      cost = eval(c);
    }
    if (cost == Autotuner::kInfeasible) {
      result->infeasible++;
      if (options.verbose) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "[tune] %-60s infeasible\n",
                      c.Describe().c_str());
        EmitLine(buf);
      }
      continue;
    }
    if (c == base) result->seed_cost = cost;
    result->evaluated.emplace_back(c, cost);
    const bool improved = cost < result->best_cost;
    if (improved) {
      result->best = c;
      result->best_cost = cost;
    }
    if (options.verbose) {
      PrintCandidate("tune", c, cost, improved ? "  <- best" : "");
    }
  }
}

}  // namespace

TuneResult Autotuner::Search(const TuningSpace& space,
                             const TuneCandidate& base, const EvalFn& eval,
                             const BoundFn& lower_bound,
                             const EvalFn& coarse) const {
  std::vector<TuneCandidate> candidates = space.Enumerate(base);
  TL_CHECK_MSG(!candidates.empty(), "empty tuning space");
  // The base (seed) config always gets a full-fidelity run: a halved or
  // pruned search can then never return something worse than the seed.
  if (std::find(candidates.begin(), candidates.end(), base) ==
      candidates.end()) {
    candidates.push_back(base);
  }

  const int threads = std::max(1, options_.threads);

  TuneResult result;
  result.best_cost = kInfeasible;

  // --- Successive halving: coarse-score everyone, keep the top fraction. --
  std::vector<TuneCandidate> finalists;
  if (coarse && static_cast<int>(candidates.size()) >=
                    options_.min_coarse_space) {
    // The coarse round is a pure map (no pruning), so sharding it is
    // trivially deterministic: workers write cost[i] by candidate index and
    // the classification below runs serially in index order.
    std::vector<sim::TimeNs> coarse_cost(candidates.size(), kPending);
    {
      std::atomic<std::size_t> next{0};
      RunWorkers(std::min<int>(threads, static_cast<int>(candidates.size())),
                 [&] {
                   for (;;) {
                     const std::size_t i =
                         next.fetch_add(1, std::memory_order_relaxed);
                     if (i >= candidates.size()) return;
                     coarse_cost[i] = coarse(candidates[i]);
                   }
                 });
    }
    std::vector<std::pair<sim::TimeNs, std::size_t>> scored;
    std::vector<std::size_t> unscored;
    scored.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const sim::TimeNs cost = coarse_cost[i];
      ++result.coarse_evals;
      if (cost == kInfeasible) {
        // A coarse evaluator may judge feasibility on a shrunken problem
        // whose divisibility constraints are tighter: defer to the
        // full-fidelity round (a cheap feasibility check there) instead of
        // dropping a possibly-feasible candidate.
        unscored.push_back(i);
        if (options_.verbose) {
          PrintCandidate("tune/coarse", candidates[i], 0,
                         "  coarse-infeasible (deferred)");
        }
        continue;
      }
      scored.emplace_back(cost, i);
      if (options_.verbose) {
        PrintCandidate("tune/coarse", candidates[i], cost, "");
      }
    }
    std::stable_sort(scored.begin(), scored.end());
    const std::size_t keep = std::min<std::size_t>(
        scored.size(),
        std::max<std::size_t>(
            static_cast<std::size_t>(options_.min_survivors),
            static_cast<std::size_t>(options_.keep_fraction *
                                         static_cast<double>(scored.size()) +
                                     0.999)));
    result.halved = static_cast<int>(scored.size() - keep);
    finalists.reserve(keep + unscored.size() + 1);
    // Survivors are in ascending coarse-score order, so the lower bound
    // starts pruning right after the first (likely-argmin) simulation.
    for (std::size_t i = 0; i < keep; ++i) {
      finalists.push_back(candidates[scored[i].second]);
    }
    for (std::size_t i : unscored) finalists.push_back(candidates[i]);
    if (std::find(finalists.begin(), finalists.end(), base) ==
        finalists.end()) {
      finalists.push_back(base);
    }
  } else {
    finalists = std::move(candidates);
    if (lower_bound) {
      // Visit in ascending-bound order: the likely argmin is simulated
      // first, which makes the bound prune most of the rest.
      std::vector<std::pair<sim::TimeNs, std::size_t>> order;
      order.reserve(finalists.size());
      for (std::size_t i = 0; i < finalists.size(); ++i) {
        order.emplace_back(lower_bound(finalists[i]), i);
      }
      std::stable_sort(order.begin(), order.end());
      std::vector<TuneCandidate> sorted;
      sorted.reserve(finalists.size());
      for (const auto& [bound, i] : order) sorted.push_back(finalists[i]);
      finalists = std::move(sorted);
    }
  }

  // --- Full-fidelity evaluation with lower-bound pruning. -----------------
  FullFidelityPass(options_, threads, finalists, base, eval, lower_bound,
                   &result);
  TL_CHECK_MSG(result.best_cost != kInfeasible,
               "every candidate in the tuning space was infeasible");
  return result;
}

TuneResult Autotuner::SearchLaddered(const TuningSpace& space,
                                     const TuneCandidate& base,
                                     const FidelityEvalFn& eval,
                                     const BoundFn& lower_bound) const {
  const std::vector<int>& rungs = options_.ladder_rungs;
  TL_CHECK_MSG(!rungs.empty() && rungs.back() == 1,
               "ladder_rungs must end at full fidelity (1)");

  std::vector<TuneCandidate> candidates = space.Enumerate(base);
  TL_CHECK_MSG(!candidates.empty(), "empty tuning space");
  if (std::find(candidates.begin(), candidates.end(), base) ==
      candidates.end()) {
    candidates.push_back(base);
  }

  // Small spaces: the coarse rungs would cost more than they save — search
  // plain (full fidelity, bound pruning, no halving).
  if (static_cast<int>(candidates.size()) < options_.min_ladder_space) {
    return Search(
        space, base, [&eval](const TuneCandidate& c) { return eval(c, 1); },
        lower_bound, nullptr);
  }

  const int threads = std::max(1, options_.threads);

  TuneResult result;
  result.best_cost = kInfeasible;

  // Seed anchor: one full-fidelity run up front. Every later stage compares
  // against it, so no rung can promote its way past the seed; the final
  // pass reuses this cost instead of re-simulating the seed.
  const sim::TimeNs seed_cost = eval(base, 1);
  if (options_.verbose && seed_cost != kInfeasible) {
    PrintCandidate("tune/ladder", base, seed_cost, "  seed anchor");
  }

  // Floor gate: a candidate whose communication-optimal lower bound already
  // meets the seed's measured cost can never win — drop it before paying
  // for any rung. (The seed itself always survives.)
  std::vector<std::size_t> alive;
  alive.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (lower_bound && seed_cost != kInfeasible &&
        !(candidates[i] == base) && lower_bound(candidates[i]) >= seed_cost) {
      result.pruned++;
      if (options_.verbose) {
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "[tune/ladder] %-53s pruned (floor >= seed)\n",
                      candidates[i].Describe().c_str());
        EmitLine(buf);
      }
      continue;
    }
    alive.push_back(i);
  }

  // Coarse rungs: score the survivors at 1/denom fidelity, promote the best
  // by (rung score, lower bound, enumeration index) — the floors order
  // near-ties, so a fidelity too blunt to separate two candidates still
  // promotes the one with more communication headroom first.
  for (std::size_t r = 0; r + 1 < rungs.size(); ++r) {
    const int denom = rungs[r];
    std::vector<sim::TimeNs> rung_cost(alive.size(), kPending);
    {
      std::atomic<std::size_t> next{0};
      RunWorkers(std::min<int>(threads, static_cast<int>(alive.size())),
                 [&] {
                   for (;;) {
                     const std::size_t i =
                         next.fetch_add(1, std::memory_order_relaxed);
                     if (i >= alive.size()) return;
                     rung_cost[i] = eval(candidates[alive[i]], denom);
                   }
                 });
    }
    std::vector<std::tuple<sim::TimeNs, sim::TimeNs, std::size_t>> scored;
    std::vector<std::size_t> deferred;
    scored.reserve(alive.size());
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const std::size_t ci = alive[i];
      if (rung_cost[i] == kInfeasible) {
        // Shrunken problems can have tighter divisibility: defer to the
        // next rung instead of dropping a possibly-feasible candidate.
        deferred.push_back(ci);
        continue;
      }
      scored.emplace_back(rung_cost[i],
                          lower_bound ? lower_bound(candidates[ci]) : 0, ci);
    }
    result.coarse_evals += static_cast<int>(scored.size());
    result.evaluated_per_rung.push_back(static_cast<int>(scored.size()));
    std::sort(scored.begin(), scored.end());
    // Geometric promotion taper: rung i of n keeps fraction^((i+1)/n), so
    // the cheapest (bluntest) fidelity cuts conservatively and the cut
    // sharpens to promote_fraction by the last coarse rung. Fixed per-tile
    // costs do not shrink with the problem, so the coarsest rung's ranking
    // is the least trustworthy — give it the widest survivor set.
    const double frac = std::pow(
        options_.promote_fraction,
        static_cast<double>(r + 1) / static_cast<double>(rungs.size() - 1));
    const std::size_t keep = std::min<std::size_t>(
        scored.size(),
        std::max<std::size_t>(
            static_cast<std::size_t>(options_.min_promote),
            static_cast<std::size_t>(frac * static_cast<double>(scored.size()) +
                                     0.999)));
    result.halved += static_cast<int>(scored.size() - keep);
    result.promoted_per_rung.push_back(static_cast<int>(keep));
    std::vector<std::size_t> next_alive;
    next_alive.reserve(keep + deferred.size() + 1);
    for (std::size_t i = 0; i < keep; ++i) {
      next_alive.push_back(std::get<2>(scored[i]));
    }
    for (std::size_t ci : deferred) next_alive.push_back(ci);
    bool has_base = false;
    for (std::size_t ci : next_alive) {
      if (candidates[ci] == base) has_base = true;
    }
    if (!has_base) {
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        if (candidates[ci] == base) {
          next_alive.push_back(ci);
          break;
        }
      }
    }
    if (options_.verbose) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "[tune/ladder] rung 1/%-3d scored %zu, promoted %zu "
                    "(+%zu deferred)\n",
                    denom, scored.size(), keep, deferred.size());
      EmitLine(buf);
    }
    alive = std::move(next_alive);
  }

  // Final rung: full fidelity over the promoted set, in ascending last-rung
  // score order (likely argmin first) with lower-bound pruning. The seed's
  // anchor run is reused via the memo instead of being paid twice.
  std::vector<TuneCandidate> finalists;
  finalists.reserve(alive.size());
  for (std::size_t ci : alive) finalists.push_back(candidates[ci]);
  const EvalFn full = [&eval, &base, seed_cost](const TuneCandidate& c) {
    if (c == base && seed_cost != kInfeasible) return seed_cost;
    return eval(c, 1);
  };
  const std::size_t full_before = result.evaluated.size();
  FullFidelityPass(options_, threads, finalists, base, full, lower_bound,
                   &result);
  result.evaluated_per_rung.push_back(
      static_cast<int>(result.evaluated.size() - full_before));
  // The final rung promotes exactly the argmin.
  result.promoted_per_rung.push_back(1);
  TL_CHECK_MSG(result.best_cost != kInfeasible,
               "every candidate in the tuning space was infeasible");
  return result;
}

}  // namespace tilelink::tl
