#include "tilelink/builder/autotuner.h"

#include <cstdio>

#include "common/check.h"

namespace tilelink::tl {

TuneResult Autotuner::Search(const TuningSpace& space,
                             const TuneCandidate& base, const EvalFn& eval,
                             const BoundFn& lower_bound) const {
  const std::vector<TuneCandidate> candidates = space.Enumerate(base);
  TL_CHECK_MSG(!candidates.empty(), "empty tuning space");
  TuneResult result;
  result.best_cost = kInfeasible;
  for (const TuneCandidate& c : candidates) {
    if (lower_bound && result.best_cost != kInfeasible) {
      const sim::TimeNs bound = lower_bound(c);
      if (bound >= result.best_cost) {
        result.pruned++;
        if (options_.verbose) {
          std::printf("[tune] %-60s pruned (bound %.3f ms >= best %.3f ms)\n",
                      c.Describe().c_str(), static_cast<double>(bound) / 1e6,
                      static_cast<double>(result.best_cost) / 1e6);
        }
        continue;
      }
    }
    const sim::TimeNs cost = eval(c);
    if (cost == kInfeasible) {
      result.infeasible++;
      if (options_.verbose) {
        std::printf("[tune] %-60s infeasible\n", c.Describe().c_str());
      }
      continue;
    }
    result.evaluated.emplace_back(c, cost);
    const bool improved = cost < result.best_cost;
    if (improved) {
      result.best = c;
      result.best_cost = cost;
    }
    if (options_.verbose) {
      std::printf("[tune] %-60s %8.3f ms%s\n", c.Describe().c_str(),
                  static_cast<double>(cost) / 1e6,
                  improved ? "  <- best" : "");
    }
  }
  TL_CHECK_MSG(result.best_cost != kInfeasible,
               "every candidate in the tuning space was infeasible");
  return result;
}

}  // namespace tilelink::tl
