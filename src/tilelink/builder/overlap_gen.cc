#include "tilelink/builder/overlap_gen.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "tilelink/builder/link_roles.h"

namespace tilelink::tl {

namespace {

const TileSpaceSpec& SpaceOf(const OverlapSpec& spec,
                             const std::string& name) {
  for (const TileSpaceSpec& s : spec.spaces) {
    if (s.name == name) return s;
  }
  TL_CHECK_MSG(false, "unknown tile space " + name);
  __builtin_unreachable();
}

int64_t RefTiles(const OverlapSpec& spec, const TileRef& ref) {
  const TileSpaceSpec& s = SpaceOf(spec, ref.space);
  return ref.whole() ? s.tiles : ref.hi - ref.lo;
}

// Small-m fix: a ring role with fewer than kMinRingChunksPerBlock row
// chunks per destination block cannot pipeline against its producer, so
// split each chunk column-wise into the smallest divisor of `cols` that
// restores the chunk count (falling back to the largest divisor tried
// when none reaches it).
int RingColSplits(const OverlapRoleSpec& r, int64_t cpb) {
  if (!r.allow_col_split || cpb >= kMinRingChunksPerBlock) return 1;
  int best = 1;
  const int limit = static_cast<int>(std::min<int64_t>(r.cols, 64));
  for (int s = 2; s <= limit; ++s) {
    if (r.cols % s != 0) continue;
    best = s;
    if (cpb * s >= kMinRingChunksPerBlock) break;
  }
  return best;
}

// The NicRailRole staging-window clamp (link_roles.cc): the requested
// depth is granted from a fresh per-device NIC channel budget, then
// divided back across the peers.
int RailWindow(const sim::MachineSpec& spec, int staging_depth, int peers) {
  if (peers <= 0) return std::max(1, staging_depth);
  ResourceBudget nic = ResourceBudget::ForDevice(spec);
  const int granted =
      nic.ClaimFabric(FabricBinding::kNic, staging_depth * peers);
  return std::max(1, granted / peers);
}

}  // namespace

const PlannedRole* OverlapPlan::Find(const std::string& name) const {
  for (const PlannedRole& r : roles) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

const PlannedRole& OverlapPlan::At(const std::string& name) const {
  const PlannedRole* r = Find(name);
  TL_CHECK_MSG(r != nullptr, "no planned role named " + name);
  return *r;
}

std::string OverlapPlan::Describe() const {
  std::string out = StrFormat("overlap_plan %s\n", kernel.c_str());
  for (const PlannedRole& r : roles) {
    out += StrFormat(
        "  role %s kind=%s fabric=%s%s work=%lld blocks=%d channels=%d",
        r.name.c_str(), OverlapRoleKindName(r.kind),
        FabricBindingName(r.fabric), r.device ? "" : " host",
        static_cast<long long>(r.work_items), r.blocks, r.channels);
    if (r.chunks_per_block > 0) {
      out += StrFormat(" chunks_per_block=%lld col_splits=%d",
                       static_cast<long long>(r.chunks_per_block),
                       r.col_splits);
    }
    if (r.window > 0) out += StrFormat(" window=%d", r.window);
    out += "\n";
  }
  return out;
}

OverlapPlan OverlapPlanner::Plan(const OverlapSpec& spec) const {
  const std::string err = spec.Validate();
  TL_CHECK_MSG(err.empty(), "OverlapSpec(" + spec.kernel + "): " + err);

  OverlapPlan plan;
  plan.kernel = spec.kernel;
  // Replay the exact claim sequence RolePlan will perform so block and
  // channel predictions are authoritative, not approximate.
  ResourceBudget budget = ResourceBudget::ForDevice(spec_);
  for (const OverlapRoleSpec& r : spec.roles) {
    PlannedRole p;
    p.name = r.name;
    p.kind = r.kind;
    p.want_sms = r.want_sms;
    switch (r.kind) {
      case OverlapRoleKind::kCompute: {
        int64_t tiles = r.work_items;
        if (tiles < 0) {
          tiles = 0;
          for (const TileRef& ref : r.writes) tiles += RefTiles(spec, ref);
        }
        p.work_items = tiles;
        p.blocks = budget.ClaimCompute(tiles);
        p.channels = 0;
        break;
      }
      case OverlapRoleKind::kComm: {
        p.fabric = FabricForResource(r.resource);
        p.work_items = r.work_items;
        p.blocks = budget.ClaimComm(r.want_sms, p.work_items);
        p.channels = budget.ClaimFabric(p.fabric, p.blocks);
        break;
      }
      case OverlapRoleKind::kRowAllGather: {
        if (r.resource == CommResource::kDma) {
          p.device = false;
          p.fabric = FabricBinding::kCopyEngine;
          p.work_items = RefTiles(spec, r.writes.front());
          break;
        }
        p.work_items = r.resource == CommResource::kSmPull
                           ? RefTiles(spec, r.writes.front())
                           : RefTiles(spec, r.reads.front());
        p.blocks = budget.ClaimComm(r.want_sms, p.work_items);
        p.channels = budget.ClaimFabric(FabricBinding::kNvlink, p.blocks);
        break;
      }
      case OverlapRoleKind::kRingReduceScatter:
      case OverlapRoleKind::kHierAgRing: {
        const int64_t cpb = r.block_rows / r.chunk_rows;
        p.chunks_per_block = cpb;
        p.col_splits = RingColSplits(r, cpb);
        const int64_t per_split =
            r.kind == OverlapRoleKind::kRingReduceScatter
                ? static_cast<int64_t>(r.seg_blocks) * cpb
                : cpb;
        p.work_items = per_split * p.col_splits;
        p.blocks = budget.ClaimComm(r.want_sms, p.work_items);
        p.channels = budget.ClaimFabric(FabricBinding::kNvlink, p.blocks);
        break;
      }
      case OverlapRoleKind::kNicRailPush: {
        const int64_t rail_rows =
            static_cast<int64_t>(r.nic_chunk_blocks) * r.chunk_rows;
        const int64_t cpb = RailChunksPerBlock(r.block_rows, rail_rows);
        p.chunks_per_block = cpb;
        p.window = RailWindow(spec_, r.staging_depth, r.peers);
        p.work_items = static_cast<int64_t>(r.peers) * cpb;
        const int rail_blocks = static_cast<int>(std::min<int64_t>(
            static_cast<int64_t>(p.window) * r.peers, p.work_items));
        p.fabric = FabricBinding::kNic;
        p.want_sms = rail_blocks;
        p.want_channels = rail_blocks;
        p.blocks = budget.ClaimComm(rail_blocks, p.work_items);
        p.channels = budget.ClaimFabric(FabricBinding::kNic, rail_blocks);
        break;
      }
      case OverlapRoleKind::kNicRailReduce: {
        const int64_t rail_rows =
            static_cast<int64_t>(r.nic_chunk_blocks) * r.chunk_rows;
        const int64_t cpb = RailChunksPerBlock(r.block_rows, rail_rows);
        p.chunks_per_block = cpb;
        p.work_items = r.work_items >= 0 ? r.work_items : cpb;
        p.blocks = budget.ClaimComm(r.want_sms, p.work_items);
        p.channels = budget.ClaimFabric(FabricBinding::kNvlink, p.blocks);
        break;
      }
      case OverlapRoleKind::kHostDma: {
        p.device = false;
        p.fabric = FabricBinding::kCopyEngine;
        break;
      }
    }
    plan.roles.push_back(std::move(p));
  }
  return plan;
}

FusedKernelSpec BuildFromPlan(
    const OverlapPlan& plan, int total_sms,
    const std::function<BlockProgram(const PlannedRole&)>& program_of) {
  RolePlan rp(plan.kernel, total_sms);
  for (const PlannedRole& r : plan.roles) {
    if (!r.device) continue;
    if (r.kind == OverlapRoleKind::kCompute) {
      rp.Compute(r.name, r.work_items, program_of(r));
    } else {
      rp.Comm(r.name, r.fabric, r.want_sms, r.work_items, program_of(r),
              r.want_channels);
    }
  }
  FusedKernelSpec spec = rp.Build();
  size_t i = 0;
  for (const PlannedRole& r : plan.roles) {
    if (!r.device) continue;
    TL_CHECK_LT(i, spec.roles.size());
    const Role& realized = spec.roles[i++];
    TL_CHECK_MSG(
        realized.blocks == r.blocks &&
            realized.fabric_channels == r.channels,
        StrFormat("planned role %s predicted blocks=%d channels=%d but "
                  "RolePlan granted blocks=%d channels=%d",
                  r.name.c_str(), r.blocks, r.channels, realized.blocks,
                  realized.fabric_channels));
  }
  return spec;
}

}  // namespace tilelink::tl
