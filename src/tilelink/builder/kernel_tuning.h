// Candidate evaluators connecting the Autotuner to every fused kernel.
//
// Simulate*() builds a fresh timing-only World, constructs the kernel with
// the candidate's knobs and returns the SPMD makespan — the exact quantity
// the paper's figures report. Coarse*() are the cheap variants used by the
// successive-halving round: the GEMM reduction loop is collapsed to one
// k-step (simulated time is nearly invariant in bk, so the ranking is
// preserved at ~an-order-of-magnitude fewer events), and attention shrinks
// the sequence extent. *LowerBound() are analytic sim::CostModel bounds —
// the overlap-aware max(compute-only, wire-time) plus the kernel launch
// latency every fused kernel pays — which the Autotuner uses to prune
// candidates without paying for a DES run. Tune*() wire evaluator, coarse
// evaluator and bound together.
#pragma once

#include "compute/moe_routing.h"
#include "sim/machine_spec.h"
#include "tilelink/builder/autotuner.h"

namespace tilelink::tl {

// One MLP part: [m, k] x [k, n] with m row-sharded (AG+GEMM) or n produced
// as partials to reduce-scatter (GEMM+RS).
struct MlpPartShape {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
};

// AG-KV + flash attention (sequence-parallel self-attention, Figure 6).
struct AttnShape {
  int64_t batch_heads = 0;
  int64_t seq = 0;  // total KV sequence (sharded across ranks)
  int64_t head_dim = 128;
};

// Compute-only flash core ([bh, sq] query block against [bh, skv] KV); the
// e2e model sweep tunes this for the sequence-parallel attention block,
// whose communication is fused into the QKV/out projections instead.
struct FlashShape {
  int64_t batch_heads = 0;
  int64_t seq_q = 0;
  int64_t seq_kv = 0;
  int64_t head_dim = 128;
};

// One MoE layer part: m global tokens, `hidden` token features, and
// inner = I/R local expert columns.
struct MoeShape {
  int64_t m = 0;
  int64_t hidden = 0;
  int64_t inner = 0;
  int num_experts = 0;
  int topk = 0;
};

// Ring-RS chunk rows for one per-rank block: ~1/8 of the block, kept a
// multiple of `bm` and a divisor of the block — the layer-default rule
// shared by the e2e estimator's hand-picked configs and the fused
// multi-node kernel's seed. Falls back to `bm` when the block is not a
// multiple of it (the shape is then rejected by the feasibility checks).
int RsBlockRows(int64_t m_per_rank, int bm);

// ---- Full-fidelity evaluators -------------------------------------------
// Simulated makespan; Autotuner::kInfeasible when the candidate violates
// the kernel's divisibility constraints.
sim::TimeNs SimulateAgGemm(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c);
sim::TimeNs SimulateGemmRs(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c);
sim::TimeNs SimulateAgAttention(const sim::MachineSpec& spec,
                                const AttnShape& shape,
                                const TuneCandidate& c);
sim::TimeNs SimulateFlashCore(const sim::MachineSpec& spec,
                              const FlashShape& shape,
                              const TuneCandidate& c);
sim::TimeNs SimulateAgMoe(const sim::MachineSpec& spec, const MoeShape& shape,
                          const compute::MoeRouting& routing,
                          const TuneCandidate& c);
sim::TimeNs SimulateMoeRs(const sim::MachineSpec& spec, const MoeShape& shape,
                          const compute::MoeRouting& routing,
                          const TuneCandidate& c);
// Both MoE parts chained per rank inside one world (the e2e layer shape).
sim::TimeNs SimulateMoeLayer(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuneCandidate& part1,
                             const TuneCandidate& part2);

// ---- Multi-fidelity (ladder) evaluators ---------------------------------
// FidelitySimulate*(spec, shape, c, denom): the same makespan metric on a
// problem shrunk by ~1/denom along an axis that scales compute and
// communication *together*, so the candidate ranking is preserved while the
// event count drops by ~denom. denom == 1 is exactly Simulate*. The axes:
// AG+GEMM shrinks k (GEMM flops and AG wire bytes are both linear in k),
// GEMM+RS shrinks n (flops and RS wire bytes linear in n), the attention
// kernels shrink the sequence extent, and the MoE parts shrink the token
// count with a fresh deterministic routing (like the coarse evaluators).
// When the axis cannot shrink at `denom` (granularity floor), the full
// shape is used — Fidelity*CanShrink reports whether a ladder would
// actually save anything, so Tune*Laddered can fall back to the classic
// halved search.
sim::TimeNs FidelitySimulateAgGemm(const sim::MachineSpec& spec,
                                   const MlpPartShape& shape,
                                   const TuneCandidate& c, int denom);
sim::TimeNs FidelitySimulateGemmRs(const sim::MachineSpec& spec,
                                   const MlpPartShape& shape,
                                   const TuneCandidate& c, int denom);
sim::TimeNs FidelitySimulateAgAttention(const sim::MachineSpec& spec,
                                        const AttnShape& shape,
                                        const TuneCandidate& c, int denom);
sim::TimeNs FidelitySimulateFlashCore(const sim::MachineSpec& spec,
                                      const FlashShape& shape,
                                      const TuneCandidate& c, int denom);
sim::TimeNs FidelitySimulateAgMoe(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c, int denom);
sim::TimeNs FidelitySimulateMoeRs(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c, int denom);
bool FidelityMlpCanShrink(const MlpPartShape& shape, bool shrink_k,
                          int denom);
bool FidelityFlashCanShrink(const FlashShape& shape, int denom);
bool FidelityAttnCanShrink(const sim::MachineSpec& spec,
                           const AttnShape& shape, int denom);
bool FidelityMoeCanShrink(const sim::MachineSpec& spec, const MoeShape& shape,
                          int denom);

// ---- Coarse (successive-halving) evaluators -----------------------------
sim::TimeNs CoarseSimulateAgGemm(const sim::MachineSpec& spec,
                                 const MlpPartShape& shape,
                                 const TuneCandidate& c);
sim::TimeNs CoarseSimulateGemmRs(const sim::MachineSpec& spec,
                                 const MlpPartShape& shape,
                                 const TuneCandidate& c);
sim::TimeNs CoarseSimulateAgAttention(const sim::MachineSpec& spec,
                                      const AttnShape& shape,
                                      const TuneCandidate& c);
sim::TimeNs CoarseSimulateFlashCore(const sim::MachineSpec& spec,
                                    const FlashShape& shape,
                                    const TuneCandidate& c);
sim::TimeNs CoarseSimulateAgMoe(const sim::MachineSpec& spec,
                                const MoeShape& shape,
                                const compute::MoeRouting& routing,
                                const TuneCandidate& c);
sim::TimeNs CoarseSimulateMoeRs(const sim::MachineSpec& spec,
                                const MoeShape& shape,
                                const compute::MoeRouting& routing,
                                const TuneCandidate& c);

// ---- Analytic lower bounds ----------------------------------------------
// *LowerBound compose the overlap-aware bound with the candidate-dependent
// communication-optimal floors of builder/comm_bounds.h via max. The
// *OverlapBound parts are exported separately so benchmarks and tests can
// measure how many extra candidates the floors prune.
sim::TimeNs AgGemmOverlapBound(const sim::MachineSpec& spec,
                               const MlpPartShape& shape,
                               const TuneCandidate& c);
sim::TimeNs GemmRsOverlapBound(const sim::MachineSpec& spec,
                               const MlpPartShape& shape,
                               const TuneCandidate& c);
sim::TimeNs AgGemmLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c);
sim::TimeNs GemmRsLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c);
sim::TimeNs AgAttentionLowerBound(const sim::MachineSpec& spec,
                                  const AttnShape& shape,
                                  const TuneCandidate& c);
sim::TimeNs FlashCoreLowerBound(const sim::MachineSpec& spec,
                                const FlashShape& shape,
                                const TuneCandidate& c);
sim::TimeNs AgMoeLowerBound(const sim::MachineSpec& spec,
                            const MoeShape& shape, const TuneCandidate& c);
sim::TimeNs MoeRsLowerBound(const sim::MachineSpec& spec,
                            const MoeShape& shape, const TuneCandidate& c);

// ---- Full searches (evaluator + coarse + bound pre-wired) ---------------
TuneResult TuneAgGemm(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner = Autotuner());
TuneResult TuneGemmRs(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner = Autotuner());
TuneResult TuneAgAttention(const sim::MachineSpec& spec,
                           const AttnShape& shape, const TuningSpace& space,
                           const TuneCandidate& base,
                           const Autotuner& tuner = Autotuner());
TuneResult TuneFlashCore(const sim::MachineSpec& spec,
                         const FlashShape& shape, const TuningSpace& space,
                         const TuneCandidate& base,
                         const Autotuner& tuner = Autotuner());
TuneResult TuneAgMoe(const sim::MachineSpec& spec, const MoeShape& shape,
                     const compute::MoeRouting& routing,
                     const TuningSpace& space, const TuneCandidate& base,
                     const Autotuner& tuner = Autotuner());
TuneResult TuneMoeRs(const sim::MachineSpec& spec, const MoeShape& shape,
                     const compute::MoeRouting& routing,
                     const TuningSpace& space, const TuneCandidate& base,
                     const Autotuner& tuner = Autotuner());

// ---- Laddered multi-fidelity searches -----------------------------------
// The serving-path cold-tune schedule: Autotuner::SearchLaddered over the
// kernel family's fidelity evaluator (coarse rungs per
// Options::ladder_rungs, seed-anchored, floor-gated). When the shape is too
// small for the coarsest rung to shrink anything, these fall back to the
// classic halved Tune* — a ladder of full-fidelity rungs would triple the
// work instead of bounding it.
TuneResult TuneAgGemmLaddered(const sim::MachineSpec& spec,
                              const MlpPartShape& shape,
                              const TuningSpace& space,
                              const TuneCandidate& base,
                              const Autotuner& tuner = Autotuner());
TuneResult TuneGemmRsLaddered(const sim::MachineSpec& spec,
                              const MlpPartShape& shape,
                              const TuningSpace& space,
                              const TuneCandidate& base,
                              const Autotuner& tuner = Autotuner());
TuneResult TuneAgAttentionLaddered(const sim::MachineSpec& spec,
                                   const AttnShape& shape,
                                   const TuningSpace& space,
                                   const TuneCandidate& base,
                                   const Autotuner& tuner = Autotuner());
TuneResult TuneFlashCoreLaddered(const sim::MachineSpec& spec,
                                 const FlashShape& shape,
                                 const TuningSpace& space,
                                 const TuneCandidate& base,
                                 const Autotuner& tuner = Autotuner());
TuneResult TuneAgMoeLaddered(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuningSpace& space,
                             const TuneCandidate& base,
                             const Autotuner& tuner = Autotuner());
TuneResult TuneMoeRsLaddered(const sim::MachineSpec& spec,
                             const MoeShape& shape,
                             const compute::MoeRouting& routing,
                             const TuningSpace& space,
                             const TuneCandidate& base,
                             const Autotuner& tuner = Autotuner());

}  // namespace tilelink::tl
