// Candidate evaluators connecting the Autotuner to the MLP kernels.
//
// Simulate*() builds a fresh timing-only World, constructs the kernel with
// the candidate's knobs and returns the SPMD makespan — the exact quantity
// the paper's figures report. *LowerBound() are analytic sim::CostModel
// bounds (max of compute-only and wire-time) the Autotuner uses to prune
// candidates without paying for a DES run.
#pragma once

#include "sim/machine_spec.h"
#include "tilelink/builder/autotuner.h"

namespace tilelink::tl {

// One MLP part: [m, k] x [k, n] with m row-sharded (AG+GEMM) or n produced
// as partials to reduce-scatter (GEMM+RS).
struct MlpPartShape {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
};

// Simulated makespan; Autotuner::kInfeasible when the candidate violates
// the kernel's divisibility constraints.
sim::TimeNs SimulateAgGemm(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c);
sim::TimeNs SimulateGemmRs(const sim::MachineSpec& spec,
                           const MlpPartShape& shape, const TuneCandidate& c);

sim::TimeNs AgGemmLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c);
sim::TimeNs GemmRsLowerBound(const sim::MachineSpec& spec,
                             const MlpPartShape& shape,
                             const TuneCandidate& c);

// Full searches (evaluator + bound pre-wired).
TuneResult TuneAgGemm(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner = Autotuner());
TuneResult TuneGemmRs(const sim::MachineSpec& spec, const MlpPartShape& shape,
                      const TuningSpace& space, const TuneCandidate& base,
                      const Autotuner& tuner = Autotuner());

}  // namespace tilelink::tl
