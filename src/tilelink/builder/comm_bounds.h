// Communication-optimal per-candidate pruning floors.
//
// The overlap-aware bounds in kernel_tuning/multinode_tuning floor a
// candidate by max(compute + launch, total wire volume). These helpers add
// the bounds a tiled schedule cannot dodge no matter how it overlaps,
// in the spirit of the projective-loop tiling lower bounds of
// "Communication-Optimal Tilings for Projective Nested Loops with
// Arbitrary Bounds" (PAPERS.md): fix the candidate's tile shape and
// mapping, count the bytes that must cross each fabric bottleneck, and
// divide by that bottleneck's bandwidth. Concretely:
//
//  - Port floors. The flow-level network gives every rank one ingress and
//    one egress NVLink port of fixed bandwidth, so the busiest rank's byte
//    volume through either direction is a makespan floor. Volumes come
//    from an interval tile mapping (mapping/interval_mapping.h), so ragged
//    shards sharpen the floor instead of being averaged away.
//
//  - Dependency-chain floors. Pull-mode comm blocks issue their transfers
//    one at a time (each pays the per-message wire latency); a ring
//    reduce-scatter chunk must traverse group_size-1 accumulation hops in
//    order; a NIC rail peer admits at most staging_depth messages in
//    flight. Each chain's length times its per-link latency is a floor
//    that depends on the candidate's tile and chunk knobs — this is what
//    prunes pathologically fine or coarse tilings without simulating them.
//
//  - Fragmentation floors (MoE). The grouped GEMM launches one row tile
//    per ceil(expert_tokens / bm), each billed a full tile-step, so a
//    skewed routing's fragmented tile count — FragmentedGrains over the
//    routing's per-expert extents — floors compute more tightly than the
//    dense slot-space count.
//
// Every floor here is composed via max with the existing overlap-aware
// bound at its call site, and the tuning tests gate soundness (floor <=
// simulated cost) by brute force on small spaces.
//
// Preconditions: callers invoke these only for candidates that already
// passed the kernel's feasibility checks (the existing bounds return 0 for
// infeasible candidates before composing).
#pragma once

#include <cstdint>

#include "compute/moe_routing.h"
#include "sim/machine_spec.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/mapping/interval_mapping.h"

namespace tilelink::tl {

// Byte volume through the busiest rank's NVLink ports for an AllGather of
// the mapped shards (each rank must receive every element it does not own
// and send each owned element to ranks-1 peers) and for a reduce-scatter
// of per-rank partials over the same mapping (each rank's contributions to
// remote shards must leave it; one accumulated copy of its own shard must
// reach it).
struct PortBytes {
  uint64_t ingress = 0;  // max over ranks
  uint64_t egress = 0;   // max over ranks
};
PortBytes AllGatherPortBytes(const TileIntervals& shards,
                             int64_t bytes_per_element);
PortBytes ReduceScatterPortBytes(const TileIntervals& shards,
                                 int64_t bytes_per_element);

// ---- Per-kernel floors (compose with the existing bound via max) --------
sim::TimeNs AgGemmCommFloor(const sim::MachineSpec& spec,
                            const MlpPartShape& shape, const TuneCandidate& c);
sim::TimeNs GemmRsCommFloor(const sim::MachineSpec& spec,
                            const MlpPartShape& shape, const TuneCandidate& c);
// NIC-side floor of the fused GEMM + hierarchical reduce-scatter: rail
// bytes through one rank's NIC plus the staging-window chain of its NIC
// messages.
sim::TimeNs GemmHierRsCommFloor(const sim::MachineSpec& spec,
                                const MlpPartShape& shape,
                                const TuneCandidate& c);

// Routing-aware MoE bounds: the plain AgMoe/MoeRs bound max-composed with
// the fragmented grouped-GEMM compute floor for this routing. Used by
// TuneAgMoe/TuneMoeRs, which know the routing the evaluator simulates.
sim::TimeNs AgMoeRoutedLowerBound(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c);
sim::TimeNs MoeRsRoutedLowerBound(const sim::MachineSpec& spec,
                                  const MoeShape& shape,
                                  const compute::MoeRouting& routing,
                                  const TuneCandidate& c);

}  // namespace tilelink::tl
