// TileLink frontend IR and backend compiler.
//
// Frontend (paper §3): a FusedKernelSpec holds one BlockProgram per *role*
// (e.g. a communication role and a computation role, or the three-stage
// GroupGEMM -> TopkReduce -> ReduceScatter chain of Figure 9) that share one
// launched kernel. Each program is a tree of tile-level ops (loads, stores,
// MMA steps, data push/pull) and signal primitives (consumer_tile_wait,
// producer_tile_notify, peer_tile_wait/notify) built with TileProgramBuilder.
// Roles carry *independent* tile sizes, tile orders and resource bindings —
// the decoupled design space of §3.1.
//
// Backend (paper §4): Compiler::Compile runs
//   1. the memory-consistency verifier (§4.2): every acquire-load must be
//      dominated by a wait, every notify must be preceded by a store/push
//      it can release; programs that violate this are rejected;
//   2. the reordering pass, which keeps primitive<->load/store data
//      dependencies pinned (or, in deliberately-unsafe mode, hoists
//      acquire-loads above waits to demonstrate the §4.2 failure mode);
//   3. codegen: a PTX-like tile-level listing (ld.global.acquire /
//      red.release placement is asserted by tests) plus an executable
//      interpretation of each block as a simulator coroutine.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/stream.h"
#include "runtime/world.h"
#include "sim/cost_model.h"
#include "tilelink/block_channel.h"
#include "tilelink/kernels/kernel_common.h"
#include "tilelink/mapping.h"

namespace tilelink::tl {

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

enum class OpKind {
  kNop,
  kLoad,           // tile load (optionally acquire-ordered)
  kStore,          // tile store to local memory
  kMma,            // tensor-core tile step (cost + math)
  kElementwise,    // memory-bound tile op (cost + math)
  kPushData,       // tile_push_data: remote store (SM-driven or async DMA)
  kPullData,       // tile_pull_data: SM-driven remote load
  kConsumerWait,   // consumer_tile_wait
  kProducerNotify, // producer_tile_notify
  kPeerWait,       // peer_tile_wait
  kPeerNotify,     // peer_tile_notify
};

// Loop-variable environment available to every op callback.
struct Env {
  int rank = 0;
  int block_id = 0;  // id within the role
  int grid = 0;      // number of blocks in the role
  std::array<int64_t, 4> loop = {0, 0, 0, 0};
  void* scratch = nullptr;  // per-block state from scratch_factory

  int64_t iv(int depth) const { return loop[static_cast<size_t>(depth)]; }
};

// Wait on local barrier words: every (channel, threshold) must be reached.
struct WaitSpec {
  SignalSpace space = SignalSpace::kProducerConsumer;
  std::vector<ChannelWait> waits;
};

// Notify barrier word `channel` (+inc) on every rank in `targets`. Multiple
// channels may be notified (entries).
struct NotifyEntry {
  SignalSpace space = SignalSpace::kProducerConsumer;
  std::vector<int> targets;
  int channel = 0;
  uint64_t inc = 1;
};
struct NotifySpec {
  std::vector<NotifyEntry> entries;
};

// Data movement / access description for loads, stores, pushes and pulls.
// Buffers may be null in timing-only paths; ranges feed the consistency
// checker.
struct DataSpec {
  int src_rank = -1;
  int dst_rank = -1;
  uint64_t bytes = 0;
  rt::Buffer* read_buf = nullptr;
  int64_t read_lo = 0, read_hi = 0;
  rt::Buffer* write_buf = nullptr;
  int64_t write_lo = 0, write_hi = 0;
  // Strided views: a column strip of a row-major tensor occupies one run of
  // `*_run` elements every `*_pitch` elements — its flat [lo, hi) covers
  // bytes of the neighbouring strips, so auditing the whole span would
  // report races between transfers of disjoint strips. When a pitch is > 0
  // the checker registers the per-row runs instead of the flat range.
  int64_t read_pitch = 0, read_run = 0;
  int64_t write_pitch = 0, write_run = 0;
};

struct Op {
  OpKind kind = OpKind::kNop;
  std::string label;
  // True for loads of producer-written tiles: the verifier requires a
  // dominating wait, and lowering emits ld.global.acquire.
  bool requires_acquire = false;
  // kPushData only: when true the transfer is handed to a DMA engine and
  // the block continues immediately (hybrid resource mapping, §3.1); the
  // notify_after fires with release semantics when the transfer lands.
  bool async_dma = false;

  std::function<WaitSpec(const Env&)> wait;      // wait ops
  std::function<NotifySpec(const Env&)> notify;  // notify ops
  std::function<NotifySpec(const Env&)> notify_after;  // push completion
  std::function<DataSpec(const Env&)> data;      // load/store/push/pull
  std::function<sim::TimeNs(const Env&, const sim::CostModel&)> cost;
  std::function<void(const Env&)> math;          // functional payload
};

struct Stmt;

struct Loop {
  std::string var;
  int depth = 0;  // index into Env::loop
  std::function<int64_t(const Env&)> trip_count;
  std::vector<Stmt> body;
};

struct Stmt {
  std::optional<Op> op;
  std::shared_ptr<Loop> loop;  // shared: programs are copied per launch
};

// One role (communication or computation part) of a fused kernel.
struct BlockProgram {
  std::vector<Stmt> stmts;
  // Creates per-block mutable state (e.g. accumulators); may be null.
  std::function<std::shared_ptr<void>(const Env&)> scratch_factory;
};

// Builder with lexical loop scoping.
class TileProgramBuilder {
 public:
  TileProgramBuilder() : depth_(0) {}

  TileProgramBuilder& Add(Op op);
  // For(var, trips, [&](TileProgramBuilder& body) { ... });
  TileProgramBuilder& For(
      const std::string& var, std::function<int64_t(const Env&)> trip_count,
      const std::function<void(TileProgramBuilder&)>& build_body);
  TileProgramBuilder& Scratch(
      std::function<std::shared_ptr<void>(const Env&)> factory);

  BlockProgram Build();

 private:
  explicit TileProgramBuilder(int depth) : depth_(depth) {}

  int depth_;
  BlockProgram program_;
};

// One role of a fused kernel: `blocks` thread blocks running `program`.
// Communication roles additionally declare which fabric they occupy and how
// many channels RolePlan granted them on it (0 for compute roles).
struct Role {
  std::string name;
  int blocks = 0;
  BlockProgram program;
  FabricBinding fabric = FabricBinding::kNvlink;
  int fabric_channels = 0;
};

// A fused kernel: roles occupy consecutive block-id ranges in order, so
// role 0 (typically communication) grabs its SMs first — exactly the
// `if block_id < N` pattern of the paper's Figures 4-5.
struct FusedKernelSpec {
  std::string name = "tilelink_kernel";
  std::vector<Role> roles;

  int total_blocks() const {
    int n = 0;
    for (const Role& r : roles) n += r.blocks;
    return n;
  }
};

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

enum class PipelineMode {
  kNone,  // no software pipelining
  kSafe,  // pipelined, primitive data deps pinned (§4.2)
};

struct CompilerOptions {
  PipelineMode pipeline = PipelineMode::kSafe;
  // Fault injection: hoist acquire-loads above their waits (reproduces the
  // reordering hazard of §4.2; the consistency checker must flag it).
  bool unsafe_reorder = false;
  // When false, the verifier is skipped (used by the unsafe mode tests).
  bool verify = true;
};

class CompiledKernel;

class Compiler {
 public:
  explicit Compiler(CompilerOptions options = {}) : options_(options) {}

  // Verifies, transforms and lowers the spec. Throws VerifyError on
  // verification failure.
  CompiledKernel Compile(FusedKernelSpec spec) const;

 private:
  CompilerOptions options_;
};

class CompiledKernel {
 public:
  const std::string& listing() const { return listing_; }
  const FusedKernelSpec& spec() const { return spec_; }

  // Launches the fused kernel on `stream`; `bc` is this rank's BlockChannel.
  std::shared_ptr<rt::KernelState> Launch(rt::RankCtx& ctx,
                                          rt::Stream& stream,
                                          const BlockChannel& bc) const;

 private:
  friend class Compiler;
  FusedKernelSpec spec_;
  std::string listing_;
  CompilerOptions options_;
};

// Thrown when the memory-consistency verifier rejects a program.
class VerifyError : public tilelink::Error {
 public:
  explicit VerifyError(const std::string& what) : Error(what) {}
};

}  // namespace tilelink::tl
