// Tile-centric mapping (paper §4.1): fS (tile id -> tensor shape range),
// fR (tile id -> device rank) and fC (tile id -> communication channel).
//
// Static mappings are affine and fully determined at compile time (tensor-
// parallel MLP, sequence-parallel attention). Dynamic mappings are lookup
// tables whose *access pattern* is compiled but whose *values* are filled at
// runtime by dynamic logic such as MoE routing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/math_utils.h"

namespace tilelink::tl {

struct TileRange {
  int64_t lo = 0;
  int64_t hi = 0;  // exclusive
  int64_t len() const { return hi - lo; }
};

// One (channel, threshold) wait entry: block until the local barrier word
// `channel` reaches `threshold`.
struct ChannelWait {
  int channel = 0;
  uint64_t threshold = 0;
  friend bool operator==(const ChannelWait&, const ChannelWait&) = default;
};

// Affine mapping for a 1-D sharded dimension of extent `m`, sharded across
// `ranks`, with `channels_per_rank` barrier channels per rank and producer
// tile extent `tile_m`. Implements exactly the formulas of §4.1:
//   M_per_rank    = ceil(M / R)
//   M_per_channel = ceil(M / (R * C))
//   range(t)      = [t*Tmp, t*Tmp + Tmp)
//   src_rank(t)   = floor(t / floor(M_per_rank / Tmp))
//   channel(t)    = floor(t / floor(M_per_channel / Tmp))
class StaticMapping {
 public:
  StaticMapping(int64_t m, int tile_m, int ranks, int channels_per_rank);

  // Channel density to use when a kernel config leaves it unspecified
  // (requested <= 0): one channel per comm tile within each rank's shard —
  // the finest granularity the counting protocol supports.
  static int ResolveChannelsPerRank(int64_t m, int tile_m, int ranks,
                                    int requested);

  int64_t m() const { return m_; }
  int tile_m() const { return tile_m_; }
  int ranks() const { return ranks_; }
  int channels_per_rank() const { return channels_per_rank_; }
  int num_channels() const { return ranks_ * channels_per_rank_; }
  int64_t num_tiles() const { return num_tiles_; }
  int64_t tiles_per_rank() const { return tiles_per_rank_; }
  int64_t tiles_per_channel() const { return tiles_per_channel_; }

  TileRange ShapeRange(int64_t tile_id) const;  // fS
  int Rank(int64_t tile_id) const;              // fR
  int Channel(int64_t tile_id) const;           // fC (global channel id)

  // Number of producer tiles mapped to a channel (the notify count a
  // consumer of the whole channel must wait for).
  uint64_t TilesInChannel(int channel) const;

  // Consumer helper: every channel overlapping rows [lo, hi), each with the
  // threshold that guarantees all producer tiles covering that channel are
  // done. Counting barriers cannot distinguish *which* tiles in a channel
  // completed, so the dependency granularity is the channel (§3.2.1).
  std::vector<ChannelWait> WaitsForRows(int64_t lo, int64_t hi) const;

  // Rows covered by one channel.
  TileRange ChannelRows(int channel) const;

 private:
  int64_t m_;
  int tile_m_;
  int ranks_;
  int channels_per_rank_;
  int64_t m_per_rank_;
  int64_t m_per_channel_;
  int64_t tiles_per_rank_;
  int64_t tiles_per_channel_;
  int64_t num_tiles_;
};

// Lookup-table mapping (§4.1, dynamic): fS_low/fS_high/fR/fC plus per-tile
// wait lists derived by the runtime logic that fills the tables.
class DynamicMapping {
 public:
  void Resize(int64_t num_tiles);
  int64_t num_tiles() const { return static_cast<int64_t>(fr_.size()); }

  void SetTile(int64_t tile_id, TileRange range, int rank, int channel);
  void SetWaits(int64_t tile_id, std::vector<ChannelWait> waits);

  TileRange ShapeRange(int64_t tile_id) const {
    return TileRange{fs_low_[Idx(tile_id)], fs_high_[Idx(tile_id)]};
  }
  int Rank(int64_t tile_id) const { return fr_[Idx(tile_id)]; }
  int Channel(int64_t tile_id) const { return fc_[Idx(tile_id)]; }
  const std::vector<ChannelWait>& Waits(int64_t tile_id) const {
    return waits_[Idx(tile_id)];
  }

 private:
  size_t Idx(int64_t t) const {
    TL_DCHECK(t >= 0 && t < num_tiles());
    return static_cast<size_t>(t);
  }
  std::vector<int64_t> fs_low_;
  std::vector<int64_t> fs_high_;
  std::vector<int> fr_;
  std::vector<int> fc_;
  std::vector<std::vector<ChannelWait>> waits_;
};

}  // namespace tilelink::tl
