#include "tilelink/primitives.h"

namespace tilelink::tl {
namespace ops {

Op ConsumerTileWait(std::string label,
                    std::function<WaitSpec(const Env&)> wait) {
  Op op;
  op.kind = OpKind::kConsumerWait;
  op.label = std::move(label);
  op.wait = std::move(wait);
  return op;
}

Op ProducerTileNotify(std::string label,
                      std::function<NotifySpec(const Env&)> notify) {
  Op op;
  op.kind = OpKind::kProducerNotify;
  op.label = std::move(label);
  op.notify = std::move(notify);
  return op;
}

Op PeerTileWait(std::string label, std::function<WaitSpec(const Env&)> wait) {
  Op op;
  op.kind = OpKind::kPeerWait;
  op.label = std::move(label);
  op.wait = std::move(wait);
  return op;
}

Op PeerTileNotify(std::string label,
                  std::function<NotifySpec(const Env&)> notify) {
  Op op;
  op.kind = OpKind::kPeerNotify;
  op.label = std::move(label);
  op.notify = std::move(notify);
  return op;
}

Op TilePushData(std::string label, std::function<DataSpec(const Env&)> data,
                std::function<NotifySpec(const Env&)> notify_after,
                bool async_dma, std::function<void(const Env&)> math) {
  Op op;
  op.kind = OpKind::kPushData;
  op.label = std::move(label);
  op.data = std::move(data);
  op.notify_after = std::move(notify_after);
  op.async_dma = async_dma;
  op.math = std::move(math);
  return op;
}

Op TilePullData(std::string label, std::function<DataSpec(const Env&)> data,
                std::function<void(const Env&)> math) {
  Op op;
  op.kind = OpKind::kPullData;
  op.label = std::move(label);
  op.data = std::move(data);
  op.math = std::move(math);
  return op;
}

Op Load(std::string label, bool acquire,
        std::function<DataSpec(const Env&)> data) {
  Op op;
  op.kind = OpKind::kLoad;
  op.label = std::move(label);
  op.requires_acquire = acquire;
  op.data = std::move(data);
  return op;
}

Op Store(std::string label, std::function<DataSpec(const Env&)> data,
         std::function<void(const Env&)> math) {
  Op op;
  op.kind = OpKind::kStore;
  op.label = std::move(label);
  op.data = std::move(data);
  op.math = std::move(math);
  return op;
}

Op Mma(std::string label,
       std::function<sim::TimeNs(const Env&, const sim::CostModel&)> cost,
       std::function<void(const Env&)> math) {
  Op op;
  op.kind = OpKind::kMma;
  op.label = std::move(label);
  op.cost = std::move(cost);
  op.math = std::move(math);
  return op;
}

Op Elementwise(std::string label,
               std::function<sim::TimeNs(const Env&, const sim::CostModel&)> cost,
               std::function<void(const Env&)> math) {
  Op op;
  op.kind = OpKind::kElementwise;
  op.label = std::move(label);
  op.cost = std::move(cost);
  op.math = std::move(math);
  return op;
}

}  // namespace ops

sim::Coro RankCopyData(rt::RankCtx& ctx, Tensor src, Tensor dst) {
  co_await comm::CopyTensorP2P(*ctx.world, *ctx.dev, src, dst);
}

void RankNotify(rt::RankCtx& ctx, const BlockChannel& bc, int target_rank,
                int channel, uint64_t inc) {
  bc.set(SignalSpace::kHost, target_rank)
      ->AddFrom(ctx.rank, channel, inc);
}

sim::Flag::Awaiter RankWait(const BlockChannel& bc, int channel,
                            uint64_t threshold) {
  return bc.local(SignalSpace::kHost)->Wait(channel, threshold);
}

std::vector<int> AllRanks(int num_ranks) {
  std::vector<int> out(static_cast<size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) out[static_cast<size_t>(i)] = i;
  return out;
}

NotifySpec NotifyOne(SignalSpace space, std::vector<int> targets, int channel,
                     uint64_t inc) {
  NotifySpec spec;
  spec.entries.push_back(NotifyEntry{space, std::move(targets), channel, inc});
  return spec;
}

std::vector<int> OtherRanks(int num_ranks, int self) {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(num_ranks - 1));
  for (int i = 0; i < num_ranks; ++i) {
    if (i != self) out.push_back(i);
  }
  return out;
}

}  // namespace tilelink::tl
