#include "tilelink/mapping/interval_mapping.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/math_utils.h"

namespace tilelink::tl {

TileIntervals LinearTileMapping(int64_t num_elements, int num_tiles,
                                int64_t grain_size,
                                int64_t min_elements_per_tile) {
  TL_CHECK_GT(num_tiles, 0);
  TL_CHECK_GT(grain_size, 0);
  TL_CHECK_GE(min_elements_per_tile, 0);
  TL_CHECK_GE(num_elements, 0);
  TileIntervals mapping(static_cast<size_t>(num_tiles));
  if (num_elements == 0) return mapping;
  const int64_t num_grains = CeilDiv<int64_t>(num_elements, grain_size);
  // Spread over at most as many tiles as keeps every occupied tile at or
  // above the floor (but always at least one).
  int64_t used = num_tiles;
  if (min_elements_per_tile > 0) {
    const int64_t grains_floor =
        CeilDiv<int64_t>(min_elements_per_tile, grain_size);
    used = std::clamp<int64_t>(num_grains / std::max<int64_t>(1, grains_floor),
                               1, num_tiles);
  }
  used = std::min(used, num_grains);
  const int64_t grains_per_tile = CeilDiv<int64_t>(num_grains, used);
  for (int64_t t = 0; t < used; ++t) {
    const int64_t lo =
        std::min(num_elements, t * grains_per_tile * grain_size);
    const int64_t hi =
        std::min(num_elements, (t + 1) * grains_per_tile * grain_size);
    if (lo >= hi) break;
    mapping[static_cast<size_t>(t)].push_back(TileRange{lo, hi});
  }
  return mapping;
}

TileIntervals IntervalsFromExtents(const std::vector<int64_t>& extents) {
  TileIntervals mapping(extents.size());
  int64_t offset = 0;
  for (size_t s = 0; s < extents.size(); ++s) {
    TL_CHECK_GE(extents[s], 0);
    if (extents[s] > 0) {
      mapping[s].push_back(TileRange{offset, offset + extents[s]});
    }
    offset += extents[s];
  }
  return mapping;
}

std::vector<int64_t> WeightedExtents(int64_t total,
                                     const std::vector<double>& weights) {
  TL_CHECK_GE(total, 0);
  std::vector<int64_t> extents(weights.size(), 0);
  double weight_sum = 0.0;
  for (double w : weights) {
    TL_CHECK_GE(w, 0.0);
    weight_sum += w;
  }
  if (total == 0 || weight_sum <= 0.0 || weights.empty()) return extents;
  // Largest-remainder: floor each proportional share, then hand the
  // leftover units to the largest fractional remainders (ties: lowest
  // index) so the extents sum to `total` exactly.
  std::vector<double> remainder(weights.size(), 0.0);
  int64_t assigned = 0;
  for (size_t s = 0; s < weights.size(); ++s) {
    const double share =
        static_cast<double>(total) * (weights[s] / weight_sum);
    extents[s] = static_cast<int64_t>(share);
    remainder[s] = share - static_cast<double>(extents[s]);
    if (weights[s] <= 0.0) {
      extents[s] = 0;
      remainder[s] = -1.0;  // never receives leftover units
    }
    assigned += extents[s];
  }
  for (int64_t left = total - assigned; left > 0; --left) {
    size_t best = 0;
    for (size_t s = 1; s < weights.size(); ++s) {
      if (remainder[s] > remainder[best]) best = s;
    }
    extents[best]++;
    remainder[best] = -1.0;
  }
  return extents;
}

int64_t TileElements(const TileIntervals& mapping, int tile) {
  TL_CHECK(tile >= 0 && static_cast<size_t>(tile) < mapping.size());
  int64_t total = 0;
  for (const TileRange& r : mapping[static_cast<size_t>(tile)]) {
    total += r.len();
  }
  return total;
}

int64_t TotalElements(const TileIntervals& mapping) {
  int64_t total = 0;
  for (int t = 0; t < static_cast<int>(mapping.size()); ++t) {
    total += TileElements(mapping, t);
  }
  return total;
}

int64_t MaxTileElements(const TileIntervals& mapping) {
  int64_t max_elems = 0;
  for (int t = 0; t < static_cast<int>(mapping.size()); ++t) {
    max_elems = std::max(max_elems, TileElements(mapping, t));
  }
  return max_elems;
}

int64_t MinTileElements(const TileIntervals& mapping) {
  int64_t min_elems = std::numeric_limits<int64_t>::max();
  for (int t = 0; t < static_cast<int>(mapping.size()); ++t) {
    min_elems = std::min(min_elems, TileElements(mapping, t));
  }
  return mapping.empty() ? 0 : min_elems;
}

int64_t TileImbalance(const TileIntervals& mapping) {
  if (mapping.empty()) return 0;
  const int64_t total = TotalElements(mapping);
  const int64_t balanced =
      CeilDiv<int64_t>(total, static_cast<int64_t>(mapping.size()));
  return std::max<int64_t>(0, MaxTileElements(mapping) - balanced);
}

int64_t FragmentedGrains(const TileIntervals& mapping, int64_t grain) {
  TL_CHECK_GT(grain, 0);
  int64_t grains = 0;
  for (const std::vector<TileRange>& intervals : mapping) {
    for (const TileRange& r : intervals) {
      grains += CeilDiv<int64_t>(r.len(), grain);
    }
  }
  return grains;
}

}  // namespace tilelink::tl
