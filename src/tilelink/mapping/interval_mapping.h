// Interval tile mapping: the poplibs TileMapping idiom (SNIPPETS.md
// calcLinearTileMapping / getTileImbalance) adapted to TileLink's shard
// planning. A mapping assigns each tile (rank, expert, worker — any owner)
// a list of [lo, hi) intervals of a flattened element range; the helpers
// below build the canonical grain-aligned linear split and measure how far
// an arbitrary mapping strays from balanced.
//
// The autotuner's communication-optimal floors (builder/comm_bounds)
// consume these mappings: per-rank port byte volumes fall out of the
// interval sizes, so uneven shards and skewed MoE routings tighten the
// bounds instead of being worst-cased away.
#pragma once

#include <cstdint>
#include <vector>

#include "tilelink/mapping.h"  // TileRange

namespace tilelink::tl {

// mapping[t] = the element intervals owned by tile t. Tiles may own zero
// intervals; intervals within one tile are disjoint and ascending.
using TileIntervals = std::vector<std::vector<TileRange>>;

// Splits [0, num_elements) across num_tiles contiguous regions, each a
// whole number of grains (the tail interval may be a partial grain). Tiles
// receive ceil(num_grains / used_tiles) grains apiece until the elements
// run out, where used_tiles shrinks so no occupied tile falls below
// min_elements_per_tile; trailing tiles are left empty.
TileIntervals LinearTileMapping(int64_t num_elements, int num_tiles,
                                int64_t grain_size = 1,
                                int64_t min_elements_per_tile = 1);

// Mapping from explicit per-shard extents laid out back to back: shard s
// owns [extents[0] + ... + extents[s-1], +extents[s]). MoE routings plug
// their per-expert token counts in here.
TileIntervals IntervalsFromExtents(const std::vector<int64_t>& extents);

// Apportions `total` units across shards proportionally to `weights`
// (largest-remainder method: exact sum, deterministic ties to the lowest
// index). A zero weight yields a zero extent; all-zero weights yield all
// zeros. The rail failover scheduler rebalances a stream's remaining chunks
// across surviving rails with this, weights = surviving rail bandwidth.
std::vector<int64_t> WeightedExtents(int64_t total,
                                     const std::vector<double>& weights);

int64_t TotalElements(const TileIntervals& mapping);
int64_t TileElements(const TileIntervals& mapping, int tile);
int64_t MaxTileElements(const TileIntervals& mapping);
int64_t MinTileElements(const TileIntervals& mapping);

// How many more elements the fullest tile holds than a perfectly balanced
// split would give it: max_t elements(t) - ceil(total / num_tiles). Zero
// for every mapping LinearTileMapping produces.
int64_t TileImbalance(const TileIntervals& mapping);

// Grain-aligned launch count when every interval must be covered by its
// own grains (no grain spans an interval boundary): sum over intervals of
// ceil(len / grain). For a skewed MoE routing this is the row-tile count
// the grouped GEMM actually launches — at least ceil(total / grain), the
// dense value the worst-case bounds assume.
int64_t FragmentedGrains(const TileIntervals& mapping, int64_t grain);

}  // namespace tilelink::tl
