#include "tilelink/block_channel.h"

#include <algorithm>

namespace tilelink::tl {

std::vector<BlockChannel> BlockChannel::CreateSymmetric(
    rt::World& world, const std::string& name, int num_pc, int num_peer,
    int num_host) {
  const int R = world.size();
  std::vector<rt::SignalSet*> pc =
      world.AllocSymmetricSignals(name + ".pc", std::max(num_pc, 1));
  std::vector<rt::SignalSet*> peer =
      world.AllocSymmetricSignals(name + ".peer", std::max(num_peer, 1));
  std::vector<rt::SignalSet*> host =
      world.AllocSymmetricSignals(name + ".host", std::max(num_host, 1));
  std::vector<BlockChannel> out(static_cast<size_t>(R));
  for (int r = 0; r < R; ++r) {
    BlockChannel& bc = out[static_cast<size_t>(r)];
    bc.rank = r;
    bc.num_ranks = R;
    bc.num_pc_barriers = num_pc;
    bc.num_peer_barriers = num_peer;
    bc.num_host_barriers = num_host;
    bc.pc = pc;
    bc.peer = peer;
    bc.host = host;
  }
  return out;
}

}  // namespace tilelink::tl
