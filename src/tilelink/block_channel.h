// BlockChannel: the special kernel argument carrying distributed mapping
// metadata (paper Figure 7) — current rank, world size, and the symmetric
// barrier storage used by the signal primitives. Three signal spaces exist:
//   kProducerConsumer — producer_tile_notify / consumer_tile_wait
//   kPeer             — peer_tile_notify / peer_tile_wait
//   kHost             — rank_notify / rank_wait (copy-engine coordination)
#pragma once

#include <string>
#include <vector>

#include "runtime/world.h"

namespace tilelink::tl {

enum class SignalSpace { kProducerConsumer, kPeer, kHost };

struct BlockChannel {
  int rank = 0;
  int num_ranks = 0;
  int num_pc_barriers = 0;
  int num_peer_barriers = 0;
  int num_host_barriers = 0;
  // Symmetric barrier sets indexed by rank (NVSHMEM-heap analogs).
  std::vector<rt::SignalSet*> pc;
  std::vector<rt::SignalSet*> peer;
  std::vector<rt::SignalSet*> host;

  rt::SignalSet* set(SignalSpace space, int owner_rank) const {
    switch (space) {
      case SignalSpace::kProducerConsumer:
        return pc.at(static_cast<size_t>(owner_rank));
      case SignalSpace::kPeer:
        return peer.at(static_cast<size_t>(owner_rank));
      case SignalSpace::kHost:
        return host.at(static_cast<size_t>(owner_rank));
    }
    return nullptr;
  }
  rt::SignalSet* local(SignalSpace space) const { return set(space, rank); }

  // Allocates symmetric barrier storage and returns one BlockChannel per
  // rank (same pointers, different `rank`). Counts of zero allocate a
  // 1-entry set so lookups stay valid.
  static std::vector<BlockChannel> CreateSymmetric(rt::World& world,
                                                   const std::string& name,
                                                   int num_pc, int num_peer,
                                                   int num_host);
};

}  // namespace tilelink::tl
