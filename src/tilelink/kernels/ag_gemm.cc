#include "tilelink/kernels/ag_gemm.h"

#include <algorithm>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/builder/comm_roles.h"
#include "tilelink/kernels/ag_consumer.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

AgGemm::AgGemm(rt::World& world, const AgGemmConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      map_(config.m, config.comm_tile_m, world.size(),
           StaticMapping::ResolveChannelsPerRank(
               config.m, config.comm_tile_m, world.size(),
               config.channels_per_rank)) {
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  a_shards_ = AllocSymmetric("a_shard", {m_per_rank, cfg_.k});
  a_full_ = AllocSymmetric("a_full", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  c_ = AllocSymmetric("c", {cfg_.m, cfg_.n});
  CreateChannels(map_.num_channels(), /*num_peer=*/1, /*num_host=*/1);

  const int64_t gemm_tiles = CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) *
                             CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  if (cfg_.hand_built) {
    RolePlan plan(cfg_.name, sms());
    if (cfg_.comm != CommResource::kDma) {
      const bool pull = cfg_.comm == CommResource::kSmPull;
      plan.Comm("comm", cfg_.comm_sms,
                pull ? map_.num_tiles() : map_.tiles_per_rank(), BuildComm());
    }
    plan.Compute("compute", gemm_tiles, BuildCompute());
    Finalize(plan.Build());
    return;
  }
  overlap_spec_ = BuildOverlapSpec(gemm_tiles);
  overlap_plan_ = OverlapPlanner(world.spec()).Plan(overlap_spec_);
  Finalize(BuildFromPlan(overlap_plan_, sms(),
                         [this](const PlannedRole& role) {
                           return role.name == "comm" ? BuildComm()
                                                      : BuildCompute();
                         }));
}

// The declarative form of this kernel: the comm role reads the resident
// shard and writes every gathered tile; the GEMM reads the gathered
// activation plus the resident weight and writes one output tile per
// consumer tile.
OverlapSpec AgGemm::BuildOverlapSpec(int64_t gemm_tiles) const {
  OverlapSpec spec;
  spec.kernel = cfg_.name;
  spec.spaces = {
      {"a_shard", map_.tiles_per_rank(), cfg_.comm_tile_m, /*resident=*/true},
      {"a_full", map_.num_tiles(), cfg_.comm_tile_m, /*resident=*/false},
      {"b", 1, cfg_.k, /*resident=*/true},
      {"c", gemm_tiles, cfg_.gemm.bm, /*resident=*/false},
  };
  OverlapRoleSpec comm;
  comm.name = "comm";
  comm.kind = OverlapRoleKind::kRowAllGather;
  comm.resource = cfg_.comm;
  comm.want_sms = cfg_.comm_sms;
  comm.reads = {{"a_shard"}};
  comm.writes = {{"a_full"}};
  OverlapRoleSpec gemm;
  gemm.name = "compute";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads = {{"a_full"}, {"b"}};
  gemm.writes = {{"c"}};
  spec.roles = {std::move(comm), std::move(gemm)};
  return spec;
}

BlockProgram AgGemm::BuildComm() {
  const RowAllGatherParams ag{map_, a_shards_, a_full_, ranks(),
                              cfg_.m / ranks()};
  return cfg_.comm == CommResource::kSmPull ? BuildRowAllGatherPull(ag)
                                            : BuildRowAllGatherPush(ag);
}

// Computation role: the shared AG+GEMM consumer (ag_consumer.h), waiting
// on the static row mapping's channels.
BlockProgram AgGemm::BuildCompute() {
  AgConsumerParams p;
  p.m = cfg_.m;
  p.k = cfg_.k;
  p.n = cfg_.n;
  p.tiling = cfg_.gemm;
  p.a_full = a_full_;
  p.b = b_;
  p.c = c_;
  p.ranks = ranks();
  p.order = cfg_.order;
  const StaticMapping map = map_;
  p.waits_for_rows = [map](int64_t lo, int64_t hi) {
    return map.WaitsForRows(lo, hi);
  };
  return BuildAgGemmConsumer(p);
}

std::optional<sim::Coro> AgGemm::HostComm(rt::RankCtx& ctx) {
  if (cfg_.comm != CommResource::kDma) return std::nullopt;
  return DmaRowAllGather(
      ctx, channel(ctx.rank),
      RowAllGatherParams{map_, a_shards_, a_full_, ranks(), cfg_.m / ranks()});
}

}  // namespace tilelink::tl
