#include "tilelink/kernels/ag_gemm.h"

#include <algorithm>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/builder/comm_roles.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

AgGemm::AgGemm(rt::World& world, const AgGemmConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      map_(config.m, config.comm_tile_m, world.size(),
           StaticMapping::ResolveChannelsPerRank(
               config.m, config.comm_tile_m, world.size(),
               config.channels_per_rank)) {
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  a_shards_ = AllocSymmetric("a_shard", {m_per_rank, cfg_.k});
  a_full_ = AllocSymmetric("a_full", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  c_ = AllocSymmetric("c", {cfg_.m, cfg_.n});
  CreateChannels(map_.num_channels(), /*num_peer=*/1, /*num_host=*/1);

  const int64_t gemm_tiles = CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) *
                             CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  RolePlan plan(cfg_.name, sms());
  if (cfg_.comm != CommResource::kDma) {
    const RowAllGatherParams ag{map_, a_shards_, a_full_, ranks(), m_per_rank};
    const bool pull = cfg_.comm == CommResource::kSmPull;
    plan.Comm("comm", cfg_.comm_sms,
              pull ? map_.num_tiles() : map_.tiles_per_rank(),
              pull ? BuildRowAllGatherPull(ag) : BuildRowAllGatherPush(ag));
  }
  plan.Compute("compute", gemm_tiles, BuildCompute());
  Finalize(plan.Build());
}

// Computation role: persistent GEMM blocks; the m-tile visit order is the
// tile-order subspace of §3.1 (own rows first by default).
BlockProgram AgGemm::BuildCompute() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto fulls = a_full_;
  auto weights = b_;
  auto outs = c_;
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t tiles_m = CeilDiv<int64_t>(cfg_.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(cfg_.k, tiling.bk);
  const int64_t m = cfg_.m;
  const int64_t n = cfg_.n;
  const int64_t k = cfg_.k;
  const int R = ranks();
  const int64_t tiles_m_per_rank = tiles_m / R;
  const TileOrder order = cfg_.order;
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t tm = SwizzleTileM(t / tiles_n, tiles_m, tiles_m_per_rank,
                                    e.rank, R, order);
    return std::pair<int64_t, int64_t>(tm, t % tiles_n);
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "gemm.consumer_wait", [map, tid_mn, tiling, m](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                const int64_t lo = tm * tiling.bm;
                const int64_t hi = std::min<int64_t>(lo + tiling.bm, m);
                spec.waits = map.WaitsForRows(lo, hi);
                return spec;
              }));
          body.For("kk",
                   [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Load(
                         "gemm.load_a", /*acquire=*/true,
                         [fulls, tid_mn, tiling, m](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           (void)tn;
                           const int64_t lo = tm * tiling.bm;
                           const int64_t len =
                               std::min<int64_t>(tiling.bm, m - lo);
                           const Tensor view =
                               fulls[static_cast<size_t>(e.rank)].Slice(
                                   0, lo, len);
                           DataSpec d;
                           view.BufferRange(&d.read_lo, &d.read_hi);
                           d.read_buf = view.buffer();
                           return d;
                         }));
                     inner.Add(ops::Mma(
                         "gemm.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [fulls, weights, outs, tid_mn, tiling,
                          k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               fulls[static_cast<size_t>(e.rank)],
                               weights[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               /*accumulate=*/e.iv(1) != 0);
                         }));
                   });
          body.Add(ops::Store(
              "gemm.store", [outs, tid_mn, tiling, m, n](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const int64_t lo = tm * tiling.bm;
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)]
                        .Slice(0, lo, std::min<int64_t>(tiling.bm, m - lo))
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 n - tn * tiling.bn));
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
        });
  return b.Build();
}

std::optional<sim::Coro> AgGemm::HostComm(rt::RankCtx& ctx) {
  if (cfg_.comm != CommResource::kDma) return std::nullopt;
  return DmaRowAllGather(
      ctx, channel(ctx.rank),
      RowAllGatherParams{map_, a_shards_, a_full_, ranks(), cfg_.m / ranks()});
}

}  // namespace tilelink::tl
