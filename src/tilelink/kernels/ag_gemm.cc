#include "tilelink/kernels/ag_gemm.h"

#include <algorithm>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {
namespace {

sim::Coro AwaitKernel(std::shared_ptr<rt::KernelState> state) {
  co_await state->Wait();
}

// Number of tiles this block processes when tiles are dealt round-robin.
int64_t TilesForBlock(int64_t total, const Env& env) {
  if (env.block_id >= total) return 0;
  return (total - env.block_id - 1) / env.grid + 1;
}

}  // namespace

AgGemm::AgGemm(rt::World& world, const AgGemmConfig& config)
    : world_(&world), cfg_(config),
      map_(config.m, config.comm_tile_m, world.size(),
           config.channels_per_rank > 0
               ? config.channels_per_rank
               : static_cast<int>(CeilDiv<int64_t>(config.m, world.size()) /
                                  config.comm_tile_m)) {
  const int R = world.size();
  const int64_t m_per_rank = cfg_.m / R;
  TL_CHECK_EQ(cfg_.m % R, 0);
  a_shards_.reserve(static_cast<size_t>(R));
  a_full_.reserve(static_cast<size_t>(R));
  b_.reserve(static_cast<size_t>(R));
  c_.reserve(static_cast<size_t>(R));
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    a_shards_.push_back(
        Tensor::Alloc(dev, cfg_.name + ".a_shard", {m_per_rank, cfg_.k},
                      DType::kBF16));
    a_full_.push_back(Tensor::Alloc(dev, cfg_.name + ".a_full",
                                    {cfg_.m, cfg_.k}, DType::kBF16));
    b_.push_back(
        Tensor::Alloc(dev, cfg_.name + ".b", {cfg_.k, cfg_.n}, DType::kBF16));
    c_.push_back(
        Tensor::Alloc(dev, cfg_.name + ".c", {cfg_.m, cfg_.n}, DType::kBF16));
  }
  bcs_ = BlockChannel::CreateSymmetric(world, cfg_.name, map_.num_channels(),
                                       /*num_peer=*/1, /*num_host=*/1);

  FusedKernelSpec spec;
  spec.name = cfg_.name;
  const int sms = world.spec().sms_per_device;
  const int64_t gemm_tiles = CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) *
                             CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  if (cfg_.comm == CommResource::kDma) {
    const int compute_blocks =
        static_cast<int>(std::min<int64_t>(gemm_tiles, sms));
    spec.roles.push_back(Role{"compute", compute_blocks, BuildCompute()});
  } else {
    const int comm_blocks = cfg_.comm_sms;
    const int compute_blocks = static_cast<int>(
        std::min<int64_t>(gemm_tiles, std::max(1, sms - comm_blocks)));
    spec.roles.push_back(Role{"comm", comm_blocks,
                              cfg_.comm == CommResource::kSmPull
                                  ? BuildCommPull()
                                  : BuildCommPush()});
    spec.roles.push_back(Role{"compute", compute_blocks, BuildCompute()});
  }
  compiled_ = Compiler(cfg_.compiler).Compile(std::move(spec));
}

// Communication role, pull mode (Figure 3b left): every rank pulls each
// remote tile into its own gathered copy and notifies its local consumers.
BlockProgram AgGemm::BuildCommPull() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto shards = a_shards_;
  auto fulls = a_full_;
  const int64_t m_per_rank = cfg_.m / world_->size();
  const int64_t num_tiles = map.num_tiles();
  const int64_t tiles_per_rank = map.tiles_per_rank();
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          // Ring tile order (§3.1): every rank starts pulling at its own
          // shard and walks the ring, so concurrent pulls spread across all
          // source ports instead of stampeding the same one.
          auto tile_of = [num_tiles, tiles_per_rank](const Env& e) {
            return (static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid +
                    e.rank * tiles_per_rank) %
                   num_tiles;
          };
          body.Add(ops::TilePullData(
              "ag.pull",
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                DataSpec d;
                d.src_rank = src;
                d.dst_rank = e.rank;
                d.bytes = static_cast<uint64_t>(rows.len()) *
                          shards[0].dim(1) * DTypeSize(shards[0].dtype());
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                const Tensor dst_view =
                    fulls[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                             rows.len());
                src_view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = src_view.buffer();
                dst_view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = dst_view.buffer();
                return d;
              },
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                Tensor dst_view = fulls[static_cast<size_t>(e.rank)].Slice(
                    0, rows.lo, rows.len());
                CopyTensor(src_view, dst_view);
              }));
          body.Add(ops::ProducerTileNotify(
              "ag.notify(p2p)", [map, tile_of](const Env& e) {
                NotifySpec spec;
                spec.entries.push_back(NotifyEntry{
                    SignalSpace::kProducerConsumer,
                    {e.rank},  // pull mode: the local consumer
                    map.Channel(tile_of(e)),
                    1});
                return spec;
              }));
        });
  return b.Build();
}

// Communication role, push mode (Figure 3b right): every rank pushes its own
// shard's tiles to all peers and notifies the remote consumers.
BlockProgram AgGemm::BuildCommPush() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto shards = a_shards_;
  auto fulls = a_full_;
  const int R = world_->size();
  const int64_t m_per_rank = cfg_.m / R;
  const int64_t tiles_per_rank = map.tiles_per_rank();
  b.For("t",
        [tiles_per_rank](const Env& e) {
          return TilesForBlock(tiles_per_rank, e);
        },
        [&](TileProgramBuilder& body) {
          auto tile_of = [tiles_per_rank](const Env& e) {
            // Global tile id of this rank's local tile.
            return static_cast<int64_t>(e.rank) * tiles_per_rank +
                   e.block_id + e.iv(0) * e.grid;
          };
          body.For("p", [R](const Env&) { return static_cast<int64_t>(R); },
                   [&](TileProgramBuilder& inner) {
                     auto target_of = [R](const Env& e) {
                       // Ring offset: start with my right neighbor.
                       return static_cast<int>(
                           (e.rank + 1 + e.iv(1)) % R);
                     };
                     inner.Add(ops::TilePushData(
                         "ag.push",
                         [map, shards, fulls, m_per_rank, tile_of,
                          target_of](const Env& e) {
                           const int64_t t = tile_of(e);
                           const TileRange rows = map.ShapeRange(t);
                           const int dst = target_of(e);
                           DataSpec d;
                           d.src_rank = e.rank;
                           d.dst_rank = dst;
                           d.bytes = static_cast<uint64_t>(rows.len()) *
                                     shards[0].dim(1) *
                                     DTypeSize(shards[0].dtype());
                           const Tensor src_view =
                               shards[static_cast<size_t>(e.rank)].Slice(
                                   0, rows.lo - e.rank * m_per_rank,
                                   rows.len());
                           const Tensor dst_view =
                               fulls[static_cast<size_t>(dst)].Slice(
                                   0, rows.lo, rows.len());
                           src_view.BufferRange(&d.read_lo, &d.read_hi);
                           d.read_buf = src_view.buffer();
                           dst_view.BufferRange(&d.write_lo, &d.write_hi);
                           d.write_buf = dst_view.buffer();
                           return d;
                         },
                         /*notify_after=*/nullptr, /*async_dma=*/false,
                         [map, shards, fulls, m_per_rank, tile_of,
                          target_of](const Env& e) {
                           const int64_t t = tile_of(e);
                           const TileRange rows = map.ShapeRange(t);
                           const int dst = target_of(e);
                           const Tensor src_view =
                               shards[static_cast<size_t>(e.rank)].Slice(
                                   0, rows.lo - e.rank * m_per_rank,
                                   rows.len());
                           Tensor dst_view =
                               fulls[static_cast<size_t>(dst)].Slice(
                                   0, rows.lo, rows.len());
                           CopyTensor(src_view, dst_view);
                         }));
                     inner.Add(ops::ProducerTileNotify(
                         "ag.notify(p2p)",
                         [map, tile_of, target_of](const Env& e) {
                           NotifySpec spec;
                           spec.entries.push_back(NotifyEntry{
                               SignalSpace::kProducerConsumer,
                               {target_of(e)},
                               map.Channel(tile_of(e)),
                               1});
                           return spec;
                         }));
                   });
        });
  return b.Build();
}

// Computation role: persistent GEMM blocks; m-tile visit order starts at this
// rank's own rows (tile-order subspace of §3.1).
BlockProgram AgGemm::BuildCompute() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto fulls = a_full_;
  auto weights = b_;
  auto outs = c_;
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t tiles_m = CeilDiv<int64_t>(cfg_.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(cfg_.k, tiling.bk);
  const int64_t m = cfg_.m;
  const int64_t n = cfg_.n;
  const int64_t k = cfg_.k;
  const int R = world_->size();
  const int64_t tiles_m_per_rank = tiles_m / R;
  // Swizzled m-tile: rotate so this rank's rows come first.
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t raw_m = t / tiles_n;
    const int64_t tn = t % tiles_n;
    const int64_t tm =
        tiles_m_per_rank > 0
            ? (raw_m + e.rank * tiles_m_per_rank) % tiles_m
            : raw_m;
    return std::pair<int64_t, int64_t>(tm, tn);
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "gemm.consumer_wait", [map, tid_mn, tiling, m](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                const int64_t lo = tm * tiling.bm;
                const int64_t hi = std::min<int64_t>(lo + tiling.bm, m);
                spec.waits = map.WaitsForRows(lo, hi);
                return spec;
              }));
          body.For("kk",
                   [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Load(
                         "gemm.load_a", /*acquire=*/true,
                         [fulls, tid_mn, tiling, m](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           (void)tn;
                           const int64_t lo = tm * tiling.bm;
                           const int64_t len =
                               std::min<int64_t>(tiling.bm, m - lo);
                           const Tensor view =
                               fulls[static_cast<size_t>(e.rank)].Slice(
                                   0, lo, len);
                           DataSpec d;
                           view.BufferRange(&d.read_lo, &d.read_hi);
                           d.read_buf = view.buffer();
                           return d;
                         }));
                     inner.Add(ops::Mma(
                         "gemm.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [fulls, weights, outs, tid_mn, tiling,
                          k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               fulls[static_cast<size_t>(e.rank)],
                               weights[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               /*accumulate=*/e.iv(1) != 0);
                         }));
                   });
          body.Add(ops::Store(
              "gemm.store", [outs, tid_mn, tiling, m, n](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const int64_t lo = tm * tiling.bm;
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)]
                        .Slice(0, lo, std::min<int64_t>(tiling.bm, m - lo))
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 n - tn * tiling.bn));
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
        });
  return b.Build();
}

// DMA-resource AllGather: host primitives drive copy engines; each completed
// channel chunk notifies the producer-consumer barrier it covers.
sim::Coro AgGemm::DmaAllGather(rt::RankCtx& ctx) {
  const int R = world_->size();
  const int64_t m_per_rank = cfg_.m / R;
  const BlockChannel& bc = bcs_[static_cast<size_t>(ctx.rank)];
  std::vector<sim::Coro> copies;
  // Ring order: own shard first (cheap local copy), then increasing
  // distance, one copy per channel chunk so notifications are fine-grained.
  for (int s = 0; s < R; ++s) {
    const int src = (ctx.rank + s) % R;
    for (int c = 0; c < map_.channels_per_rank(); ++c) {
      const int channel = src * map_.channels_per_rank() + c;
      const TileRange rows = map_.ChannelRows(channel);
      if (rows.len() <= 0) continue;
      Tensor src_view = a_shards_[static_cast<size_t>(src)].Slice(
          0, rows.lo - src * m_per_rank, rows.len());
      Tensor dst_view = a_full_[static_cast<size_t>(ctx.rank)].Slice(
          0, rows.lo, rows.len());
      const uint64_t inc = map_.TilesInChannel(channel);
      auto copy_and_notify = [](rt::RankCtx& c2, Tensor s2, Tensor d2,
                                const BlockChannel& bc2, int ch,
                                uint64_t inc2) -> sim::Coro {
        co_await RankCopyData(c2, s2, d2);
        // Host-side release: the DMA completed before this notify issues.
        bc2.set(SignalSpace::kProducerConsumer, c2.rank)
            ->AddFrom(c2.rank, ch, inc2);
      };
      copies.push_back(
          copy_and_notify(ctx, src_view, dst_view, bc, channel, inc));
    }
  }
  co_await sim::WhenAll(std::move(copies));
}

sim::Coro AgGemm::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  auto state =
      compiled_.Launch(ctx, *ctx.stream, bcs_[static_cast<size_t>(ctx.rank)]);
  if (cfg_.comm == CommResource::kDma) {
    std::vector<sim::Coro> both;
    both.push_back(DmaAllGather(ctx));
    both.push_back(AwaitKernel(state));
    co_await sim::WhenAll(std::move(both));
  } else {
    co_await AwaitKernel(state);
  }
}

}  // namespace tilelink::tl
