// Ring ReduceScatter communication role (paper Figure 4, lines 10-26) —
// the device-program form of the builder layer's NVLink ring link role
// (tilelink/builder/link_roles.h).
//
// Each comm block owns a set of row chunks. For a chunk, stage s processes
// segment seg = (rank + s + 1) % R: wait for the local producer tiles
// covering those rows (consumer_tile_wait), add the partial that arrived
// from the right neighbor (peer_tile_wait, stages > 0), then push the
// accumulated chunk to the left neighbor and notify it (peer_tile_notify) —
// or, at the last stage, store the fully reduced chunk to the local output.
//
// The ring may run over the whole world (the single-node kernels) or over
// a contiguous rank *group* (`group_size`, e.g. one node of a multi-node
// world); with `seg_blocks` > 1 each ring segment covers that many global
// destination blocks (the hierarchical decomposition: rank (n, l) reduces
// the node partial of every block with local index l). The multi-node
// fused kernels additionally hook `final_notify` to release the node-
// reduced chunk to their NIC rail role.
//
// The push can be SM-driven (block stalls on the transfer) or handed to a
// DMA engine (hybrid mapping: reduction on SMs, scatter on copy engines —
// the configuration the paper reports as TileLink's best for GEMM+RS).
#pragma once

#include <functional>

#include "comm/collectives.h"
#include "runtime/world.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct RingRsParams {
  int world_size = 0;
  int64_t m = 0;        // global rows = world_size * block rows
  int64_t n = 0;        // row width
  int block_m = 128;    // RS chunk rows (comm tile size — decoupled from
                        // the producer's tile size)
  DType dtype = DType::kBF16;
  comm::SymTensor partials;  // per-rank local partial sums [m, n]
  comm::SymTensor staging;   // per-rank ring staging buffer [m, n]
  comm::SymTensor outs;      // per-rank reduced rows
                             // [seg_blocks * m / (group * seg_blocks), n]
  // consumer_tile_wait spec for producer tiles covering global rows
  // [lo, hi); workload-specific (GEMM tiles vs. topk-reduce chunks).
  std::function<WaitSpec(int64_t lo, int64_t hi)> wait_for_rows;
  bool dma_push = false;  // hybrid resource mapping

  // Ring group: ranks [g*group_size, (g+1)*group_size) form independent
  // rings (0: one ring over the whole world). Each ring segment covers
  // `seg_blocks` global destination blocks: segment `seg` of a group holds
  // the rows of blocks {b * group_size + seg : b}, so the fully reduced
  // output of rank (g, seg) spans seg_blocks * block-rows local rows.
  int group_size = 0;
  int seg_blocks = 1;
  // Small-m fix (planner-driven): split every row chunk into `col_splits`
  // column strips of n / col_splits columns each, so a ring with too few
  // row chunks still pipelines. Chunk id c covers row chunk c / col_splits,
  // strip c % col_splits; 1 leaves the schedule byte-identical to the
  // row-wise ring.
  int col_splits = 1;
  // Fired (on the own rank's kPeer space, typically) after the final-stage
  // store of `chunk`: releases the group-reduced chunk to a downstream
  // role (the NIC rail push/reduce of a fused multi-node kernel). With
  // col_splits > 1 the raw chunk id is passed; chunk / col_splits is the
  // row chunk, which a downstream row-oriented wait reaches only after
  // col_splits notifies.
  std::function<NotifySpec(const Env&, int64_t chunk)> final_notify;
};

// Builds the comm-role program. Peer channels used: one per (segment,
// chunk), i.e. group_size * RingRsChunks(params) channels in kPeer space.
BlockProgram BuildRingReduceScatter(const RingRsParams& params);

// Number of comm blocks that have work: chunks per ring segment.
int64_t RingRsChunks(const RingRsParams& params);

}  // namespace tilelink::tl
