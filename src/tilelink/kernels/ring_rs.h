// Ring ReduceScatter communication role (paper Figure 4, lines 10-26).
//
// Each comm block owns a set of row chunks. For a chunk, stage s processes
// segment seg = (rank + s + 1) % R: wait for the local producer tiles
// covering those rows (consumer_tile_wait), add the partial that arrived
// from the right neighbor (peer_tile_wait, stages > 0), then push the
// accumulated chunk to the left neighbor and notify it (peer_tile_notify) —
// or, at the last stage, store the fully reduced chunk to the local output.
//
// The push can be SM-driven (block stalls on the transfer) or handed to a
// DMA engine (hybrid mapping: reduction on SMs, scatter on copy engines —
// the configuration the paper reports as TileLink's best for GEMM+RS).
#pragma once

#include <functional>

#include "comm/collectives.h"
#include "runtime/world.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct RingRsParams {
  int world_size = 0;
  int64_t m = 0;        // global rows = world_size * m_per_rank
  int64_t n = 0;        // row width
  int block_m = 128;    // RS chunk rows (comm tile size — decoupled from
                        // the producer's tile size)
  DType dtype = DType::kBF16;
  comm::SymTensor partials;  // per-rank local partial sums [m, n]
  comm::SymTensor staging;   // per-rank ring staging buffer [m, n]
  comm::SymTensor outs;      // per-rank reduced shard [m/world_size, n]
  // consumer_tile_wait spec for producer tiles covering global rows
  // [lo, hi); workload-specific (GEMM tiles vs. topk-reduce chunks).
  std::function<WaitSpec(int64_t lo, int64_t hi)> wait_for_rows;
  bool dma_push = false;  // hybrid resource mapping
};

// Builds the comm-role program. Peer channels used: one per global chunk,
// i.e. m / block_m channels in the kPeer space.
BlockProgram BuildRingReduceScatter(const RingRsParams& params);

// Number of comm blocks that have work: chunks per rank.
int64_t RingRsChunks(const RingRsParams& params);

}  // namespace tilelink::tl
