// Fused GEMM + hierarchical ReduceScatter — the first multi-node fused
// kernel, and the first RolePlan with a FabricBinding::kNic role.
//
// One launched kernel per rank of an (nodes x per_node) world, four roles
// on the unified link-role layer:
//   gemm        compute role: partial [M, N] tiles, per-row-chunk notifies
//               (the shared producer of kernels/gemm_producer.h)
//   ring        NVLink ring role: node-local ring RS over the GEMM partials
//               (BuildRingReduceScatter with group_size = per_node,
//               seg_blocks = nodes) — rank (n, l) ends with the *node*
//               partial of every block with local index l, releasing each
//               reduced chunk through `final_notify`
//   rail        NIC rail role (FabricBinding::kNic): pushes node-reduced
//               chunks to the rail peer (n', l) as the ring finishes them;
//               `staging_depth` blocks per peer keep that many NIC messages
//               in flight, clamped by the queue-pair budget
//   rail_reduce folds rail arrivals into the own-node partial and stores
//               the fully reduced output block
//
// GEMM epilogue tiles feed the ring while the rail drains completed
// intra-node reductions — compute, NVLink stage and NIC stage all overlap
// at tile granularity, instead of composing GEMM-then-HierRS at the layer
// level. Degenerate topologies keep the structure honest: at 1 x N there is
// no rail and the kernel *is* GemmRs (makespan-identical, pinned by test);
// at N x 1 (multi-node, one rank per node) there is no ring and the rail
// feeds straight off the GEMM producer channels; at 1 x 1 the ring
// degenerates to the final-only path that moves the partial into out.
#pragma once

#include <string>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct GemmHierRsConfig {
  int64_t m = 0;  // global rows (world_size * m_per_rank)
  int64_t k = 0;  // local reduction dim (already sharded)
  int64_t n = 0;  // output columns
  compute::GemmTiling gemm{128, 256, 64};
  int rs_block_m = 128;      // NVLink ring chunk rows
  int nic_chunk_blocks = 2;  // ring chunks per NIC rail message (the
                             // nic_chunk_tiles knob at kernel granularity;
                             // the last rail chunk may be ragged)
  int staging_depth = 2;     // NIC messages in flight per rail peer
  int comm_sms = 20;         // NVLink ring role SMs
  int reduce_sms = 8;        // rail reduce role SMs
  bool dma_push = false;     // hybrid: ring reduction on SMs, push on DMA
  bool hand_built = false;   // regression oracle: bypass the OverlapPlanner
  TileOrder order = TileOrder::kNextRankFirst;
  CompilerOptions compiler;
  std::string name = "gemm_hier_rs";
};

class GemmHierRs : public FusedKernelBase {
 public:
  GemmHierRs(rt::World& world, const GemmHierRsConfig& config);

  comm::SymTensor& a() { return a_; }                // [M, K] per rank
  comm::SymTensor& b() { return b_; }                // [K, N] per rank
  comm::SymTensor& gemm_out() { return gemm_out_; }  // [M, N] partials
  comm::SymTensor& out() { return out_; }            // [M/R, N] reduced

  const StaticMapping& mapping() const { return map_; }
  // Rail staging depth actually granted by the NIC channel budget.
  int rail_blocks() const { return rail_blocks_; }
  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 private:
  OverlapSpec BuildOverlapSpec(bool ring, bool rail, int64_t m_per_rank,
                               int64_t gemm_tiles, int64_t cpb_ring,
                               int64_t cpb_rail) const;

  GemmHierRsConfig cfg_;
  StaticMapping map_;  // producer channels over gemm_out rows
  int nodes_ = 1, per_node_ = 1;
  int rail_blocks_ = 0;
  comm::SymTensor a_, b_, gemm_out_, ring_staging_, ring_out_, rail_staging_,
      out_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
