// AllGather-KV + self-attention overlapped kernel (paper Figure 6;
// sequence-parallel attention). Communication runs on copy engines driven by
// host primitives (rank_copy_data + rank_notify) on a separate stream; the
// FlashAttention kernel's consumer waits target the host signal space, so
// each query block starts consuming a KV segment the moment its DMA lands.
// KV segments are visited in ring order starting at this rank's right
// neighbor, matching the copy issue order.
#pragma once

#include <string>

#include "comm/collectives.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct AgAttentionConfig {
  int64_t batch_heads = 0;  // B * H
  int64_t seq = 0;          // total sequence length (KV)
  int64_t head_dim = 128;
  int block_q = 128;
  int block_kv = 128;
  // Relative throughput vs. tuned flash (1.0); the Torch baseline uses
  // a de-rated value through baselines/, not here.
  double throughput_factor = 1.0;
  bool skip_comm = false;  // measure compute only (all channels pre-set)
  bool comm_only = false;  // measure the DMA AllGather only
  bool hand_built = false;  // regression oracle: bypass the OverlapPlanner
  CompilerOptions compiler;
  std::string name = "ag_attention";
};

class AgAttention : public FusedKernelBase {
 public:
  AgAttention(rt::World& world, const AgAttentionConfig& config);

  comm::SymTensor& q() { return q_; }                // [BH, S/R, D] local
  comm::SymTensor& k_shards() { return k_shards_; }  // [BH, S/R, D]
  comm::SymTensor& v_shards() { return v_shards_; }
  comm::SymTensor& k() { return k_; }                // [BH, S, D] gathered
  comm::SymTensor& v() { return v_; }
  comm::SymTensor& out() { return out_; }            // [BH, S/R, D]

  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 protected:
  std::optional<sim::Coro> HostComm(rt::RankCtx& ctx) override;
  bool LaunchesDevice() const override { return !cfg_.comm_only; }

 private:
  BlockProgram BuildFlash();
  sim::Coro DmaAllGatherKv(rt::RankCtx& ctx);

  AgAttentionConfig cfg_;
  comm::SymTensor q_, k_shards_, v_shards_, k_, v_, out_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
