// The AG+GEMM consumer role shared by ag_gemm (flat AllGather) and
// ag_gemm_hier (hierarchical AllGather): persistent GEMM blocks over the
// gathered activation, each tile waiting only on the producer channels
// covering its rows. The m-tile visit order is the tile-order subspace of
// §3.1 (own rows first by default). Extracted so the overlap generator
// can feed the same consumer from any producer schedule — the wait spec
// is the only coupling point.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct AgConsumerParams {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  compute::GemmTiling tiling{128, 256, 64};
  comm::SymTensor a_full;  // [m, k] gathered activation, per rank
  comm::SymTensor b;       // [k, n] per rank
  comm::SymTensor c;       // [m, n] per rank
  int ranks = 0;
  TileOrder order = TileOrder::kOwnerFirst;
  // Producer-consumer waits covering gathered rows [lo, hi).
  std::function<std::vector<ChannelWait>(int64_t lo, int64_t hi)>
      waits_for_rows;
};

// Total consumer tiles: ceil(m / bm) * ceil(n / bn).
int64_t AgConsumerTiles(const AgConsumerParams& p);

BlockProgram BuildAgGemmConsumer(const AgConsumerParams& p);

}  // namespace tilelink::tl
