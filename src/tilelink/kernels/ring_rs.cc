#include "tilelink/kernels/ring_rs.h"

#include <algorithm>

#include "common/math_utils.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

namespace {

int RingGroup(const RingRsParams& p) {
  return p.group_size > 0 ? p.group_size : p.world_size;
}

// Rows of one global destination block.
int64_t RingBlockRows(const RingRsParams& p) {
  const int64_t denom =
      static_cast<int64_t>(RingGroup(p)) * static_cast<int64_t>(p.seg_blocks);
  return p.m / denom;
}

int RingColSplits(const RingRsParams& p) { return std::max(1, p.col_splits); }

}  // namespace

int64_t RingRsChunks(const RingRsParams& params) {
  return static_cast<int64_t>(params.seg_blocks) *
         CeilDiv<int64_t>(RingBlockRows(params), params.block_m) *
         RingColSplits(params);
}

BlockProgram BuildRingReduceScatter(const RingRsParams& p) {
  TL_CHECK_GT(p.world_size, 0);
  TL_CHECK_GT(p.seg_blocks, 0);
  const int G = RingGroup(p);
  TL_CHECK_EQ(p.m % (static_cast<int64_t>(G) * p.seg_blocks), 0);
  const int64_t m_blk = RingBlockRows(p);
  TL_CHECK_EQ(m_blk % p.block_m, 0);
  const int64_t cpb = CeilDiv<int64_t>(m_blk, p.block_m);
  const int S = RingColSplits(p);
  TL_CHECK_EQ(p.n % S, 0);
  const int64_t n_strip = p.n / S;
  const int64_t chunks = RingRsChunks(p);
  const int64_t block_m = p.block_m;
  const DType dtype = p.dtype;
  auto partials = p.partials;
  auto staging = p.staging;
  auto outs = p.outs;
  auto wait_for_rows = p.wait_for_rows;
  auto final_notify = p.final_notify;
  const bool dma_push = p.dma_push;

  // Chunk owned by this block at iteration iv(0). With col_splits > 1 a
  // chunk id c addresses row chunk c / S, column strip c % S.
  auto chunk_of = [chunks](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  auto row_chunk_of = [S](int64_t chunk) { return chunk / S; };
  // First column of the chunk's strip.
  auto col_lo = [S, n_strip](int64_t chunk) { return (chunk % S) * n_strip; };
  // Column-strip view; S == 1 keeps the original view (byte-identical
  // schedule for the row-wise ring).
  auto strip = [S, n_strip, col_lo](Tensor t, int64_t chunk) {
    return S == 1 ? t : t.Slice(1, col_lo(chunk), n_strip);
  };
  // Segment processed at ring stage s (Figure 4 line 15), local to the
  // rank's ring group.
  auto seg_at = [G](const Env& e, int64_t stage) {
    return (e.rank % G + stage + 1) % G;
  };
  // Global rows of (segment, row chunk): chunk c of block b within the
  // segment addresses global destination block b * G + seg.
  auto rows_of = [G, m_blk, block_m, cpb, row_chunk_of](int64_t seg,
                                                        int64_t chunk) {
    const int64_t rc = row_chunk_of(chunk);
    const int64_t b = rc / cpb, c = rc % cpb;
    return (b * G + seg) * m_blk + c * block_m;
  };
  // Global peer-channel id for (segment, chunk).
  auto peer_channel = [chunks](int64_t seg, int64_t chunk) {
    return static_cast<int>(seg * chunks + chunk);
  };
  // to_rank = left neighbor within the ring group.
  auto to_rank = [G](const Env& e) {
    return (e.rank / G) * G + (e.rank % G + G - 1) % G;
  };

  TileProgramBuilder b;
  b.For("chunk", [chunks](const Env& e) { return TilesForBlock(chunks, e); },
        [&](TileProgramBuilder& cb) {
          // --- push stages 0 .. G-2 -------------------------------------
          cb.For("stage",
                 [G](const Env&) { return static_cast<int64_t>(G - 1); },
                 [&](TileProgramBuilder& sb) {
                   auto stage_of = [](const Env& e) { return e.iv(1); };
                   sb.Add(ops::ConsumerTileWait(
                       "rs.consumer_wait",
                       [=](const Env& e) {
                         const int64_t lo =
                             rows_of(seg_at(e, stage_of(e)), chunk_of(e));
                         return wait_for_rows(lo, lo + block_m);
                       }));
                   sb.Add(ops::Load(
                       "rs.load_partial", /*acquire=*/true,
                       [=](const Env& e) {
                         const int64_t lo =
                             rows_of(seg_at(e, stage_of(e)), chunk_of(e));
                         const Tensor view = strip(
                             partials[static_cast<size_t>(e.rank)].Slice(
                                 0, lo, block_m),
                             chunk_of(e));
                         DataSpec d;
                         SetReadView(d, view);
                         return d;
                       }));
                   sb.Add(ops::PeerTileWait(
                       "rs.peer_wait", [=](const Env& e) {
                         WaitSpec spec;
                         spec.space = SignalSpace::kPeer;
                         if (stage_of(e) > 0) {
                           spec.waits.push_back(ChannelWait{
                               peer_channel(seg_at(e, stage_of(e)),
                                            chunk_of(e)),
                               1});
                         }
                         return spec;
                       }));
                   // Billed SM time of the local reduction for this chunk.
                   sb.Add(ops::Elementwise(
                       "rs.reduce",
                       [=](const Env& e, const sim::CostModel& cost) {
                         const uint64_t bytes =
                             3ULL * static_cast<uint64_t>(block_m) * n_strip *
                             DTypeSize(dtype);
                         return cost.MemoryBound(bytes, e.grid);
                       }));
                   sb.Add(ops::TilePushData(
                       "rs.push",
                       [=](const Env& e) {
                         const int64_t lo =
                             rows_of(seg_at(e, stage_of(e)), chunk_of(e));
                         const int to = to_rank(e);
                         DataSpec d;
                         d.src_rank = e.rank;
                         d.dst_rank = to;
                         d.bytes = static_cast<uint64_t>(block_m) * n_strip *
                                   DTypeSize(dtype);
                         const Tensor src_view = strip(
                             partials[static_cast<size_t>(e.rank)].Slice(
                                 0, lo, block_m),
                             chunk_of(e));
                         const Tensor dst_view = strip(
                             staging[static_cast<size_t>(to)].Slice(0, lo,
                                                                    block_m),
                             chunk_of(e));
                         SetReadView(d, src_view);
                         SetWriteView(d, dst_view);
                         return d;
                       },
                       // peer_tile_notify with release semantics once the
                       // accumulated chunk has landed at the neighbor.
                       [=](const Env& e) {
                         return NotifyOne(
                             SignalSpace::kPeer, {to_rank(e)},
                             peer_channel(seg_at(e, stage_of(e)),
                                          chunk_of(e)));
                       },
                       dma_push,
                       [=](const Env& e) {
                         const int64_t lo =
                             rows_of(seg_at(e, stage_of(e)), chunk_of(e));
                         const int64_t cl = col_lo(chunk_of(e));
                         const int to = to_rank(e);
                         const Tensor mine =
                             partials[static_cast<size_t>(e.rank)];
                         const Tensor acc =
                             staging[static_cast<size_t>(e.rank)];
                         Tensor dst = staging[static_cast<size_t>(to)];
                         const bool first = stage_of(e) == 0;
                         for (int64_t i = 0; i < block_m; ++i) {
                           for (int64_t c = cl; c < cl + n_strip; ++c) {
                             float v = mine.at({lo + i, c});
                             if (!first) v += acc.at({lo + i, c});
                             dst.at({lo + i, c}) = v;
                           }
                         }
                       }));
                 });
          // --- final stage: my own segment ------------------------------
          cb.Add(ops::ConsumerTileWait("rs.consumer_wait(final)",
                                       [=](const Env& e) {
                                         const int64_t lo = rows_of(
                                             e.rank % G, chunk_of(e));
                                         return wait_for_rows(lo,
                                                              lo + block_m);
                                       }));
          cb.Add(ops::Load("rs.load_partial(final)", /*acquire=*/true,
                           [=](const Env& e) {
                             const int64_t lo =
                                 rows_of(e.rank % G, chunk_of(e));
                             const Tensor view = strip(
                                 partials[static_cast<size_t>(e.rank)].Slice(
                                     0, lo, block_m),
                                 chunk_of(e));
                             DataSpec d;
                             SetReadView(d, view);
                             return d;
                           }));
          cb.Add(ops::PeerTileWait("rs.peer_wait(final)", [=](const Env& e) {
            WaitSpec spec;
            spec.space = SignalSpace::kPeer;
            if (G > 1) {
              spec.waits.push_back(ChannelWait{
                  peer_channel(e.rank % G, chunk_of(e)), 1});
            }
            return spec;
          }));
          cb.Add(ops::Elementwise(
              "rs.reduce(final)",
              [=](const Env& e, const sim::CostModel& cost) {
                const uint64_t bytes = 3ULL * static_cast<uint64_t>(block_m) *
                                       n_strip * DTypeSize(dtype);
                return cost.MemoryBound(bytes, e.grid);
              }));
          cb.Add(ops::Store(
              "rs.store_out",
              [=](const Env& e) {
                const int64_t local_lo = row_chunk_of(chunk_of(e)) * block_m;
                const Tensor view = strip(
                    outs[static_cast<size_t>(e.rank)].Slice(0, local_lo,
                                                            block_m),
                    chunk_of(e));
                DataSpec d;
                SetWriteView(d, view);
                return d;
              },
              [=](const Env& e) {
                const int64_t lo = rows_of(e.rank % G, chunk_of(e));
                const int64_t local_lo = row_chunk_of(chunk_of(e)) * block_m;
                const int64_t cl = col_lo(chunk_of(e));
                const Tensor mine = partials[static_cast<size_t>(e.rank)];
                const Tensor acc = staging[static_cast<size_t>(e.rank)];
                Tensor out = outs[static_cast<size_t>(e.rank)];
                for (int64_t i = 0; i < block_m; ++i) {
                  for (int64_t c = cl; c < cl + n_strip; ++c) {
                    float v = mine.at({lo + i, c});
                    if (G > 1) v += acc.at({lo + i, c});
                    out.at({local_lo + i, c}) = v;
                  }
                }
              }));
          if (final_notify) {
            // Release the group-reduced chunk to the downstream role.
            cb.Add(ops::PeerTileNotify(
                "rs.notify(final)", [=](const Env& e) {
                  return final_notify(e, chunk_of(e));
                }));
          }
        });
  return b.Build();
}

}  // namespace tilelink::tl
