// GroupGEMM + Scatter + TopkReduce + ReduceScatter overlapped kernel (MoE
// layer part 2, paper §7.2 / Figure 9). Three roles form an extended
// producer-consumer chain inside ONE fused kernel:
//   group_gemm  -- produces expert outputs in slot order, notifies pc1
//                  channels over the sorted-slot space;
//   topk_reduce -- combines each token's topk expert rows (dynamic-mapping
//                  waits on pc1), notifies pc2 channels over token rows;
//   rs          -- ring ReduceScatter of the partial token sums across
//                  ranks (consumer waits on pc2, peer signals around the
//                  ring), with optional DMA push (hybrid mapping).
#pragma once

#include <string>
#include <vector>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct MoeRsConfig {
  int64_t m = 0;       // global tokens
  int64_t k = 0;       // local reduction dim (I / R)
  int64_t hidden = 0;  // output feature dim H
  int num_experts = 0;
  int topk = 0;
  compute::GemmTiling gemm{128, 128, 64};
  int sorted_channel_rows = 512;  // pc1 granularity over sorted slots
  int reduce_block_tokens = 64;   // topk-reduce chunk
  int reduce_sms = 16;
  int rs_block_m = 128;  // RS chunk rows over token space
  int comm_sms = 20;
  bool dma_push = false;
  bool hand_built = false;  // regression oracle: bypass the OverlapPlanner
  CompilerOptions compiler;
  std::string name = "moe_rs";
};

class MoeRs : public FusedKernelBase {
 public:
  MoeRs(rt::World& world, const MoeRsConfig& config,
        const compute::MoeRouting& routing);

  comm::SymTensor& acts() { return acts_; }        // [M*topk, K] slot order
  comm::SymTensor& weights() { return weights_; }  // [E, K, H]
  comm::SymTensor& exp_out() { return exp_out_; }  // [M*topk, H] partial
  comm::SymTensor& token_partial() { return token_partial_; }  // [M, H]
  comm::SymTensor& out() { return out_; }          // [M/R, H] reduced

  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 private:
  BlockProgram BuildGroupGemm();
  BlockProgram BuildTopkReduce();

  MoeRsConfig cfg_;
  compute::MoeRouting routing_;
  std::vector<compute::GroupBlock> group_blocks_;
  int num_pc1_ = 0;  // channels over sorted-slot space
  int num_pc2_ = 0;  // channels over token space (offset by num_pc1_)
  std::vector<uint64_t> pc1_thresholds_;  // group blocks per pc1 channel
  DynamicMapping reduce_waits_;           // per reduce-chunk wait tables
  comm::SymTensor acts_, weights_, exp_out_, token_partial_, staging_, out_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
