#include "tilelink/kernels/gemm_hier_rs.h"

#include <algorithm>

#include "common/math_utils.h"
#include "tilelink/builder/link_roles.h"
#include "tilelink/kernels/gemm_producer.h"
#include "tilelink/kernels/ring_rs.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

GemmHierRs::GemmHierRs(rt::World& world, const GemmHierRsConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      // One producer-consumer channel per ring chunk of rows; GEMM m-tiles
      // must align with chunk granularity for the counting protocol.
      map_(config.m, config.gemm.bm, world.size(),
           static_cast<int>((config.m / world.size()) / config.rs_block_m)) {
  const sim::MachineSpec& spec = world.spec();
  TL_CHECK_EQ(spec.num_devices % spec.devices_per_node, 0);
  nodes_ = spec.num_nodes();
  per_node_ = spec.devices_per_node;
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  TL_CHECK_EQ(m_per_rank % cfg_.rs_block_m, 0);
  TL_CHECK_EQ(cfg_.rs_block_m % cfg_.gemm.bm, 0);
  TL_CHECK_GT(cfg_.nic_chunk_blocks, 0);
  TL_CHECK_GT(cfg_.staging_depth, 0);
  const bool rail = nodes_ > 1;
  // The ring role also covers the single-rank-per-node single-node case
  // (1x1): with group size 1 it degenerates to the final-only
  // wait/reduce/store path that moves the GEMM partial into out_, exactly
  // like GemmRs on one rank.
  const bool ring = per_node_ > 1 || !rail;

  a_ = AllocSymmetric("a", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  gemm_out_ = AllocSymmetric("gemm_out", {cfg_.m, cfg_.n});
  out_ = AllocSymmetric("out", {m_per_rank, cfg_.n});
  if (ring) ring_staging_ = AllocSymmetric("ring_staging", {cfg_.m, cfg_.n});
  if (rail && ring) {
    ring_out_ = AllocSymmetric(
        "ring_out", {static_cast<int64_t>(nodes_) * m_per_rank, cfg_.n});
  }
  if (rail) {
    rail_staging_ = AllocSymmetric(
        "rail_staging", {static_cast<int64_t>(nodes_ - 1) * m_per_rank,
                         cfg_.n});
  }

  // Chunk geometry: the ring moves rs_block_m-row chunks, the rail moves
  // nic_chunk_blocks of them per NIC message (ragged last chunk allowed).
  const int64_t cpb_ring = m_per_rank / cfg_.rs_block_m;
  const int64_t rail_rows =
      static_cast<int64_t>(cfg_.nic_chunk_blocks) * cfg_.rs_block_m;
  const int64_t cpb_rail = RailChunksPerBlock(m_per_rank, rail_rows);
  const int64_t gemm_tiles = CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) *
                             CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);

  // Generated path: plan first — the planner's column-split decision (the
  // small-m fix) scales the ring chunk count and the kPeer channel layout.
  int S = 1;
  if (!cfg_.hand_built) {
    overlap_spec_ = BuildOverlapSpec(ring, rail, m_per_rank, gemm_tiles,
                                     cpb_ring, cpb_rail);
    overlap_plan_ = OverlapPlanner(spec).Plan(overlap_spec_);
    if (ring) S = overlap_plan_.At("ring").col_splits;
  }

  // kPeer channel layout: [ring | ring_done | rail arrivals]. The ring
  // section scales with the column split; ring_done channels stay one per
  // *row* chunk, reached after S strip notifies.
  RingRsParams rs;
  rs.world_size = ranks();
  rs.m = cfg_.m;
  rs.n = cfg_.n;
  rs.block_m = cfg_.rs_block_m;
  rs.dtype = DType::kBF16;
  rs.partials = gemm_out_;
  rs.staging = ring_staging_;
  rs.outs = rail && ring ? ring_out_ : out_;
  rs.dma_push = cfg_.dma_push;
  rs.group_size = per_node_;
  rs.seg_blocks = nodes_;
  rs.col_splits = S;
  const int64_t ring_chunks = ring ? RingRsChunks(rs) : 0;
  const int ring_peer = ring ? per_node_ * static_cast<int>(ring_chunks) : 0;
  const int ring_done_base = ring_peer;
  const int ring_done_count =
      rail && ring ? static_cast<int>(ring_chunks / S) : 0;
  const int rail_base = ring_done_base + ring_done_count;
  const int rail_count =
      rail ? (nodes_ - 1) * static_cast<int>(cpb_rail) : 0;
  CreateChannels(map_.num_channels(), ring_peer + ring_done_count + rail_count,
                 /*num_host=*/1);

  const StaticMapping map = map_;
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  auto wait_rows = [map, tiles_n](int64_t lo, int64_t hi) {
    WaitSpec spec;
    spec.space = SignalSpace::kProducerConsumer;
    spec.waits = map.WaitsForRows(lo, hi);
    // Each m-chunk receives one notify per (m-tile, n-tile) pair.
    for (ChannelWait& w : spec.waits) {
      w.threshold *= static_cast<uint64_t>(tiles_n);
    }
    return spec;
  };
  rs.wait_for_rows = wait_rows;
  if (rail && ring) {
    // Release each node-reduced chunk to the rail roles on this rank. The
    // raw chunk id maps to its row chunk; the rail waits for all S strips.
    rs.final_notify = [ring_done_base, S](const Env& e, int64_t chunk) {
      return NotifyOne(SignalSpace::kPeer, {e.rank},
                       ring_done_base + static_cast<int>(chunk / S));
    };
  }

  // Rail roles. With single-rank nodes there is no ring: the "node partial"
  // is the rank's own GEMM partial, gated on the producer channels.
  NicRailPushParams push;
  NicRailReduceParams red;
  if (rail) {
    push.nodes = nodes_;
    push.per_node = per_node_;
    push.block_rows = m_per_rank;
    push.n = cfg_.n;
    push.chunk_rows = rail_rows;
    push.dtype = DType::kBF16;
    push.src = ring ? ring_out_ : gemm_out_;
    push.staging = rail_staging_;
    push.rail_channel_base = rail_base;
    red.nodes = nodes_;
    red.per_node = per_node_;
    red.block_rows = m_per_rank;
    red.n = cfg_.n;
    red.chunk_rows = rail_rows;
    red.dtype = DType::kBF16;
    red.src = push.src;
    red.staging = rail_staging_;
    red.outs = out_;
    red.rail_channel_base = rail_base;
    const int ncb = cfg_.nic_chunk_blocks;
    if (ring) {
      // Node-reduced rows live in ring_out, block-major by dest node.
      push.src_row = [m_per_rank](const Env&, int peer_node, int64_t row) {
        return static_cast<int64_t>(peer_node) * m_per_rank + row;
      };
      auto ring_done_wait = [ring_done_base, cpb_ring, ncb, S](
                                int block, int64_t chunk) {
        WaitSpec spec;
        spec.space = SignalSpace::kPeer;
        const int64_t lo = chunk * ncb;
        const int64_t hi = std::min(cpb_ring, lo + ncb);
        for (int64_t cr = lo; cr < hi; ++cr) {
          spec.waits.push_back(ChannelWait{
              ring_done_base +
                  static_cast<int>(block * cpb_ring + cr),
              static_cast<uint64_t>(S)});
        }
        return spec;
      };
      push.wait = [ring_done_wait](const Env&, int peer_node,
                                   int64_t chunk) {
        return ring_done_wait(peer_node, chunk);
      };
      const int per_node = per_node_;
      red.src_row = [m_per_rank, per_node](const Env& e, int64_t row) {
        return static_cast<int64_t>(e.rank / per_node) * m_per_rank + row;
      };
      red.wait = [ring_done_wait, per_node](const Env& e, int64_t chunk) {
        return ring_done_wait(e.rank / per_node, chunk);
      };
    } else {
      const int per_node = per_node_;
      push.src_row = [m_per_rank, per_node](const Env& e, int peer_node,
                                            int64_t row) {
        return (static_cast<int64_t>(peer_node) * per_node +
                e.rank % per_node) *
                   m_per_rank +
               row;
      };
      auto gemm_wait = [wait_rows, m_per_rank, rail_rows](int64_t g,
                                                          int64_t chunk) {
        const int64_t lo = g * m_per_rank + chunk * rail_rows;
        const int64_t hi =
            std::min(g * m_per_rank + m_per_rank, lo + rail_rows);
        return wait_rows(lo, hi);
      };
      push.wait = [gemm_wait, per_node](const Env& e, int peer_node,
                                        int64_t chunk) {
        return gemm_wait(static_cast<int64_t>(peer_node) * per_node +
                             e.rank % per_node,
                         chunk);
      };
      red.src_row = [m_per_rank](const Env& e, int64_t row) {
        return static_cast<int64_t>(e.rank) * m_per_rank + row;
      };
      red.wait = [gemm_wait](const Env& e, int64_t chunk) {
        return gemm_wait(e.rank, chunk);
      };
    }
  }

  PartialGemmParams gemm;
  gemm.m = cfg_.m;
  gemm.k = cfg_.k;
  gemm.n = cfg_.n;
  gemm.tiling = cfg_.gemm;
  gemm.map = map_;
  gemm.a = a_;
  gemm.b = b_;
  gemm.out = gemm_out_;
  gemm.ranks = ranks();
  gemm.order = cfg_.order;

  if (!cfg_.hand_built) {
    if (rail) rail_blocks_ = overlap_plan_.At("rail").want_sms;
    Finalize(BuildFromPlan(
        overlap_plan_, sms(), [&](const PlannedRole& role) {
          if (role.name == "ring") return BuildRingReduceScatter(rs);
          if (role.name == "rail") return BuildNicRailPush(push);
          if (role.name == "rail_reduce") return BuildNicRailReduce(red);
          return BuildPartialGemmProducer(gemm);
        }));
    return;
  }

  // The NIC queue-pair budget clamps the rail's in-flight messages: the
  // rail role's *blocks* are its stream window, so the block count is the
  // clamped staging depth times the peer count (the same clamp the host
  // NicRailRole applies to the collectives), never more than the role has
  // work items — blocks, claimed channels and the accessor must agree.
  if (rail) {
    NicRailRole rail_role(world, cfg_.nic_chunk_blocks, cfg_.staging_depth,
                          nodes_ - 1);
    rail_blocks_ = static_cast<int>(std::min<int64_t>(
        static_cast<int64_t>(rail_role.window()) * (nodes_ - 1),
        static_cast<int64_t>(nodes_ - 1) * cpb_rail));
  }

  RolePlan plan(cfg_.name, sms());
  if (ring) {
    plan.Comm("ring", cfg_.comm_sms, ring_chunks,
              BuildRingReduceScatter(rs));
  }
  if (rail) {
    plan.Comm("rail", FabricBinding::kNic, rail_blocks_,
              static_cast<int64_t>(nodes_ - 1) * cpb_rail,
              BuildNicRailPush(push), rail_blocks_);
    plan.Comm("rail_reduce", cfg_.reduce_sms, cpb_rail,
              BuildNicRailReduce(red));
  }
  plan.Compute("gemm", PartialGemmTiles(gemm),
               BuildPartialGemmProducer(gemm));
  Finalize(plan.Build());
}

// Declarative form: gemm -> ring (node-local RS over the partials) ->
// rail (NIC push of node-reduced blocks) -> rail_reduce (fold arrivals,
// store the output shard). Roles are declared in claim order.
OverlapSpec GemmHierRs::BuildOverlapSpec(bool ring, bool rail,
                                         int64_t m_per_rank,
                                         int64_t gemm_tiles, int64_t cpb_ring,
                                         int64_t cpb_rail) const {
  OverlapSpec spec;
  spec.kernel = cfg_.name;
  spec.spaces = {
      {"a", CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm), cfg_.gemm.bm,
       /*resident=*/true},
      {"b", 1, cfg_.k, /*resident=*/true},
      {"gemm_out", gemm_tiles, cfg_.gemm.bm, /*resident=*/false},
      {"out", cpb_ring, cfg_.rs_block_m, /*resident=*/false},
  };
  if (rail && ring) {
    spec.spaces.push_back({"ring_out", static_cast<int64_t>(nodes_) * cpb_ring,
                           cfg_.rs_block_m, /*resident=*/false});
  }
  if (rail) {
    spec.spaces.push_back(
        {"rail_staging", static_cast<int64_t>(nodes_ - 1) * cpb_rail,
         cfg_.nic_chunk_blocks * cfg_.rs_block_m, /*resident=*/false});
  }
  const std::string node_partial =
      rail && ring ? "ring_out" : (ring ? "out" : "gemm_out");
  if (ring) {
    OverlapRoleSpec r;
    r.name = "ring";
    r.kind = OverlapRoleKind::kRingReduceScatter;
    r.want_sms = cfg_.comm_sms;
    r.reads = {{"gemm_out"}};
    r.writes = {{node_partial}};
    r.group_size = per_node_;
    r.seg_blocks = nodes_;
    r.block_rows = m_per_rank;
    r.chunk_rows = cfg_.rs_block_m;
    r.cols = cfg_.n;
    // Small-m fix: split columns only when a NIC rail consumes the ring
    // output (the split exists to release node-reduced chunks to the rail
    // sooner). Single-node the fused kernel must stay schedule-identical
    // to GemmRs (pinned by the degenerate-topology tests).
    r.allow_col_split = rail;
    spec.roles.push_back(std::move(r));
  }
  if (rail) {
    OverlapRoleSpec p;
    p.name = "rail";
    p.kind = OverlapRoleKind::kNicRailPush;
    p.reads = {{ring ? "ring_out" : "gemm_out"}};
    p.writes = {{"rail_staging"}};
    p.block_rows = m_per_rank;
    p.chunk_rows = cfg_.rs_block_m;
    p.nic_chunk_blocks = cfg_.nic_chunk_blocks;
    p.staging_depth = cfg_.staging_depth;
    p.peers = nodes_ - 1;
    spec.roles.push_back(std::move(p));
    OverlapRoleSpec red;
    red.name = "rail_reduce";
    red.kind = OverlapRoleKind::kNicRailReduce;
    red.want_sms = cfg_.reduce_sms;
    red.reads = {{"rail_staging"}, {ring ? "ring_out" : "gemm_out"}};
    red.writes = {{"out"}};
    red.block_rows = m_per_rank;
    red.chunk_rows = cfg_.rs_block_m;
    red.nic_chunk_blocks = cfg_.nic_chunk_blocks;
    spec.roles.push_back(std::move(red));
  }
  OverlapRoleSpec g;
  g.name = "gemm";
  g.kind = OverlapRoleKind::kCompute;
  g.reads = {{"a"}, {"b"}};
  g.writes = {{"gemm_out"}};
  g.work_items = gemm_tiles;
  spec.roles.push_back(std::move(g));
  return spec;
}

}  // namespace tilelink::tl
