// AllGather + GEMM overlapped kernel (tensor-parallel MLP part 1; paper
// §5/§7.2). The communication role gathers row tiles of the sharded
// activation into every rank's full copy and notifies per-channel barriers;
// GEMM consumer tiles wait only for the channels covering their rows, so
// compute starts as soon as its inputs land.
//
// Decoupled design space knobs (§3.1), all searchable via TuningSpace:
//  - comm tile size (comm_tile_m) is independent of the GEMM tiling;
//  - comm resource: SM pull blocks, SM push blocks, or DMA copy engines
//    driven by host primitives;
//  - compute tile order: which rank's rows the GEMM visits first.
//
// The role schedule is derived by the OverlapPlanner from a declarative
// OverlapSpec (tile_deps.h); `hand_built` keeps the original literal
// RolePlan construction as a regression oracle — both paths share the
// same role programs, so makespans are nanosecond-exact.
#pragma once

#include <string>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/kernels/kernel_common.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct AgGemmConfig {
  int64_t m = 0;  // global rows (gathered)
  int64_t k = 0;  // reduction dim
  int64_t n = 0;  // local output columns (already sharded)
  compute::GemmTiling gemm{128, 256, 64};
  int comm_tile_m = 128;
  int channels_per_rank = 0;  // 0 -> one channel per comm tile
  CommResource comm = CommResource::kDma;
  int comm_sms = 20;  // SM-comm variants only
  TileOrder order = TileOrder::kOwnerFirst;  // GEMM m-tile visit order
  bool hand_built = false;  // regression oracle: bypass the OverlapPlanner
  CompilerOptions compiler;
  std::string name = "ag_gemm";
};

// One instance owns the symmetric buffers, barrier channels and the compiled
// kernel. Usage: construct, fill a_shards()/b(), then RunSpmd(Run).
class AgGemm : public FusedKernelBase {
 public:
  AgGemm(rt::World& world, const AgGemmConfig& config);

  comm::SymTensor& a_shards() { return a_shards_; }  // [M/R, K] per rank
  comm::SymTensor& a_full() { return a_full_; }      // [M, K] per rank
  comm::SymTensor& b() { return b_; }                // [K, N] per rank
  comm::SymTensor& c() { return c_; }                // [M, N] per rank

  const StaticMapping& mapping() const { return map_; }
  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 protected:
  std::optional<sim::Coro> HostComm(rt::RankCtx& ctx) override;

 private:
  BlockProgram BuildCompute();
  BlockProgram BuildComm();
  OverlapSpec BuildOverlapSpec(int64_t gemm_tiles) const;

  AgGemmConfig cfg_;
  StaticMapping map_;
  comm::SymTensor a_shards_, a_full_, b_, c_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
