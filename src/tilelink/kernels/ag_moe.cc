#include "tilelink/kernels/ag_moe.h"

#include <algorithm>
#include <set>

#include "common/math_utils.h"
#include "tilelink/builder/comm_roles.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

AgMoe::AgMoe(rt::World& world, const AgMoeConfig& config,
             const compute::MoeRouting& routing)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config), routing_(routing),
      map_(config.m, config.comm_tile_m, world.size(),
           StaticMapping::ResolveChannelsPerRank(
               config.m, config.comm_tile_m, world.size(),
               config.channels_per_rank)) {
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  TL_CHECK_EQ(routing_.num_tokens, cfg_.m);
  TL_CHECK_EQ(routing_.num_experts, cfg_.num_experts);
  const int64_t m_per_rank = cfg_.m / ranks();
  token_shards_ = AllocSymmetric("shard", {m_per_rank, cfg_.hidden});
  tokens_ = AllocSymmetric("tokens", {cfg_.m, cfg_.hidden});
  weights_ = AllocSymmetric("w", {cfg_.num_experts, cfg_.hidden, cfg_.n});
  out_ = AllocSymmetric("out", {cfg_.m * cfg_.topk, cfg_.n});
  CreateChannels(map_.num_channels(), /*num_peer=*/1, /*num_host=*/1);

  // Dynamic mapping: for each expert tile (group block), the channels whose
  // completion guarantees every token the tile gathers has arrived. These
  // are the lookup tables of §4.1, filled here by the routing "runtime".
  group_blocks_ = compute::MakeGroupBlocks(routing_, cfg_.n, cfg_.gemm.bm,
                                           cfg_.gemm.bn);
  dyn_.Resize(static_cast<int64_t>(group_blocks_.size()));
  for (size_t i = 0; i < group_blocks_.size(); ++i) {
    const compute::GroupBlock& gb = group_blocks_[i];
    std::set<int> channels;
    int64_t row_lo = cfg_.m, row_hi = 0;
    for (int r = 0; r < gb.rows; ++r) {
      const int token =
          routing_.token_of_sorted(gb.sorted_row_start + r);
      const auto waits = map_.WaitsForRows(token, token + 1);
      for (const ChannelWait& w : waits) channels.insert(w.channel);
      row_lo = std::min<int64_t>(row_lo, token);
      row_hi = std::max<int64_t>(row_hi, token + 1);
    }
    std::vector<ChannelWait> waits;
    waits.reserve(channels.size());
    for (int c : channels) {
      waits.push_back(ChannelWait{c, map_.TilesInChannel(c)});
    }
    dyn_.SetTile(static_cast<int64_t>(i),
                 TileRange{std::min(row_lo, row_hi), row_hi}, gb.expert,
                 waits.empty() ? 0 : waits.front().channel);
    dyn_.SetWaits(static_cast<int64_t>(i), std::move(waits));
  }

  const int64_t tiles = static_cast<int64_t>(group_blocks_.size());
  const RowAllGatherParams ag_params{map_, token_shards_, tokens_, ranks(),
                                     m_per_rank};
  if (cfg_.hand_built) {
    RolePlan plan(cfg_.name, sms());
    if (cfg_.comm != CommResource::kDma) {
      plan.Comm("ag", cfg_.comm_sms, map_.num_tiles(),
                BuildRowAllGatherPull(ag_params));
    }
    plan.Compute("group_gemm", tiles, BuildGroupGemm());
    Finalize(plan.Build());
    return;
  }

  // Declarative form. The SM comm role is always the pull AllGather here
  // (one block per *gathered* tile), so the spec records kSmPull whatever
  // the config's SM resource flag says; the group GEMM's work is the
  // routing-dependent group-block count, an explicit override.
  overlap_spec_.kernel = cfg_.name;
  overlap_spec_.spaces = {
      {"token_shard", map_.tiles_per_rank(), cfg_.comm_tile_m,
       /*resident=*/true},
      {"tokens", map_.num_tiles(), cfg_.comm_tile_m, /*resident=*/false},
      {"w", 1, cfg_.hidden, /*resident=*/true},
      {"out", std::max<int64_t>(tiles, 1), cfg_.gemm.bm, /*resident=*/false},
  };
  OverlapRoleSpec ag;
  ag.name = "ag";
  ag.kind = OverlapRoleKind::kRowAllGather;
  ag.resource = cfg_.comm == CommResource::kDma ? CommResource::kDma
                                                : CommResource::kSmPull;
  ag.want_sms = cfg_.comm_sms;
  ag.reads = {{"token_shard"}};
  ag.writes = {{"tokens"}};
  OverlapRoleSpec gemm;
  gemm.name = "group_gemm";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads = {{"tokens"}, {"w"}};
  gemm.writes = {{"out"}};
  gemm.work_items = tiles;
  overlap_spec_.roles = {std::move(ag), std::move(gemm)};
  overlap_plan_ = OverlapPlanner(world.spec()).Plan(overlap_spec_);
  Finalize(BuildFromPlan(
      overlap_plan_, sms(), [&](const PlannedRole& role) {
        return role.name == "ag" ? BuildRowAllGatherPull(ag_params)
                                 : BuildGroupGemm();
      }));
}

// Group-GEMM role: expert tiles with dynamic-mapping waits (Figure 5 lines
// 6-15). The `table` argument of the paper is dyn_: the wait op reads the
// per-tile lookup entries filled by the routing.
BlockProgram AgMoe::BuildGroupGemm() {
  TileProgramBuilder b;
  auto fulls = tokens_;
  auto weights = weights_;
  auto outs = out_;
  auto blocks = std::make_shared<std::vector<compute::GroupBlock>>(
      group_blocks_);
  auto dyn = std::make_shared<DynamicMapping>(dyn_);
  auto routing = std::make_shared<compute::MoeRouting>(routing_);
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t k = cfg_.hidden;
  const int64_t k_steps = CeilDiv<int64_t>(k, tiling.bk);
  const int64_t num_tiles = static_cast<int64_t>(group_blocks_.size());
  auto block_of = [blocks](const Env& e) -> const compute::GroupBlock& {
    return (*blocks)[static_cast<size_t>(e.block_id + e.iv(0) * e.grid)];
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "moe.consumer_wait(table)", [dyn](const Env& e) {
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                spec.waits =
                    dyn->Waits(e.block_id + e.iv(0) * e.grid);
                return spec;
              }));
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Load(
                         "moe.load_tokens(table)", /*acquire=*/true,
                         [fulls, dyn](const Env& e) {
                           const TileRange rows = dyn->ShapeRange(
                               e.block_id + e.iv(0) * e.grid);
                           DataSpec d;
                           if (rows.len() > 0) {
                             const Tensor view =
                                 fulls[static_cast<size_t>(e.rank)].Slice(
                                     0, rows.lo, rows.len());
                             view.BufferRange(&d.read_lo, &d.read_hi);
                             d.read_buf = view.buffer();
                           }
                           return d;
                         }));
                     inner.Add(ops::Mma(
                         "moe.group_mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           // Fused-gather addressing overhead ~5%.
                           return static_cast<sim::TimeNs>(
                               cost.GemmTileStep(tiling.bm, tiling.bn,
                                                 tiling.bk) *
                               1.05);
                         }));
                   });
          body.Add(ops::Store(
              "moe.store",
              [outs, block_of, routing](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                DataSpec d;
                if (gb.rows > 0) {
                  // Conservative range over the scattered slot rows.
                  int64_t lo_row = outs[0].dim(0), hi_row = 0;
                  for (int r = 0; r < gb.rows; ++r) {
                    const int slot = routing->sorted_slots[static_cast<size_t>(
                        gb.sorted_row_start + r)];
                    lo_row = std::min<int64_t>(lo_row, slot);
                    hi_row = std::max<int64_t>(hi_row, slot + 1);
                  }
                  const Tensor view =
                      outs[static_cast<size_t>(e.rank)].Slice(
                          0, lo_row, std::max<int64_t>(1, hi_row - lo_row));
                  view.BufferRange(&d.write_lo, &d.write_hi);
                  d.write_buf = view.buffer();
                }
                return d;
              },
              [fulls, weights, outs, block_of, routing, k](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                const Tensor w =
                    weights[static_cast<size_t>(e.rank)].Select(0, gb.expert);
                Tensor out = outs[static_cast<size_t>(e.rank)];
                const Tensor& toks = fulls[static_cast<size_t>(e.rank)];
                for (int r = 0; r < gb.rows; ++r) {
                  const int slot = routing->sorted_slots[static_cast<size_t>(
                      gb.sorted_row_start + r)];
                  const int token = slot / routing->topk;
                  for (int c = 0; c < gb.n_cols; ++c) {
                    float acc = 0.0f;
                    for (int64_t x = 0; x < k; ++x) {
                      acc += toks.at({token, x}) * w.at({x, gb.n_start + c});
                    }
                    out.at({slot, gb.n_start + c}) = acc;
                  }
                }
              }));
        });
  return b.Build();
}

std::optional<sim::Coro> AgMoe::HostComm(rt::RankCtx& ctx) {
  if (cfg_.comm != CommResource::kDma) return std::nullopt;
  return DmaRowAllGather(ctx, channel(ctx.rank),
                         RowAllGatherParams{map_, token_shards_, tokens_,
                                            ranks(), cfg_.m / ranks()});
}

}  // namespace tilelink::tl
