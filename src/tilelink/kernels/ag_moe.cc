#include "tilelink/kernels/ag_moe.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/math_utils.h"
#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {
namespace {

int64_t TilesForBlock(int64_t total, const Env& env) {
  if (env.block_id >= total) return 0;
  return (total - env.block_id - 1) / env.grid + 1;
}

sim::Coro AwaitKernel(std::shared_ptr<rt::KernelState> state) {
  co_await state->Wait();
}

}  // namespace

AgMoe::AgMoe(rt::World& world, const AgMoeConfig& config,
             const compute::MoeRouting& routing)
    : world_(&world), cfg_(config), routing_(routing),
      map_(config.m, config.comm_tile_m, world.size(),
           config.channels_per_rank > 0
               ? config.channels_per_rank
               : static_cast<int>(CeilDiv<int64_t>(config.m, world.size()) /
                                  config.comm_tile_m)) {
  TL_CHECK_EQ(cfg_.m % world.size(), 0);
  TL_CHECK_EQ(routing_.num_tokens, cfg_.m);
  TL_CHECK_EQ(routing_.num_experts, cfg_.num_experts);
  const int R = world.size();
  const int64_t m_per_rank = cfg_.m / R;
  for (int r = 0; r < R; ++r) {
    rt::Device& dev = world.device(r);
    token_shards_.push_back(Tensor::Alloc(
        dev, cfg_.name + ".shard", {m_per_rank, cfg_.hidden}, DType::kBF16));
    tokens_.push_back(Tensor::Alloc(dev, cfg_.name + ".tokens",
                                    {cfg_.m, cfg_.hidden}, DType::kBF16));
    weights_.push_back(
        Tensor::Alloc(dev, cfg_.name + ".w",
                      {cfg_.num_experts, cfg_.hidden, cfg_.n}, DType::kBF16));
    out_.push_back(Tensor::Alloc(dev, cfg_.name + ".out",
                                 {cfg_.m * cfg_.topk, cfg_.n}, DType::kBF16));
  }
  bcs_ = BlockChannel::CreateSymmetric(world, cfg_.name, map_.num_channels(),
                                       /*num_peer=*/1, /*num_host=*/1);

  // Dynamic mapping: for each expert tile (group block), the channels whose
  // completion guarantees every token the tile gathers has arrived. These
  // are the lookup tables of §4.1, filled here by the routing "runtime".
  group_blocks_ = compute::MakeGroupBlocks(routing_, cfg_.n, cfg_.gemm.bm,
                                           cfg_.gemm.bn);
  dyn_.Resize(static_cast<int64_t>(group_blocks_.size()));
  for (size_t i = 0; i < group_blocks_.size(); ++i) {
    const compute::GroupBlock& gb = group_blocks_[i];
    std::set<int> channels;
    int64_t row_lo = cfg_.m, row_hi = 0;
    for (int r = 0; r < gb.rows; ++r) {
      const int token =
          routing_.token_of_sorted(gb.sorted_row_start + r);
      const auto waits = map_.WaitsForRows(token, token + 1);
      for (const ChannelWait& w : waits) channels.insert(w.channel);
      row_lo = std::min<int64_t>(row_lo, token);
      row_hi = std::max<int64_t>(row_hi, token + 1);
    }
    std::vector<ChannelWait> waits;
    waits.reserve(channels.size());
    for (int c : channels) {
      waits.push_back(ChannelWait{c, map_.TilesInChannel(c)});
    }
    dyn_.SetTile(static_cast<int64_t>(i),
                 TileRange{std::min(row_lo, row_hi), row_hi}, gb.expert,
                 waits.empty() ? 0 : waits.front().channel);
    dyn_.SetWaits(static_cast<int64_t>(i), std::move(waits));
  }

  FusedKernelSpec spec;
  spec.name = cfg_.name;
  const int sms = world.spec().sms_per_device;
  const int64_t tiles = static_cast<int64_t>(group_blocks_.size());
  if (cfg_.comm == CommResource::kDma) {
    spec.roles.push_back(Role{
        "group_gemm",
        static_cast<int>(std::min<int64_t>(std::max<int64_t>(tiles, 1), sms)),
        BuildGroupGemm()});
  } else {
    const int comm_blocks = cfg_.comm_sms;
    spec.roles.push_back(Role{"ag", comm_blocks, BuildCommPull()});
    spec.roles.push_back(
        Role{"group_gemm",
             static_cast<int>(std::min<int64_t>(std::max<int64_t>(tiles, 1),
                                                std::max(1, sms - comm_blocks))),
             BuildGroupGemm()});
  }
  compiled_ = Compiler(cfg_.compiler).Compile(std::move(spec));
}

BlockProgram AgMoe::BuildCommPull() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto shards = token_shards_;
  auto fulls = tokens_;
  const int64_t m_per_rank = cfg_.m / world_->size();
  const int64_t num_tiles = map.num_tiles();
  const int64_t tiles_per_rank = map.tiles_per_rank();
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          // Ring tile order (§3.1): spread concurrent pulls across source
          // ports (see ag_gemm.cc).
          auto tile_of = [num_tiles, tiles_per_rank](const Env& e) {
            return (static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid +
                    e.rank * tiles_per_rank) %
                   num_tiles;
          };
          body.Add(ops::TilePullData(
              "ag.pull",
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                DataSpec d;
                d.src_rank = src;
                d.dst_rank = e.rank;
                d.bytes = static_cast<uint64_t>(rows.len()) *
                          shards[0].dim(1) * DTypeSize(shards[0].dtype());
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                const Tensor dst_view =
                    fulls[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                             rows.len());
                src_view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = src_view.buffer();
                dst_view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = dst_view.buffer();
                return d;
              },
              [map, shards, fulls, m_per_rank, tile_of](const Env& e) {
                const int64_t t = tile_of(e);
                const TileRange rows = map.ShapeRange(t);
                const int src = map.Rank(t);
                const Tensor src_view = shards[static_cast<size_t>(src)].Slice(
                    0, rows.lo - src * m_per_rank, rows.len());
                Tensor dst_view = fulls[static_cast<size_t>(e.rank)].Slice(
                    0, rows.lo, rows.len());
                CopyTensor(src_view, dst_view);
              }));
          body.Add(ops::ProducerTileNotify(
              "ag.notify(p2p)", [map, tile_of](const Env& e) {
                NotifySpec spec;
                spec.entries.push_back(
                    NotifyEntry{SignalSpace::kProducerConsumer,
                                {e.rank},
                                map.Channel(tile_of(e)),
                                1});
                return spec;
              }));
        });
  return b.Build();
}

// Group-GEMM role: expert tiles with dynamic-mapping waits (Figure 5 lines
// 6-15). The `table` argument of the paper is dyn_: the wait op reads the
// per-tile lookup entries filled by the routing.
BlockProgram AgMoe::BuildGroupGemm() {
  TileProgramBuilder b;
  auto fulls = tokens_;
  auto weights = weights_;
  auto outs = out_;
  auto blocks = std::make_shared<std::vector<compute::GroupBlock>>(
      group_blocks_);
  auto dyn = std::make_shared<DynamicMapping>(dyn_);
  auto routing = std::make_shared<compute::MoeRouting>(routing_);
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t k = cfg_.hidden;
  const int64_t k_steps = CeilDiv<int64_t>(k, tiling.bk);
  const int64_t num_tiles = static_cast<int64_t>(group_blocks_.size());
  auto block_of = [blocks](const Env& e) -> const compute::GroupBlock& {
    return (*blocks)[static_cast<size_t>(e.block_id + e.iv(0) * e.grid)];
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "moe.consumer_wait(table)", [dyn](const Env& e) {
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                spec.waits =
                    dyn->Waits(e.block_id + e.iv(0) * e.grid);
                return spec;
              }));
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Load(
                         "moe.load_tokens(table)", /*acquire=*/true,
                         [fulls, dyn](const Env& e) {
                           const TileRange rows = dyn->ShapeRange(
                               e.block_id + e.iv(0) * e.grid);
                           DataSpec d;
                           if (rows.len() > 0) {
                             const Tensor view =
                                 fulls[static_cast<size_t>(e.rank)].Slice(
                                     0, rows.lo, rows.len());
                             view.BufferRange(&d.read_lo, &d.read_hi);
                             d.read_buf = view.buffer();
                           }
                           return d;
                         }));
                     inner.Add(ops::Mma(
                         "moe.group_mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           // Fused-gather addressing overhead ~5%.
                           return static_cast<sim::TimeNs>(
                               cost.GemmTileStep(tiling.bm, tiling.bn,
                                                 tiling.bk) *
                               1.05);
                         }));
                   });
          body.Add(ops::Store(
              "moe.store",
              [outs, block_of, routing](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                DataSpec d;
                if (gb.rows > 0) {
                  // Conservative range over the scattered slot rows.
                  int64_t lo_row = outs[0].dim(0), hi_row = 0;
                  for (int r = 0; r < gb.rows; ++r) {
                    const int slot = routing->sorted_slots[static_cast<size_t>(
                        gb.sorted_row_start + r)];
                    lo_row = std::min<int64_t>(lo_row, slot);
                    hi_row = std::max<int64_t>(hi_row, slot + 1);
                  }
                  const Tensor view =
                      outs[static_cast<size_t>(e.rank)].Slice(
                          0, lo_row, std::max<int64_t>(1, hi_row - lo_row));
                  view.BufferRange(&d.write_lo, &d.write_hi);
                  d.write_buf = view.buffer();
                }
                return d;
              },
              [fulls, weights, outs, block_of, routing, k](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                const Tensor w =
                    weights[static_cast<size_t>(e.rank)].Select(0, gb.expert);
                Tensor out = outs[static_cast<size_t>(e.rank)];
                const Tensor& toks = fulls[static_cast<size_t>(e.rank)];
                for (int r = 0; r < gb.rows; ++r) {
                  const int slot = routing->sorted_slots[static_cast<size_t>(
                      gb.sorted_row_start + r)];
                  const int token = slot / routing->topk;
                  for (int c = 0; c < gb.n_cols; ++c) {
                    float acc = 0.0f;
                    for (int64_t x = 0; x < k; ++x) {
                      acc += toks.at({token, x}) * w.at({x, gb.n_start + c});
                    }
                    out.at({slot, gb.n_start + c}) = acc;
                  }
                }
              }));
        });
  return b.Build();
}

sim::Coro AgMoe::DmaAllGather(rt::RankCtx& ctx) {
  const int R = world_->size();
  const int64_t m_per_rank = cfg_.m / R;
  const BlockChannel& bc = bcs_[static_cast<size_t>(ctx.rank)];
  std::vector<sim::Coro> copies;
  for (int s = 0; s < R; ++s) {
    const int src = (ctx.rank + s) % R;
    for (int c = 0; c < map_.channels_per_rank(); ++c) {
      const int channel = src * map_.channels_per_rank() + c;
      const TileRange rows = map_.ChannelRows(channel);
      if (rows.len() <= 0) continue;
      Tensor src_view = token_shards_[static_cast<size_t>(src)].Slice(
          0, rows.lo - src * m_per_rank, rows.len());
      Tensor dst_view = tokens_[static_cast<size_t>(ctx.rank)].Slice(
          0, rows.lo, rows.len());
      const uint64_t inc = map_.TilesInChannel(channel);
      auto copy_and_notify = [](rt::RankCtx& c2, Tensor s2, Tensor d2,
                                const BlockChannel& bc2, int ch,
                                uint64_t inc2) -> sim::Coro {
        co_await RankCopyData(c2, s2, d2);
        bc2.set(SignalSpace::kProducerConsumer, c2.rank)
            ->AddFrom(c2.rank, ch, inc2);
      };
      copies.push_back(
          copy_and_notify(ctx, src_view, dst_view, bc, channel, inc));
    }
  }
  co_await sim::WhenAll(std::move(copies));
}

sim::Coro AgMoe::Run(rt::RankCtx& ctx) {
  co_await world_->barrier().Arrive();
  auto state =
      compiled_.Launch(ctx, *ctx.stream, bcs_[static_cast<size_t>(ctx.rank)]);
  if (cfg_.comm == CommResource::kDma) {
    std::vector<sim::Coro> both;
    both.push_back(DmaAllGather(ctx));
    both.push_back(AwaitKernel(state));
    co_await sim::WhenAll(std::move(both));
  } else {
    co_await AwaitKernel(state);
  }
}

}  // namespace tilelink::tl
