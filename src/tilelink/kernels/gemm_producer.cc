#include "tilelink/kernels/gemm_producer.h"

#include <algorithm>
#include <utility>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

int64_t PartialGemmTiles(const PartialGemmParams& params) {
  return CeilDiv<int64_t>(params.m, params.tiling.bm) *
         CeilDiv<int64_t>(params.n, params.tiling.bn);
}

BlockProgram BuildPartialGemmProducer(const PartialGemmParams& p) {
  TileProgramBuilder b;
  const StaticMapping map = p.map;
  auto as = p.a;
  auto bs = p.b;
  auto outs = p.out;
  const compute::GemmTiling tiling = p.tiling;
  const int64_t tiles_m = CeilDiv<int64_t>(p.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(p.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(p.k, tiling.bk);
  const int64_t k = p.k;
  const int64_t m = p.m;
  const int64_t n = p.n;
  const int R = p.ranks;
  const int64_t tiles_m_per_rank = tiles_m / R;
  // Tile order (§3.1): by default produce the segment the ring consumes
  // first — the segment right after this rank — then continue in ring order.
  const TileOrder order = p.order;
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t tm = SwizzleTileM(t / tiles_n, tiles_m, tiles_m_per_rank,
                                    e.rank, R, order);
    return std::pair<int64_t, int64_t>(tm, t % tiles_n);
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Mma(
                         "gemm.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [as, bs, outs, tid_mn, tiling, k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               as[static_cast<size_t>(e.rank)],
                               bs[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               /*accumulate=*/e.iv(1) != 0);
                         }));
                   });
          body.Add(ops::Store(
              "gemm.store", [outs, tid_mn, tiling, m, n](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)]
                        .Slice(0, tm * tiling.bm,
                               std::min<int64_t>(tiling.bm,
                                                 m - tm * tiling.bm))
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 n - tn * tiling.bn));
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
          body.Add(ops::ProducerTileNotify(
              "gemm.notify(p2p)", [map, tid_mn](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                (void)tn;
                return NotifyOne(SignalSpace::kProducerConsumer, {e.rank},
                                 map.Channel(tm));
              }));
        });
  return b.Build();
}

}  // namespace tilelink::tl
