#include "tilelink/kernels/moe_rs.h"

#include <algorithm>
#include <set>

#include "common/math_utils.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/ring_rs.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

MoeRs::MoeRs(rt::World& world, const MoeRsConfig& config,
             const compute::MoeRouting& routing)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config), routing_(routing) {
  const int R = ranks();
  TL_CHECK_EQ(cfg_.m % R, 0);
  TL_CHECK_EQ((cfg_.m / R) % cfg_.rs_block_m, 0);
  TL_CHECK_EQ(cfg_.rs_block_m % cfg_.reduce_block_tokens, 0);
  const int64_t m_per_rank = cfg_.m / R;
  const int64_t slots = cfg_.m * cfg_.topk;
  acts_ = AllocSymmetric("acts", {slots, cfg_.k});
  weights_ = AllocSymmetric("w", {cfg_.num_experts, cfg_.k, cfg_.hidden});
  exp_out_ = AllocSymmetric("exp_out", {slots, cfg_.hidden});
  token_partial_ = AllocSymmetric("tok_partial", {cfg_.m, cfg_.hidden});
  staging_ = AllocSymmetric("staging", {cfg_.m, cfg_.hidden});
  out_ = AllocSymmetric("out", {m_per_rank, cfg_.hidden});

  group_blocks_ = compute::MakeGroupBlocks(routing_, cfg_.hidden, cfg_.gemm.bm,
                                           cfg_.gemm.bn);
  // pc1: channels over sorted-slot space; threshold = overlapping blocks.
  num_pc1_ = static_cast<int>(
      CeilDiv<int64_t>(slots, cfg_.sorted_channel_rows));
  pc1_thresholds_.assign(static_cast<size_t>(num_pc1_), 0);
  for (const compute::GroupBlock& gb : group_blocks_) {
    if (gb.rows == 0) continue;
    const int first =
        static_cast<int>(gb.sorted_row_start / cfg_.sorted_channel_rows);
    const int last = static_cast<int>(
        (gb.sorted_row_start + gb.rows - 1) / cfg_.sorted_channel_rows);
    for (int c = first; c <= last; ++c) {
      pc1_thresholds_[static_cast<size_t>(c)]++;
    }
  }
  // pc2: channels over token space, one per RS chunk.
  num_pc2_ = static_cast<int>(cfg_.m / cfg_.rs_block_m);

  // Dynamic wait tables for topk-reduce chunks: sorted positions of every
  // slot of the chunk's tokens -> pc1 channels.
  std::vector<int> inv_sorted(static_cast<size_t>(slots), 0);
  for (int64_t pos = 0; pos < slots; ++pos) {
    inv_sorted[static_cast<size_t>(
        routing_.sorted_slots[static_cast<size_t>(pos)])] =
        static_cast<int>(pos);
  }
  const int64_t reduce_chunks = cfg_.m / cfg_.reduce_block_tokens;
  reduce_waits_.Resize(reduce_chunks);
  for (int64_t ch = 0; ch < reduce_chunks; ++ch) {
    std::set<int> channels;
    const int64_t t0 = ch * cfg_.reduce_block_tokens;
    for (int64_t t = t0; t < t0 + cfg_.reduce_block_tokens; ++t) {
      for (int kk = 0; kk < cfg_.topk; ++kk) {
        const int pos = inv_sorted[static_cast<size_t>(t * cfg_.topk + kk)];
        channels.insert(pos / cfg_.sorted_channel_rows);
      }
    }
    std::vector<ChannelWait> waits;
    for (int c : channels) {
      waits.push_back(
          ChannelWait{c, pc1_thresholds_[static_cast<size_t>(c)]});
    }
    reduce_waits_.SetTile(ch, TileRange{t0, t0 + cfg_.reduce_block_tokens}, 0,
                          waits.empty() ? 0 : waits.front().channel);
    reduce_waits_.SetWaits(ch, std::move(waits));
  }

  const int64_t peer_channels = cfg_.m / cfg_.rs_block_m;
  CreateChannels(num_pc1_ + num_pc2_, static_cast<int>(peer_channels),
                 /*num_host=*/1);

  // RS role over token_partial, consumer waits on pc2 (offset channels).
  RingRsParams rs;
  rs.world_size = R;
  rs.m = cfg_.m;
  rs.n = cfg_.hidden;
  rs.block_m = cfg_.rs_block_m;
  rs.dtype = DType::kBF16;
  rs.partials = token_partial_;
  rs.staging = staging_;
  rs.outs = out_;
  rs.dma_push = cfg_.dma_push;
  const int pc1 = num_pc1_;
  const int64_t rs_rows = cfg_.rs_block_m;
  const int64_t reduce_per_chunk = rs_rows / cfg_.reduce_block_tokens;
  rs.wait_for_rows = [pc1, rs_rows, reduce_per_chunk](int64_t lo, int64_t hi) {
    WaitSpec spec;
    spec.space = SignalSpace::kProducerConsumer;
    const int first = static_cast<int>(lo / rs_rows);
    const int last = static_cast<int>((hi - 1) / rs_rows);
    for (int c = first; c <= last; ++c) {
      spec.waits.push_back(ChannelWait{
          pc1 + c, static_cast<uint64_t>(reduce_per_chunk)});
    }
    return spec;
  };

  const int64_t tiles = static_cast<int64_t>(group_blocks_.size());
  if (cfg_.hand_built) {
    RolePlan plan(cfg_.name, sms());
    plan.Comm("rs", cfg_.comm_sms, RingRsChunks(rs),
              BuildRingReduceScatter(rs))
        .Comm("topk_reduce", cfg_.reduce_sms, reduce_chunks,
              BuildTopkReduce())
        .Compute("group_gemm", tiles, BuildGroupGemm());
    Finalize(plan.Build());
    return;
  }

  // Declarative form of the three-role chain: group_gemm -> topk_reduce ->
  // rs. The two dynamically-sized roles carry explicit work-item counts
  // (routing decides the group blocks; the reduce chunking is a config
  // knob, not a ring geometry).
  overlap_spec_.kernel = cfg_.name;
  overlap_spec_.spaces = {
      {"acts", std::max<int64_t>(tiles, 1), cfg_.gemm.bm, /*resident=*/true},
      {"w", 1, cfg_.k, /*resident=*/true},
      {"exp_out", std::max<int64_t>(tiles, 1), cfg_.gemm.bm,
       /*resident=*/false},
      {"token_partial", reduce_chunks, cfg_.reduce_block_tokens,
       /*resident=*/false},
      {"out", m_per_rank / cfg_.rs_block_m, cfg_.rs_block_m,
       /*resident=*/false},
  };
  OverlapRoleSpec ring;
  ring.name = "rs";
  ring.kind = OverlapRoleKind::kRingReduceScatter;
  ring.want_sms = cfg_.comm_sms;
  ring.reads = {{"token_partial"}};
  ring.writes = {{"out"}};
  ring.block_rows = m_per_rank;
  ring.chunk_rows = cfg_.rs_block_m;
  ring.cols = cfg_.hidden;
  OverlapRoleSpec reduce;
  reduce.name = "topk_reduce";
  reduce.kind = OverlapRoleKind::kComm;
  reduce.want_sms = cfg_.reduce_sms;
  reduce.work_items = reduce_chunks;
  reduce.reads = {{"exp_out"}};
  reduce.writes = {{"token_partial"}};
  OverlapRoleSpec gemm;
  gemm.name = "group_gemm";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads = {{"acts"}, {"w"}};
  gemm.writes = {{"exp_out"}};
  gemm.work_items = tiles;
  overlap_spec_.roles = {std::move(ring), std::move(reduce), std::move(gemm)};
  overlap_plan_ = OverlapPlanner(world.spec()).Plan(overlap_spec_);
  rs.col_splits = overlap_plan_.At("rs").col_splits;
  Finalize(BuildFromPlan(
      overlap_plan_, sms(), [&](const PlannedRole& role) {
        if (role.name == "rs") return BuildRingReduceScatter(rs);
        if (role.name == "topk_reduce") return BuildTopkReduce();
        return BuildGroupGemm();
      }));
}

// Producer role: expert GEMM tiles write slot-order partial outputs and
// notify every pc1 channel their sorted rows overlap.
BlockProgram MoeRs::BuildGroupGemm() {
  TileProgramBuilder b;
  auto acts = acts_;
  auto weights = weights_;
  auto outs = exp_out_;
  auto blocks =
      std::make_shared<std::vector<compute::GroupBlock>>(group_blocks_);
  auto routing = std::make_shared<compute::MoeRouting>(routing_);
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t k = cfg_.k;
  const int64_t k_steps = CeilDiv<int64_t>(k, tiling.bk);
  const int64_t num_tiles = static_cast<int64_t>(group_blocks_.size());
  const int sorted_rows = cfg_.sorted_channel_rows;
  auto block_of = [blocks](const Env& e) -> const compute::GroupBlock& {
    return (*blocks)[static_cast<size_t>(e.block_id + e.iv(0) * e.grid)];
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Mma(
                         "moe2.group_mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return static_cast<sim::TimeNs>(
                               cost.GemmTileStep(tiling.bm, tiling.bn,
                                                 tiling.bk) *
                               1.05);
                         }));
                   });
          body.Add(ops::Store(
              "moe2.store",
              [outs, block_of, routing](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                DataSpec d;
                if (gb.rows > 0) {
                  int64_t lo_row = outs[0].dim(0), hi_row = 0;
                  for (int r = 0; r < gb.rows; ++r) {
                    const int slot = routing->sorted_slots[static_cast<size_t>(
                        gb.sorted_row_start + r)];
                    lo_row = std::min<int64_t>(lo_row, slot);
                    hi_row = std::max<int64_t>(hi_row, slot + 1);
                  }
                  const Tensor view = outs[static_cast<size_t>(e.rank)].Slice(
                      0, lo_row, std::max<int64_t>(1, hi_row - lo_row));
                  view.BufferRange(&d.write_lo, &d.write_hi);
                  d.write_buf = view.buffer();
                }
                return d;
              },
              [acts, weights, outs, block_of, routing, k](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                const Tensor w =
                    weights[static_cast<size_t>(e.rank)].Select(0, gb.expert);
                const Tensor& in = acts[static_cast<size_t>(e.rank)];
                Tensor out = outs[static_cast<size_t>(e.rank)];
                for (int r = 0; r < gb.rows; ++r) {
                  const int slot = routing->sorted_slots[static_cast<size_t>(
                      gb.sorted_row_start + r)];
                  for (int c = 0; c < gb.n_cols; ++c) {
                    float acc = 0.0f;
                    for (int64_t x = 0; x < k; ++x) {
                      acc += in.at({slot, x}) * w.at({x, gb.n_start + c});
                    }
                    out.at({slot, gb.n_start + c}) = acc;
                  }
                }
              }));
          body.Add(ops::ProducerTileNotify(
              "moe2.notify(pc1)", [block_of, sorted_rows](const Env& e) {
                const compute::GroupBlock& gb = block_of(e);
                NotifySpec spec;
                if (gb.rows > 0) {
                  const int first =
                      static_cast<int>(gb.sorted_row_start / sorted_rows);
                  const int last = static_cast<int>(
                      (gb.sorted_row_start + gb.rows - 1) / sorted_rows);
                  for (int c = first; c <= last; ++c) {
                    spec.entries.push_back(NotifyEntry{
                        SignalSpace::kProducerConsumer, {e.rank}, c, 1});
                  }
                }
                return spec;
              }));
        });
  return b.Build();
}

// Middle role: per-token combine of topk expert rows (dynamic waits on pc1),
// producing the RS role's input and notifying pc2.
BlockProgram MoeRs::BuildTopkReduce() {
  TileProgramBuilder b;
  auto exp_outs = exp_out_;
  auto partials = token_partial_;
  auto dyn = std::make_shared<DynamicMapping>(reduce_waits_);
  auto routing = std::make_shared<compute::MoeRouting>(routing_);
  const int64_t bt = cfg_.reduce_block_tokens;
  const int64_t chunks = cfg_.m / bt;
  const int64_t hidden = cfg_.hidden;
  const int topk = cfg_.topk;
  const int pc1 = num_pc1_;
  const int64_t rs_rows = cfg_.rs_block_m;
  auto chunk_of = [](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  b.For("t", [chunks](const Env& e) { return TilesForBlock(chunks, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "reduce.consumer_wait(table)", [dyn, chunk_of](const Env& e) {
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                spec.waits = dyn->Waits(chunk_of(e));
                return spec;
              }));
          body.Add(ops::Load(
              "reduce.load_expert_rows", /*acquire=*/true,
              [exp_outs, chunk_of, bt, topk](const Env& e) {
                DataSpec d;
                const Tensor view = exp_outs[static_cast<size_t>(e.rank)].Slice(
                    0, chunk_of(e) * bt * topk, bt * topk);
                view.BufferRange(&d.read_lo, &d.read_hi);
                d.read_buf = view.buffer();
                return d;
              }));
          body.Add(ops::Elementwise(
              "reduce.topk_combine",
              [bt, hidden, topk](const Env& e, const sim::CostModel& cost) {
                const uint64_t bytes = static_cast<uint64_t>(bt) *
                                       (topk + 1) * hidden * 2;
                return cost.MemoryBound(bytes, e.grid);
              },
              [exp_outs, partials, routing, chunk_of, bt, hidden,
               topk](const Env& e) {
                const Tensor& in = exp_outs[static_cast<size_t>(e.rank)];
                Tensor out = partials[static_cast<size_t>(e.rank)];
                const int64_t t0 = chunk_of(e) * bt;
                for (int64_t t = t0; t < t0 + bt; ++t) {
                  for (int64_t c = 0; c < hidden; ++c) {
                    float acc = 0.0f;
                    for (int kk = 0; kk < topk; ++kk) {
                      const int64_t slot = t * topk + kk;
                      acc += routing->topk_weights[static_cast<size_t>(slot)] *
                             in.at({slot, c});
                    }
                    out.at({t, c}) = acc;
                  }
                }
              }));
          body.Add(ops::Store(
              "reduce.store", [partials, chunk_of, bt](const Env& e) {
                const Tensor view = partials[static_cast<size_t>(e.rank)].Slice(
                    0, chunk_of(e) * bt, bt);
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
          body.Add(ops::ProducerTileNotify(
              "reduce.notify(pc2)", [chunk_of, bt, rs_rows, pc1](const Env& e) {
                return NotifyOne(
                    SignalSpace::kProducerConsumer, {e.rank},
                    pc1 + static_cast<int>(chunk_of(e) * bt / rs_rows));
              }));
        });
  return b.Build();
}

}  // namespace tilelink::tl
