#include "tilelink/kernels/ag_gemm_hier.h"

#include <algorithm>

#include "common/math_utils.h"
#include "tensor/tensor_ops.h"
#include "tilelink/builder/comm_roles.h"
#include "tilelink/builder/link_roles.h"
#include "tilelink/kernels/ag_consumer.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

AgGemmHier::AgGemmHier(rt::World& world, const AgGemmHierConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      map_(config.m, config.comm_tile_m, world.size(),
           StaticMapping::ResolveChannelsPerRank(
               config.m, config.comm_tile_m, world.size(),
               config.channels_per_rank)) {
  const sim::MachineSpec& spec = world.spec();
  nodes_ = spec.num_nodes();
  per_node_ = spec.devices_per_node;
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  TL_CHECK_EQ(m_per_rank % cfg_.comm_tile_m, 0);
  a_shards_ = AllocSymmetric("a_shard", {m_per_rank, cfg_.k});
  a_full_ = AllocSymmetric("a_full", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  c_ = AllocSymmetric("c", {cfg_.m, cfg_.n});
  const int64_t gemm_tiles = CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) *
                             CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);

  if (nodes_ == 1) {
    // 1 x N: the hierarchical spec degenerates to the flat ag_gemm spec —
    // same mapping, same roles, same programs, makespan-identical.
    CreateChannels(map_.num_channels(), /*num_peer=*/1, /*num_host=*/1);
    overlap_spec_ = BuildFlatSpec(gemm_tiles);
    overlap_plan_ = OverlapPlanner(spec).Plan(overlap_spec_);
    Finalize(BuildFromPlan(overlap_plan_, sms(),
                           [this](const PlannedRole& role) {
                             return role.name == "comm" ? BuildFlatComm()
                                                        : BuildConsumer(1);
                           }));
    return;
  }

  TL_CHECK_MSG(cfg_.comm != CommResource::kSmPull,
               "ag_gemm_hier: pull mode cannot cross the NIC");
  const int64_t cpb = m_per_rank / cfg_.comm_tile_m;
  const int64_t rail_rows =
      static_cast<int64_t>(cfg_.nic_chunk_blocks) * cfg_.comm_tile_m;
  const int64_t cpb_rail = RailChunksPerBlock(m_per_rank, rail_rows);
  overlap_spec_ = BuildHierSpec(gemm_tiles, cpb, cpb_rail);
  overlap_plan_ = OverlapPlanner(spec).Plan(overlap_spec_);
  col_splits_ = overlap_plan_.At("ring").col_splits;
  rail_blocks_ = overlap_plan_.At("rail").want_sms;
  TL_CHECK_EQ(cfg_.k % col_splits_, 0);
  // Producer channels: one per (source rank, chunk, strip), incremented
  // exactly once — publish for own chunks, rail landing for same-local-
  // index blocks, ring forward for the rest.
  CreateChannels(ranks() * static_cast<int>(cpb * col_splits_),
                 /*num_peer=*/1, /*num_host=*/1);
  Finalize(BuildFromPlan(
      overlap_plan_, sms(), [&](const PlannedRole& role) {
        if (role.name == "ring") return BuildHierRing(col_splits_, cpb);
        if (role.name == "rail") {
          return BuildHierRail(col_splits_, cpb, cpb_rail, rail_rows);
        }
        return BuildConsumer(col_splits_);
      }));
}

// The flat declarative form — kept field-for-field identical to
// AgGemm::BuildOverlapSpec so the 1 x N degenerate is the same kernel.
OverlapSpec AgGemmHier::BuildFlatSpec(int64_t gemm_tiles) const {
  OverlapSpec spec;
  spec.kernel = cfg_.name;
  spec.spaces = {
      {"a_shard", map_.tiles_per_rank(), cfg_.comm_tile_m, /*resident=*/true},
      {"a_full", map_.num_tiles(), cfg_.comm_tile_m, /*resident=*/false},
      {"b", 1, cfg_.k, /*resident=*/true},
      {"c", gemm_tiles, cfg_.gemm.bm, /*resident=*/false},
  };
  OverlapRoleSpec comm;
  comm.name = "comm";
  comm.kind = OverlapRoleKind::kRowAllGather;
  comm.resource = cfg_.comm;
  comm.want_sms = cfg_.comm_sms;
  comm.reads = {{"a_shard"}};
  comm.writes = {{"a_full"}};
  OverlapRoleSpec gemm;
  gemm.name = "compute";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads = {{"a_full"}, {"b"}};
  gemm.writes = {{"c"}};
  spec.roles = {std::move(comm), std::move(gemm)};
  return spec;
}

// The hierarchical declarative form: a_shard feeds both the NVLink ring
// (publish + node-local forwarding, reading arrived blocks back out of
// a_full — a legal self-loop) and the NIC rail; the consumer reads the
// gathered activation.
OverlapSpec AgGemmHier::BuildHierSpec(int64_t gemm_tiles, int64_t cpb,
                                      int64_t cpb_rail) const {
  OverlapSpec spec;
  spec.kernel = cfg_.name;
  spec.spaces = {
      {"a_shard", cpb, cfg_.comm_tile_m, /*resident=*/true},
      {"a_full", static_cast<int64_t>(ranks()) * cpb, cfg_.comm_tile_m,
       /*resident=*/false},
      {"b", 1, cfg_.k, /*resident=*/true},
      {"c", gemm_tiles, cfg_.gemm.bm, /*resident=*/false},
  };
  OverlapRoleSpec ring;
  ring.name = "ring";
  ring.kind = OverlapRoleKind::kHierAgRing;
  ring.want_sms = cfg_.comm_sms;
  ring.reads = {{"a_shard"}, {"a_full"}};
  ring.writes = {{"a_full"}};
  ring.group_size = per_node_;
  ring.seg_blocks = nodes_;
  ring.block_rows = cfg_.m / ranks();
  ring.chunk_rows = cfg_.comm_tile_m;
  ring.cols = cfg_.k;  // the column split runs over the K width here
  ring.allow_col_split = true;
  OverlapRoleSpec rail;
  rail.name = "rail";
  rail.kind = OverlapRoleKind::kNicRailPush;
  rail.reads = {{"a_shard"}};
  rail.writes = {{"a_full"}};
  rail.block_rows = cfg_.m / ranks();
  rail.chunk_rows = cfg_.comm_tile_m;
  rail.nic_chunk_blocks = cfg_.nic_chunk_blocks;
  rail.staging_depth = cfg_.staging_depth;
  rail.peers = nodes_ - 1;
  OverlapRoleSpec gemm;
  gemm.name = "compute";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads = {{"a_full"}, {"b"}};
  gemm.writes = {{"c"}};
  gemm.work_items = gemm_tiles;
  spec.roles = {std::move(ring), std::move(rail), std::move(gemm)};
  (void)cpb_rail;
  return spec;
}

BlockProgram AgGemmHier::BuildFlatComm() {
  const RowAllGatherParams ag{map_, a_shards_, a_full_, ranks(),
                              cfg_.m / ranks()};
  return cfg_.comm == CommResource::kSmPull ? BuildRowAllGatherPull(ag)
                                            : BuildRowAllGatherPush(ag);
}

// NVLink ring role: for each (chunk, strip) work item, publish the rank's
// own strip into its gathered buffer, then run per_node - 1 forwarding
// stages x nodes node groups: wait for the stage's block strip to arrive
// locally, acquire-load it, and push it to the right neighbor within the
// node. Stage s forwards local index (l - s) mod per_node, so stage 0 moves
// the freshly published / rail-landed blocks and every later stage moves
// what the previous stage delivered — an AllGather ring per node group.
BlockProgram AgGemmHier::BuildHierRing(int S, int64_t cpb) {
  const int64_t m_per_rank = cfg_.m / ranks();
  const int64_t tile = cfg_.comm_tile_m;
  const int64_t k_strip = cfg_.k / S;
  const int nodes = nodes_;
  const int per_node = per_node_;
  auto shards = a_shards_;
  auto fulls = a_full_;
  const uint64_t strip_bytes = static_cast<uint64_t>(tile) * k_strip *
                               DTypeSize(shards[0].dtype());
  const int64_t items = cpb * S;

  auto item_of = [](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  auto chunk_of = [S, item_of](const Env& e) { return item_of(e) / S; };
  auto strip_of = [S, item_of](const Env& e) { return item_of(e) % S; };
  auto channel_of = [S](int64_t t, int64_t j) {
    return static_cast<int>(t * S + j);
  };
  // Strip view of `tile` rows at `row_lo`; S == 1 keeps the full width.
  auto view = [S, tile, k_strip](Tensor t, int64_t row_lo, int64_t j) {
    const Tensor rows = t.Slice(0, row_lo, tile);
    return S == 1 ? rows : rows.Slice(1, j * k_strip, k_strip);
  };
  // Global block forwarded at (stage, node group) — local index (l - s)
  // mod per_node of node group pn.
  auto block_of = [per_node](const Env& e) {
    const int64_t l = e.rank % per_node;
    const int64_t seg = ((l - e.iv(1)) % per_node + per_node) % per_node;
    return e.iv(2) * per_node + seg;
  };
  auto right_of = [per_node](const Env& e) {
    return static_cast<int>((e.rank / per_node) * per_node +
                            (e.rank % per_node + 1) % per_node);
  };

  TileProgramBuilder b;
  b.For("item", [items](const Env& e) { return TilesForBlock(items, e); },
        [&](TileProgramBuilder& cb) {
          // --- local publish -------------------------------------------
          cb.Add(ops::TilePushData(
              "hier_ag.publish",
              [=](const Env& e) {
                const int64_t c = chunk_of(e), j = strip_of(e);
                DataSpec d;
                d.src_rank = e.rank;
                d.dst_rank = e.rank;
                d.bytes = strip_bytes;
                const Tensor src =
                    view(shards[static_cast<size_t>(e.rank)], c * tile, j);
                const Tensor dst =
                    view(fulls[static_cast<size_t>(e.rank)],
                         e.rank * m_per_rank + c * tile, j);
                SetReadView(d, src);
                SetWriteView(d, dst);
                return d;
              },
              [=](const Env& e) {
                return NotifyOne(
                    SignalSpace::kProducerConsumer, {e.rank},
                    channel_of(e.rank * cpb + chunk_of(e), strip_of(e)));
              },
              /*async_dma=*/false,
              [=](const Env& e) {
                const int64_t c = chunk_of(e), j = strip_of(e);
                const Tensor src =
                    view(shards[static_cast<size_t>(e.rank)], c * tile, j);
                Tensor dst = view(fulls[static_cast<size_t>(e.rank)],
                                  e.rank * m_per_rank + c * tile, j);
                CopyTensor(src, dst);
              }));
          // --- forwarding stages ---------------------------------------
          cb.For("stage",
                 [per_node](const Env&) {
                   return static_cast<int64_t>(per_node - 1);
                 },
                 [&](TileProgramBuilder& sb) {
                   sb.For("pn",
                          [nodes](const Env&) {
                            return static_cast<int64_t>(nodes);
                          },
                          [&](TileProgramBuilder& pb) {
                            pb.Add(ops::ConsumerTileWait(
                                "hier_ag.fwd_wait", [=](const Env& e) {
                                  WaitSpec w;
                                  w.space = SignalSpace::kProducerConsumer;
                                  w.waits.push_back(ChannelWait{
                                      channel_of(block_of(e) * cpb +
                                                     chunk_of(e),
                                                 strip_of(e)),
                                      1});
                                  return w;
                                }));
                            pb.Add(ops::Load(
                                "hier_ag.fwd_load", /*acquire=*/true,
                                [=](const Env& e) {
                                  const Tensor v = view(
                                      fulls[static_cast<size_t>(e.rank)],
                                      block_of(e) * m_per_rank +
                                          chunk_of(e) * tile,
                                      strip_of(e));
                                  DataSpec d;
                                  SetReadView(d, v);
                                  return d;
                                }));
                            pb.Add(ops::TilePushData(
                                "hier_ag.fwd_push",
                                [=](const Env& e) {
                                  const int dst = right_of(e);
                                  const int64_t row =
                                      block_of(e) * m_per_rank +
                                      chunk_of(e) * tile;
                                  DataSpec d;
                                  d.src_rank = e.rank;
                                  d.dst_rank = dst;
                                  d.bytes = strip_bytes;
                                  const Tensor src = view(
                                      fulls[static_cast<size_t>(e.rank)],
                                      row, strip_of(e));
                                  const Tensor dstv = view(
                                      fulls[static_cast<size_t>(dst)], row,
                                      strip_of(e));
                                  SetReadView(d, src);
                                  SetWriteView(d, dstv);
                                  return d;
                                },
                                [=](const Env& e) {
                                  return NotifyOne(
                                      SignalSpace::kProducerConsumer,
                                      {right_of(e)},
                                      channel_of(block_of(e) * cpb +
                                                     chunk_of(e),
                                                 strip_of(e)));
                                },
                                /*async_dma=*/false,
                                [=](const Env& e) {
                                  const int dst = right_of(e);
                                  const int64_t row =
                                      block_of(e) * m_per_rank +
                                      chunk_of(e) * tile;
                                  const Tensor src = view(
                                      fulls[static_cast<size_t>(e.rank)],
                                      row, strip_of(e));
                                  Tensor dstv = view(
                                      fulls[static_cast<size_t>(dst)], row,
                                      strip_of(e));
                                  CopyTensor(src, dstv);
                                }));
                          });
                 });
        });
  return b.Build();
}

// NIC rail role: push the rank's own shard straight to the rail peer with
// the same local index on each other node — no staging hop, the landing
// writes the peer's gathered buffer and raises the same producer channels
// the ring forward and the consumer gate on (every strip of every covered
// chunk at once; the message moves the full K width).
BlockProgram AgGemmHier::BuildHierRail(int S, int64_t cpb, int64_t cpb_rail,
                                       int64_t rail_rows) {
  const int64_t m_per_rank = cfg_.m / ranks();
  const int64_t tile = cfg_.comm_tile_m;
  const int ncb = cfg_.nic_chunk_blocks;
  const int per_node = per_node_;
  auto shards = a_shards_;
  auto fulls = a_full_;
  const uint64_t row_bytes =
      static_cast<uint64_t>(cfg_.k) * DTypeSize(shards[0].dtype());
  const int64_t items = static_cast<int64_t>(nodes_ - 1) * cpb_rail;

  auto item_of = [](const Env& e) {
    return static_cast<int64_t>(e.block_id) + e.iv(0) * e.grid;
  };
  auto peer_of = [cpb_rail, per_node](const Env& e, int64_t item) {
    const int my_node = e.rank / per_node;
    const int peer_node =
        RailSourceNode(static_cast<int>(item / cpb_rail), my_node);
    return peer_node * per_node + e.rank % per_node;
  };
  auto rows_of = [cpb_rail, rail_rows, m_per_rank](int64_t item) {
    const int64_t lo = (item % cpb_rail) * rail_rows;
    return TileRange{lo, std::min<int64_t>(m_per_rank, lo + rail_rows)};
  };

  TileProgramBuilder b;
  b.For("item", [items](const Env& e) { return TilesForBlock(items, e); },
        [&](TileProgramBuilder& cb) {
          cb.Add(ops::TilePushData(
              "hier_ag.rail_push",
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const int dst = peer_of(e, item);
                const TileRange rows = rows_of(item);
                DataSpec d;
                d.src_rank = e.rank;
                d.dst_rank = dst;
                d.bytes = static_cast<uint64_t>(rows.len()) * row_bytes;
                const Tensor src =
                    shards[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                              rows.len());
                const Tensor dstv =
                    fulls[static_cast<size_t>(dst)].Slice(
                        0, e.rank * m_per_rank + rows.lo, rows.len());
                SetReadView(d, src);
                SetWriteView(d, dstv);
                return d;
              },
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const int dst = peer_of(e, item);
                const int64_t cr = item % cpb_rail;
                NotifySpec spec;
                const int64_t rc_hi =
                    std::min<int64_t>(cpb, (cr + 1) * ncb);
                for (int64_t rc = cr * ncb; rc < rc_hi; ++rc) {
                  for (int64_t j = 0; j < S; ++j) {
                    spec.entries.push_back(NotifyEntry{
                        SignalSpace::kProducerConsumer,
                        {dst},
                        static_cast<int>((e.rank * cpb + rc) * S + j),
                        1});
                  }
                }
                return spec;
              },
              /*async_dma=*/false,
              [=](const Env& e) {
                const int64_t item = item_of(e);
                const int dst = peer_of(e, item);
                const TileRange rows = rows_of(item);
                const Tensor src =
                    shards[static_cast<size_t>(e.rank)].Slice(0, rows.lo,
                                                              rows.len());
                Tensor dstv = fulls[static_cast<size_t>(dst)].Slice(
                    0, e.rank * m_per_rank + rows.lo, rows.len());
                CopyTensor(src, dstv);
              }));
          (void)tile;
        });
  return b.Build();
}

// Compute role: the shared AG+GEMM consumer. Single-node the producer
// channels are the flat static mapping's; multi-node each gathered row
// tile t owns channels t*S .. t*S+S-1, one increment each.
BlockProgram AgGemmHier::BuildConsumer(int S) {
  AgConsumerParams p;
  p.m = cfg_.m;
  p.k = cfg_.k;
  p.n = cfg_.n;
  p.tiling = cfg_.gemm;
  p.a_full = a_full_;
  p.b = b_;
  p.c = c_;
  p.ranks = ranks();
  p.order = cfg_.order;
  if (nodes_ == 1) {
    const StaticMapping map = map_;
    p.waits_for_rows = [map](int64_t lo, int64_t hi) {
      return map.WaitsForRows(lo, hi);
    };
  } else {
    const int64_t tile = cfg_.comm_tile_m;
    p.waits_for_rows = [S, tile](int64_t lo, int64_t hi) {
      std::vector<ChannelWait> waits;
      for (int64_t t = lo / tile; t < CeilDiv<int64_t>(hi, tile); ++t) {
        for (int j = 0; j < S; ++j) {
          waits.push_back(
              ChannelWait{static_cast<int>(t * S + j), 1});
        }
      }
      return waits;
    };
  }
  return BuildAgGemmConsumer(p);
}

std::optional<sim::Coro> AgGemmHier::HostComm(rt::RankCtx& ctx) {
  if (nodes_ > 1 || cfg_.comm != CommResource::kDma) return std::nullopt;
  return DmaRowAllGather(
      ctx, channel(ctx.rank),
      RowAllGatherParams{map_, a_shards_, a_full_, ranks(), cfg_.m / ranks()});
}

}  // namespace tilelink::tl
