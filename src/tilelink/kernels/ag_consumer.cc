#include "tilelink/kernels/ag_consumer.h"

#include <algorithm>
#include <utility>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

int64_t AgConsumerTiles(const AgConsumerParams& p) {
  return CeilDiv<int64_t>(p.m, p.tiling.bm) * CeilDiv<int64_t>(p.n, p.tiling.bn);
}

BlockProgram BuildAgGemmConsumer(const AgConsumerParams& p) {
  TileProgramBuilder b;
  auto fulls = p.a_full;
  auto weights = p.b;
  auto outs = p.c;
  auto waits_for_rows = p.waits_for_rows;
  const compute::GemmTiling tiling = p.tiling;
  const int64_t tiles_m = CeilDiv<int64_t>(p.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(p.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(p.k, tiling.bk);
  const int64_t m = p.m;
  const int64_t n = p.n;
  const int64_t k = p.k;
  const int R = p.ranks;
  const int64_t tiles_m_per_rank = tiles_m / R;
  const TileOrder order = p.order;
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t tm = SwizzleTileM(t / tiles_n, tiles_m, tiles_m_per_rank,
                                    e.rank, R, order);
    return std::pair<int64_t, int64_t>(tm, t % tiles_n);
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.Add(ops::ConsumerTileWait(
              "gemm.consumer_wait",
              [waits_for_rows, tid_mn, tiling, m](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                (void)tn;
                WaitSpec spec;
                spec.space = SignalSpace::kProducerConsumer;
                const int64_t lo = tm * tiling.bm;
                const int64_t hi = std::min<int64_t>(lo + tiling.bm, m);
                spec.waits = waits_for_rows(lo, hi);
                return spec;
              }));
          body.For("kk",
                   [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Load(
                         "gemm.load_a", /*acquire=*/true,
                         [fulls, tid_mn, tiling, m](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           (void)tn;
                           const int64_t lo = tm * tiling.bm;
                           const int64_t len =
                               std::min<int64_t>(tiling.bm, m - lo);
                           const Tensor view =
                               fulls[static_cast<size_t>(e.rank)].Slice(
                                   0, lo, len);
                           DataSpec d;
                           view.BufferRange(&d.read_lo, &d.read_hi);
                           d.read_buf = view.buffer();
                           return d;
                         }));
                     inner.Add(ops::Mma(
                         "gemm.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [fulls, weights, outs, tid_mn, tiling,
                          k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               fulls[static_cast<size_t>(e.rank)],
                               weights[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               /*accumulate=*/e.iv(1) != 0);
                         }));
                   });
          body.Add(ops::Store(
              "gemm.store", [outs, tid_mn, tiling, m, n](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const int64_t lo = tm * tiling.bm;
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)]
                        .Slice(0, lo, std::min<int64_t>(tiling.bm, m - lo))
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 n - tn * tiling.bn));
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
        });
  return b.Build();
}

}  // namespace tilelink::tl
