// Shared configuration vocabulary for the overlapped kernels: the resource-
// binding subspace of the decoupled design space (paper §3.1, Figure 2c).
#pragma once

namespace tilelink::tl {

// Where the communication part of a fused kernel runs.
enum class CommResource {
  kSmPull,  // processing cores pull remote tiles (pull mode, Figure 3b)
  kSmPush,  // processing cores push local tiles (push mode, Figure 3b)
  kDma,     // copy engines driven by host primitives (no SM cost, but
            // host-interference latency)
};

// Which fabric (or engine) a communication role occupies. SM roles moving
// tiles between peers ride NVLink within a node; multi-node roles ride the
// NIC; DMA roles occupy copy engines. Budgeting them separately is what
// lets a fused multi-node kernel overlap an NVLink stage with a NIC stage
// without over-subscribing either.
enum class FabricBinding {
  kNvlink,      // intra-node peer fabric (SM pull/push channels)
  kNic,         // inter-node fabric (RDMA queue pairs)
  kCopyEngine,  // per-device DMA engines driven by host primitives
};

}  // namespace tilelink::tl
