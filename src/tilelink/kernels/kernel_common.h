// Shared configuration vocabulary for the overlapped kernels: the resource-
// binding subspace of the decoupled design space (paper §3.1, Figure 2c).
#pragma once

namespace tilelink::tl {

// Where the communication part of a fused kernel runs.
enum class CommResource {
  kSmPull,  // processing cores pull remote tiles (pull mode, Figure 3b)
  kSmPush,  // processing cores push local tiles (push mode, Figure 3b)
  kDma,     // copy engines driven by host primitives (no SM cost, but
            // host-interference latency)
};

}  // namespace tilelink::tl
