// Shared partial-GEMM producer role (paper Figure 4 lines 2-9): compute a
// partial [m, n] tile, store it, then producer_tile_notify the row-chunk
// barrier covering its rows. gemm_rs and gemm_hier_rs run the identical
// producer — only the communication roles consuming its tiles differ — so
// the program builder lives here instead of being copied per kernel.
#pragma once

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct PartialGemmParams {
  int64_t m = 0;  // global rows
  int64_t k = 0;  // local reduction dim (already sharded)
  int64_t n = 0;  // output columns
  compute::GemmTiling tiling{128, 256, 64};
  // Producer channels over the output rows (placeholder default; kernels
  // always overwrite it with their real mapping).
  StaticMapping map{1, 1, 1, 1};
  comm::SymTensor a;       // [m, k] per rank
  comm::SymTensor b;       // [k, n] per rank
  comm::SymTensor out;     // [m, n] partials per rank
  int ranks = 0;
  // m-tile visit order (§3.1): produce the segment the ring consumes first.
  TileOrder order = TileOrder::kNextRankFirst;
};

// Total (m-tile, n-tile) pairs — the compute role's work-item count.
int64_t PartialGemmTiles(const PartialGemmParams& params);

BlockProgram BuildPartialGemmProducer(const PartialGemmParams& params);

}  // namespace tilelink::tl
