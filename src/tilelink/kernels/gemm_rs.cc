#include "tilelink/kernels/gemm_rs.h"

#include <algorithm>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/kernels/ring_rs.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

GemmRs::GemmRs(rt::World& world, const GemmRsConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      // One producer-consumer channel per RS chunk of rows; GEMM m-tiles
      // must align with chunk granularity for the counting protocol.
      map_(config.m, config.gemm.bm, world.size(),
           static_cast<int>((config.m / world.size()) / config.rs_block_m)) {
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  TL_CHECK_EQ((cfg_.m / ranks()) % cfg_.rs_block_m, 0);
  TL_CHECK_EQ(cfg_.rs_block_m % cfg_.gemm.bm, 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  a_ = AllocSymmetric("a", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  gemm_out_ = AllocSymmetric("gemm_out", {cfg_.m, cfg_.n});
  staging_ = AllocSymmetric("staging", {cfg_.m, cfg_.n});
  out_ = AllocSymmetric("out", {m_per_rank, cfg_.n});
  const int64_t peer_channels = cfg_.m / cfg_.rs_block_m;
  CreateChannels(map_.num_channels(), static_cast<int>(peer_channels),
                 /*num_host=*/1);

  // Ring RS role.
  RingRsParams rs;
  rs.world_size = ranks();
  rs.m = cfg_.m;
  rs.n = cfg_.n;
  rs.block_m = cfg_.rs_block_m;
  rs.dtype = DType::kBF16;
  rs.partials = gemm_out_;
  rs.staging = staging_;
  rs.outs = out_;
  rs.dma_push = cfg_.dma_push;
  const StaticMapping map = map_;
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  rs.wait_for_rows = [map, tiles_n](int64_t lo, int64_t hi) {
    WaitSpec spec;
    spec.space = SignalSpace::kProducerConsumer;
    spec.waits = map.WaitsForRows(lo, hi);
    // Each m-chunk receives one notify per (m-tile, n-tile) pair.
    for (ChannelWait& w : spec.waits) {
      w.threshold *= static_cast<uint64_t>(tiles_n);
    }
    return spec;
  };

  const int64_t gemm_tiles =
      CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm) * tiles_n;
  RolePlan plan(cfg_.name, sms());
  plan.Comm("rs", cfg_.comm_sms, RingRsChunks(rs), BuildRingReduceScatter(rs))
      .Compute("gemm", gemm_tiles, BuildGemm());
  Finalize(plan.Build());
}

// Producer GEMM role (Figure 4 lines 2-9): compute a partial tile, store it,
// then producer_tile_notify the chunk barrier covering its rows.
BlockProgram GemmRs::BuildGemm() {
  TileProgramBuilder b;
  const StaticMapping map = map_;
  auto as = a_;
  auto bs = b_;
  auto outs = gemm_out_;
  const compute::GemmTiling tiling = cfg_.gemm;
  const int64_t tiles_m = CeilDiv<int64_t>(cfg_.m, tiling.bm);
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, tiling.bn);
  const int64_t num_tiles = tiles_m * tiles_n;
  const int64_t k_steps = CeilDiv<int64_t>(cfg_.k, tiling.bk);
  const int64_t k = cfg_.k;
  const int64_t m = cfg_.m;
  const int64_t n = cfg_.n;
  const int R = ranks();
  const int64_t tiles_m_per_rank = tiles_m / R;
  // Tile order (§3.1): by default produce the segment the ring consumes
  // first — the segment right after this rank — then continue in ring order.
  const TileOrder order = cfg_.order;
  auto tid_mn = [=](const Env& e) {
    const int64_t t = e.block_id + e.iv(0) * e.grid;
    const int64_t tm = SwizzleTileM(t / tiles_n, tiles_m, tiles_m_per_rank,
                                    e.rank, R, order);
    return std::pair<int64_t, int64_t>(tm, t % tiles_n);
  };
  b.For("t", [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& body) {
          body.For("kk", [k_steps](const Env&) { return k_steps; },
                   [&](TileProgramBuilder& inner) {
                     inner.Add(ops::Mma(
                         "gemm.mma",
                         [tiling](const Env&, const sim::CostModel& cost) {
                           return cost.GemmTileStep(tiling.bm, tiling.bn,
                                                    tiling.bk);
                         },
                         [as, bs, outs, tid_mn, tiling, k](const Env& e) {
                           const auto [tm, tn] = tid_mn(e);
                           const int64_t k0 = e.iv(1) * tiling.bk;
                           Tensor out = outs[static_cast<size_t>(e.rank)];
                           compute::GemmTile(
                               as[static_cast<size_t>(e.rank)],
                               bs[static_cast<size_t>(e.rank)], out,
                               tm * tiling.bm, tiling.bm, tn * tiling.bn,
                               tiling.bn, k0,
                               std::min<int64_t>(tiling.bk, k - k0),
                               /*accumulate=*/e.iv(1) != 0);
                         }));
                   });
          body.Add(ops::Store(
              "gemm.store", [outs, tid_mn, tiling, m, n](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                const Tensor view =
                    outs[static_cast<size_t>(e.rank)]
                        .Slice(0, tm * tiling.bm,
                               std::min<int64_t>(tiling.bm,
                                                 m - tm * tiling.bm))
                        .Slice(1, tn * tiling.bn,
                               std::min<int64_t>(tiling.bn,
                                                 n - tn * tiling.bn));
                DataSpec d;
                view.BufferRange(&d.write_lo, &d.write_hi);
                d.write_buf = view.buffer();
                return d;
              }));
          body.Add(ops::ProducerTileNotify(
              "gemm.notify(p2p)", [map, tid_mn](const Env& e) {
                const auto [tm, tn] = tid_mn(e);
                (void)tn;
                return NotifyOne(SignalSpace::kProducerConsumer, {e.rank},
                                 map.Channel(tm));
              }));
        });
  return b.Build();
}

}  // namespace tilelink::tl
