#include "tilelink/kernels/gemm_rs.h"

#include <algorithm>

#include "common/math_utils.h"
#include "tilelink/kernels/gemm_producer.h"
#include "tilelink/kernels/ring_rs.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

GemmRs::GemmRs(rt::World& world, const GemmRsConfig& config)
    : FusedKernelBase(world, config.name, config.compiler),
      cfg_(config),
      // One producer-consumer channel per RS chunk of rows; GEMM m-tiles
      // must align with chunk granularity for the counting protocol.
      map_(config.m, config.gemm.bm, world.size(),
           static_cast<int>((config.m / world.size()) / config.rs_block_m)) {
  TL_CHECK_EQ(cfg_.m % ranks(), 0);
  TL_CHECK_EQ((cfg_.m / ranks()) % cfg_.rs_block_m, 0);
  TL_CHECK_EQ(cfg_.rs_block_m % cfg_.gemm.bm, 0);
  const int64_t m_per_rank = cfg_.m / ranks();
  a_ = AllocSymmetric("a", {cfg_.m, cfg_.k});
  b_ = AllocSymmetric("b", {cfg_.k, cfg_.n});
  gemm_out_ = AllocSymmetric("gemm_out", {cfg_.m, cfg_.n});
  staging_ = AllocSymmetric("staging", {cfg_.m, cfg_.n});
  out_ = AllocSymmetric("out", {m_per_rank, cfg_.n});
  const int64_t peer_channels = cfg_.m / cfg_.rs_block_m;
  CreateChannels(map_.num_channels(), static_cast<int>(peer_channels),
                 /*num_host=*/1);

  // Ring RS role.
  RingRsParams rs;
  rs.world_size = ranks();
  rs.m = cfg_.m;
  rs.n = cfg_.n;
  rs.block_m = cfg_.rs_block_m;
  rs.dtype = DType::kBF16;
  rs.partials = gemm_out_;
  rs.staging = staging_;
  rs.outs = out_;
  rs.dma_push = cfg_.dma_push;
  const StaticMapping map = map_;
  const int64_t tiles_n = CeilDiv<int64_t>(cfg_.n, cfg_.gemm.bn);
  rs.wait_for_rows = [map, tiles_n](int64_t lo, int64_t hi) {
    WaitSpec spec;
    spec.space = SignalSpace::kProducerConsumer;
    spec.waits = map.WaitsForRows(lo, hi);
    // Each m-chunk receives one notify per (m-tile, n-tile) pair.
    for (ChannelWait& w : spec.waits) {
      w.threshold *= static_cast<uint64_t>(tiles_n);
    }
    return spec;
  };

  // Producer GEMM role (Figure 4 lines 2-9): the shared partial-GEMM
  // producer — compute a partial tile, store it, then producer_tile_notify
  // the chunk barrier covering its rows.
  PartialGemmParams gemm;
  gemm.m = cfg_.m;
  gemm.k = cfg_.k;
  gemm.n = cfg_.n;
  gemm.tiling = cfg_.gemm;
  gemm.map = map_;
  gemm.a = a_;
  gemm.b = b_;
  gemm.out = gemm_out_;
  gemm.ranks = ranks();
  gemm.order = cfg_.order;
  if (cfg_.hand_built) {
    RolePlan plan(cfg_.name, sms());
    plan.Comm("rs", cfg_.comm_sms, RingRsChunks(rs),
              BuildRingReduceScatter(rs))
        .Compute("gemm", PartialGemmTiles(gemm),
                 BuildPartialGemmProducer(gemm));
    Finalize(plan.Build());
    return;
  }

  // Declarative form: the ring consumes the partial-GEMM tiles and writes
  // the reduced shard; the planner derives its chunk schedule from the
  // block geometry.
  overlap_spec_.kernel = cfg_.name;
  overlap_spec_.spaces = {
      {"a", CeilDiv<int64_t>(cfg_.m, cfg_.gemm.bm), cfg_.gemm.bm,
       /*resident=*/true},
      {"b", 1, cfg_.k, /*resident=*/true},
      {"gemm_out", PartialGemmTiles(gemm), cfg_.gemm.bm, /*resident=*/false},
      {"out", m_per_rank / cfg_.rs_block_m, cfg_.rs_block_m,
       /*resident=*/false},
  };
  OverlapRoleSpec ring;
  ring.name = "rs";
  ring.kind = OverlapRoleKind::kRingReduceScatter;
  ring.want_sms = cfg_.comm_sms;
  ring.reads = {{"gemm_out"}};
  ring.writes = {{"out"}};
  ring.block_rows = m_per_rank;
  ring.chunk_rows = cfg_.rs_block_m;
  ring.cols = cfg_.n;
  OverlapRoleSpec producer;
  producer.name = "gemm";
  producer.kind = OverlapRoleKind::kCompute;
  producer.reads = {{"a"}, {"b"}};
  producer.writes = {{"gemm_out"}};
  overlap_spec_.roles = {std::move(ring), std::move(producer)};
  overlap_plan_ = OverlapPlanner(world.spec()).Plan(overlap_spec_);
  rs.col_splits = overlap_plan_.At("rs").col_splits;
  Finalize(BuildFromPlan(overlap_plan_, sms(),
                         [&](const PlannedRole& role) {
                           return role.name == "rs"
                                      ? BuildRingReduceScatter(rs)
                                      : BuildPartialGemmProducer(gemm);
                         }));
}

}  // namespace tilelink::tl
