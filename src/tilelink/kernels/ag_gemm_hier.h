// Fused hierarchical AllGather + GEMM — the first kernel *generated* by the
// overlap planner rather than transcribed from a hand schedule (there is no
// hand-built oracle; the six ported kernels pin the planner's arithmetic).
//
// Multi-node (nodes x per_node) topology, three generated roles:
//   ring  NVLink role (OverlapRoleKind::kHierAgRing): publishes the rank's
//         own activation chunks into its gathered buffer, then forwards
//         arrived blocks around the node-local ring — per_node - 1 stages,
//         each forwarding every node group's block with the stage's local
//         index, so NIC arrivals enter the intra-node ring as soon as the
//         rail lands them
//   rail  NIC role (OverlapRoleKind::kNicRailPush): pushes the rank's own
//         shard straight to its rail peer (same local index, other node)
//         gathered buffer — no staging hop; landing notifies the same
//         producer channels the ring and the consumer wait on
//   gemm  compute role: the shared AG+GEMM consumer (ag_consumer.h), each
//         tile gated only on the producer channels covering its rows
//
// Producer channels count (rank, chunk, strip): R * cpb * S channels, one
// increment each — own chunks from the publish, same-local-index blocks
// from the rail, everything else from the ring forward. The planner's
// column-split decision S (the small-m fix, applied over the K width here)
// keeps at least kMinRingChunksPerBlock chunks per block when m_per_rank
// is shallow.
//
// Degenerate topologies: at 1 x N the spec *is* the generated ag_gemm
// (makespan-identical, pinned by test); at N x 1 the ring role degenerates
// to publish-only and the rail feeds the consumer directly; 1 x 1 is the
// single-rank ag_gemm.
#pragma once

#include <string>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/kernels/kernel_common.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct AgGemmHierConfig {
  int64_t m = 0;  // global rows (world_size * m_per_rank), gathered
  int64_t k = 0;  // reduction dim
  int64_t n = 0;  // output columns
  compute::GemmTiling gemm{128, 256, 64};
  int comm_tile_m = 128;      // AllGather chunk rows (must divide m_per_rank)
  int channels_per_rank = 0;  // single-node fallback mapping only
  // Single-node fallback resource (kDma / kSmPull / kSmPush, as ag_gemm).
  // Multi-node the ring + rail are always SM-push; kSmPull is rejected.
  CommResource comm = CommResource::kSmPush;
  int nic_chunk_blocks = 2;  // AllGather chunks per NIC rail message
  int staging_depth = 2;     // NIC messages in flight per rail peer
  int comm_sms = 20;         // ring role SMs
  TileOrder order = TileOrder::kOwnerFirst;
  CompilerOptions compiler;
  std::string name = "ag_gemm_hier";
};

class AgGemmHier : public FusedKernelBase {
 public:
  AgGemmHier(rt::World& world, const AgGemmHierConfig& config);

  comm::SymTensor& a_shards() { return a_shards_; }  // [M/R, K] per rank
  comm::SymTensor& a_full() { return a_full_; }      // [M, K] gathered
  comm::SymTensor& b() { return b_; }                // [K, N] per rank
  comm::SymTensor& c() { return c_; }                // [M, N] per rank

  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }
  // Rail blocks actually granted by the NIC channel budget (0 single-node).
  int rail_blocks() const { return rail_blocks_; }
  // Planner column split over the K width (1 single-node).
  int col_splits() const { return col_splits_; }

 protected:
  std::optional<sim::Coro> HostComm(rt::RankCtx& ctx) override;

 private:
  OverlapSpec BuildFlatSpec(int64_t gemm_tiles) const;  // 1 x N: == ag_gemm
  OverlapSpec BuildHierSpec(int64_t gemm_tiles, int64_t cpb,
                            int64_t cpb_rail) const;
  BlockProgram BuildFlatComm();
  BlockProgram BuildHierRing(int S, int64_t cpb);
  BlockProgram BuildHierRail(int S, int64_t cpb, int64_t cpb_rail,
                             int64_t rail_rows);
  BlockProgram BuildConsumer(int S);

  AgGemmHierConfig cfg_;
  StaticMapping map_;  // single-node fallback producer channels
  int nodes_ = 1, per_node_ = 1;
  int rail_blocks_ = 0;
  int col_splits_ = 1;
  comm::SymTensor a_shards_, a_full_, b_, c_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
