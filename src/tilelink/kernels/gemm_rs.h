// GEMM + ring ReduceScatter overlapped kernel (paper Figure 4; tensor-
// parallel MLP part 2). The GEMM role produces partial sums of [M, N] and
// notifies per-row-chunk producer-consumer barriers; the ring-RS role (20
// SMs by default) consumes chunks as they complete, accumulates partials
// around the ring with peer_tile_notify/wait, and scatters the reduced rows
// to their owner ranks. The push may be SM-driven or DMA (hybrid mapping —
// the variant the paper reports as TileLink's best result for GEMM+RS).
#pragma once

#include <string>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct GemmRsConfig {
  int64_t m = 0;  // global rows (R * m_per_rank)
  int64_t k = 0;  // local reduction dim (already sharded)
  int64_t n = 0;  // output columns
  compute::GemmTiling gemm{128, 256, 64};
  int rs_block_m = 128;  // RS chunk rows — decoupled from gemm.bm
  int comm_sms = 20;
  bool dma_push = false;  // hybrid: reduction on SMs, scatter on DMA
  // GEMM m-tile visit order: produce the segment the ring consumes first.
  TileOrder order = TileOrder::kNextRankFirst;
  bool hand_built = false;  // regression oracle: bypass the OverlapPlanner
  CompilerOptions compiler;
  std::string name = "gemm_rs";
};

class GemmRs : public FusedKernelBase {
 public:
  GemmRs(rt::World& world, const GemmRsConfig& config);

  comm::SymTensor& a() { return a_; }                // [M, K] per rank
  comm::SymTensor& b() { return b_; }                // [K, N] per rank
  comm::SymTensor& gemm_out() { return gemm_out_; }  // [M, N] partials
  comm::SymTensor& out() { return out_; }            // [M/R, N] reduced

  const StaticMapping& mapping() const { return map_; }
  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 private:
  GemmRsConfig cfg_;
  StaticMapping map_;  // producer channels over gemm_out rows
  comm::SymTensor a_, b_, gemm_out_, staging_, out_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
