// AllGather + Gather + GroupGEMM overlapped kernel (paper Figure 5; MoE
// layer part 1). Token shards are gathered while expert group-GEMM tiles
// start as soon as *their* tokens arrive. Because dynamic routing decides
// which tokens each expert tile consumes, the consumer waits come from a
// DynamicMapping — lookup tables filled at runtime from the routing (§4.1).
#pragma once

#include <string>
#include <vector>

#include "comm/collectives.h"
#include "compute/gemm.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/kernels/kernel_common.h"
#include "tilelink/mapping.h"
#include "tilelink/program.h"

namespace tilelink::tl {

struct AgMoeConfig {
  int64_t m = 0;        // global tokens (gathered)
  int64_t hidden = 0;   // token feature dim (K of the group GEMM)
  int64_t n = 0;        // local expert output columns (I / R)
  int num_experts = 0;
  int topk = 0;
  compute::GemmTiling gemm{128, 128, 64};
  int comm_tile_m = 128;
  int channels_per_rank = 0;  // 0 -> one channel per comm tile
  CommResource comm = CommResource::kDma;
  int comm_sms = 20;
  bool hand_built = false;  // regression oracle: bypass the OverlapPlanner
  CompilerOptions compiler;
  std::string name = "ag_moe";
};

class AgMoe : public FusedKernelBase {
 public:
  // `routing` is the dynamic routing over the *gathered* token space [0, m).
  AgMoe(rt::World& world, const AgMoeConfig& config,
        const compute::MoeRouting& routing);

  comm::SymTensor& token_shards() { return token_shards_; }  // [M/R, H]
  comm::SymTensor& tokens() { return tokens_; }              // [M, H]
  comm::SymTensor& weights() { return weights_; }            // [E, H, N]
  comm::SymTensor& out() { return out_; }  // [M*topk, N] slot order

  const DynamicMapping& dynamic_mapping() const { return dyn_; }
  // Generated path only (empty when hand_built).
  const OverlapSpec& overlap_spec() const { return overlap_spec_; }
  const OverlapPlan& overlap_plan() const { return overlap_plan_; }

 protected:
  std::optional<sim::Coro> HostComm(rt::RankCtx& ctx) override;

 private:
  BlockProgram BuildGroupGemm();

  AgMoeConfig cfg_;
  compute::MoeRouting routing_;
  StaticMapping map_;   // producer (AllGather) channels over token rows
  DynamicMapping dyn_;  // consumer (expert tile) wait tables
  std::vector<compute::GroupBlock> group_blocks_;
  comm::SymTensor token_shards_, tokens_, weights_, out_;
  OverlapSpec overlap_spec_;
  OverlapPlan overlap_plan_;
};

}  // namespace tilelink::tl
