#include "tilelink/kernels/ag_attention.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "compute/tile_math.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {

AgAttention::AgAttention(rt::World& world, const AgAttentionConfig& config)
    : FusedKernelBase(world, config.name, config.compiler), cfg_(config) {
  const int R = ranks();
  TL_CHECK_EQ(cfg_.seq % R, 0);
  const int64_t s_per = cfg_.seq / R;
  q_ = AllocSymmetric("q", {cfg_.batch_heads, s_per, cfg_.head_dim});
  k_shards_ = AllocSymmetric("k_shard", {cfg_.batch_heads, s_per,
                                         cfg_.head_dim});
  v_shards_ = AllocSymmetric("v_shard", {cfg_.batch_heads, s_per,
                                         cfg_.head_dim});
  k_ = AllocSymmetric("k", {cfg_.batch_heads, cfg_.seq, cfg_.head_dim});
  v_ = AllocSymmetric("v", {cfg_.batch_heads, cfg_.seq, cfg_.head_dim});
  out_ = AllocSymmetric("out", {cfg_.batch_heads, s_per, cfg_.head_dim});
  // Host channels: one per KV segment (source rank).
  CreateChannels(/*num_pc=*/1, /*num_peer=*/1, /*num_host=*/R);

  const int64_t q_tiles = CeilDiv<int64_t>(s_per, cfg_.block_q);
  if (cfg_.hand_built) {
    RolePlan plan(cfg_.name, sms());
    plan.Compute("flash_attn", cfg_.batch_heads * q_tiles, BuildFlash());
    Finalize(plan.Build());
    return;
  }

  // Declarative form: the host-DMA role gathers the R KV segments; flash
  // consumer tiles read them as they land (host signal space).
  overlap_spec_.kernel = cfg_.name;
  overlap_spec_.spaces = {
      {"q", cfg_.batch_heads * q_tiles, cfg_.block_q, /*resident=*/true},
      {"kv_shard", 1, s_per, /*resident=*/true},
      {"kv", static_cast<int64_t>(R), s_per, /*resident=*/false},
      {"out", cfg_.batch_heads * q_tiles, cfg_.block_q, /*resident=*/false},
  };
  OverlapRoleSpec dma;
  dma.name = "ag_kv";
  dma.kind = OverlapRoleKind::kHostDma;
  dma.resource = CommResource::kDma;
  dma.reads = {{"kv_shard"}};
  dma.writes = {{"kv"}};
  OverlapRoleSpec flash;
  flash.name = "flash_attn";
  flash.kind = OverlapRoleKind::kCompute;
  flash.reads = {{"q"}, {"kv"}};
  flash.writes = {{"out"}};
  flash.work_items = cfg_.batch_heads * q_tiles;
  overlap_spec_.roles = {std::move(dma), std::move(flash)};
  overlap_plan_ = OverlapPlanner(world.spec()).Plan(overlap_spec_);
  Finalize(BuildFromPlan(overlap_plan_, sms(),
                         [this](const PlannedRole&) { return BuildFlash(); }));
}

BlockProgram AgAttention::BuildFlash() {
  TileProgramBuilder b;
  auto qs = q_;
  auto ks = k_;
  auto vs = v_;
  auto outs = out_;
  const int R = ranks();
  const int64_t s_per = cfg_.seq / R;
  const int64_t q_tiles = CeilDiv<int64_t>(s_per, cfg_.block_q);
  const int64_t num_tiles = cfg_.batch_heads * q_tiles;
  const int64_t kv_steps = CeilDiv<int64_t>(s_per, cfg_.block_kv);
  const int64_t bq = cfg_.block_q;
  const int64_t bkv = cfg_.block_kv;
  const int64_t d = cfg_.head_dim;
  const double tf = cfg_.throughput_factor;
  const bool skip_comm = cfg_.skip_comm;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  // Segment-major schedule: each persistent block owns several q-tiles and,
  // for every KV segment in ring order (own segment first — its local copy
  // lands immediately), advances ALL its q-tiles by that segment. Compute on
  // segment s thus overlaps the DMA of segment s+1; tile-major order would
  // stall the whole block on the last segment.
  auto head_q0 = [q_tiles, bq](const Env& e, int64_t local_t) {
    const int64_t t = e.block_id + local_t * e.grid;
    return std::pair<int64_t, int64_t>(t / q_tiles, (t % q_tiles) * bq);
  };
  auto seg_rank = [R](const Env& e) {
    return static_cast<int>((e.rank + e.iv(0)) % R);
  };
  using StateVec = std::vector<compute::FlashState>;
  b.Scratch([bq, d, num_tiles](const Env& e) {
    auto states = std::make_shared<StateVec>(
        static_cast<size_t>(TilesForBlock(num_tiles, e)));
    for (compute::FlashState& s : *states) s.Reset(bq, d);
    return states;
  });
  b.For("seg", [R](const Env&) { return static_cast<int64_t>(R); },
        [&](TileProgramBuilder& sb) {
          sb.Add(ops::ConsumerTileWait(
              "flash.consumer_wait(host)",
              [seg_rank, skip_comm](const Env& e) {
                WaitSpec spec;
                spec.space = SignalSpace::kHost;
                if (!skip_comm) {
                  spec.waits.push_back(ChannelWait{seg_rank(e), 1});
                }
                return spec;
              }));
          sb.For("t",
                 [num_tiles](const Env& e) {
                   return TilesForBlock(num_tiles, e);
                 },
                 [&](TileProgramBuilder& tb) {
                   tb.For("kv", [kv_steps](const Env&) { return kv_steps; },
                          [&](TileProgramBuilder& kb) {
                            kb.Add(ops::Load(
                                "flash.load_kv", /*acquire=*/true,
                                [ks, seg_rank, s_per, bkv](const Env& e) {
                                  DataSpec dsp;
                                  const int64_t kv0 =
                                      seg_rank(e) * s_per + e.iv(2) * bkv;
                                  const Tensor view =
                                      ks[static_cast<size_t>(e.rank)].Slice(
                                          1, kv0, bkv);
                                  view.BufferRange(&dsp.read_lo,
                                                   &dsp.read_hi);
                                  dsp.read_buf = view.buffer();
                                  return dsp;
                                }));
                            kb.Add(ops::Mma(
                                "flash.step",
                                [bq, bkv, d, tf](const Env&,
                                                 const sim::CostModel& c) {
                                  return static_cast<sim::TimeNs>(
                                      c.FlashAttnTileStep(
                                          static_cast<int>(bq),
                                          static_cast<int>(bkv),
                                          static_cast<int>(d)) /
                                      tf);
                                },
                                [qs, ks, vs, head_q0, seg_rank, s_per, bq,
                                 bkv, scale](const Env& e) {
                                  const auto [head, q0] =
                                      head_q0(e, e.iv(1));
                                  const Tensor qh =
                                      qs[static_cast<size_t>(e.rank)].Select(
                                          0, head);
                                  const Tensor kh =
                                      ks[static_cast<size_t>(e.rank)].Select(
                                          0, head);
                                  const Tensor vh =
                                      vs[static_cast<size_t>(e.rank)].Select(
                                          0, head);
                                  auto& state =
                                      (*static_cast<StateVec*>(e.scratch))
                                          [static_cast<size_t>(e.iv(1))];
                                  const int64_t kv0 =
                                      seg_rank(e) * s_per + e.iv(2) * bkv;
                                  compute::FlashAttnStep(qh, kh, vh, state,
                                                         q0, bq, kv0, bkv,
                                                         scale);
                                }));
                          });
                 });
        });
  // Epilogue: finalize and store every owned q-tile.
  b.For("t",
        [num_tiles](const Env& e) { return TilesForBlock(num_tiles, e); },
        [&](TileProgramBuilder& tb) {
          tb.Add(ops::Store(
              "flash.store",
              [outs, head_q0, bq](const Env& e) {
                const auto [head, q0] = head_q0(e, e.iv(0));
                const Tensor view = outs[static_cast<size_t>(e.rank)]
                                        .Select(0, head)
                                        .Slice(0, q0, bq);
                DataSpec dsp;
                view.BufferRange(&dsp.write_lo, &dsp.write_hi);
                dsp.write_buf = view.buffer();
                return dsp;
              },
              [outs, head_q0, bq](const Env& e) {
                const auto [head, q0] = head_q0(e, e.iv(0));
                Tensor oh = outs[static_cast<size_t>(e.rank)].Select(0, head);
                compute::FlashFinalize(
                    (*static_cast<StateVec*>(e.scratch))
                        [static_cast<size_t>(e.iv(0))],
                    oh, q0, bq);
              }));
        });
  return b.Build();
}

// Figure 6 lines 14-20: host primitives drive the copy engines on the comm
// stream *in ring order, one segment at a time* — sequential issue is what
// makes segments land progressively so consumers start early (concurrent
// issue would fair-share the ingress port and complete all segments at
// once, serializing compute behind the whole gather).
sim::Coro AgAttention::DmaAllGatherKv(rt::RankCtx& ctx) {
  const int R = ranks();
  const int64_t s_per = cfg_.seq / R;
  const BlockChannel& bc = channel(ctx.rank);
  for (int s = 0; s < R; ++s) {
    const int src = (ctx.rank + s) % R;
    Tensor k_dst = k_[static_cast<size_t>(ctx.rank)].Slice(1, src * s_per,
                                                           s_per);
    Tensor v_dst = v_[static_cast<size_t>(ctx.rank)].Slice(1, src * s_per,
                                                           s_per);
    co_await RankCopyData(ctx, k_shards_[static_cast<size_t>(src)], k_dst);
    co_await RankCopyData(ctx, v_shards_[static_cast<size_t>(src)], v_dst);
    RankNotify(ctx, bc, ctx.rank, src, 1);
  }
}

std::optional<sim::Coro> AgAttention::HostComm(rt::RankCtx& ctx) {
  if (cfg_.skip_comm) return std::nullopt;  // data assumed resident
  return DmaAllGatherKv(ctx);
}

}  // namespace tilelink::tl
