// Tile-centric primitives (paper Table 3).
//
// Device-side primitives are Op constructors consumed by TileProgramBuilder,
// so kernels in tilelink/kernels read like the paper's Figures 4-6:
//   producer_tile_notify  -> ops::ProducerTileNotify(...)
//   consumer_tile_wait    -> ops::ConsumerTileWait(...)
//   peer_tile_notify/wait -> ops::PeerTileNotify / ops::PeerTileWait
//   tile_push_data        -> ops::TilePushData (sync SM push or async DMA)
//   tile_pull_data        -> ops::TilePullData
// Host-side primitives are coroutines / calls used by host programs:
//   rank_copy_data        -> RankCopyData (copy engine)
//   rank_notify/rank_wait -> RankNotify / RankWait
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "comm/p2p.h"
#include "runtime/world.h"
#include "tensor/tensor.h"
#include "tilelink/block_channel.h"
#include "tilelink/program.h"

namespace tilelink::tl {

enum class NotifyMode { kP2P, kBroadcast };

// Per-row run geometry of a 2-D view: true (with pitch = row stride, run =
// row width) when the view's rows are narrower than their pitch — i.e. a
// column strip of a row-major tensor, whose flat buffer range also covers
// the neighbouring strips' elements.
inline bool RowRunGeometry(const Tensor& view, int64_t* pitch, int64_t* run) {
  if (view.ndim() != 2 || view.dim(0) <= 1) return false;
  if (view.strides()[1] != 1 || view.strides()[0] <= view.dim(1)) return false;
  *pitch = view.strides()[0];
  *run = view.dim(1);
  return true;
}

// Populate a DataSpec's read / write side from a tensor view. Column-strip
// views additionally record the per-row runs so the consistency checker
// audits the exact elements touched — concurrent transfers of disjoint
// strips would flag false races under the conservative flat range.
inline void SetReadView(DataSpec& d, const Tensor& view) {
  view.BufferRange(&d.read_lo, &d.read_hi);
  d.read_buf = view.buffer();
  if (!RowRunGeometry(view, &d.read_pitch, &d.read_run)) {
    d.read_pitch = d.read_run = 0;
  }
}
inline void SetWriteView(DataSpec& d, const Tensor& view) {
  view.BufferRange(&d.write_lo, &d.write_hi);
  d.write_buf = view.buffer();
  if (!RowRunGeometry(view, &d.write_pitch, &d.write_run)) {
    d.write_pitch = d.write_run = 0;
  }
}

namespace ops {

// Blocks until all producer tiles this consumer depends on are done.
Op ConsumerTileWait(std::string label,
                    std::function<WaitSpec(const Env&)> wait);

// Marks a producer tile done and notifies its consumer tile(s).
Op ProducerTileNotify(std::string label,
                      std::function<NotifySpec(const Env&)> notify);

// Peer-to-peer (same-operator, cross-rank) signalling.
Op PeerTileWait(std::string label, std::function<WaitSpec(const Env&)> wait);
Op PeerTileNotify(std::string label,
                  std::function<NotifySpec(const Env&)> notify);

// Sends a tile of data to a remote tensor. When `async_dma` is true the
// transfer is handed to a copy engine (hybrid mapping) and `notify_after`
// fires on completion; otherwise the block drives it and continues after
// the data lands.
Op TilePushData(std::string label, std::function<DataSpec(const Env&)> data,
                std::function<NotifySpec(const Env&)> notify_after = nullptr,
                bool async_dma = false,
                std::function<void(const Env&)> math = nullptr);

// Loads tile(s) of data from remote tensor(s).
Op TilePullData(std::string label, std::function<DataSpec(const Env&)> data,
                std::function<void(const Env&)> math = nullptr);

// Tile load from local memory; `acquire` marks producer-written data.
Op Load(std::string label, bool acquire,
        std::function<DataSpec(const Env&)> data = nullptr);

// Tile store to local memory.
Op Store(std::string label, std::function<DataSpec(const Env&)> data = nullptr,
         std::function<void(const Env&)> math = nullptr);

// Tensor-core tile step.
Op Mma(std::string label,
       std::function<sim::TimeNs(const Env&, const sim::CostModel&)> cost,
       std::function<void(const Env&)> math = nullptr);

// Memory-bound tile op.
Op Elementwise(std::string label,
               std::function<sim::TimeNs(const Env&, const sim::CostModel&)> cost,
               std::function<void(const Env&)> math = nullptr);

}  // namespace ops

// -----------------------------------------------------------------------
// Host-side primitives
// -----------------------------------------------------------------------

// rank_copy_data: peer-to-peer copy on a copy engine owned by `ctx`'s rank.
sim::Coro RankCopyData(rt::RankCtx& ctx, Tensor src, Tensor dst);

// rank_notify: raise host barrier `channel` on `target_rank` by `inc`.
void RankNotify(rt::RankCtx& ctx, const BlockChannel& bc, int target_rank,
                int channel, uint64_t inc = 1);

// rank_wait: block the calling host coroutine until the local host barrier
// `channel` reaches `threshold`.
sim::Flag::Awaiter RankWait(const BlockChannel& bc, int channel,
                            uint64_t threshold);

// Helpers for building notify target lists.
std::vector<int> AllRanks(int num_ranks);
std::vector<int> OtherRanks(int num_ranks, int self);

// Single-entry NotifySpec — the common case of a producer/peer notify
// raising one channel on a list of target ranks.
NotifySpec NotifyOne(SignalSpace space, std::vector<int> targets, int channel,
                     uint64_t inc = 1);

}  // namespace tilelink::tl
