#include "tilelink/mapping.h"

#include <algorithm>

namespace tilelink::tl {

StaticMapping::StaticMapping(int64_t m, int tile_m, int ranks,
                             int channels_per_rank)
    : m_(m), tile_m_(tile_m), ranks_(ranks),
      channels_per_rank_(channels_per_rank) {
  TL_CHECK_GT(m, 0);
  TL_CHECK_GT(tile_m, 0);
  TL_CHECK_GT(ranks, 0);
  TL_CHECK_GT(channels_per_rank, 0);
  m_per_rank_ = CeilDiv<int64_t>(m, ranks);
  m_per_channel_ = CeilDiv<int64_t>(m, static_cast<int64_t>(ranks) *
                                           channels_per_rank);
  TL_CHECK_MSG(m_per_rank_ % tile_m == 0,
               "per-rank extent " << m_per_rank_
                                  << " must be a multiple of tile_m "
                                  << tile_m);
  TL_CHECK_MSG(m_per_channel_ % tile_m == 0,
               "per-channel extent " << m_per_channel_
                                     << " must be a multiple of tile_m "
                                     << tile_m);
  tiles_per_rank_ = m_per_rank_ / tile_m;
  tiles_per_channel_ = m_per_channel_ / tile_m;
  num_tiles_ = CeilDiv<int64_t>(m, tile_m);
}

int StaticMapping::ResolveChannelsPerRank(int64_t m, int tile_m, int ranks,
                                          int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(CeilDiv<int64_t>(m, ranks) / tile_m);
}

TileRange StaticMapping::ShapeRange(int64_t tile_id) const {
  TL_DCHECK(tile_id >= 0 && tile_id < num_tiles_);
  const int64_t lo = tile_id * tile_m_;
  return TileRange{lo, std::min<int64_t>(lo + tile_m_, m_)};
}

int StaticMapping::Rank(int64_t tile_id) const {
  TL_DCHECK(tile_id >= 0 && tile_id < num_tiles_);
  return static_cast<int>(tile_id / tiles_per_rank_);
}

int StaticMapping::Channel(int64_t tile_id) const {
  TL_DCHECK(tile_id >= 0 && tile_id < num_tiles_);
  return static_cast<int>(tile_id / tiles_per_channel_);
}

uint64_t StaticMapping::TilesInChannel(int channel) const {
  TL_DCHECK(channel >= 0 && channel < num_channels());
  const int64_t lo = static_cast<int64_t>(channel) * tiles_per_channel_;
  const int64_t hi =
      std::min<int64_t>(lo + tiles_per_channel_, num_tiles_);
  return static_cast<uint64_t>(std::max<int64_t>(0, hi - lo));
}

TileRange StaticMapping::ChannelRows(int channel) const {
  const int64_t lo = static_cast<int64_t>(channel) * m_per_channel_;
  return TileRange{lo, std::min<int64_t>(lo + m_per_channel_, m_)};
}

std::vector<ChannelWait> StaticMapping::WaitsForRows(int64_t lo,
                                                     int64_t hi) const {
  TL_CHECK_LE(0, lo);
  TL_CHECK_LE(lo, hi);
  TL_CHECK_LE(hi, m_);
  std::vector<ChannelWait> waits;
  if (lo == hi) return waits;
  const int first = static_cast<int>(lo / m_per_channel_);
  const int last = static_cast<int>((hi - 1) / m_per_channel_);
  waits.reserve(static_cast<size_t>(last - first + 1));
  for (int c = first; c <= last; ++c) {
    waits.push_back(ChannelWait{c, TilesInChannel(c)});
  }
  return waits;
}

void DynamicMapping::Resize(int64_t num_tiles) {
  const size_t n = static_cast<size_t>(num_tiles);
  fs_low_.assign(n, 0);
  fs_high_.assign(n, 0);
  fr_.assign(n, 0);
  fc_.assign(n, 0);
  waits_.assign(n, {});
}

void DynamicMapping::SetTile(int64_t tile_id, TileRange range, int rank,
                             int channel) {
  fs_low_[Idx(tile_id)] = range.lo;
  fs_high_[Idx(tile_id)] = range.hi;
  fr_[Idx(tile_id)] = rank;
  fc_[Idx(tile_id)] = channel;
}

void DynamicMapping::SetWaits(int64_t tile_id,
                              std::vector<ChannelWait> waits) {
  waits_[Idx(tile_id)] = std::move(waits);
}

}  // namespace tilelink::tl
