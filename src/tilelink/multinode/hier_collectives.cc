#include "tilelink/multinode/hier_collectives.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "sim/coro_utils.h"
#include "tilelink/builder/role_plan.h"

namespace tilelink::multinode {
namespace {

// One chunk moving over an explicit fabric; publishes the in-order arrival
// signal at the receiver and the sender's drain counter.
sim::Coro TransferChunk(sim::Network* net, int src, int dst, uint64_t bytes,
                        InOrderSignal* sig, std::size_t index, int64_t tiles,
                        sim::Flag* done) {
  co_await net->Transfer(src, dst, bytes);
  if (sig != nullptr) sig->Complete(index, tiles);
  done->Add(1);
}

// Rendezvous + NCCL-analog setup, identical to the operator-centric
// collectives so flat-vs-hierarchical comparisons start from the same gate.
sim::Coro CollectiveEntry(rt::RankCtx& ctx) {
  co_await ctx.world->comm_barrier().Arrive();
  co_await sim::Delay{ctx.world->spec().collective_setup_latency};
}

sim::TimeNs ReduceCost(rt::World& world, uint64_t bytes, int sms) {
  // Read partial, read accumulator, write accumulator.
  return world.cost().MemoryBound(3 * bytes, sms);
}

// Clamps the per-peer NIC staging depth by the device's NIC channel budget
// (queue pairs shared across all `peers` concurrent rail exchanges).
int ClampStagingDepth(const sim::MachineSpec& spec, int want, int peers) {
  if (peers <= 0) return std::max(1, want);
  tl::ResourceBudget budget = tl::ResourceBudget::ForDevice(spec);
  const int granted =
      budget.ClaimFabric(tl::FabricBinding::kNic, want * peers);
  return std::max(1, granted / peers);
}

// Index of source node `src_node` in a receiver-side per-source array that
// skips the receiver's own node.
int SourceIndex(int src_node, int my_node) {
  return src_node < my_node ? src_node : src_node - 1;
}

// Collectives address rail peers as (node, local) pairs; ragged layouts
// (a partially filled last node) are not modeled.
void CheckDenseTopology(const sim::MachineSpec& spec) {
  TL_CHECK_EQ(spec.num_devices % spec.devices_per_node, 0);
}

}  // namespace

HierConfig HierConfig::FromCandidate(const tl::TuneCandidate& c) {
  HierConfig cfg;
  cfg.nic_chunk_tiles = std::max(1, c.nic_chunk_tiles);
  cfg.staging_depth = std::max(1, c.staging_depth);
  cfg.reduce_sms = std::max(1, c.reduce_sms);
  if (c.channels_per_rank > 0) cfg.intra_channels = c.channels_per_rank;
  return cfg;
}

void InOrderSignal::Complete(std::size_t index, int64_t tiles) {
  TL_CHECK_GT(tiles, 0);
  if (done_.size() <= index) done_.resize(index + 1, 0);
  TL_CHECK_EQ(done_[index], 0);
  done_[index] = tiles;
  while (cursor_ < done_.size() && done_[cursor_] > 0) {
    arrived_.Add(static_cast<uint64_t>(done_[cursor_]));
    ++cursor_;
  }
}

// ---------------------------------------------------------------------------
// HierAllGather
// ---------------------------------------------------------------------------

HierAllGather::HierAllGather(rt::World& world, int64_t num_tiles,
                             uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  TL_CHECK_GT(tile_bytes, 0u);
  const sim::MachineSpec& spec = world.spec();
  CheckDenseTopology(spec);
  nodes_ = spec.num_nodes();
  per_node_ = spec.devices_per_node;
  staging_depth_ = ClampStagingDepth(spec, cfg.staging_depth, nodes_ - 1);
  rail_.resize(static_cast<size_t>(world.size()));
  ring_.resize(static_cast<size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    for (int k = 0; k + 1 < nodes_; ++k) {
      rail_[static_cast<size_t>(r)].push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "hier_ag.rail.r" + std::to_string(r)));
    }
    ring_[static_cast<size_t>(r)] = std::make_unique<InOrderSignal>(
        &world.sim(), "hier_ag.ring.r" + std::to_string(r));
  }
}

sim::Coro HierAllGather::RailSend(rt::RankCtx& ctx, int peer) {
  const int r = ctx.rank;
  InOrderSignal* sig =
      rail_[static_cast<size_t>(peer)]
           [static_cast<size_t>(SourceIndex(r / per_node_, peer / per_node_))]
               .get();
  sim::Flag done(ctx.sim(), "hier_ag.rail_send.r" + std::to_string(r));
  std::size_t idx = 0;
  for (int64_t off = 0; off < num_tiles_;) {
    const int64_t tiles = std::min<int64_t>(cfg_.nic_chunk_tiles,
                                            num_tiles_ - off);
    if (idx >= static_cast<std::size_t>(staging_depth_)) {
      co_await done.WaitGe(idx - static_cast<std::size_t>(staging_depth_) +
                           1);
    }
    ctx.sim()->Spawn(
        TransferChunk(&world_.inter_fabric(), r, peer,
                      static_cast<uint64_t>(tiles) * tile_bytes_, sig, idx,
                      tiles, &done),
        "hier_ag.rail_chunk");
    ++idx;
    off += tiles;
  }
  co_await done.WaitGe(idx);
}

sim::Coro HierAllGather::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  const int right = n * per_node_ + (l + 1) % per_node_;
  const int64_t group = static_cast<int64_t>(nodes_) * num_tiles_;
  sim::Flag done(ctx.sim(), "hier_ag.ring_send.r" + std::to_string(r));
  std::size_t idx = 0;
  // Blocks travel the ring oldest-first: block j originated j hops to the
  // left; within a block, the owner's shard leads and its rail segments
  // follow in source-node order.
  for (int j = 0; j < per_node_ - 1; ++j) {
    for (int seg = 0; seg < nodes_; ++seg) {
      for (int64_t off = 0; off < num_tiles_;) {
        const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                                num_tiles_ - off);
        if (j == 0) {
          if (seg > 0) {
            // Own block's rail segment: forward tiles as they land.
            co_await rail_[static_cast<size_t>(r)][static_cast<size_t>(
                               seg - 1)]
                ->tiles_arrived()
                .WaitGe(static_cast<uint64_t>(off + tiles));
          }
        } else {
          // Forwarded block: must have arrived from the left neighbor.
          co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
              static_cast<uint64_t>((j - 1) * group +
                                    static_cast<int64_t>(seg) * num_tiles_ +
                                    off + tiles));
        }
        if (idx >= static_cast<std::size_t>(cfg_.intra_channels)) {
          co_await done.WaitGe(
              idx - static_cast<std::size_t>(cfg_.intra_channels) + 1);
        }
        ctx.sim()->Spawn(
            TransferChunk(&world_.intra_fabric(), r, right,
                          static_cast<uint64_t>(tiles) * tile_bytes_,
                          ring_[static_cast<size_t>(right)].get(), idx, tiles,
                          &done),
            "hier_ag.ring_chunk");
        ++idx;
        off += tiles;
      }
    }
  }
  co_await done.WaitGe(idx);
}

sim::Coro HierAllGather::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(RailSend(ctx, nn * per_node_ + l));
  }
  if (per_node_ > 1) work.push_back(RingSend(ctx));
  co_await sim::WhenAll(std::move(work));
  // Sends drained; wait for every inbound tile.
  for (int k = 0; k + 1 < nodes_; ++k) {
    co_await rail_[static_cast<size_t>(r)][static_cast<size_t>(k)]
        ->tiles_arrived()
        .WaitGe(static_cast<uint64_t>(num_tiles_));
  }
  if (per_node_ > 1) {
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>((per_node_ - 1) *
                              static_cast<int64_t>(nodes_) * num_tiles_));
  }
}

// ---------------------------------------------------------------------------
// FlatAllGather
// ---------------------------------------------------------------------------

FlatAllGather::FlatAllGather(rt::World& world, int64_t num_tiles,
                             uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "flat_ag.ring.r" + std::to_string(r)));
  }
}

sim::Coro FlatAllGather::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  const int r = ctx.rank;
  const int R = world_.size();
  const int right = (r + 1) % R;
  sim::Flag done(ctx.sim(), "flat_ag.send.r" + std::to_string(r));
  std::size_t idx = 0;
  for (int j = 0; j < R - 1; ++j) {
    for (int64_t off = 0; off < num_tiles_;) {
      const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                              num_tiles_ - off);
      if (j > 0) {
        co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
            static_cast<uint64_t>((j - 1) * num_tiles_ + off + tiles));
      }
      if (idx >= static_cast<std::size_t>(cfg_.intra_channels)) {
        co_await done.WaitGe(
            idx - static_cast<std::size_t>(cfg_.intra_channels) + 1);
      }
      ctx.sim()->Spawn(
          TransferChunk(&world_.fabric_for(r, right), r, right,
                        static_cast<uint64_t>(tiles) * tile_bytes_,
                        ring_[static_cast<size_t>(right)].get(), idx, tiles,
                        &done),
          "flat_ag.chunk");
      ++idx;
      off += tiles;
    }
  }
  co_await done.WaitGe(idx);
  co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
      static_cast<uint64_t>(static_cast<int64_t>(R - 1) * num_tiles_));
}

// ---------------------------------------------------------------------------
// HierReduceScatter
// ---------------------------------------------------------------------------

HierReduceScatter::HierReduceScatter(rt::World& world, int64_t num_tiles,
                                     uint64_t tile_bytes,
                                     const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  const sim::MachineSpec& spec = world.spec();
  CheckDenseTopology(spec);
  nodes_ = spec.num_nodes();
  per_node_ = spec.devices_per_node;
  staging_depth_ = ClampStagingDepth(spec, cfg.staging_depth, nodes_ - 1);
  group_tiles_ = static_cast<int64_t>(nodes_) * num_tiles_;
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "hier_rs.ring.r" + std::to_string(r)));
    ring_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "hier_rs.ring_red.r" + std::to_string(r)));
    rail_.emplace_back();
    for (int k = 0; k + 1 < nodes_; ++k) {
      rail_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "hier_rs.rail.r" + std::to_string(r)));
    }
  }
}

sim::Coro HierReduceScatter::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  const int right = n * per_node_ + (l + 1) % per_node_;
  sim::Flag done(ctx.sim(), "hier_rs.ring_send.r" + std::to_string(r));
  std::size_t idx = 0;
  // Step s forwards the accumulated partial of the group destined for the
  // rank s+1 hops to the right's left... i.e. local dest (l - s - 1); the
  // s=0 group is the local partial, later steps forward what the reducer
  // finished for the previous step.
  for (int s = 0; s < per_node_ - 1; ++s) {
    for (int64_t off = 0; off < group_tiles_;) {
      const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                              group_tiles_ - off);
      if (s > 0) {
        co_await ring_reduced_[static_cast<size_t>(r)]->WaitGe(
            static_cast<uint64_t>((s - 1) * group_tiles_ + off + tiles));
      }
      if (idx >= static_cast<std::size_t>(cfg_.intra_channels)) {
        co_await done.WaitGe(
            idx - static_cast<std::size_t>(cfg_.intra_channels) + 1);
      }
      ctx.sim()->Spawn(
          TransferChunk(&world_.intra_fabric(), r, right,
                        static_cast<uint64_t>(tiles) * tile_bytes_,
                        ring_[static_cast<size_t>(right)].get(), idx, tiles,
                        &done),
          "hier_rs.ring_chunk");
      ++idx;
      off += tiles;
    }
  }
  co_await done.WaitGe(idx);
}

sim::Coro HierReduceScatter::RingReducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int64_t total =
      static_cast<int64_t>(per_node_ - 1) * group_tiles_;
  int64_t cum = 0;
  while (cum < total) {
    const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                            total - cum);
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>(cum + tiles));
    co_await sim::Delay{ReduceCost(
        world_, static_cast<uint64_t>(tiles) * tile_bytes_, cfg_.reduce_sms)};
    ring_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
  }
}

sim::Coro HierReduceScatter::RailSend(rt::RankCtx& ctx, int peer,
                                      int peer_index) {
  const int r = ctx.rank;
  const int peer_node = peer / per_node_;
  InOrderSignal* sig =
      rail_[static_cast<size_t>(peer)][static_cast<size_t>(peer_index)].get();
  sim::Flag done(ctx.sim(), "hier_rs.rail_send.r" + std::to_string(r));
  std::size_t idx = 0;
  // The fully node-reduced tiles of the peer node's block: they are the
  // `peer_node` segment of this rank's own group, which arrives (reduced)
  // during the final intra ring step.
  const int64_t own_group_base =
      static_cast<int64_t>(per_node_ - 2) * group_tiles_;
  for (int64_t off = 0; off < num_tiles_;) {
    const int64_t tiles = std::min<int64_t>(cfg_.nic_chunk_tiles,
                                            num_tiles_ - off);
    if (per_node_ > 1) {
      co_await ring_reduced_[static_cast<size_t>(r)]->WaitGe(
          static_cast<uint64_t>(own_group_base +
                                static_cast<int64_t>(peer_node) * num_tiles_ +
                                off + tiles));
    }
    if (idx >= static_cast<std::size_t>(staging_depth_)) {
      co_await done.WaitGe(idx - static_cast<std::size_t>(staging_depth_) +
                           1);
    }
    ctx.sim()->Spawn(
        TransferChunk(&world_.inter_fabric(), r, peer,
                      static_cast<uint64_t>(tiles) * tile_bytes_, sig, idx,
                      tiles, &done),
        "hier_rs.rail_chunk");
    ++idx;
    off += tiles;
  }
  co_await done.WaitGe(idx);
}

sim::Coro HierReduceScatter::RailReducer(rt::RankCtx& ctx) {
  std::vector<sim::Coro> per_source;
  for (int k = 0; k + 1 < nodes_; ++k) {
    per_source.push_back([](HierReduceScatter* self, rt::RankCtx& c,
                            int src) -> sim::Coro {
      int64_t cum = 0;
      while (cum < self->num_tiles_) {
        const int64_t tiles = std::min<int64_t>(self->cfg_.nic_chunk_tiles,
                                                self->num_tiles_ - cum);
        co_await self->rail_[static_cast<size_t>(c.rank)]
            [static_cast<size_t>(src)]
                ->tiles_arrived()
                .WaitGe(static_cast<uint64_t>(cum + tiles));
        co_await sim::Delay{ReduceCost(
            self->world_, static_cast<uint64_t>(tiles) * self->tile_bytes_,
            self->cfg_.reduce_sms)};
        cum += tiles;
      }
    }(this, ctx, k));
  }
  co_await sim::WhenAll(std::move(per_source));
}

sim::Coro HierReduceScatter::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  if (per_node_ > 1) {
    work.push_back(RingSend(ctx));
    work.push_back(RingReducer(ctx));
  }
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(
        RailSend(ctx, nn * per_node_ + l, SourceIndex(n, nn)));
  }
  if (nodes_ > 1) work.push_back(RailReducer(ctx));
  co_await sim::WhenAll(std::move(work));
}

// ---------------------------------------------------------------------------
// FlatReduceScatter
// ---------------------------------------------------------------------------

FlatReduceScatter::FlatReduceScatter(rt::World& world, int64_t num_tiles,
                                     uint64_t tile_bytes,
                                     const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "flat_rs.ring.r" + std::to_string(r)));
    ring_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "flat_rs.ring_red.r" + std::to_string(r)));
  }
}

sim::Coro FlatReduceScatter::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int R = world_.size();
  const int right = (r + 1) % R;
  sim::Flag done(ctx.sim(), "flat_rs.send.r" + std::to_string(r));
  std::size_t idx = 0;
  for (int s = 0; s < R - 1; ++s) {
    for (int64_t off = 0; off < num_tiles_;) {
      const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                              num_tiles_ - off);
      if (s > 0) {
        co_await ring_reduced_[static_cast<size_t>(r)]->WaitGe(
            static_cast<uint64_t>((s - 1) * num_tiles_ + off + tiles));
      }
      if (idx >= static_cast<std::size_t>(cfg_.intra_channels)) {
        co_await done.WaitGe(
            idx - static_cast<std::size_t>(cfg_.intra_channels) + 1);
      }
      ctx.sim()->Spawn(
          TransferChunk(&world_.fabric_for(r, right), r, right,
                        static_cast<uint64_t>(tiles) * tile_bytes_,
                        ring_[static_cast<size_t>(right)].get(), idx, tiles,
                        &done),
          "flat_rs.chunk");
      ++idx;
      off += tiles;
    }
  }
  co_await done.WaitGe(idx);
}

sim::Coro FlatReduceScatter::RingReducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int64_t total =
      static_cast<int64_t>(world_.size() - 1) * num_tiles_;
  int64_t cum = 0;
  while (cum < total) {
    const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                            total - cum);
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>(cum + tiles));
    co_await sim::Delay{ReduceCost(
        world_, static_cast<uint64_t>(tiles) * tile_bytes_, cfg_.reduce_sms)};
    ring_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
  }
}

sim::Coro FlatReduceScatter::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  std::vector<sim::Coro> work;
  if (world_.size() > 1) {
    work.push_back(RingSend(ctx));
    work.push_back(RingReducer(ctx));
  }
  co_await sim::WhenAll(std::move(work));
}

// ---------------------------------------------------------------------------
// DpAllReduce
// ---------------------------------------------------------------------------

DpAllReduce::DpAllReduce(rt::World& world, int64_t num_tiles,
                         uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  const sim::MachineSpec& spec = world.spec();
  CheckDenseTopology(spec);
  nodes_ = spec.num_nodes();
  per_node_ = spec.devices_per_node;
  // Each DP group member exchanges with every other member in both phases.
  staging_depth_ =
      ClampStagingDepth(spec, cfg.staging_depth, 2 * (nodes_ - 1));
  for (int r = 0; r < world.size(); ++r) {
    rs_arrived_.emplace_back();
    ag_arrived_.emplace_back();
    for (int k = 0; k + 1 < nodes_; ++k) {
      rs_arrived_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "dp_ar.rs.r" + std::to_string(r)));
      ag_arrived_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "dp_ar.ag.r" + std::to_string(r)));
    }
    block_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "dp_ar.red.r" + std::to_string(r)));
  }
}

// Tiles of group-member block b (the last block absorbs the remainder).
static int64_t DpBlockTiles(int64_t num_tiles, int nodes, int b) {
  const int64_t base = num_tiles / nodes;
  return b == nodes - 1 ? num_tiles - base * (nodes - 1) : base;
}

sim::Coro DpAllReduce::SendToPeer(rt::RankCtx& ctx, int peer, bool rs_phase) {
  const int r = ctx.rank;
  const int n = r / per_node_, peer_node = peer / per_node_;
  // RS phase: send the partial of the peer's block. AG phase: send this
  // rank's reduced block.
  const int64_t tiles_total =
      DpBlockTiles(num_tiles_, nodes_, rs_phase ? peer_node : n);
  InOrderSignal* sig =
      (rs_phase ? rs_arrived_ : ag_arrived_)[static_cast<size_t>(peer)]
          [static_cast<size_t>(SourceIndex(n, peer_node))]
              .get();
  sim::Flag done(ctx.sim(), "dp_ar.send.r" + std::to_string(r));
  std::size_t idx = 0;
  for (int64_t off = 0; off < tiles_total;) {
    const int64_t tiles =
        std::min<int64_t>(cfg_.nic_chunk_tiles, tiles_total - off);
    if (!rs_phase) {
      // A reduced chunk leaves as soon as the reducer finishes it.
      co_await block_reduced_[static_cast<size_t>(r)]->WaitGe(
          static_cast<uint64_t>(off + tiles));
    }
    if (idx >= static_cast<std::size_t>(staging_depth_)) {
      co_await done.WaitGe(idx - static_cast<std::size_t>(staging_depth_) +
                           1);
    }
    ctx.sim()->Spawn(
        TransferChunk(&world_.inter_fabric(), r, peer,
                      static_cast<uint64_t>(tiles) * tile_bytes_, sig, idx,
                      tiles, &done),
        "dp_ar.chunk");
    ++idx;
    off += tiles;
  }
  co_await done.WaitGe(idx);
}

sim::Coro DpAllReduce::Reducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_;
  const int64_t my_tiles = DpBlockTiles(num_tiles_, nodes_, n);
  int64_t cum = 0;
  while (cum < my_tiles) {
    const int64_t tiles =
        std::min<int64_t>(cfg_.nic_chunk_tiles, my_tiles - cum);
    for (int k = 0; k + 1 < nodes_; ++k) {
      co_await rs_arrived_[static_cast<size_t>(r)][static_cast<size_t>(k)]
          ->tiles_arrived()
          .WaitGe(static_cast<uint64_t>(cum + tiles));
      co_await sim::Delay{ReduceCost(
          world_, static_cast<uint64_t>(tiles) * tile_bytes_,
          cfg_.reduce_sms)};
    }
    block_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
  }
}

sim::Coro DpAllReduce::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  if (nodes_ <= 1) co_return;  // single node: no DP group to sync
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(SendToPeer(ctx, nn * per_node_ + l, /*rs_phase=*/true));
    work.push_back(SendToPeer(ctx, nn * per_node_ + l, /*rs_phase=*/false));
  }
  work.push_back(Reducer(ctx));
  co_await sim::WhenAll(std::move(work));
  // Every other member's reduced block must have landed here.
  for (int k = 0; k + 1 < nodes_; ++k) {
    const int src_node = k < n ? k : k + 1;
    co_await ag_arrived_[static_cast<size_t>(r)][static_cast<size_t>(k)]
        ->tiles_arrived()
        .WaitGe(static_cast<uint64_t>(DpBlockTiles(num_tiles_, nodes_,
                                                   src_node)));
  }
}

}  // namespace tilelink::multinode
