#include "tilelink/multinode/hier_collectives.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/math_utils.h"
#include "sim/coro_utils.h"
#include "sim/trace.h"
#include "tilelink/builder/role_plan.h"

namespace tilelink::multinode {
namespace {

using tl::ChunkIo;
using tl::LinkChunk;
using tl::RunLinkStream;

// dst[dst_lo..) += src[src_lo..) over `elems` fp32 values.
void AddInto(rt::Buffer* dst, int64_t dst_lo, const rt::Buffer* src,
             int64_t src_lo, int64_t elems) {
  auto d = dst->data();
  auto s = src->data();
  for (int64_t i = 0; i < elems; ++i) {
    d[static_cast<size_t>(dst_lo + i)] += s[static_cast<size_t>(src_lo + i)];
  }
}

std::string RName(const char* stage, int r) {
  return std::string(stage) + ".r" + std::to_string(r);
}

std::string EdgeName(const char* stage, int src, int dst) {
  return std::string(stage) + ".r" + std::to_string(src) + "->r" +
         std::to_string(dst);
}

// The legacy unsafe_rail_{src,chunk} knobs expressed as a FaultPlan, so the
// plan's ReorderRailChunk is the one fault-description mechanism. The
// resulting plan stays collective-local (never attached to the World):
// reorder entries corrupt ordering only, so timing is untouched.
sim::FaultPlan LegacyReorderPlan(const HierConfig& cfg) {
  sim::FaultPlan plan;
  if (cfg.unsafe_rail_src >= 0 && cfg.unsafe_rail_chunk >= 0) {
    plan.ReorderRailChunk(cfg.unsafe_rail_src, cfg.unsafe_rail_chunk);
  }
  return plan;
}

// `primary` scopes the fault to the sender's first rail exchange (its
// lowest-node peer), so exactly one chunk misbehaves even when the sender
// runs one send stream per peer node (3+ node topologies). Reorders come
// from the collective's legacy shim plan or from a plan attached to the
// World — both express the same ReorderRailChunk fault kind.
bool EagerRailFault(const rt::World& world, const sim::FaultPlan& legacy,
                    int sender, std::size_t index, bool primary) {
  if (!primary) return false;
  const int64_t chunk = static_cast<int64_t>(index);
  if (legacy.IsRailReorder(sender, chunk)) return true;
  const sim::FaultPlan* plan = world.fault_plan();
  return plan != nullptr && plan->IsRailReorder(sender, chunk);
}

// True when `peer_node` is the lowest node other than `my_node`.
bool IsPrimaryRailPeer(int peer_node, int my_node) {
  return peer_node == (my_node == 0 ? 1 : 0);
}

// Rendezvous + NCCL-analog setup, identical to the operator-centric
// collectives so flat-vs-hierarchical comparisons start from the same gate.
sim::Coro CollectiveEntry(rt::RankCtx& ctx) {
  co_await ctx.world->comm_barrier().Arrive();
  co_await sim::Delay{ctx.world->spec().collective_setup_latency};
}

sim::TimeNs ReduceCost(rt::World& world, uint64_t bytes, int sms) {
  // Read partial, read accumulator, write accumulator.
  return world.cost().MemoryBound(3 * bytes, sms);
}

// Receiver-side per-source slot indexing, shared with the device rail
// roles through the link-role layer.
int SourceIndex(int src_node, int my_node) {
  return tl::RailSourceIndex(src_node, my_node);
}
int SourceNode(int k, int my_node) { return tl::RailSourceNode(k, my_node); }

// Collectives address rail peers as (node, local) pairs; ragged layouts
// (a partially filled last node) are not modeled.
void CheckDenseTopology(const sim::MachineSpec& spec) {
  TL_CHECK_EQ(spec.num_devices % spec.devices_per_node, 0);
}

// Config + topology validation shared by the collective constructors; runs
// before any link role is built so misconfigurations fail with a clear
// message instead of deep inside a chunk loop. Returns the node count so it
// can sit first in a constructor's initializer list.
int ValidatedNodes(const sim::MachineSpec& spec, const HierConfig& cfg) {
  cfg.Validate();
  CheckDenseTopology(spec);
  return spec.num_nodes();
}

void CheckPayloadShapes(rt::World& world,
                        const std::vector<rt::Buffer*>& in,
                        const std::vector<rt::Buffer*>& out,
                        int64_t tile_elems, int64_t in_elems,
                        int64_t out_elems) {
  TL_CHECK_MSG(world.functional(),
               "payload mode requires an ExecMode::kFunctional world");
  TL_CHECK_MSG(tile_elems > 0, "AttachPayload: tile_elems must be positive, "
                               "got " << tile_elems);
  TL_CHECK_EQ(static_cast<int>(in.size()), world.size());
  TL_CHECK_EQ(static_cast<int>(out.size()), world.size());
  for (int r = 0; r < world.size(); ++r) {
    TL_CHECK_MSG(in[static_cast<size_t>(r)]->num_elems() == in_elems,
                 "AttachPayload: in[" << r << "] has "
                     << in[static_cast<size_t>(r)]->num_elems()
                     << " elems but the collective's num_tiles x tile_elems "
                        "layout requires " << in_elems
                     << " (tile_elems mismatch?)");
    TL_CHECK_MSG(out[static_cast<size_t>(r)]->num_elems() == out_elems,
                 "AttachPayload: out[" << r << "] has "
                     << out[static_cast<size_t>(r)]->num_elems()
                     << " elems but the collective's num_tiles x tile_elems "
                        "layout requires " << out_elems
                     << " (tile_elems mismatch?)");
  }
}

}  // namespace

HierConfig HierConfig::FromCandidate(const tl::TuneCandidate& c) {
  HierConfig cfg;
  cfg.nic_chunk_tiles = std::max(1, c.nic_chunk_tiles);
  cfg.staging_depth = std::max(1, c.staging_depth);
  cfg.reduce_sms = std::max(1, c.reduce_sms);
  if (c.channels_per_rank > 0) cfg.intra_channels = c.channels_per_rank;
  return cfg;
}

void HierConfig::Validate() const {
  TL_CHECK_MSG(nic_chunk_tiles > 0,
               "HierConfig.nic_chunk_tiles must be positive, got "
                   << nic_chunk_tiles);
  TL_CHECK_MSG(staging_depth > 0,
               "HierConfig.staging_depth must be positive, got "
                   << staging_depth);
  TL_CHECK_MSG(intra_chunk_tiles > 0,
               "HierConfig.intra_chunk_tiles must be positive, got "
                   << intra_chunk_tiles);
  TL_CHECK_MSG(intra_channels > 0,
               "HierConfig.intra_channels must be positive, got "
                   << intra_channels);
  TL_CHECK_MSG(reduce_sms > 0,
               "HierConfig.reduce_sms must be positive, got " << reduce_sms);
}

// ---------------------------------------------------------------------------
// HierAllGather
// ---------------------------------------------------------------------------

HierAllGather::HierAllGather(rt::World& world, int64_t num_tiles,
                             uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg), legacy_plan_(LegacyReorderPlan(cfg)),
      nodes_(ValidatedNodes(world.spec(), cfg)),
      per_node_(world.spec().devices_per_node),
      rail_role_(world, cfg.nic_chunk_tiles, cfg.staging_depth, nodes_ - 1),
      ring_role_(world, cfg.intra_chunk_tiles, cfg.intra_channels) {
  TL_CHECK_GT(num_tiles, 0);
  TL_CHECK_GT(tile_bytes, 0u);
  rail_.resize(static_cast<size_t>(world.size()));
  ring_.resize(static_cast<size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    for (int k = 0; k + 1 < nodes_; ++k) {
      rail_[static_cast<size_t>(r)].push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "hier_ag.rail.r" + std::to_string(r)));
      rail_[static_cast<size_t>(r)].back()->set_trace_pid(world.trace_pid(r));
    }
    ring_[static_cast<size_t>(r)] = std::make_unique<InOrderSignal>(
        &world.sim(), "hier_ag.ring.r" + std::to_string(r));
    ring_[static_cast<size_t>(r)]->set_trace_pid(world.trace_pid(r));
  }
}

void HierAllGather::AttachPayload(std::vector<rt::Buffer*> in,
                                  std::vector<rt::Buffer*> out,
                                  int64_t tile_elems) {
  CheckPayloadShapes(world_, in, out, tile_elems, num_tiles_ * tile_elems,
                     world_.size() * num_tiles_ * tile_elems);
  in_ = std::move(in);
  out_ = std::move(out);
  tile_elems_ = tile_elems;
}

sim::Coro HierAllGather::RailSend(rt::RankCtx& ctx, int peer) {
  const int r = ctx.rank;
  const int64_t E = tile_elems_;
  InOrderSignal* sig =
      rail_[static_cast<size_t>(peer)]
           [static_cast<size_t>(SourceIndex(r / per_node_, peer / per_node_))]
               .get();
  const bool primary =
      IsPrimaryRailPeer(peer / per_node_, r / per_node_);
  const int64_t chunk_tiles = rail_role_.chunk_tiles();
  auto chunk = [this, r, peer, E, primary, chunk_tiles](int64_t k) {
    LinkChunk c;
    const int64_t off = k * chunk_tiles;
    c.tiles = std::min(chunk_tiles, num_tiles_ - off);
    c.eager_publish =
        EagerRailFault(world_, legacy_plan_, r, static_cast<std::size_t>(k), primary);
    if (payload()) {
      const int64_t lo = (r * num_tiles_ + off) * E;
      c.io = ChunkIo{&world_, out_[static_cast<size_t>(r)],
                     out_[static_cast<size_t>(peer)],
                     {{lo, lo, c.tiles * E}},
                     RName("hier_ag.rail_send", r),
                     EdgeName("hier_ag.rail", r, peer)};
    }
    return c;
  };
  co_await RunLinkStream(
      ctx.sim(),
      rail_role_.Stream(r, peer, tile_bytes_, sig,
                        "hier_ag.rail_send.r" + std::to_string(r),
                        "hier_ag.rail_chunk",
                        CeilDiv(num_tiles_, chunk_tiles), chunk));
}

sim::Coro HierAllGather::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  const int right = n * per_node_ + (l + 1) % per_node_;
  const int64_t group = static_cast<int64_t>(nodes_) * num_tiles_;
  const int64_t E = tile_elems_;
  const int64_t chunk_tiles = ring_role_.chunk_tiles();
  const int64_t chunks_per_seg = CeilDiv(num_tiles_, chunk_tiles);
  // Blocks travel the ring oldest-first: block j originated j hops to the
  // left; within a block, the owner's shard leads and its rail segments
  // follow in source-node order.
  auto chunk = [this, r, n, l, right, group, E, chunk_tiles,
                chunks_per_seg](int64_t k) {
    LinkChunk c;
    const int j = static_cast<int>(k / (nodes_ * chunks_per_seg));
    const int64_t rem = k % (nodes_ * chunks_per_seg);
    const int seg = static_cast<int>(rem / chunks_per_seg);
    const int64_t off = (rem % chunks_per_seg) * chunk_tiles;
    c.tiles = std::min(chunk_tiles, num_tiles_ - off);
    if (j == 0) {
      if (seg > 0) {
        // Own block's rail segment: forward tiles as they land.
        InOrderSignal* up =
            rail_[static_cast<size_t>(r)][static_cast<size_t>(seg - 1)].get();
        const uint64_t thr = static_cast<uint64_t>(off + c.tiles);
        c.gate = {&up->tiles_arrived(), thr};
        if (world_.trace() != nullptr) {
          c.take_flow = [up, thr] { return up->TakeFlowCovering(thr); };
        }
      }
    } else {
      // Forwarded block: must have arrived from the left neighbor.
      InOrderSignal* up = ring_[static_cast<size_t>(r)].get();
      const uint64_t thr =
          static_cast<uint64_t>((j - 1) * group +
                                static_cast<int64_t>(seg) * num_tiles_ +
                                off + c.tiles);
      c.gate = {&up->tiles_arrived(), thr};
      if (world_.trace() != nullptr) {
        c.take_flow = [up, thr] { return up->TakeFlowCovering(thr); };
      }
    }
    if (payload()) {
      // The chunk's tiles belong to the shard of the block owner's
      // column: block j originated at local index (l - j), segment 0 is
      // the owner's own shard, segment s > 0 the rail source s-1.
      const int lsrc = (l - j + per_node_) % per_node_;
      const int src_node = seg == 0 ? n : SourceNode(seg - 1, n);
      const int gsrc = src_node * per_node_ + lsrc;
      const int64_t lo = (gsrc * num_tiles_ + off) * E;
      c.io = ChunkIo{&world_, out_[static_cast<size_t>(r)],
                     out_[static_cast<size_t>(right)],
                     {{lo, lo, c.tiles * E}},
                     RName("hier_ag.ring_send", r),
                     EdgeName("hier_ag.ring", r, right)};
    }
    return c;
  };
  co_await RunLinkStream(
      ctx.sim(),
      ring_role_.Stream(r, right, tile_bytes_,
                        ring_[static_cast<size_t>(right)].get(),
                        "hier_ag.ring_send.r" + std::to_string(r),
                        "hier_ag.ring_chunk",
                        static_cast<int64_t>(per_node_ - 1) * nodes_ *
                            chunks_per_seg,
                        chunk));
}

sim::Coro HierAllGather::Run(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  if (payload()) {
    // Place the local shard before any peer can pull it forward.
    auto s = in_[static_cast<size_t>(r)]->data();
    auto d = out_[static_cast<size_t>(r)]->data();
    std::copy_n(s.data(), num_tiles_ * tile_elems_,
                d.data() + r * num_tiles_ * tile_elems_);
  }
  co_await CollectiveEntry(ctx);
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(RailSend(ctx, nn * per_node_ + l));
  }
  if (per_node_ > 1) work.push_back(RingSend(ctx));
  co_await sim::WhenAll(std::move(work));
  // Sends drained; wait for every inbound tile.
  for (int k = 0; k + 1 < nodes_; ++k) {
    co_await rail_[static_cast<size_t>(r)][static_cast<size_t>(k)]
        ->tiles_arrived()
        .WaitGe(static_cast<uint64_t>(num_tiles_));
  }
  if (per_node_ > 1) {
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>((per_node_ - 1) *
                              static_cast<int64_t>(nodes_) * num_tiles_));
  }
  if (payload()) {
    // Final consume: the whole gathered buffer must be visible now.
    world_.checker().CheckRead(
        out_[static_cast<size_t>(r)], 0,
        world_.size() * num_tiles_ * tile_elems_, ctx.sim()->Now(),
        RName("hier_ag.final", r));
  }
}

// ---------------------------------------------------------------------------
// FlatAllGather
// ---------------------------------------------------------------------------

FlatAllGather::FlatAllGather(rt::World& world, int64_t num_tiles,
                             uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  cfg.Validate();
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "flat_ag.ring.r" + std::to_string(r)));
    ring_.back()->set_trace_pid(world.trace_pid(r));
  }
}

void FlatAllGather::AttachPayload(std::vector<rt::Buffer*> in,
                                  std::vector<rt::Buffer*> out,
                                  int64_t tile_elems) {
  CheckPayloadShapes(world_, in, out, tile_elems, num_tiles_ * tile_elems,
                     world_.size() * num_tiles_ * tile_elems);
  in_ = std::move(in);
  out_ = std::move(out);
  tile_elems_ = tile_elems;
}

sim::Coro FlatAllGather::Run(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int R = world_.size();
  const int64_t E = tile_elems_;
  if (payload()) {
    auto s = in_[static_cast<size_t>(r)]->data();
    auto d = out_[static_cast<size_t>(r)]->data();
    std::copy_n(s.data(), num_tiles_ * E, d.data() + r * num_tiles_ * E);
  }
  co_await CollectiveEntry(ctx);
  const int right = (r + 1) % R;
  const int64_t chunk_tiles = cfg_.intra_chunk_tiles;
  const int64_t chunks_per_step = CeilDiv(num_tiles_, chunk_tiles);
  tl::LinkStream stream;
  stream.fabric = &world_.fabric_for(r, right);
  stream.src = r;
  stream.dst = right;
  stream.tile_bytes = tile_bytes_;
  stream.window = cfg_.intra_channels;
  stream.arrival = ring_[static_cast<size_t>(right)].get();
  stream.name = "flat_ag.send.r" + std::to_string(r);
  stream.chunk_label = "flat_ag.chunk";
  stream.trace_pid = world_.trace_pid(r);
  stream.num_chunks = static_cast<int64_t>(R - 1) * chunks_per_step;
  stream.chunk = [this, r, right, R, E, chunk_tiles,
                  chunks_per_step](int64_t k) {
    LinkChunk c;
    const int j = static_cast<int>(k / chunks_per_step);
    const int64_t off = (k % chunks_per_step) * chunk_tiles;
    c.tiles = std::min(chunk_tiles, num_tiles_ - off);
    if (j > 0) {
      InOrderSignal* up = ring_[static_cast<size_t>(r)].get();
      const uint64_t thr =
          static_cast<uint64_t>((j - 1) * num_tiles_ + off + c.tiles);
      c.gate = {&up->tiles_arrived(), thr};
      if (world_.trace() != nullptr) {
        c.take_flow = [up, thr] { return up->TakeFlowCovering(thr); };
      }
    }
    if (payload()) {
      const int src_rank = (r - j + R) % R;  // block forwarded at step j
      const int64_t lo = (src_rank * num_tiles_ + off) * E;
      c.io = ChunkIo{&world_, out_[static_cast<size_t>(r)],
                     out_[static_cast<size_t>(right)],
                     {{lo, lo, c.tiles * E}},
                     RName("flat_ag.send", r),
                     EdgeName("flat_ag.ring", r, right)};
    }
    return c;
  };
  tl::ApplyLinkFaultPolicy(
      world_, static_cast<uint64_t>(chunk_tiles) * tile_bytes_, &stream);
  co_await RunLinkStream(ctx.sim(), std::move(stream));
  co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
      static_cast<uint64_t>(static_cast<int64_t>(R - 1) * num_tiles_));
  if (payload()) {
    world_.checker().CheckRead(out_[static_cast<size_t>(r)], 0,
                               R * num_tiles_ * E, ctx.sim()->Now(),
                               RName("flat_ag.final", r));
  }
}

// ---------------------------------------------------------------------------
// HierReduceScatter
// ---------------------------------------------------------------------------

HierReduceScatter::HierReduceScatter(rt::World& world, int64_t num_tiles,
                                     uint64_t tile_bytes,
                                     const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg), legacy_plan_(LegacyReorderPlan(cfg)),
      nodes_(ValidatedNodes(world.spec(), cfg)),
      per_node_(world.spec().devices_per_node),
      group_tiles_(static_cast<int64_t>(nodes_) * num_tiles),
      rail_role_(world, cfg.nic_chunk_tiles, cfg.staging_depth, nodes_ - 1),
      ring_role_(world, cfg.intra_chunk_tiles, cfg.intra_channels) {
  TL_CHECK_GT(num_tiles, 0);
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "hier_rs.ring.r" + std::to_string(r)));
    ring_.back()->set_trace_pid(world.trace_pid(r));
    ring_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "hier_rs.ring_red.r" + std::to_string(r)));
    ring_red_ledger_.push_back(std::make_unique<tl::FlowLedger>());
    rail_.emplace_back();
    for (int k = 0; k + 1 < nodes_; ++k) {
      rail_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "hier_rs.rail.r" + std::to_string(r)));
      rail_.back().back()->set_trace_pid(world.trace_pid(r));
    }
  }
}

void HierReduceScatter::AttachPayload(std::vector<rt::Buffer*> in,
                                      std::vector<rt::Buffer*> out,
                                      int64_t tile_elems) {
  CheckPayloadShapes(world_, in, out, tile_elems,
                     world_.size() * num_tiles_ * tile_elems,
                     num_tiles_ * tile_elems);
  in_ = std::move(in);
  out_ = std::move(out);
  tile_elems_ = tile_elems;
  ring_acc_.assign(static_cast<size_t>(world_.size()), nullptr);
  rail_acc_.assign(static_cast<size_t>(world_.size()), {});
  for (int r = 0; r < world_.size(); ++r) {
    if (per_node_ > 1) {
      ring_acc_[static_cast<size_t>(r)] = world_.device(r).Alloc(
          "hier_rs.ring_acc",
          (per_node_ - 1) * group_tiles_ * tile_elems);
    }
    for (int k = 0; k + 1 < nodes_; ++k) {
      rail_acc_[static_cast<size_t>(r)].push_back(
          world_.device(r).Alloc("hier_rs.rail_acc",
                                 num_tiles_ * tile_elems));
    }
  }
}

sim::Coro HierReduceScatter::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  const int right = n * per_node_ + (l + 1) % per_node_;
  const int64_t E = tile_elems_;
  const int64_t chunk_tiles = ring_role_.chunk_tiles();
  const int64_t chunks_per_step = CeilDiv(group_tiles_, chunk_tiles);
  // Step s forwards the accumulated partial of the group destined for the
  // rank s+1 hops to the right's left... i.e. local dest (l - s - 1); the
  // s=0 group is the local partial, later steps forward what the reducer
  // finished for the previous step.
  auto chunk = [this, r, l, right, E, chunk_tiles,
                chunks_per_step](int64_t k) {
    LinkChunk c;
    const int s = static_cast<int>(k / chunks_per_step);
    const int64_t off = (k % chunks_per_step) * chunk_tiles;
    c.tiles = std::min(chunk_tiles, group_tiles_ - off);
    if (s > 0) {
      c.gate = {ring_reduced_[static_cast<size_t>(r)].get(),
                static_cast<uint64_t>((s - 1) * group_tiles_ + off +
                                      c.tiles)};
    }
    if (payload()) {
      c.io.world = &world_;
      c.io.dst = ring_acc_[static_cast<size_t>(right)];
      c.io.reader = RName("hier_rs.ring_send", r);
      c.io.writer = EdgeName("hier_rs.ring", r, right);
      const int64_t dst_base = static_cast<int64_t>(s) * group_tiles_;
      if (s == 0) {
        // Local partials: group (l - 1), node-major segments of the
        // destination-rank-ordered input.
        c.io.src = in_[static_cast<size_t>(r)];
        const int g = (l - 1 + per_node_) % per_node_;
        int64_t p = off;
        while (p < off + c.tiles) {
          const int64_t m = p / num_tiles_, t = p % num_tiles_;
          const int64_t len = std::min(off + c.tiles - p, num_tiles_ - t);
          c.io.runs.push_back(
              {((m * per_node_ + g) * num_tiles_ + t) * E,
               (dst_base + p) * E, len * E});
          p += len;
        }
      } else {
        c.io.src = ring_acc_[static_cast<size_t>(r)];
        c.io.runs.push_back({((s - 1) * group_tiles_ + off) * E,
                             (dst_base + off) * E, c.tiles * E});
      }
    }
    return c;
  };
  co_await RunLinkStream(
      ctx.sim(),
      ring_role_.Stream(r, right, tile_bytes_,
                        ring_[static_cast<size_t>(right)].get(),
                        "hier_rs.ring_send.r" + std::to_string(r),
                        "hier_rs.ring_chunk",
                        static_cast<int64_t>(per_node_ - 1) * chunks_per_step,
                        chunk));
}

sim::Coro HierReduceScatter::RingReducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int l = r % per_node_;
  const int64_t E = tile_elems_;
  const int64_t total =
      static_cast<int64_t>(per_node_ - 1) * group_tiles_;
  const std::string name = RName("hier_rs.ring_reduce", r);
  sim::TraceRecorder* tr = world_.trace();
  const int pid = world_.trace_pid(r);
  const int tid = tr != nullptr ? tr->Track(pid, name) : 0;
  int64_t cum = 0;
  while (cum < total) {
    const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                            total - cum);
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>(cum + tiles));
    const sim::TimeNs wake = ctx.sim()->Now();
    if (tr != nullptr) {
      // Bind the ring arrival that unblocked this reduce step.
      const auto fin = ring_[static_cast<size_t>(r)]->TakeFlowCovering(
          static_cast<uint64_t>(cum + tiles));
      if (fin.first != 0) {
        tr->AddFlowFinish(fin.first, pid, tid, wake, fin.second);
      }
    }
    uint64_t wt = 0;
    if (payload()) {
      world_.checker().CheckRead(ring_acc_[static_cast<size_t>(r)], cum * E,
                                 (cum + tiles) * E, wake, name);
      wt = world_.checker().OpenWrite(wake);
    }
    co_await sim::Delay{ReduceCost(
        world_, static_cast<uint64_t>(tiles) * tile_bytes_, cfg_.reduce_sms)};
    if (payload()) {
      // Add this rank's own partial to each arrived tile: arrival position
      // p is step s = p / group_tiles of group (l - s - 2), node-major.
      for (int64_t p = cum; p < cum + tiles; ++p) {
        const int64_t s = p / group_tiles_, q = p % group_tiles_;
        const int g =
            (l - static_cast<int>(s) - 2 + 2 * per_node_) % per_node_;
        const int64_t m = q / num_tiles_, t = q % num_tiles_;
        AddInto(ring_acc_[static_cast<size_t>(r)], p * E,
                in_[static_cast<size_t>(r)],
                ((m * per_node_ + g) * num_tiles_ + t) * E, E);
      }
      // RMW convention: the mutation window opens strictly after the wake
      // probe, so the reducer's own read never matches its write; atomic:
      // reduction epilogues are commutative accumulations.
      world_.checker().RecordWrite(ring_acc_[static_cast<size_t>(r)],
                                   cum * E, (cum + tiles) * E, wake + 1,
                                   ctx.sim()->Now(), name, /*atomic=*/true);
      world_.checker().CloseWrite(wt);
    }
    ring_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
    if (tr != nullptr) {
      const sim::TimeNs now = ctx.sim()->Now();
      // Publish a ledger arrow so the rail chunk gated on this reduction
      // binds back to the reducer span.
      const uint64_t fid = tr->NewFlowId();
      tr->AddFlowStart(fid, pid, tid, now, "hier_rs.ring_red");
      ring_red_ledger_[static_cast<size_t>(r)]->Publish(
          static_cast<uint64_t>(cum), fid, "hier_rs.ring_red");
      tr->AddSpan(pid, tid, "ring_reduce", wake, now, sim::kCatCompute,
                  {sim::TraceArg::Num("tiles", static_cast<double>(tiles)),
                   sim::TraceArg::Num("cum", static_cast<double>(cum))});
    }
  }
}

sim::Coro HierReduceScatter::RailSend(rt::RankCtx& ctx, int peer,
                                      int peer_index) {
  const int r = ctx.rank;
  const int l = r % per_node_;
  const int peer_node = peer / per_node_;
  const int64_t E = tile_elems_;
  InOrderSignal* sig =
      rail_[static_cast<size_t>(peer)][static_cast<size_t>(peer_index)].get();
  const bool primary = IsPrimaryRailPeer(peer_node, r / per_node_);
  const int64_t chunk_tiles = rail_role_.chunk_tiles();
  // The fully node-reduced tiles of the peer node's block: they are the
  // `peer_node` segment of this rank's own group, which arrives (reduced)
  // during the final intra ring step.
  const int64_t own_group_base =
      static_cast<int64_t>(per_node_ - 2) * group_tiles_;
  auto chunk = [this, r, l, peer, peer_node, E, primary, chunk_tiles,
                own_group_base](int64_t k) {
    LinkChunk c;
    const int64_t off = k * chunk_tiles;
    c.tiles = std::min(chunk_tiles, num_tiles_ - off);
    c.eager_publish =
        EagerRailFault(world_, legacy_plan_, r, static_cast<std::size_t>(k), primary);
    if (per_node_ > 1) {
      const uint64_t thr = static_cast<uint64_t>(
          own_group_base + static_cast<int64_t>(peer_node) * num_tiles_ +
          off + c.tiles);
      c.gate = {ring_reduced_[static_cast<size_t>(r)].get(), thr};
      if (world_.trace() != nullptr) {
        tl::FlowLedger* led = ring_red_ledger_[static_cast<size_t>(r)].get();
        c.take_flow = [led, thr] { return led->TakeCovering(thr); };
      }
    }
    if (payload()) {
      c.io.world = &world_;
      c.io.dst = rail_acc_[static_cast<size_t>(peer)][static_cast<size_t>(
          SourceIndex(r / per_node_, peer_node))];
      c.io.reader = RName("hier_rs.rail_send", r);
      c.io.writer = EdgeName("hier_rs.rail", r, peer);
      if (per_node_ > 1) {
        c.io.src = ring_acc_[static_cast<size_t>(r)];
        c.io.runs.push_back(
            {(own_group_base + static_cast<int64_t>(peer_node) * num_tiles_ +
              off) * E,
             off * E, c.tiles * E});
      } else {
        // Single-rank node: the node partial is this rank's own input
        // block for the peer (global block index == peer rank).
        c.io.src = in_[static_cast<size_t>(r)];
        c.io.runs.push_back(
            {((static_cast<int64_t>(peer_node) * per_node_ + l) * num_tiles_ +
              off) * E,
             off * E, c.tiles * E});
      }
    }
    return c;
  };
  co_await RunLinkStream(
      ctx.sim(),
      rail_role_.Stream(r, peer, tile_bytes_, sig,
                        "hier_rs.rail_send.r" + std::to_string(r),
                        "hier_rs.rail_chunk",
                        CeilDiv(num_tiles_, chunk_tiles), chunk));
}

sim::Coro HierReduceScatter::RailReducer(rt::RankCtx& ctx) {
  std::vector<sim::Coro> per_source;
  for (int k = 0; k + 1 < nodes_; ++k) {
    per_source.push_back([](HierReduceScatter* self, rt::RankCtx& c,
                            int src) -> sim::Coro {
      const int64_t E = self->tile_elems_;
      const std::string name =
          RName("hier_rs.rail_reduce", c.rank) + ".s" + std::to_string(src);
      sim::TraceRecorder* tr = self->world_.trace();
      const int pid = self->world_.trace_pid(c.rank);
      const int tid = tr != nullptr ? tr->Track(pid, name) : 0;
      int64_t cum = 0;
      while (cum < self->num_tiles_) {
        const int64_t tiles = std::min<int64_t>(self->cfg_.nic_chunk_tiles,
                                                self->num_tiles_ - cum);
        co_await self->rail_[static_cast<size_t>(c.rank)]
            [static_cast<size_t>(src)]
                ->tiles_arrived()
                .WaitGe(static_cast<uint64_t>(cum + tiles));
        const sim::TimeNs wake = c.sim()->Now();
        if (tr != nullptr) {
          const auto fin =
              self->rail_[static_cast<size_t>(c.rank)]
                         [static_cast<size_t>(src)]
                             ->TakeFlowCovering(
                                 static_cast<uint64_t>(cum + tiles));
          if (fin.first != 0) {
            tr->AddFlowFinish(fin.first, pid, tid, wake, fin.second);
          }
        }
        uint64_t wt = 0;
        if (self->payload()) {
          self->world_.checker().CheckRead(
              self->rail_acc_[static_cast<size_t>(c.rank)]
                             [static_cast<size_t>(src)],
              cum * E, (cum + tiles) * E, wake, name);
          wt = self->world_.checker().OpenWrite(wake);
        }
        co_await sim::Delay{ReduceCost(
            self->world_, static_cast<uint64_t>(tiles) * self->tile_bytes_,
            self->cfg_.reduce_sms)};
        if (self->payload()) {
          AddInto(self->out_[static_cast<size_t>(c.rank)], cum * E,
                  self->rail_acc_[static_cast<size_t>(c.rank)]
                                 [static_cast<size_t>(src)],
                  cum * E, tiles * E);
          // Atomic: the per-source rail reducers legitimately fold into
          // the same output rows concurrently.
          self->world_.checker().RecordWrite(
              self->out_[static_cast<size_t>(c.rank)], cum * E,
              (cum + tiles) * E, wake + 1, c.sim()->Now(), name,
              /*atomic=*/true);
          self->world_.checker().CloseWrite(wt);
        }
        cum += tiles;
        if (tr != nullptr) {
          tr->AddSpan(
              pid, tid, "rail_reduce", wake, c.sim()->Now(),
              sim::kCatCompute,
              {sim::TraceArg::Num("tiles", static_cast<double>(tiles)),
               sim::TraceArg::Num("src_slot", src)});
        }
      }
    }(this, ctx, k));
  }
  co_await sim::WhenAll(std::move(per_source));
}

// Payload mode: fold the own node's fully reduced partial of this rank's
// block into the output. It is the own-node segment of the own group, which
// the ring reducer finishes last; a single-rank node contributes its input
// block directly. Pure flag waits + host copies: adds no simulated time.
sim::Coro HierReduceScatter::OwnContribution(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_;
  const int64_t E = tile_elems_;
  const std::string name = RName("hier_rs.own", r);
  if (per_node_ > 1) {
    const int64_t base = static_cast<int64_t>(per_node_ - 2) * group_tiles_ +
                         static_cast<int64_t>(n) * num_tiles_;
    co_await ring_reduced_[static_cast<size_t>(r)]->WaitGe(
        static_cast<uint64_t>(base + num_tiles_));
    world_.checker().CheckRead(ring_acc_[static_cast<size_t>(r)], base * E,
                               (base + num_tiles_) * E, ctx.sim()->Now(),
                               name);
    AddInto(out_[static_cast<size_t>(r)], 0,
            ring_acc_[static_cast<size_t>(r)], base * E, num_tiles_ * E);
  } else {
    AddInto(out_[static_cast<size_t>(r)], 0, in_[static_cast<size_t>(r)],
            static_cast<int64_t>(r) * num_tiles_ * E, num_tiles_ * E);
  }
  // Atomic: this fold can commit while the per-source rail reducers are
  // mid-accumulation on the same output rows.
  const sim::TimeNs now = ctx.sim()->Now();
  world_.checker().RecordWrite(out_[static_cast<size_t>(r)], 0,
                               num_tiles_ * E, now, now, name,
                               /*atomic=*/true);
}

sim::Coro HierReduceScatter::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  const int r = ctx.rank;
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  if (per_node_ > 1) {
    work.push_back(RingSend(ctx));
    work.push_back(RingReducer(ctx));
  }
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(
        RailSend(ctx, nn * per_node_ + l, SourceIndex(n, nn)));
  }
  if (nodes_ > 1) work.push_back(RailReducer(ctx));
  if (payload()) work.push_back(OwnContribution(ctx));
  co_await sim::WhenAll(std::move(work));
  if (payload()) {
    world_.checker().CheckRead(out_[static_cast<size_t>(r)], 0,
                               num_tiles_ * tile_elems_, ctx.sim()->Now(),
                               RName("hier_rs.final", r));
  }
}

// ---------------------------------------------------------------------------
// FlatReduceScatter
// ---------------------------------------------------------------------------

FlatReduceScatter::FlatReduceScatter(rt::World& world, int64_t num_tiles,
                                     uint64_t tile_bytes,
                                     const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg) {
  TL_CHECK_GT(num_tiles, 0);
  cfg.Validate();
  for (int r = 0; r < world.size(); ++r) {
    ring_.push_back(std::make_unique<InOrderSignal>(
        &world.sim(), "flat_rs.ring.r" + std::to_string(r)));
    ring_.back()->set_trace_pid(world.trace_pid(r));
    ring_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "flat_rs.ring_red.r" + std::to_string(r)));
  }
}

void FlatReduceScatter::AttachPayload(std::vector<rt::Buffer*> in,
                                      std::vector<rt::Buffer*> out,
                                      int64_t tile_elems) {
  CheckPayloadShapes(world_, in, out, tile_elems,
                     world_.size() * num_tiles_ * tile_elems,
                     num_tiles_ * tile_elems);
  in_ = std::move(in);
  out_ = std::move(out);
  tile_elems_ = tile_elems;
  ring_acc_.assign(static_cast<size_t>(world_.size()), nullptr);
  if (world_.size() > 1) {
    for (int r = 0; r < world_.size(); ++r) {
      ring_acc_[static_cast<size_t>(r)] = world_.device(r).Alloc(
          "flat_rs.ring_acc",
          static_cast<int64_t>(world_.size() - 1) * num_tiles_ * tile_elems);
    }
  }
}

sim::Coro FlatReduceScatter::RingSend(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int R = world_.size();
  const int right = (r + 1) % R;
  const int64_t E = tile_elems_;
  const int64_t chunk_tiles = cfg_.intra_chunk_tiles;
  const int64_t chunks_per_step = CeilDiv(num_tiles_, chunk_tiles);
  tl::LinkStream stream;
  stream.fabric = &world_.fabric_for(r, right);
  stream.src = r;
  stream.dst = right;
  stream.tile_bytes = tile_bytes_;
  stream.window = cfg_.intra_channels;
  stream.arrival = ring_[static_cast<size_t>(right)].get();
  stream.name = "flat_rs.send.r" + std::to_string(r);
  stream.chunk_label = "flat_rs.chunk";
  stream.trace_pid = world_.trace_pid(r);
  stream.num_chunks = static_cast<int64_t>(R - 1) * chunks_per_step;
  stream.chunk = [this, r, right, R, E, chunk_tiles,
                  chunks_per_step](int64_t k) {
    LinkChunk c;
    const int s = static_cast<int>(k / chunks_per_step);
    const int64_t off = (k % chunks_per_step) * chunk_tiles;
    c.tiles = std::min(chunk_tiles, num_tiles_ - off);
    if (s > 0) {
      c.gate = {ring_reduced_[static_cast<size_t>(r)].get(),
                static_cast<uint64_t>((s - 1) * num_tiles_ + off + c.tiles)};
    }
    if (payload()) {
      c.io.world = &world_;
      c.io.dst = ring_acc_[static_cast<size_t>(right)];
      c.io.reader = RName("flat_rs.send", r);
      c.io.writer = EdgeName("flat_rs.ring", r, right);
      const int g = (r - s - 1 + R) % R;  // block forwarded at step s
      if (s == 0) {
        c.io.src = in_[static_cast<size_t>(r)];
        c.io.runs.push_back({(static_cast<int64_t>(g) * num_tiles_ + off) * E,
                             off * E, c.tiles * E});
      } else {
        c.io.src = ring_acc_[static_cast<size_t>(r)];
        c.io.runs.push_back({((s - 1) * num_tiles_ + off) * E,
                             (static_cast<int64_t>(s) * num_tiles_ + off) * E,
                             c.tiles * E});
      }
    }
    return c;
  };
  tl::ApplyLinkFaultPolicy(
      world_, static_cast<uint64_t>(chunk_tiles) * tile_bytes_, &stream);
  co_await RunLinkStream(ctx.sim(), std::move(stream));
}

sim::Coro FlatReduceScatter::RingReducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int R = world_.size();
  const int64_t E = tile_elems_;
  const int64_t total =
      static_cast<int64_t>(world_.size() - 1) * num_tiles_;
  const std::string name = RName("flat_rs.reduce", r);
  sim::TraceRecorder* tr = world_.trace();
  const int pid = world_.trace_pid(r);
  const int tid = tr != nullptr ? tr->Track(pid, name) : 0;
  int64_t cum = 0;
  while (cum < total) {
    const int64_t tiles = std::min<int64_t>(cfg_.intra_chunk_tiles,
                                            total - cum);
    co_await ring_[static_cast<size_t>(r)]->tiles_arrived().WaitGe(
        static_cast<uint64_t>(cum + tiles));
    const sim::TimeNs wake = ctx.sim()->Now();
    if (tr != nullptr) {
      const auto fin = ring_[static_cast<size_t>(r)]->TakeFlowCovering(
          static_cast<uint64_t>(cum + tiles));
      if (fin.first != 0) {
        tr->AddFlowFinish(fin.first, pid, tid, wake, fin.second);
      }
    }
    uint64_t wt = 0;
    if (payload()) {
      world_.checker().CheckRead(ring_acc_[static_cast<size_t>(r)], cum * E,
                                 (cum + tiles) * E, wake, name);
      wt = world_.checker().OpenWrite(wake);
    }
    co_await sim::Delay{ReduceCost(
        world_, static_cast<uint64_t>(tiles) * tile_bytes_, cfg_.reduce_sms)};
    if (payload()) {
      for (int64_t p = cum; p < cum + tiles; ++p) {
        const int64_t s = p / num_tiles_, t = p % num_tiles_;
        const int g = (r - static_cast<int>(s) - 2 + 2 * R) % R;
        AddInto(ring_acc_[static_cast<size_t>(r)], p * E,
                in_[static_cast<size_t>(r)],
                (static_cast<int64_t>(g) * num_tiles_ + t) * E, E);
      }
      world_.checker().RecordWrite(ring_acc_[static_cast<size_t>(r)],
                                   cum * E, (cum + tiles) * E, wake + 1,
                                   ctx.sim()->Now(), name, /*atomic=*/true);
      world_.checker().CloseWrite(wt);
    }
    ring_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
    if (tr != nullptr) {
      tr->AddSpan(pid, tid, "ring_reduce", wake, ctx.sim()->Now(),
                  sim::kCatCompute,
                  {sim::TraceArg::Num("tiles", static_cast<double>(tiles)),
                   sim::TraceArg::Num("cum", static_cast<double>(cum))});
    }
  }
}

sim::Coro FlatReduceScatter::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  std::vector<sim::Coro> work;
  if (world_.size() > 1) {
    work.push_back(RingSend(ctx));
    work.push_back(RingReducer(ctx));
  }
  co_await sim::WhenAll(std::move(work));
  if (payload()) {
    const int r = ctx.rank;
    const int R = world_.size();
    const int64_t E = tile_elems_;
    const std::string name = RName("flat_rs.final", r);
    const sim::TimeNs now = ctx.sim()->Now();
    if (R > 1) {
      // The fully reduced own block is the last ring arrival.
      const int64_t base = static_cast<int64_t>(R - 2) * num_tiles_;
      world_.checker().CheckRead(ring_acc_[static_cast<size_t>(r)], base * E,
                                 (base + num_tiles_) * E, now, name);
      AddInto(out_[static_cast<size_t>(r)], 0,
              ring_acc_[static_cast<size_t>(r)], base * E, num_tiles_ * E);
    } else {
      AddInto(out_[static_cast<size_t>(r)], 0, in_[static_cast<size_t>(r)],
              static_cast<int64_t>(r) * num_tiles_ * E, num_tiles_ * E);
    }
    world_.checker().RecordWrite(out_[static_cast<size_t>(r)], 0,
                                 num_tiles_ * E, now, now, name);
    world_.checker().CheckRead(out_[static_cast<size_t>(r)], 0,
                               num_tiles_ * E, now, name);
  }
}

// ---------------------------------------------------------------------------
// DpAllReduce
// ---------------------------------------------------------------------------

// Tiles of group-member block b (the last block absorbs the remainder).
static int64_t DpBlockTiles(int64_t num_tiles, int nodes, int b) {
  const int64_t base = num_tiles / nodes;
  return b == nodes - 1 ? num_tiles - base * (nodes - 1) : base;
}

// First tile of group-member block b.
static int64_t DpBlockStart(int64_t num_tiles, int nodes, int b) {
  return static_cast<int64_t>(b) * (num_tiles / nodes);
}

DpAllReduce::DpAllReduce(rt::World& world, int64_t num_tiles,
                         uint64_t tile_bytes, const HierConfig& cfg)
    : world_(world), num_tiles_(num_tiles), tile_bytes_(tile_bytes),
      cfg_(cfg), legacy_plan_(LegacyReorderPlan(cfg)),
      nodes_(ValidatedNodes(world.spec(), cfg)),
      per_node_(world.spec().devices_per_node),
      // Each DP group member exchanges with every other member in both
      // phases.
      rail_role_(world, cfg.nic_chunk_tiles, cfg.staging_depth,
                 2 * (nodes_ - 1)) {
  TL_CHECK_GT(num_tiles, 0);
  for (int r = 0; r < world.size(); ++r) {
    rs_arrived_.emplace_back();
    ag_arrived_.emplace_back();
    for (int k = 0; k + 1 < nodes_; ++k) {
      rs_arrived_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "dp_ar.rs.r" + std::to_string(r)));
      rs_arrived_.back().back()->set_trace_pid(world.trace_pid(r));
      ag_arrived_.back().push_back(std::make_unique<InOrderSignal>(
          &world.sim(), "dp_ar.ag.r" + std::to_string(r)));
      ag_arrived_.back().back()->set_trace_pid(world.trace_pid(r));
    }
    block_reduced_.push_back(std::make_unique<sim::Flag>(
        &world.sim(), "dp_ar.red.r" + std::to_string(r)));
  }
}

void DpAllReduce::AttachPayload(std::vector<rt::Buffer*> in,
                                std::vector<rt::Buffer*> out,
                                int64_t tile_elems) {
  CheckPayloadShapes(world_, in, out, tile_elems, num_tiles_ * tile_elems,
                     num_tiles_ * tile_elems);
  in_ = std::move(in);
  out_ = std::move(out);
  tile_elems_ = tile_elems;
  rs_acc_.assign(static_cast<size_t>(world_.size()), {});
  for (int r = 0; r < world_.size(); ++r) {
    const int64_t own_tiles =
        DpBlockTiles(num_tiles_, nodes_, r / per_node_);
    for (int k = 0; k + 1 < nodes_; ++k) {
      rs_acc_[static_cast<size_t>(r)].push_back(
          world_.device(r).Alloc("dp_ar.rs_acc", own_tiles * tile_elems));
    }
  }
}

sim::Coro DpAllReduce::SendToPeer(rt::RankCtx& ctx, int peer, bool rs_phase) {
  const int r = ctx.rank;
  const int n = r / per_node_, peer_node = peer / per_node_;
  const int64_t E = tile_elems_;
  // RS phase: send the partial of the peer's block. AG phase: send this
  // rank's reduced block.
  const int64_t tiles_total =
      DpBlockTiles(num_tiles_, nodes_, rs_phase ? peer_node : n);
  const int64_t block_start =
      DpBlockStart(num_tiles_, nodes_, rs_phase ? peer_node : n);
  InOrderSignal* sig =
      (rs_phase ? rs_arrived_ : ag_arrived_)[static_cast<size_t>(peer)]
          [static_cast<size_t>(SourceIndex(n, peer_node))]
              .get();
  const bool primary = IsPrimaryRailPeer(peer_node, n);
  const int64_t chunk_tiles = rail_role_.chunk_tiles();
  auto chunk = [this, r, n, peer, peer_node, rs_phase, E, primary,
                chunk_tiles, tiles_total, block_start](int64_t k) {
    LinkChunk c;
    const int64_t off = k * chunk_tiles;
    c.tiles = std::min(chunk_tiles, tiles_total - off);
    c.eager_publish =
        rs_phase &&
        EagerRailFault(world_, legacy_plan_, r, static_cast<std::size_t>(k), primary);
    if (!rs_phase) {
      // A reduced chunk leaves as soon as the reducer finishes it.
      c.gate = {block_reduced_[static_cast<size_t>(r)].get(),
                static_cast<uint64_t>(off + c.tiles)};
    }
    if (payload()) {
      c.io.world = &world_;
      if (rs_phase) {
        c.io.src = in_[static_cast<size_t>(r)];
        c.io.dst = rs_acc_[static_cast<size_t>(peer)]
                          [static_cast<size_t>(SourceIndex(n, peer_node))];
        c.io.runs.push_back({(block_start + off) * E, off * E, c.tiles * E});
        c.io.reader = RName("dp_ar.send_rs", r);
        c.io.writer = EdgeName("dp_ar.rs", r, peer);
      } else {
        c.io.src = out_[static_cast<size_t>(r)];
        c.io.dst = out_[static_cast<size_t>(peer)];
        c.io.runs.push_back(
            {(block_start + off) * E, (block_start + off) * E, c.tiles * E});
        c.io.reader = RName("dp_ar.send_ag", r);
        c.io.writer = EdgeName("dp_ar.ag", r, peer);
      }
    }
    return c;
  };
  co_await RunLinkStream(
      ctx.sim(),
      rail_role_.Stream(r, peer, tile_bytes_, sig,
                        "dp_ar.send.r" + std::to_string(r), "dp_ar.chunk",
                        CeilDiv(tiles_total, chunk_tiles), chunk));
}

sim::Coro DpAllReduce::Reducer(rt::RankCtx& ctx) {
  const int r = ctx.rank;
  const int n = r / per_node_;
  const int64_t E = tile_elems_;
  const int64_t my_tiles = DpBlockTiles(num_tiles_, nodes_, n);
  const int64_t my_start = DpBlockStart(num_tiles_, nodes_, n);
  const std::string name = RName("dp_ar.reduce", r);
  sim::TraceRecorder* tr = world_.trace();
  const int pid = world_.trace_pid(r);
  const int tid = tr != nullptr ? tr->Track(pid, name) : 0;
  int64_t cum = 0;
  while (cum < my_tiles) {
    const int64_t tiles =
        std::min<int64_t>(cfg_.nic_chunk_tiles, my_tiles - cum);
    if (payload()) {
      // Own contribution first; peer partials accumulate as they land.
      AddInto(out_[static_cast<size_t>(r)], (my_start + cum) * E,
              in_[static_cast<size_t>(r)], (my_start + cum) * E, tiles * E);
    }
    for (int k = 0; k + 1 < nodes_; ++k) {
      co_await rs_arrived_[static_cast<size_t>(r)][static_cast<size_t>(k)]
          ->tiles_arrived()
          .WaitGe(static_cast<uint64_t>(cum + tiles));
      const sim::TimeNs wake = ctx.sim()->Now();
      if (tr != nullptr) {
        const auto fin =
            rs_arrived_[static_cast<size_t>(r)][static_cast<size_t>(k)]
                ->TakeFlowCovering(static_cast<uint64_t>(cum + tiles));
        if (fin.first != 0) {
          tr->AddFlowFinish(fin.first, pid, tid, wake, fin.second);
        }
      }
      uint64_t wt = 0;
      if (payload()) {
        world_.checker().CheckRead(
            rs_acc_[static_cast<size_t>(r)][static_cast<size_t>(k)], cum * E,
            (cum + tiles) * E, wake, name);
        wt = world_.checker().OpenWrite(wake);
      }
      co_await sim::Delay{ReduceCost(
          world_, static_cast<uint64_t>(tiles) * tile_bytes_,
          cfg_.reduce_sms)};
      if (payload()) {
        AddInto(out_[static_cast<size_t>(r)], (my_start + cum) * E,
                rs_acc_[static_cast<size_t>(r)][static_cast<size_t>(k)],
                cum * E, tiles * E);
        world_.checker().RecordWrite(out_[static_cast<size_t>(r)],
                                     (my_start + cum) * E,
                                     (my_start + cum + tiles) * E, wake + 1,
                                     ctx.sim()->Now(), name,
                                     /*atomic=*/true);
        world_.checker().CloseWrite(wt);
      }
      if (tr != nullptr) {
        tr->AddSpan(pid, tid, "dp_reduce", wake, ctx.sim()->Now(),
                    sim::kCatCompute,
                    {sim::TraceArg::Num("tiles", static_cast<double>(tiles)),
                     sim::TraceArg::Num("src_slot", k)});
      }
    }
    block_reduced_[static_cast<size_t>(r)]->Add(
        static_cast<uint64_t>(tiles));
    cum += tiles;
  }
}

sim::Coro DpAllReduce::Run(rt::RankCtx& ctx) {
  co_await CollectiveEntry(ctx);
  const int r = ctx.rank;
  if (nodes_ <= 1) {  // single node: no DP group to sync
    if (payload()) {
      auto s = in_[static_cast<size_t>(r)]->data();
      auto d = out_[static_cast<size_t>(r)]->data();
      std::copy_n(s.data(), num_tiles_ * tile_elems_, d.data());
    }
    co_return;
  }
  const int n = r / per_node_, l = r % per_node_;
  std::vector<sim::Coro> work;
  for (int nn = 0; nn < nodes_; ++nn) {
    if (nn == n) continue;
    work.push_back(SendToPeer(ctx, nn * per_node_ + l, /*rs_phase=*/true));
    work.push_back(SendToPeer(ctx, nn * per_node_ + l, /*rs_phase=*/false));
  }
  work.push_back(Reducer(ctx));
  co_await sim::WhenAll(std::move(work));
  // Every other member's reduced block must have landed here.
  for (int k = 0; k + 1 < nodes_; ++k) {
    const int src_node = k < n ? k : k + 1;
    co_await ag_arrived_[static_cast<size_t>(r)][static_cast<size_t>(k)]
        ->tiles_arrived()
        .WaitGe(static_cast<uint64_t>(DpBlockTiles(num_tiles_, nodes_,
                                                   src_node)));
  }
  if (payload()) {
    world_.checker().CheckRead(out_[static_cast<size_t>(r)], 0,
                               num_tiles_ * tile_elems_, ctx.sim()->Now(),
                               RName("dp_ar.final", r));
  }
}

// ---------------------------------------------------------------------------
// Single-rank payload references
// ---------------------------------------------------------------------------

std::vector<float> RefAllGather(const std::vector<rt::Buffer*>& in) {
  std::vector<float> out;
  for (const rt::Buffer* b : in) {
    auto d = b->data();
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

std::vector<float> RefReduceScatter(const std::vector<rt::Buffer*>& in,
                                    int rank, int64_t block_elems) {
  std::vector<float> out(static_cast<size_t>(block_elems), 0.0f);
  for (const rt::Buffer* b : in) {
    auto d = b->data();
    for (int64_t i = 0; i < block_elems; ++i) {
      out[static_cast<size_t>(i)] +=
          d[static_cast<size_t>(rank * block_elems + i)];
    }
  }
  return out;
}

std::vector<float> RefDpAllReduce(const std::vector<rt::Buffer*>& in,
                                  int per_node, int rank) {
  const int l = rank % per_node;
  TL_CHECK(!in.empty());
  std::vector<float> out(
      static_cast<size_t>(in[static_cast<size_t>(l)]->num_elems()), 0.0f);
  for (std::size_t m = 0;
       m * static_cast<std::size_t>(per_node) + static_cast<std::size_t>(l) <
       in.size();
       ++m) {
    auto d = in[m * static_cast<std::size_t>(per_node) +
                static_cast<std::size_t>(l)]
                 ->data();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += d[i];
  }
  return out;
}

}  // namespace tilelink::multinode
