// Evaluators and searches for the multi-node collectives — the
// kernel_tuning analog one level up: Simulate*() builds a fresh timing-only
// World on the multi-node MachineSpec, runs the collective SPMD and returns
// the makespan; TuneDpSync() wires the evaluator, a coarse (quarter-volume)
// variant and an analytic lower bound into Autotuner::Search over the
// TuningSpace::MultiNode() axes.
#pragma once

#include <cstdint>

#include "models/model_zoo.h"
#include "sim/machine_spec.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/multinode/hier_collectives.h"

namespace tilelink::multinode {

// Per-rank parameter-gradient bytes of one transformer layer under TP
// sharding (bf16): the volume each DP group member must all-reduce.
uint64_t LayerGradBytes(const models::ModelConfig& model, int tp);

// The hand-picked two-node DP-sync knobs: the seed of every NIC-knob
// search and the defaults baseline the benches gate the tuner against.
tl::TuneCandidate DefaultDpSyncCandidate();

// ---- Collective makespans (fresh timing-only world per call) -------------
sim::TimeNs SimulateHierAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg);
sim::TimeNs SimulateFlatAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg);
sim::TimeNs SimulateHierReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg);
sim::TimeNs SimulateFlatReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg);

// ---- DP gradient sync ----------------------------------------------------
// Splits `grad_bytes` into tiles (tile count adapted to the volume so event
// counts stay bounded) and runs DpAllReduce across the node-spanning DP
// groups; the TuneCandidate supplies the NIC knobs via
// HierConfig::FromCandidate.
sim::TimeNs SimulateDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                           const tl::TuneCandidate& c);
sim::TimeNs CoarseSimulateDpSync(const sim::MachineSpec& spec,
                                 uint64_t grad_bytes,
                                 const tl::TuneCandidate& c);
// Overlap-aware bound: max(NIC wire time of both phases, reduce epilogue)
// plus the unavoidable rendezvous/setup/latency costs.
sim::TimeNs DpSyncLowerBound(const sim::MachineSpec& spec,
                             uint64_t grad_bytes, const tl::TuneCandidate& c);

// Full search over the NIC knobs (chunk tiles, staging depth), seeded so a
// tuned config is never worse than `base`.
tl::TuneResult TuneDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                          const tl::TuningSpace& space,
                          const tl::TuneCandidate& base,
                          const tl::Autotuner& tuner = tl::Autotuner());

}  // namespace tilelink::multinode
