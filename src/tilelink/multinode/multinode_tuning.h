// Evaluators and searches for the multi-node collectives — the
// kernel_tuning analog one level up: Simulate*() builds a fresh timing-only
// World on the multi-node MachineSpec, runs the collective SPMD and returns
// the makespan; TuneDpSync() wires the evaluator, a coarse (quarter-volume)
// variant and an analytic lower bound into Autotuner::Search over the
// TuningSpace::MultiNode() axes.
#pragma once

#include <cstdint>

#include "models/model_zoo.h"
#include "sim/machine_spec.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/kernels/ag_gemm_hier.h"
#include "tilelink/kernels/gemm_hier_rs.h"
#include "tilelink/multinode/hier_collectives.h"

namespace tilelink::multinode {

// Per-rank parameter-gradient bytes of one transformer layer under TP
// sharding (bf16): the volume each DP group member must all-reduce.
uint64_t LayerGradBytes(const models::ModelConfig& model, int tp);

// The hand-picked two-node DP-sync knobs: the seed of every NIC-knob
// search and the defaults baseline the benches gate the tuner against.
tl::TuneCandidate DefaultDpSyncCandidate();

// ---- Collective makespans (fresh timing-only world per call) -------------
sim::TimeNs SimulateHierAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg);
sim::TimeNs SimulateFlatAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg);
sim::TimeNs SimulateHierReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg);
sim::TimeNs SimulateFlatReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg);

// ---- DP gradient sync ----------------------------------------------------
// Splits `grad_bytes` into tiles (tile count adapted to the volume so event
// counts stay bounded) and runs DpAllReduce across the node-spanning DP
// groups; the TuneCandidate supplies the NIC knobs via
// HierConfig::FromCandidate.
sim::TimeNs SimulateDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                           const tl::TuneCandidate& c);
sim::TimeNs CoarseSimulateDpSync(const sim::MachineSpec& spec,
                                 uint64_t grad_bytes,
                                 const tl::TuneCandidate& c);
// Overlap-aware bound: max(NIC wire time of both phases, reduce epilogue)
// plus the unavoidable rendezvous/setup/latency costs.
sim::TimeNs DpSyncLowerBound(const sim::MachineSpec& spec,
                             uint64_t grad_bytes, const tl::TuneCandidate& c);

// Full search over the NIC knobs (chunk tiles, staging depth), seeded so a
// tuned config is never worse than `base`.
tl::TuneResult TuneDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                          const tl::TuningSpace& space,
                          const tl::TuneCandidate& base,
                          const tl::Autotuner& tuner = tl::Autotuner());

// ---- Fused GEMM + hierarchical ReduceScatter -----------------------------
// The first multi-node fused kernel (kernels/gemm_hier_rs): GEMM tile axes
// couple with the NIC knobs into one joint space, searched by the same
// halving autotuner and gated against the layer-level compose below.

// Candidate -> kernel config: comm_tile_m is the ring chunk rows,
// nic_chunk_tiles the ring chunks per NIC message, staging_depth the
// in-flight NIC messages per rail peer.
tl::GemmHierRsConfig GemmHierRsFromCandidate(const tl::MlpPartShape& shape,
                                             const tl::TuneCandidate& c);

// The hand-picked seed: the GemmRs layer defaults plus the two-node NIC
// defaults. `tiling` is the GEMM tiling the kernel will actually run
// (comm_tile_m is derived from its bm, so callers overriding the tiling —
// e.g. the e2e estimator's coarse bk — must pass it here, not patch the
// returned candidate).
tl::TuneCandidate DefaultGemmHierRsCandidate(
    const tl::MlpPartShape& shape, int tp,
    const compute::GemmTiling& tiling = {128, 256, 64});

// True when the candidate satisfies the kernel's divisibility constraints
// (the evaluators below return Autotuner::kInfeasible otherwise).
bool GemmHierRsFeasible(const sim::MachineSpec& spec,
                        const tl::MlpPartShape& shape,
                        const tl::TuneCandidate& c);

sim::TimeNs SimulateGemmHierRs(const sim::MachineSpec& spec,
                               const tl::MlpPartShape& shape,
                               const tl::TuneCandidate& c);
sim::TimeNs CoarseSimulateGemmHierRs(const sim::MachineSpec& spec,
                                     const tl::MlpPartShape& shape,
                                     const tl::TuneCandidate& c);
// max(GEMM compute + launch, NIC rail wire, NVLink ring wire).
sim::TimeNs GemmHierRsLowerBound(const sim::MachineSpec& spec,
                                 const tl::MlpPartShape& shape,
                                 const tl::TuneCandidate& c);

// Layer-level compose baseline the fused kernel must beat: the same GEMM
// producer as a compute-only kernel, then HierReduceScatter as a separate
// collective (one ring-chunk-sized tile per RS tile).
sim::TimeNs SimulateGemmThenHierRs(const sim::MachineSpec& spec,
                                   const tl::MlpPartShape& shape,
                                   const tl::TuneCandidate& c);

tl::TuneResult TuneGemmHierRs(const sim::MachineSpec& spec,
                              const tl::MlpPartShape& shape,
                              const tl::TuningSpace& space,
                              const tl::TuneCandidate& base,
                              const tl::Autotuner& tuner = tl::Autotuner());

// ---- Fused hierarchical AllGather + GEMM ---------------------------------
// The first planner-generated kernel (kernels/ag_gemm_hier): the NIC rail
// and the node-local NVLink ring gather the activation shards while the
// GEMM consumes arrived rows, searched over TuningSpace::AgGemmHier() and
// gated against the AllGather-then-GEMM compose below.

// Candidate -> kernel config: comm_tile_m is the AG chunk rows,
// nic_chunk_tiles the AG chunks per NIC rail message, staging_depth the
// in-flight NIC messages per rail peer.
tl::AgGemmHierConfig AgGemmHierFromCandidate(const tl::MlpPartShape& shape,
                                             const tl::TuneCandidate& c);

// The hand-picked seed: ag_gemm layer defaults plus the two-node NIC
// defaults; comm_tile_m is derived from the tiling the kernel will run.
tl::TuneCandidate DefaultAgGemmHierCandidate(
    const tl::MlpPartShape& shape, int tp,
    const compute::GemmTiling& tiling = {128, 256, 64});

bool AgGemmHierFeasible(const sim::MachineSpec& spec,
                        const tl::MlpPartShape& shape,
                        const tl::TuneCandidate& c);

sim::TimeNs SimulateAgGemmHier(const sim::MachineSpec& spec,
                               const tl::MlpPartShape& shape,
                               const tl::TuneCandidate& c);
sim::TimeNs CoarseSimulateAgGemmHier(const sim::MachineSpec& spec,
                                     const tl::MlpPartShape& shape,
                                     const tl::TuneCandidate& c);
// max(GEMM compute + launch, NIC rail wire, NVLink ring wire).
sim::TimeNs AgGemmHierLowerBound(const sim::MachineSpec& spec,
                                 const tl::MlpPartShape& shape,
                                 const tl::TuneCandidate& c);

// Layer-level compose baseline the fused kernel must beat: HierAllGather
// over the activation shards, then the GEMM as a compute-only kernel.
sim::TimeNs SimulateHierAgThenGemm(const sim::MachineSpec& spec,
                                   const tl::MlpPartShape& shape,
                                   const tl::TuneCandidate& c);

tl::TuneResult TuneAgGemmHier(const sim::MachineSpec& spec,
                              const tl::MlpPartShape& shape,
                              const tl::TuningSpace& space,
                              const tl::TuneCandidate& base,
                              const tl::Autotuner& tuner = tl::Autotuner());

}  // namespace tilelink::multinode
