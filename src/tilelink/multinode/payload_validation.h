// End-to-end validation drivers for the functional multi-node collectives:
// build a functional World with the ConsistencyChecker enabled, fill every
// rank's input with a deterministic integer-valued lattice (fp32 sums of
// small integers are exact, so the multi-rank reductions are bit-exact
// under any accumulation order), run the collective with a payload
// attached, and compare every rank's output bit-for-bit against the
// single-rank references.
//
// The same drivers carry the §4.2 fault injection: set
// HierConfig::unsafe_rail_{src,chunk} and a safe run's `bit_exact &&
// violations == 0` flips to `violations >= 1` — the checker catches the
// dropped prefix-publication ordering on the NIC stage instead of letting a
// silently wrong (or silently right-by-luck) answer through.
//
// Every driver also takes an optional sim::FaultPlan: the plan is attached
// to the World before the run, so transient drops/spikes exercise the link
// roles' retry path and rail degrades exercise failover, while the
// bit-exactness and checker gates stay exactly as strict as the fault-free
// run. The caller keeps the plan alive for the duration of the call.
#pragma once

#include <cstdint>

#include "sim/fault.h"
#include "sim/machine_spec.h"
#include "tilelink/kernels/ag_gemm_hier.h"
#include "tilelink/kernels/gemm_hier_rs.h"
#include "tilelink/multinode/hier_collectives.h"

namespace tilelink::sim {
class TraceRecorder;
}  // namespace tilelink::sim

namespace tilelink::multinode {

struct PayloadReport {
  bool bit_exact = false;     // every rank matched its reference
  std::size_t violations = 0; // consistency violations found
  sim::TimeNs makespan = 0;   // identical to the timing-only makespan
  sim::FaultStats faults;     // drops/spikes/timeouts injected + retries run
  // Checker pressure: intervals still live after the end-of-run retirement
  // and intervals retired over the whole run (live + retired = total
  // intervals audited).
  std::size_t checker_live = 0;
  std::size_t checker_retired = 0;

  bool ok() const { return bit_exact && violations == 0; }
};

// Every driver optionally records a fabric-wide timeline: pass a recorder
// (and a pid base when several validations share one file) and the driver
// attaches it to its World before constructing the collective, so signal
// publications, chunk spans, counters and fault instants all land in it.
// Tracing never changes the reported makespan (pinned by test_trace).

PayloadReport ValidateHierAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems, const HierConfig& cfg,
                                    const sim::FaultPlan* plan = nullptr,
                                    sim::TraceRecorder* trace = nullptr,
                                    int trace_pid_base = 0);
PayloadReport ValidateFlatAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems, const HierConfig& cfg,
                                    const sim::FaultPlan* plan = nullptr,
                                    sim::TraceRecorder* trace = nullptr,
                                    int trace_pid_base = 0);
PayloadReport ValidateHierReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles, uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg,
                                        const sim::FaultPlan* plan = nullptr,
                                        sim::TraceRecorder* trace = nullptr,
                                        int trace_pid_base = 0);
PayloadReport ValidateFlatReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles, uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg,
                                        const sim::FaultPlan* plan = nullptr,
                                        sim::TraceRecorder* trace = nullptr,
                                        int trace_pid_base = 0);
PayloadReport ValidateDpAllReduce(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  int64_t tile_elems, const HierConfig& cfg,
                                  const sim::FaultPlan* plan = nullptr,
                                  sim::TraceRecorder* trace = nullptr,
                                  int trace_pid_base = 0);

// Fused-kernel validation: run GemmHierRs on a functional world with
// integer-lattice A/B (fp32 sums of small integers are exact, so the
// multi-stage reduction is bit-exact under any accumulation order) and
// compare every rank's output block bit-for-bit against the single-rank
// reference sum(A_p @ B_p) over all ranks p. Every ring/rail chunk goes
// through the compiled kernel's checker instrumentation, so `violations`
// counts real consistency races in the fused pipeline.
PayloadReport ValidateGemmHierRs(const sim::MachineSpec& spec,
                                 const tl::GemmHierRsConfig& cfg,
                                 const sim::FaultPlan* plan = nullptr,
                                 sim::TraceRecorder* trace = nullptr,
                                 int trace_pid_base = 0);

// Generated-kernel validation: run AgGemmHier on a functional world and
// compare every rank's [M, N] output bit-for-bit against gathered-A @ B_r.
// Every publish/ring-forward/rail chunk goes through the compiled kernel's
// checker instrumentation (including the per-run strip registration).
PayloadReport ValidateAgGemmHier(const sim::MachineSpec& spec,
                                 const tl::AgGemmHierConfig& cfg,
                                 const sim::FaultPlan* plan = nullptr,
                                 sim::TraceRecorder* trace = nullptr,
                                 int trace_pid_base = 0);

}  // namespace tilelink::multinode
