// End-to-end validation drivers for the functional multi-node collectives:
// build a functional World with the ConsistencyChecker enabled, fill every
// rank's input with a deterministic integer-valued lattice (fp32 sums of
// small integers are exact, so the multi-rank reductions are bit-exact
// under any accumulation order), run the collective with a payload
// attached, and compare every rank's output bit-for-bit against the
// single-rank references.
//
// The same drivers carry the §4.2 fault injection: set
// HierConfig::unsafe_rail_{src,chunk} and a safe run's `bit_exact &&
// violations == 0` flips to `violations >= 1` — the checker catches the
// dropped prefix-publication ordering on the NIC stage instead of letting a
// silently wrong (or silently right-by-luck) answer through.
#pragma once

#include <cstdint>

#include "sim/machine_spec.h"
#include "tilelink/multinode/hier_collectives.h"

namespace tilelink::multinode {

struct PayloadReport {
  bool bit_exact = false;     // every rank matched its reference
  std::size_t violations = 0; // consistency violations found
  sim::TimeNs makespan = 0;   // identical to the timing-only makespan

  bool ok() const { return bit_exact && violations == 0; }
};

PayloadReport ValidateHierAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems, const HierConfig& cfg);
PayloadReport ValidateFlatAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems, const HierConfig& cfg);
PayloadReport ValidateHierReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles, uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg);
PayloadReport ValidateFlatReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles, uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg);
PayloadReport ValidateDpAllReduce(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  int64_t tile_elems, const HierConfig& cfg);

}  // namespace tilelink::multinode
