// Hierarchical tile-granular collectives over the two-fabric machine.
//
// The flow-level Network always modeled both fabrics (NVLink within a node,
// NICs across nodes), but every collective above it was single-fabric: a
// flat ring over the world treats the two NIC hops of a 2x8 ring like
// NVLink hops and bottlenecks on them. These collectives split the work
// into an intra-node NVLink ring stage and an inter-node NIC "rail"
// exchange stage (rank (node, l) talks to (node', l)), pipelined against
// each other at tile granularity: a NIC chunk enters the NVLink ring as
// soon as it lands, and a reduced chunk leaves for the rail peer as soon
// as the ring finishes it. The flat single-stage variants are kept as the
// baseline the benchmarks compare against (T3/Syncopate both show the gap
// between the two is the point of modeling the hierarchy at all).
//
// The chunk-pipeline machinery itself — windowed sends, in-order arrival
// publication, payload/checker instrumentation — is the builder layer's
// tile-centric link roles (tilelink/builder/link_roles.h): each collective
// instantiates a NicRailRole and/or NvlinkRingRole and describes its chunk
// schedule (gates + payload runs) per stream. Fused kernels bind the same
// roles through RolePlan::Comm (kernels/gemm_hier_rs).
//
// Two modes:
//  * Timing-only (default): `num_tiles` tiles of `tile_bytes` per rank move
//    through the fabric models, no tensor payloads — the granularity the
//    multi-node e2e path and the autotuner need.
//  * Functional payload mode (AttachPayload on a functional World): every
//    chunk additionally moves `tile_elems` fp32 values per tile through
//    real buffers, each chunk send registers a write interval and each
//    forward/reduce a read probe on the World's ConsistencyChecker, and the
//    result is verifiable bit-exactly against the single-rank references
//    below. Payload mode adds no simulated time: makespans are identical
//    with it on or off.
//
// SPMD usage: construct once outside World::RunSpmd, co_await Run(ctx) on
// every rank. Objects are single-shot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/world.h"
#include "sim/coro.h"
#include "sim/flag.h"
#include "tilelink/builder/link_roles.h"
#include "tilelink/builder/tuning_space.h"

namespace tilelink::multinode {

// The in-order chunk-arrival signal now lives with the link roles in the
// builder layer; collectives keep addressing it under its historical name.
using tl::InOrderSignal;

// Knobs of the multi-node design space (the TuningSpace::MultiNode() axes
// plus the intra-node channel width the single-node kernels already tune).
struct HierConfig {
  int nic_chunk_tiles = 4;   // tiles per NIC message
  int staging_depth = 2;     // NIC messages in flight per peer (clamped by
                             // the ResourceBudget NIC channel budget)
  int intra_chunk_tiles = 2; // tiles per NVLink ring message
  int intra_channels = 4;    // NVLink ring messages in flight
  int reduce_sms = 20;       // SMs billed for reduction epilogues

  // §4.2 fault injection — the collective analog of
  // CompilerOptions::unsafe_reorder. When both are >= 0, exactly one NIC
  // rail chunk — chunk `unsafe_rail_chunk` of rank `unsafe_rail_src`'s
  // first rail exchange (its lowest-node peer) — publishes its arrival
  // signal when the send *starts* instead of when the payload lands: the
  // receiver's in-order prefix advances early, downstream consumers read
  // mid-flight, and in payload mode the ConsistencyChecker must report the
  // race instead of letting a silently-wrong answer through. Safe mode
  // leaves both at -1.
  //
  // These knobs are now a thin shim over sim::FaultPlan's reorder-fault
  // kind (ReorderRailChunk): the collective builds a private plan from them
  // at construction, so there is exactly one fault-description mechanism.
  // The same reorder injected through a plan attached to the World
  // (rt::World::set_fault_plan) behaves identically; the shim plan stays
  // collective-local and reorder-only, so it never perturbs timing.
  int unsafe_rail_src = -1;
  int unsafe_rail_chunk = -1;

  static HierConfig FromCandidate(const tl::TuneCandidate& c);

  // Rejects non-positive chunk sizes, window depths and SM counts up front
  // with a clear message instead of failing deep inside a chunk loop.
  void Validate() const;
};

// Two-stage AllGather: every rank contributes num_tiles tiles; every rank
// ends holding all world_size * num_tiles tiles. Stage 1 exchanges shards
// between rail peers over the NIC; stage 2 runs a chunked NVLink ring over
// each node's ranks, forwarding rail tiles as they land.
class HierAllGather {
 public:
  HierAllGather(rt::World& world, int64_t num_tiles, uint64_t tile_bytes,
                const HierConfig& cfg);
  sim::Coro Run(rt::RankCtx& ctx);

  // Functional payload mode: in[r] is rank r's shard (num_tiles *
  // tile_elems fp32), out[r] receives all world_size blocks in global-rank
  // order. Requires a functional World; call before Run.
  void AttachPayload(std::vector<rt::Buffer*> in,
                     std::vector<rt::Buffer*> out, int64_t tile_elems);

  // Effective per-peer NIC staging depth after the channel-budget clamp.
  int effective_staging_depth() const { return rail_role_.window(); }

 private:
  sim::Coro RailSend(rt::RankCtx& ctx, int peer);
  sim::Coro RingSend(rt::RankCtx& ctx);
  bool payload() const { return tile_elems_ > 0; }

  rt::World& world_;
  int64_t num_tiles_;
  uint64_t tile_bytes_;
  HierConfig cfg_;
  sim::FaultPlan legacy_plan_;  // unsafe_rail_* shim (reorder-only, local)
  int nodes_, per_node_;
  tl::NicRailRole rail_role_;
  tl::NvlinkRingRole ring_role_;
  // rail_[r][k]: tiles arrived at rank r from its k-th rail peer (node
  // order, own node skipped).
  std::vector<std::vector<std::unique_ptr<InOrderSignal>>> rail_;
  // ring_[r]: tiles arrived at rank r from its left ring neighbor, in the
  // ring send-sequence order.
  std::vector<std::unique_ptr<InOrderSignal>> ring_;
  // Payload mode.
  std::vector<rt::Buffer*> in_, out_;
  int64_t tile_elems_ = 0;
};

// Flat single-stage baseline: one chunked ring over all ranks in global id
// order; World::Transfer routes each hop (the node-boundary hops land on
// the NIC and throttle the whole ring).
class FlatAllGather {
 public:
  FlatAllGather(rt::World& world, int64_t num_tiles, uint64_t tile_bytes,
                const HierConfig& cfg);
  sim::Coro Run(rt::RankCtx& ctx);

  // Same payload layout as HierAllGather.
  void AttachPayload(std::vector<rt::Buffer*> in,
                     std::vector<rt::Buffer*> out, int64_t tile_elems);

 private:
  bool payload() const { return tile_elems_ > 0; }

  rt::World& world_;
  int64_t num_tiles_;
  uint64_t tile_bytes_;
  HierConfig cfg_;
  std::vector<std::unique_ptr<InOrderSignal>> ring_;
  std::vector<rt::Buffer*> in_, out_;
  int64_t tile_elems_ = 0;
};

// Two-stage ReduceScatter: every rank holds world_size * num_tiles partial
// tiles; rank r ends with its num_tiles fully reduced. Stage 1 ring-reduces
// within the node over NVLink (rank (n, l) accumulates the node's partial
// for every block with local index l); stage 2 exchanges node partials
// between rail peers over the NIC and reduces on arrival.
class HierReduceScatter {
 public:
  HierReduceScatter(rt::World& world, int64_t num_tiles, uint64_t tile_bytes,
                    const HierConfig& cfg);
  sim::Coro Run(rt::RankCtx& ctx);

  // Functional payload mode: in[r] holds one partial tile-block per
  // destination rank in global-rank order (world_size * num_tiles *
  // tile_elems fp32); out[r] receives rank r's fully reduced block
  // (num_tiles * tile_elems). Requires a functional World; call before Run.
  void AttachPayload(std::vector<rt::Buffer*> in,
                     std::vector<rt::Buffer*> out, int64_t tile_elems);

 private:
  sim::Coro RingSend(rt::RankCtx& ctx);
  sim::Coro RingReducer(rt::RankCtx& ctx);
  sim::Coro RailSend(rt::RankCtx& ctx, int peer, int peer_index);
  sim::Coro RailReducer(rt::RankCtx& ctx);
  sim::Coro OwnContribution(rt::RankCtx& ctx);  // payload mode only
  bool payload() const { return tile_elems_ > 0; }

  rt::World& world_;
  int64_t num_tiles_;
  uint64_t tile_bytes_;
  HierConfig cfg_;
  sim::FaultPlan legacy_plan_;  // unsafe_rail_* shim (reorder-only, local)
  int nodes_, per_node_;
  int64_t group_tiles_;  // nodes * num_tiles, one intra-ring group
  tl::NicRailRole rail_role_;
  tl::NvlinkRingRole ring_role_;
  std::vector<std::unique_ptr<InOrderSignal>> ring_;       // raw arrivals
  std::vector<std::unique_ptr<sim::Flag>> ring_reduced_;   // after reduce
  std::vector<std::vector<std::unique_ptr<InOrderSignal>>> rail_;
  // Trace-only: pairs ring_reduced_ publications with flow arrows so a rail
  // chunk's span binds the reducer span that unblocked it (the middle link
  // of the producer -> ring -> reduce -> rail -> reduce chain).
  std::vector<std::unique_ptr<tl::FlowLedger>> ring_red_ledger_;
  // Payload mode: ring arrival/accumulation area ((per_node-1)*group_tiles
  // tiles, one slot per arrival position) and per-source rail staging.
  std::vector<rt::Buffer*> in_, out_;
  std::vector<rt::Buffer*> ring_acc_;
  std::vector<std::vector<rt::Buffer*>> rail_acc_;
  int64_t tile_elems_ = 0;
};

// Flat single-stage baseline ReduceScatter (chunked ring over all ranks).
class FlatReduceScatter {
 public:
  FlatReduceScatter(rt::World& world, int64_t num_tiles, uint64_t tile_bytes,
                    const HierConfig& cfg);
  sim::Coro Run(rt::RankCtx& ctx);

  // Same payload layout as HierReduceScatter.
  void AttachPayload(std::vector<rt::Buffer*> in,
                     std::vector<rt::Buffer*> out, int64_t tile_elems);

 private:
  sim::Coro RingSend(rt::RankCtx& ctx);
  sim::Coro RingReducer(rt::RankCtx& ctx);
  bool payload() const { return tile_elems_ > 0; }

  rt::World& world_;
  int64_t num_tiles_;
  uint64_t tile_bytes_;
  HierConfig cfg_;
  std::vector<std::unique_ptr<InOrderSignal>> ring_;
  std::vector<std::unique_ptr<sim::Flag>> ring_reduced_;
  std::vector<rt::Buffer*> in_, out_;
  std::vector<rt::Buffer*> ring_acc_;  // (R-1)*num_tiles arrival positions
  int64_t tile_elems_ = 0;
};

// Cross-node data-parallel AllReduce: each rank holds `num_tiles` gradient
// tiles replicated across its DP group {(node, l) : node} — the 16-GPU
// TP8 x DP2 layout, where the group never leaves the NIC. Tile-granular
// ReduceScatter + AllGather within the group, every member's NIC port
// active in both directions, reduces overlapped with the wire at chunk
// granularity.
class DpAllReduce {
 public:
  DpAllReduce(rt::World& world, int64_t num_tiles, uint64_t tile_bytes,
              const HierConfig& cfg);
  sim::Coro Run(rt::RankCtx& ctx);

  // Functional payload mode: in[r] is rank r's gradient (num_tiles *
  // tile_elems fp32); out[r] receives the group sum. Requires a functional
  // World; call before Run. The unsafe_rail fault applies to the
  // ReduceScatter phase (the AllGather phase has no downstream consumer
  // inside the collective to race with).
  void AttachPayload(std::vector<rt::Buffer*> in,
                     std::vector<rt::Buffer*> out, int64_t tile_elems);

  int effective_staging_depth() const { return rail_role_.window(); }

 private:
  sim::Coro SendToPeer(rt::RankCtx& ctx, int peer, bool rs_phase);
  sim::Coro Reducer(rt::RankCtx& ctx);
  bool payload() const { return tile_elems_ > 0; }

  rt::World& world_;
  int64_t num_tiles_;
  uint64_t tile_bytes_;
  HierConfig cfg_;
  sim::FaultPlan legacy_plan_;  // unsafe_rail_* shim (reorder-only, local)
  int nodes_, per_node_;
  tl::NicRailRole rail_role_;
  std::vector<std::vector<std::unique_ptr<InOrderSignal>>> rs_arrived_;
  std::vector<std::unique_ptr<sim::Flag>> block_reduced_;
  std::vector<std::vector<std::unique_ptr<InOrderSignal>>> ag_arrived_;
  // Payload mode: per-source staging for the RS phase of the own block.
  std::vector<rt::Buffer*> in_, out_;
  std::vector<std::vector<rt::Buffer*>> rs_acc_;
  int64_t tile_elems_ = 0;
};

// ---- Single-rank payload references ---------------------------------------
// fp32, rank-ordered accumulation; bit-exact against the collectives for
// integer-valued inputs (see FillIntLattice) regardless of the collectives'
// internal accumulation order.

// Concatenation of every rank's shard in global-rank order.
std::vector<float> RefAllGather(const std::vector<rt::Buffer*>& in);
// Sum over ranks of in[p]'s block for `rank` (block_elems fp32 per block).
std::vector<float> RefReduceScatter(const std::vector<rt::Buffer*>& in,
                                    int rank, int64_t block_elems);
// Sum over rank's DP group {m * per_node + rank % per_node : m}.
std::vector<float> RefDpAllReduce(const std::vector<rt::Buffer*>& in,
                                  int per_node, int rank);

}  // namespace tilelink::multinode
