#include "tilelink/multinode/payload_validation.h"

#include <algorithm>
#include <vector>

#include "runtime/world.h"
#include "sim/trace.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace tilelink::multinode {
namespace {

std::vector<rt::Buffer*> AllocFilled(rt::World& world, const char* name,
                                     int64_t elems, bool fill) {
  std::vector<rt::Buffer*> bufs = world.AllocSymmetric(name, elems);
  if (fill) {
    for (int r = 0; r < world.size(); ++r) {
      Tensor t(bufs[static_cast<size_t>(r)], {elems}, DType::kFP32);
      FillIntLattice(t, /*seed=*/static_cast<uint32_t>(r) * 7919u + 1u);
    }
  }
  return bufs;
}

bool BufferMatches(rt::Buffer* buf, const std::vector<float>& ref) {
  const int64_t n = static_cast<int64_t>(ref.size());
  if (buf->num_elems() != n) return false;
  rt::Buffer ref_buf(buf->device(), "ref", n, /*materialize=*/true);
  std::copy(ref.begin(), ref.end(), ref_buf.data().begin());
  return BitExact(Tensor(buf, {n}, DType::kFP32),
                  Tensor(&ref_buf, {n}, DType::kFP32));
}

// Shared driver: Collective is any of the five payload-capable classes,
// `expect` produces rank r's reference output.
template <typename Collective, typename ExpectFn>
PayloadReport RunValidation(const sim::MachineSpec& spec, int64_t num_tiles,
                            uint64_t tile_bytes, int64_t tile_elems,
                            const HierConfig& cfg, int64_t in_elems,
                            int64_t out_elems, const sim::FaultPlan* plan,
                            sim::TraceRecorder* trace, int trace_pid_base,
                            const char* trace_label, const ExpectFn& expect) {
  rt::World world(spec, rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);
  world.set_fault_plan(plan);
  // Attach the recorder before constructing the collective: the ctor
  // captures per-rank trace pids into its signals and streams.
  if (trace != nullptr) world.set_trace(trace, trace_pid_base, trace_label);
  std::vector<rt::Buffer*> in =
      AllocFilled(world, "payload.in", in_elems, /*fill=*/true);
  std::vector<rt::Buffer*> out =
      AllocFilled(world, "payload.out", out_elems, /*fill=*/false);
  Collective coll(world, num_tiles, tile_bytes, cfg);
  coll.AttachPayload(in, out, tile_elems);
  PayloadReport report;
  report.makespan = world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await coll.Run(ctx); });
  report.violations = world.checker().violations().size();
  report.faults = world.fault_stats();
  report.checker_live =
      world.checker().live_writes() + world.checker().live_reads();
  report.checker_retired = world.checker().retired_intervals();
  report.bit_exact = true;
  for (int r = 0; r < world.size(); ++r) {
    if (!BufferMatches(out[static_cast<size_t>(r)], expect(in, r))) {
      report.bit_exact = false;
    }
  }
  return report;
}

}  // namespace

PayloadReport ValidateHierAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems,
                                    const HierConfig& cfg,
                                    const sim::FaultPlan* plan,
                                    sim::TraceRecorder* trace,
                                    int trace_pid_base) {
  return RunValidation<HierAllGather>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      spec.num_devices * num_tiles * tile_elems, plan, trace, trace_pid_base,
      "hier_ag",
      [](const std::vector<rt::Buffer*>& in, int) {
        return RefAllGather(in);
      });
}

PayloadReport ValidateFlatAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems,
                                    const HierConfig& cfg,
                                    const sim::FaultPlan* plan,
                                    sim::TraceRecorder* trace,
                                    int trace_pid_base) {
  return RunValidation<FlatAllGather>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      spec.num_devices * num_tiles * tile_elems, plan, trace, trace_pid_base,
      "flat_ag",
      [](const std::vector<rt::Buffer*>& in, int) {
        return RefAllGather(in);
      });
}

PayloadReport ValidateHierReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles,
                                        uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg,
                                        const sim::FaultPlan* plan,
                                        sim::TraceRecorder* trace,
                                        int trace_pid_base) {
  return RunValidation<HierReduceScatter>(
      spec, num_tiles, tile_bytes, tile_elems, cfg,
      spec.num_devices * num_tiles * tile_elems, num_tiles * tile_elems,
      plan, trace, trace_pid_base, "hier_rs",
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefReduceScatter(in, r, num_tiles * tile_elems);
      });
}

PayloadReport ValidateFlatReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles,
                                        uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg,
                                        const sim::FaultPlan* plan,
                                        sim::TraceRecorder* trace,
                                        int trace_pid_base) {
  return RunValidation<FlatReduceScatter>(
      spec, num_tiles, tile_bytes, tile_elems, cfg,
      spec.num_devices * num_tiles * tile_elems, num_tiles * tile_elems,
      plan, trace, trace_pid_base, "flat_rs",
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefReduceScatter(in, r, num_tiles * tile_elems);
      });
}

PayloadReport ValidateDpAllReduce(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  int64_t tile_elems, const HierConfig& cfg,
                                  const sim::FaultPlan* plan,
                                  sim::TraceRecorder* trace,
                                  int trace_pid_base) {
  return RunValidation<DpAllReduce>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      num_tiles * tile_elems, plan, trace, trace_pid_base, "dp_ar",
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefDpAllReduce(in, spec.devices_per_node, r);
      });
}

PayloadReport ValidateGemmHierRs(const sim::MachineSpec& spec,
                                 const tl::GemmHierRsConfig& cfg,
                                 const sim::FaultPlan* plan,
                                 sim::TraceRecorder* trace,
                                 int trace_pid_base) {
  rt::World world(spec, rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);
  world.set_fault_plan(plan);
  if (trace != nullptr) world.set_trace(trace, trace_pid_base, "gemm_hier_rs");
  tl::GemmHierRs kernel(world, cfg);
  const int R = spec.num_devices;
  for (int r = 0; r < R; ++r) {
    // Default lattice range: values in [-8, 8] vary per position (a
    // narrower range degenerates to constant tensors under the Knuth hash
    // and would make bit-exactness vacuous). Exactness bound: |partial| <=
    // 64 * k and the cross-rank sum stays far below 2^24.
    FillIntLattice(kernel.a()[static_cast<size_t>(r)],
                   /*seed=*/static_cast<uint32_t>(r) * 7919u + 1u);
    FillIntLattice(kernel.b()[static_cast<size_t>(r)],
                   /*seed=*/static_cast<uint32_t>(r) * 104729u + 3u);
  }
  PayloadReport report;
  report.makespan = world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  report.violations = world.checker().violations().size();
  report.faults = world.fault_stats();
  report.checker_live =
      world.checker().live_writes() + world.checker().live_reads();
  report.checker_retired = world.checker().retired_intervals();
  // Single-rank reference: out[r] = sum_p (A_p @ B_p) rows of block r.
  // Integer-lattice inputs keep every partial and cross-rank sum an exact
  // fp32 integer, so equality is exact, not approximate.
  const int64_t m_per_rank = cfg.m / R;
  report.bit_exact = true;
  for (int r = 0; r < R && report.bit_exact; ++r) {
    Tensor out = kernel.out()[static_cast<size_t>(r)];
    for (int64_t i = 0; i < m_per_rank && report.bit_exact; ++i) {
      const int64_t row = r * m_per_rank + i;
      for (int64_t j = 0; j < cfg.n; ++j) {
        double ref = 0.0;
        for (int p = 0; p < R; ++p) {
          Tensor& a = kernel.a()[static_cast<size_t>(p)];
          Tensor& b = kernel.b()[static_cast<size_t>(p)];
          for (int64_t kk = 0; kk < cfg.k; ++kk) {
            ref += static_cast<double>(a.at({row, kk})) *
                   static_cast<double>(b.at({kk, j}));
          }
        }
        if (out.at({i, j}) != static_cast<float>(ref)) {
          report.bit_exact = false;
          break;
        }
      }
    }
  }
  return report;
}

PayloadReport ValidateAgGemmHier(const sim::MachineSpec& spec,
                                 const tl::AgGemmHierConfig& cfg,
                                 const sim::FaultPlan* plan,
                                 sim::TraceRecorder* trace,
                                 int trace_pid_base) {
  rt::World world(spec, rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);
  world.set_fault_plan(plan);
  if (trace != nullptr) world.set_trace(trace, trace_pid_base, "ag_gemm_hier");
  tl::AgGemmHier kernel(world, cfg);
  const int R = spec.num_devices;
  for (int r = 0; r < R; ++r) {
    FillIntLattice(kernel.a_shards()[static_cast<size_t>(r)],
                   /*seed=*/static_cast<uint32_t>(r) * 7919u + 1u);
    FillIntLattice(kernel.b()[static_cast<size_t>(r)],
                   /*seed=*/static_cast<uint32_t>(r) * 104729u + 3u);
  }
  PayloadReport report;
  report.makespan = world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  report.violations = world.checker().violations().size();
  report.faults = world.fault_stats();
  report.checker_live =
      world.checker().live_writes() + world.checker().live_reads();
  report.checker_retired = world.checker().retired_intervals();
  // Single-rank reference: c[r] = gathered-A @ B_r — row p * m_per_rank + i
  // comes from shard p. Integer-lattice inputs keep every dot product an
  // exact fp32 integer, so equality is exact, not approximate.
  const int64_t m_per_rank = cfg.m / R;
  report.bit_exact = true;
  for (int r = 0; r < R && report.bit_exact; ++r) {
    Tensor c = kernel.c()[static_cast<size_t>(r)];
    Tensor& b = kernel.b()[static_cast<size_t>(r)];
    for (int p = 0; p < R && report.bit_exact; ++p) {
      Tensor& a = kernel.a_shards()[static_cast<size_t>(p)];
      for (int64_t i = 0; i < m_per_rank && report.bit_exact; ++i) {
        const int64_t row = p * m_per_rank + i;
        for (int64_t j = 0; j < cfg.n; ++j) {
          double ref = 0.0;
          for (int64_t kk = 0; kk < cfg.k; ++kk) {
            ref += static_cast<double>(a.at({i, kk})) *
                   static_cast<double>(b.at({kk, j}));
          }
          if (c.at({row, j}) != static_cast<float>(ref)) {
            report.bit_exact = false;
            break;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace tilelink::multinode
