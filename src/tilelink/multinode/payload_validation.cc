#include "tilelink/multinode/payload_validation.h"

#include <algorithm>
#include <vector>

#include "runtime/world.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace tilelink::multinode {
namespace {

std::vector<rt::Buffer*> AllocFilled(rt::World& world, const char* name,
                                     int64_t elems, bool fill) {
  std::vector<rt::Buffer*> bufs = world.AllocSymmetric(name, elems);
  if (fill) {
    for (int r = 0; r < world.size(); ++r) {
      Tensor t(bufs[static_cast<size_t>(r)], {elems}, DType::kFP32);
      FillIntLattice(t, /*seed=*/static_cast<uint32_t>(r) * 7919u + 1u);
    }
  }
  return bufs;
}

bool BufferMatches(rt::Buffer* buf, const std::vector<float>& ref) {
  const int64_t n = static_cast<int64_t>(ref.size());
  if (buf->num_elems() != n) return false;
  rt::Buffer ref_buf(buf->device(), "ref", n, /*materialize=*/true);
  std::copy(ref.begin(), ref.end(), ref_buf.data().begin());
  return BitExact(Tensor(buf, {n}, DType::kFP32),
                  Tensor(&ref_buf, {n}, DType::kFP32));
}

// Shared driver: Collective is any of the five payload-capable classes,
// `expect` produces rank r's reference output.
template <typename Collective, typename ExpectFn>
PayloadReport RunValidation(const sim::MachineSpec& spec, int64_t num_tiles,
                            uint64_t tile_bytes, int64_t tile_elems,
                            const HierConfig& cfg, int64_t in_elems,
                            int64_t out_elems, const ExpectFn& expect) {
  rt::World world(spec, rt::ExecMode::kFunctional);
  world.checker().set_enabled(true);
  std::vector<rt::Buffer*> in =
      AllocFilled(world, "payload.in", in_elems, /*fill=*/true);
  std::vector<rt::Buffer*> out =
      AllocFilled(world, "payload.out", out_elems, /*fill=*/false);
  Collective coll(world, num_tiles, tile_bytes, cfg);
  coll.AttachPayload(in, out, tile_elems);
  PayloadReport report;
  report.makespan = world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await coll.Run(ctx); });
  report.violations = world.checker().violations().size();
  report.bit_exact = true;
  for (int r = 0; r < world.size(); ++r) {
    if (!BufferMatches(out[static_cast<size_t>(r)], expect(in, r))) {
      report.bit_exact = false;
    }
  }
  return report;
}

}  // namespace

PayloadReport ValidateHierAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems,
                                    const HierConfig& cfg) {
  return RunValidation<HierAllGather>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      spec.num_devices * num_tiles * tile_elems,
      [](const std::vector<rt::Buffer*>& in, int) {
        return RefAllGather(in);
      });
}

PayloadReport ValidateFlatAllGather(const sim::MachineSpec& spec,
                                    int64_t num_tiles, uint64_t tile_bytes,
                                    int64_t tile_elems,
                                    const HierConfig& cfg) {
  return RunValidation<FlatAllGather>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      spec.num_devices * num_tiles * tile_elems,
      [](const std::vector<rt::Buffer*>& in, int) {
        return RefAllGather(in);
      });
}

PayloadReport ValidateHierReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles,
                                        uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg) {
  return RunValidation<HierReduceScatter>(
      spec, num_tiles, tile_bytes, tile_elems, cfg,
      spec.num_devices * num_tiles * tile_elems, num_tiles * tile_elems,
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefReduceScatter(in, r, num_tiles * tile_elems);
      });
}

PayloadReport ValidateFlatReduceScatter(const sim::MachineSpec& spec,
                                        int64_t num_tiles,
                                        uint64_t tile_bytes,
                                        int64_t tile_elems,
                                        const HierConfig& cfg) {
  return RunValidation<FlatReduceScatter>(
      spec, num_tiles, tile_bytes, tile_elems, cfg,
      spec.num_devices * num_tiles * tile_elems, num_tiles * tile_elems,
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefReduceScatter(in, r, num_tiles * tile_elems);
      });
}

PayloadReport ValidateDpAllReduce(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  int64_t tile_elems, const HierConfig& cfg) {
  return RunValidation<DpAllReduce>(
      spec, num_tiles, tile_bytes, tile_elems, cfg, num_tiles * tile_elems,
      num_tiles * tile_elems,
      [&](const std::vector<rt::Buffer*>& in, int r) {
        return RefDpAllReduce(in, spec.devices_per_node, r);
      });
}

}  // namespace tilelink::multinode
