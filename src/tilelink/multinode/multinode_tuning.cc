#include "tilelink/multinode/multinode_tuning.h"

#include <algorithm>
#include <limits>

#include "common/math_utils.h"
#include "runtime/world.h"
#include "tilelink/builder/comm_bounds.h"
#include "tilelink/builder/fused_kernel_base.h"
#include "tilelink/kernels/gemm_producer.h"

namespace tilelink::multinode {
namespace {

// Tile count for a gradient buffer: ~1 MiB tiles, clamped so tiny buffers
// still pipeline and huge ones stay cheap to simulate. Simulated time is
// nearly invariant in the tile count (chunking is what the knobs control);
// this only bounds DES event counts.
constexpr int64_t kMinGradTiles = 16;
constexpr int64_t kMaxGradTiles = 256;

void GradTiling(uint64_t grad_bytes, int64_t* num_tiles,
                uint64_t* tile_bytes) {
  int64_t tiles = static_cast<int64_t>(grad_bytes >> 20);
  tiles = std::clamp(tiles, kMinGradTiles, kMaxGradTiles);
  *num_tiles = tiles;
  *tile_bytes = std::max<uint64_t>(
      1, (grad_bytes + static_cast<uint64_t>(tiles) - 1) /
             static_cast<uint64_t>(tiles));
}

template <typename Collective>
sim::TimeNs RunCollective(const sim::MachineSpec& spec, int64_t num_tiles,
                          uint64_t tile_bytes, const HierConfig& cfg) {
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  Collective coll(world, num_tiles, tile_bytes, cfg);
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await coll.Run(ctx);
  });
}

}  // namespace

tl::TuneCandidate DefaultDpSyncCandidate() {
  tl::TuneCandidate c;
  c.nic_chunk_tiles = 4;
  c.staging_depth = 2;
  return c;
}

uint64_t LayerGradBytes(const models::ModelConfig& model, int tp) {
  const int64_t h = model.hidden;
  // Attention: QKV projection (column parallel) + out projection (row
  // parallel), mirroring E2eEstimator::LayerTime's GEMM shapes.
  int64_t params = h * (3 * h / tp) + (h / tp) * h;
  if (model.is_moe) {
    const int64_t inner = std::max<int64_t>(1, model.intermediate / tp);
    params += 2 * static_cast<int64_t>(model.num_experts) * h * inner;
    if (model.shared_expert_intermediate > 0) {
      params += 2 * h * (model.shared_expert_intermediate / tp);
    }
  } else {
    params += 2 * h * (model.intermediate / tp);
  }
  return static_cast<uint64_t>(params) * 2;  // bf16
}

sim::TimeNs SimulateHierAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg) {
  return RunCollective<HierAllGather>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateFlatAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg) {
  return RunCollective<FlatAllGather>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateHierReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg) {
  return RunCollective<HierReduceScatter>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateFlatReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg) {
  return RunCollective<FlatReduceScatter>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                           const tl::TuneCandidate& c) {
  int64_t num_tiles = 0;
  uint64_t tile_bytes = 0;
  GradTiling(grad_bytes, &num_tiles, &tile_bytes);
  return RunCollective<DpAllReduce>(spec, num_tiles, tile_bytes,
                                    HierConfig::FromCandidate(c));
}

sim::TimeNs CoarseSimulateDpSync(const sim::MachineSpec& spec,
                                 uint64_t grad_bytes,
                                 const tl::TuneCandidate& c) {
  // Quarter volume preserves the chunking/staging ranking at a fraction of
  // the events (chunk counts shrink 4x with the buffer).
  return SimulateDpSync(spec, std::max<uint64_t>(grad_bytes / 4, 1u << 20),
                        c);
}

sim::TimeNs DpSyncLowerBound(const sim::MachineSpec& spec,
                             uint64_t grad_bytes,
                             const tl::TuneCandidate& c) {
  const int nodes = spec.num_nodes();
  if (nodes <= 1) return 0;
  // Per rank and phase, (nodes-1)/nodes of the buffer crosses its NIC; RS
  // and AG phases serialize on the last tile even when fully pipelined.
  const double frac =
      static_cast<double>(nodes - 1) / static_cast<double>(nodes);
  const double wire_bytes = 2.0 * frac * static_cast<double>(grad_bytes);
  const sim::TimeNs wire =
      static_cast<sim::TimeNs>(wire_bytes / spec.nic_gbps);
  const sim::CostModel cost(spec);
  const sim::TimeNs reduce = cost.MemoryBound(
      static_cast<uint64_t>(3.0 * frac * static_cast<double>(grad_bytes)),
      std::max(1, c.reduce_sms));
  return spec.collective_setup_latency + spec.nic_latency +
         std::max(wire, reduce);
}

tl::TuneResult TuneDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                          const tl::TuningSpace& space,
                          const tl::TuneCandidate& base,
                          const tl::Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const tl::TuneCandidate& c) {
        return SimulateDpSync(spec, grad_bytes, c);
      },
      [&](const tl::TuneCandidate& c) {
        return DpSyncLowerBound(spec, grad_bytes, c);
      },
      [&](const tl::TuneCandidate& c) {
        return CoarseSimulateDpSync(spec, grad_bytes, c);
      });
}

// ---------------------------------------------------------------------------
// Fused GEMM + hierarchical ReduceScatter
// ---------------------------------------------------------------------------
bool GemmHierRsFeasible(const sim::MachineSpec& spec,
                        const tl::MlpPartShape& s, const tl::TuneCandidate& c) {
  // Like GEMM+RS, the ring role is push-only (SM push or DMA push).
  if (c.comm == tl::CommResource::kSmPull) return false;
  const int R = spec.num_devices;
  if (R % spec.devices_per_node != 0) return false;
  if (s.m % R != 0) return false;
  const int64_t m_per_rank = s.m / R;
  return c.comm_tile_m > 0 && m_per_rank % c.comm_tile_m == 0 &&
         c.comm_tile_m % c.gemm.bm == 0 && c.nic_chunk_tiles > 0 &&
         c.staging_depth > 0;
}

namespace {

// Layer-compose baseline half: the shared partial-GEMM producer as a
// compute-only kernel (no communication roles; the producer notifies its
// own channels, which nothing consumes).
class GemmOnly : public tl::FusedKernelBase {
 public:
  GemmOnly(rt::World& world, const tl::GemmHierRsConfig& cfg)
      : FusedKernelBase(world, cfg.name + "_gemm_only", cfg.compiler) {
    tl::PartialGemmParams p;
    p.m = cfg.m;
    p.k = cfg.k;
    p.n = cfg.n;
    p.tiling = cfg.gemm;
    p.map = tl::StaticMapping(
        cfg.m, cfg.gemm.bm, world.size(),
        static_cast<int>((cfg.m / world.size()) / cfg.rs_block_m));
    a_ = AllocSymmetric("a", {cfg.m, cfg.k});
    b_ = AllocSymmetric("b", {cfg.k, cfg.n});
    out_ = AllocSymmetric("out", {cfg.m, cfg.n});
    p.a = a_;
    p.b = b_;
    p.out = out_;
    p.ranks = ranks();
    p.order = cfg.order;
    CreateChannels(p.map.num_channels(), /*num_peer=*/1, /*num_host=*/1);
    tl::RolePlan plan(name(), sms());
    plan.Compute("gemm", tl::PartialGemmTiles(p),
                 tl::BuildPartialGemmProducer(p));
    Finalize(plan.Build());
  }

 private:
  comm::SymTensor a_, b_, out_;
};

}  // namespace

tl::TuneCandidate DefaultGemmHierRsCandidate(const tl::MlpPartShape& shape,
                                             int tp,
                                             const compute::GemmTiling& tiling) {
  tl::TuneCandidate c;
  c.gemm = tiling;
  // SM push: the copy-engine efficiency penalty costs more than the SM
  // stall here because the ring role's blocks double as reduce bandwidth.
  c.comm = tl::CommResource::kSmPush;
  c.order = tl::TileOrder::kNextRankFirst;
  c.nic_chunk_tiles = 2;
  c.staging_depth = 2;
  c.reduce_sms = 8;
  // Ring chunk rows: the shared layer-default rule, derived from the
  // tiling the kernel will actually run.
  const int64_t m_per_rank = std::max<int64_t>(1, shape.m / std::max(1, tp));
  c.comm_tile_m = tl::RsBlockRows(m_per_rank, c.gemm.bm);
  return c;
}

tl::GemmHierRsConfig GemmHierRsFromCandidate(const tl::MlpPartShape& shape,
                                             const tl::TuneCandidate& c) {
  tl::GemmHierRsConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.rs_block_m = c.comm_tile_m;
  cfg.nic_chunk_blocks = std::max(1, c.nic_chunk_tiles);
  cfg.staging_depth = std::max(1, c.staging_depth);
  cfg.comm_sms = c.comm_sms;
  cfg.reduce_sms = std::max(1, c.reduce_sms);
  cfg.dma_push = c.comm == tl::CommResource::kDma;
  cfg.order = c.order;
  return cfg;
}

sim::TimeNs SimulateGemmHierRs(const sim::MachineSpec& spec,
                               const tl::MlpPartShape& shape,
                               const tl::TuneCandidate& c) {
  if (!GemmHierRsFeasible(spec, shape, c)) return tl::Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  tl::GemmHierRs kernel(world, GemmHierRsFromCandidate(shape, c));
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs CoarseSimulateGemmHierRs(const sim::MachineSpec& spec,
                                     const tl::MlpPartShape& shape,
                                     const tl::TuneCandidate& c) {
  // Collapse the reduction loop to one k-step: per-tile MMA cost is linear
  // in bk, so the ranking is preserved at a fraction of the events.
  tl::TuneCandidate coarse = c;
  coarse.gemm.bk = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(shape.k, 1), std::numeric_limits<int>::max()));
  return SimulateGemmHierRs(spec, shape, coarse);
}

sim::TimeNs GemmHierRsLowerBound(const sim::MachineSpec& spec,
                                 const tl::MlpPartShape& shape,
                                 const tl::TuneCandidate& c) {
  const int R = spec.num_devices;
  const int nodes = spec.num_nodes();
  const int per_node = spec.devices_per_node;
  const int64_t m_per_rank = R > 0 ? shape.m / R : shape.m;
  const sim::CostModel cost(spec);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, spec.sms_per_device);
  const double block_bytes =
      static_cast<double>(m_per_rank) * shape.n * 2;  // bf16
  // Rail: every rank sends one node-reduced block per peer node over its
  // NIC. Ring: each rank forwards (per_node - 1) segments of `nodes` blocks
  // over NVLink.
  const sim::TimeNs rail = static_cast<sim::TimeNs>(
      (nodes - 1) * block_bytes / spec.nic_gbps);
  const sim::TimeNs ring = static_cast<sim::TimeNs>(
      static_cast<double>(per_node - 1) * nodes * block_bytes /
      spec.nvlink_gbps);
  // Composed (max) with the communication-optimal NIC port/window floor.
  return std::max(spec.kernel_launch_latency +
                      std::max(compute, std::max(rail, ring)),
                  tl::GemmHierRsCommFloor(spec, shape, c));
}

sim::TimeNs SimulateGemmThenHierRs(const sim::MachineSpec& spec,
                                   const tl::MlpPartShape& shape,
                                   const tl::TuneCandidate& c) {
  if (!GemmHierRsFeasible(spec, shape, c)) return tl::Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  const tl::GemmHierRsConfig cfg = GemmHierRsFromCandidate(shape, c);
  GemmOnly gemm(world, cfg);
  // RS at ring-chunk granularity: one tile per rs_block_m rows.
  const int64_t num_tiles = (shape.m / spec.num_devices) / cfg.rs_block_m;
  const uint64_t tile_bytes =
      static_cast<uint64_t>(cfg.rs_block_m) * shape.n * 2;  // bf16
  HierReduceScatter rs(world, num_tiles, tile_bytes,
                       HierConfig::FromCandidate(c));
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await gemm.Run(ctx);
    co_await rs.Run(ctx);
  });
}

// ---------------------------------------------------------------------------
// Fused hierarchical AllGather + GEMM
// ---------------------------------------------------------------------------
bool AgGemmHierFeasible(const sim::MachineSpec& spec,
                        const tl::MlpPartShape& s, const tl::TuneCandidate& c) {
  const int R = spec.num_devices;
  if (R % spec.devices_per_node != 0) return false;
  if (s.m % R != 0) return false;
  // Multi-node the ring + rail are SM-push roles; pull has no rail analog.
  if (spec.num_nodes() > 1 && c.comm == tl::CommResource::kSmPull) {
    return false;
  }
  const int64_t m_per_rank = s.m / R;
  return c.comm_tile_m > 0 && m_per_rank % c.comm_tile_m == 0 &&
         c.nic_chunk_tiles > 0 && c.staging_depth > 0;
}

tl::TuneCandidate DefaultAgGemmHierCandidate(const tl::MlpPartShape& shape,
                                             int tp,
                                             const compute::GemmTiling& tiling) {
  tl::TuneCandidate c;
  c.gemm = tiling;
  c.comm = tl::CommResource::kSmPush;
  c.order = tl::TileOrder::kOwnerFirst;
  c.nic_chunk_tiles = 2;
  c.staging_depth = 2;
  // AG chunk rows: the shared layer-default rule over the gathered rows —
  // but keep at least two chunks per rank at small m, so the rail, ring
  // and consumer pipeline at chunk granularity instead of degenerating to
  // one monolithic message (AG consumers gate on covering chunks, so the
  // chunk rows need not align to the GEMM tile).
  const int64_t m_per_rank = std::max<int64_t>(1, shape.m / std::max(1, tp));
  c.comm_tile_m = tl::RsBlockRows(m_per_rank, c.gemm.bm);
  while (c.comm_tile_m > 1 && c.comm_tile_m % 2 == 0 &&
         m_per_rank % (c.comm_tile_m / 2) == 0 &&
         m_per_rank / c.comm_tile_m < 2) {
    c.comm_tile_m /= 2;
  }
  // Likewise at least two NIC messages per rail peer whenever the chunk
  // count allows it.
  const int64_t cpb = m_per_rank / std::max(1, c.comm_tile_m);
  c.nic_chunk_tiles =
      static_cast<int>(std::clamp<int64_t>(cpb / 2, 1, c.nic_chunk_tiles));
  // With only a couple of chunks per peer the rail stream is shorter than
  // the staging window anyway; a depth-1 window lands chunks in consumer
  // order and hands the spare rail block back to compute.
  if (cpb <= 2) c.staging_depth = 1;
  // Small-m also underfills the gathered GEMM's grid: narrow the n-tile so
  // more (shorter) tiles fill the blocks, halving the drain after the last
  // gathered chunk lands.
  while (c.gemm.bn > 128 &&
         CeilDiv<int64_t>(shape.m, c.gemm.bm) *
                 CeilDiv<int64_t>(shape.n, c.gemm.bn) <
             128) {
    c.gemm.bn /= 2;
  }
  return c;
}

tl::AgGemmHierConfig AgGemmHierFromCandidate(const tl::MlpPartShape& shape,
                                             const tl::TuneCandidate& c) {
  tl::AgGemmHierConfig cfg;
  cfg.m = shape.m;
  cfg.k = shape.k;
  cfg.n = shape.n;
  cfg.gemm = c.gemm;
  cfg.comm_tile_m = c.comm_tile_m;
  cfg.channels_per_rank = c.channels_per_rank;
  cfg.comm = c.comm;
  cfg.nic_chunk_blocks = std::max(1, c.nic_chunk_tiles);
  cfg.staging_depth = std::max(1, c.staging_depth);
  cfg.comm_sms = c.comm_sms;
  cfg.order = c.order;
  return cfg;
}

sim::TimeNs SimulateAgGemmHier(const sim::MachineSpec& spec,
                               const tl::MlpPartShape& shape,
                               const tl::TuneCandidate& c) {
  if (!AgGemmHierFeasible(spec, shape, c)) return tl::Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  tl::AgGemmHier kernel(world, AgGemmHierFromCandidate(shape, c));
  return world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
}

sim::TimeNs CoarseSimulateAgGemmHier(const sim::MachineSpec& spec,
                                     const tl::MlpPartShape& shape,
                                     const tl::TuneCandidate& c) {
  // Collapse the reduction loop to one k-step (ranking-preserving, see
  // CoarseSimulateGemmHierRs).
  tl::TuneCandidate coarse = c;
  coarse.gemm.bk = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(shape.k, 1), std::numeric_limits<int>::max()));
  return SimulateAgGemmHier(spec, shape, coarse);
}

sim::TimeNs AgGemmHierLowerBound(const sim::MachineSpec& spec,
                                 const tl::MlpPartShape& shape,
                                 const tl::TuneCandidate& c) {
  const int R = spec.num_devices;
  const int nodes = spec.num_nodes();
  const int per_node = spec.devices_per_node;
  const int64_t m_per_rank = R > 0 ? shape.m / R : shape.m;
  const sim::CostModel cost(spec);
  const sim::TimeNs compute =
      cost.GemmComputeTime(shape.m, shape.n, shape.k, c.gemm.bm, c.gemm.bn,
                           c.gemm.bk, spec.sms_per_device);
  const double shard_bytes =
      static_cast<double>(m_per_rank) * shape.k * 2;  // bf16
  // Rail: every rank ships its whole shard to each peer node. Ring: each
  // rank forwards (per_node - 1) stages of `nodes` node-group blocks.
  const sim::TimeNs rail = static_cast<sim::TimeNs>(
      (nodes - 1) * shard_bytes / spec.nic_gbps);
  const sim::TimeNs ring = static_cast<sim::TimeNs>(
      static_cast<double>(per_node - 1) * nodes * shard_bytes /
      spec.nvlink_gbps);
  return spec.kernel_launch_latency +
         std::max(compute, std::max(rail, ring));
}

sim::TimeNs SimulateHierAgThenGemm(const sim::MachineSpec& spec,
                                   const tl::MlpPartShape& shape,
                                   const tl::TuneCandidate& c) {
  if (!AgGemmHierFeasible(spec, shape, c)) return tl::Autotuner::kInfeasible;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  const int64_t m_per_rank = shape.m / spec.num_devices;
  // AG at chunk granularity over the activation shard rows.
  const int64_t num_tiles = m_per_rank / c.comm_tile_m;
  const uint64_t tile_bytes =
      static_cast<uint64_t>(c.comm_tile_m) * shape.k * 2;  // bf16
  HierAllGather ag(world, num_tiles, tile_bytes, HierConfig::FromCandidate(c));
  // The same full [M, K] x [K, N] tile count as the fused consumer, as a
  // compute-only kernel. GemmOnly keys its (unconsumed) producer channels
  // off rs_block_m, whose mapping requires a multiple of bm — AG chunk
  // rows may be finer than the GEMM tile, so fall back to bm then.
  tl::GemmHierRsConfig gcfg;
  gcfg.m = shape.m;
  gcfg.k = shape.k;
  gcfg.n = shape.n;
  gcfg.gemm = c.gemm;
  gcfg.rs_block_m =
      c.comm_tile_m % c.gemm.bm == 0 ? c.comm_tile_m : c.gemm.bm;
  gcfg.name = "ag_gemm_hier_compose";
  GemmOnly gemm(world, gcfg);
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await ag.Run(ctx);
    co_await gemm.Run(ctx);
  });
}

tl::TuneResult TuneAgGemmHier(const sim::MachineSpec& spec,
                              const tl::MlpPartShape& shape,
                              const tl::TuningSpace& space,
                              const tl::TuneCandidate& base,
                              const tl::Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const tl::TuneCandidate& c) {
        return SimulateAgGemmHier(spec, shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return AgGemmHierLowerBound(spec, shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return CoarseSimulateAgGemmHier(spec, shape, c);
      });
}

tl::TuneResult TuneGemmHierRs(const sim::MachineSpec& spec,
                              const tl::MlpPartShape& shape,
                              const tl::TuningSpace& space,
                              const tl::TuneCandidate& base,
                              const tl::Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const tl::TuneCandidate& c) {
        return SimulateGemmHierRs(spec, shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return GemmHierRsLowerBound(spec, shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return CoarseSimulateGemmHierRs(spec, shape, c);
      });
}

}  // namespace tilelink::multinode
