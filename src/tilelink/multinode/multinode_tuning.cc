#include "tilelink/multinode/multinode_tuning.h"

#include <algorithm>

#include "runtime/world.h"

namespace tilelink::multinode {
namespace {

// Tile count for a gradient buffer: ~1 MiB tiles, clamped so tiny buffers
// still pipeline and huge ones stay cheap to simulate. Simulated time is
// nearly invariant in the tile count (chunking is what the knobs control);
// this only bounds DES event counts.
constexpr int64_t kMinGradTiles = 16;
constexpr int64_t kMaxGradTiles = 256;

void GradTiling(uint64_t grad_bytes, int64_t* num_tiles,
                uint64_t* tile_bytes) {
  int64_t tiles = static_cast<int64_t>(grad_bytes >> 20);
  tiles = std::clamp(tiles, kMinGradTiles, kMaxGradTiles);
  *num_tiles = tiles;
  *tile_bytes = std::max<uint64_t>(
      1, (grad_bytes + static_cast<uint64_t>(tiles) - 1) /
             static_cast<uint64_t>(tiles));
}

template <typename Collective>
sim::TimeNs RunCollective(const sim::MachineSpec& spec, int64_t num_tiles,
                          uint64_t tile_bytes, const HierConfig& cfg) {
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  Collective coll(world, num_tiles, tile_bytes, cfg);
  return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    co_await coll.Run(ctx);
  });
}

}  // namespace

tl::TuneCandidate DefaultDpSyncCandidate() {
  tl::TuneCandidate c;
  c.nic_chunk_tiles = 4;
  c.staging_depth = 2;
  return c;
}

uint64_t LayerGradBytes(const models::ModelConfig& model, int tp) {
  const int64_t h = model.hidden;
  // Attention: QKV projection (column parallel) + out projection (row
  // parallel), mirroring E2eEstimator::LayerTime's GEMM shapes.
  int64_t params = h * (3 * h / tp) + (h / tp) * h;
  if (model.is_moe) {
    const int64_t inner = std::max<int64_t>(1, model.intermediate / tp);
    params += 2 * static_cast<int64_t>(model.num_experts) * h * inner;
    if (model.shared_expert_intermediate > 0) {
      params += 2 * h * (model.shared_expert_intermediate / tp);
    }
  } else {
    params += 2 * h * (model.intermediate / tp);
  }
  return static_cast<uint64_t>(params) * 2;  // bf16
}

sim::TimeNs SimulateHierAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg) {
  return RunCollective<HierAllGather>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateFlatAllGather(const sim::MachineSpec& spec,
                                  int64_t num_tiles, uint64_t tile_bytes,
                                  const HierConfig& cfg) {
  return RunCollective<FlatAllGather>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateHierReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg) {
  return RunCollective<HierReduceScatter>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateFlatReduceScatter(const sim::MachineSpec& spec,
                                      int64_t num_tiles, uint64_t tile_bytes,
                                      const HierConfig& cfg) {
  return RunCollective<FlatReduceScatter>(spec, num_tiles, tile_bytes, cfg);
}

sim::TimeNs SimulateDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                           const tl::TuneCandidate& c) {
  int64_t num_tiles = 0;
  uint64_t tile_bytes = 0;
  GradTiling(grad_bytes, &num_tiles, &tile_bytes);
  return RunCollective<DpAllReduce>(spec, num_tiles, tile_bytes,
                                    HierConfig::FromCandidate(c));
}

sim::TimeNs CoarseSimulateDpSync(const sim::MachineSpec& spec,
                                 uint64_t grad_bytes,
                                 const tl::TuneCandidate& c) {
  // Quarter volume preserves the chunking/staging ranking at a fraction of
  // the events (chunk counts shrink 4x with the buffer).
  return SimulateDpSync(spec, std::max<uint64_t>(grad_bytes / 4, 1u << 20),
                        c);
}

sim::TimeNs DpSyncLowerBound(const sim::MachineSpec& spec,
                             uint64_t grad_bytes,
                             const tl::TuneCandidate& c) {
  const int nodes = spec.num_nodes();
  if (nodes <= 1) return 0;
  // Per rank and phase, (nodes-1)/nodes of the buffer crosses its NIC; RS
  // and AG phases serialize on the last tile even when fully pipelined.
  const double frac =
      static_cast<double>(nodes - 1) / static_cast<double>(nodes);
  const double wire_bytes = 2.0 * frac * static_cast<double>(grad_bytes);
  const sim::TimeNs wire =
      static_cast<sim::TimeNs>(wire_bytes / spec.nic_gbps);
  const sim::CostModel cost(spec);
  const sim::TimeNs reduce = cost.MemoryBound(
      static_cast<uint64_t>(3.0 * frac * static_cast<double>(grad_bytes)),
      std::max(1, c.reduce_sms));
  return spec.collective_setup_latency + spec.nic_latency +
         std::max(wire, reduce);
}

tl::TuneResult TuneDpSync(const sim::MachineSpec& spec, uint64_t grad_bytes,
                          const tl::TuningSpace& space,
                          const tl::TuneCandidate& base,
                          const tl::Autotuner& tuner) {
  return tuner.Search(
      space, base,
      [&](const tl::TuneCandidate& c) {
        return SimulateDpSync(spec, grad_bytes, c);
      },
      [&](const tl::TuneCandidate& c) {
        return DpSyncLowerBound(spec, grad_bytes, c);
      },
      [&](const tl::TuneCandidate& c) {
        return CoarseSimulateDpSync(spec, grad_bytes, c);
      });
}

}  // namespace tilelink::multinode
