#include "tilelink/program.h"

#include <sstream>
#include <string>
#include <utility>

#include "sim/coro_utils.h"
#include "sim/trace.h"

namespace tilelink::tl {

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

TileProgramBuilder& TileProgramBuilder::Add(Op op) {
  Stmt s;
  s.op = std::move(op);
  program_.stmts.push_back(std::move(s));
  return *this;
}

TileProgramBuilder& TileProgramBuilder::For(
    const std::string& var, std::function<int64_t(const Env&)> trip_count,
    const std::function<void(TileProgramBuilder&)>& build_body) {
  TL_CHECK_MSG(depth_ < 4, "loop nesting deeper than 4 is not supported");
  TileProgramBuilder body_builder(depth_ + 1);
  build_body(body_builder);
  auto loop = std::make_shared<Loop>();
  loop->var = var;
  loop->depth = depth_;
  loop->trip_count = std::move(trip_count);
  loop->body = std::move(body_builder.program_.stmts);
  Stmt s;
  s.loop = std::move(loop);
  program_.stmts.push_back(std::move(s));
  return *this;
}

TileProgramBuilder& TileProgramBuilder::Scratch(
    std::function<std::shared_ptr<void>(const Env&)> factory) {
  program_.scratch_factory = std::move(factory);
  return *this;
}

BlockProgram TileProgramBuilder::Build() { return std::move(program_); }

// ---------------------------------------------------------------------------
// Verifier (§4.2)
// ---------------------------------------------------------------------------
namespace {

bool IsWait(OpKind k) {
  return k == OpKind::kConsumerWait || k == OpKind::kPeerWait;
}
bool IsNotify(OpKind k) {
  return k == OpKind::kProducerNotify || k == OpKind::kPeerNotify;
}
bool WritesData(OpKind k) {
  return k == OpKind::kStore || k == OpKind::kPushData ||
         k == OpKind::kPullData || k == OpKind::kMma ||
         k == OpKind::kElementwise;
}

// Walks a statement list. `acquired` / `wrote` carry dominance facts from
// enclosing scopes; facts established inside a loop body hold for later
// statements of that body but conservatively do NOT escape the loop (its
// trip count may be zero).
void VerifyStmts(const std::vector<Stmt>& stmts, bool acquired, bool wrote,
                 const std::string& role) {
  bool acq = acquired;
  bool wr = wrote;
  for (const Stmt& s : stmts) {
    if (s.loop) {
      VerifyStmts(s.loop->body, acq, wr, role);
      continue;
    }
    const Op& op = *s.op;
    if (IsWait(op.kind)) {
      acq = true;
      continue;
    }
    if (op.kind == OpKind::kLoad && op.requires_acquire && !acq) {
      throw VerifyError("memory-consistency verification failed in '" + role +
                        "': acquire-load '" + op.label +
                        "' is not dominated by a consumer/peer wait");
    }
    if (IsNotify(op.kind) && !wr) {
      throw VerifyError("memory-consistency verification failed in '" + role +
                        "': notify '" + op.label +
                        "' has no preceding store/push to release");
    }
    if (WritesData(op.kind)) {
      wr = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Unsafe reordering pass (fault injection for §4.2 tests)
// ---------------------------------------------------------------------------

// Reorders acquire-loads ahead of the waits that guard them — the exact
// hazard a pipeliner unaware of primitive data dependencies would create
// (§4.2). Equivalently (and robust to loads living inside inner loops), each
// wait op sinks to the end of its statement list, so every load it guarded
// now executes first.
void UnsafeHoistLoads(std::vector<Stmt>& stmts) {
  for (Stmt& s : stmts) {
    if (s.loop) UnsafeHoistLoads(s.loop->body);
  }
  std::vector<Stmt> reordered;
  std::vector<Stmt> sunk_waits;
  reordered.reserve(stmts.size());
  for (Stmt& s : stmts) {
    if (s.op && IsWait(s.op->kind)) {
      sunk_waits.push_back(std::move(s));
    } else {
      reordered.push_back(std::move(s));
    }
  }
  for (Stmt& w : sunk_waits) reordered.push_back(std::move(w));
  stmts = std::move(reordered);
}

// ---------------------------------------------------------------------------
// Listing codegen (PTX-like, tile granularity)
// ---------------------------------------------------------------------------

const char* Mnemonic(const Op& op) {
  switch (op.kind) {
    case OpKind::kNop:
      return "nop";
    case OpKind::kLoad:
      return op.requires_acquire ? "ld.global.acquire.b128"
                                 : "ld.global.b128";
    case OpKind::kStore:
      return "st.global.b128";
    case OpKind::kMma:
      return "mma.sync.aligned";
    case OpKind::kElementwise:
      return "elementwise";
    case OpKind::kPushData:
      return op.async_dma ? "cp.async.bulk.remote   // tile_push_data (dma)"
                          : "st.global.remote   // tile_push_data";
    case OpKind::kPullData:
      return "ld.global.remote   // tile_pull_data";
    case OpKind::kConsumerWait:
      return "spin.ld.global.acquire   // consumer_tile_wait";
    case OpKind::kProducerNotify:
      return "red.release.global.add   // producer_tile_notify";
    case OpKind::kPeerWait:
      return "spin.ld.global.acquire   // peer_tile_wait";
    case OpKind::kPeerNotify:
      return "red.release.global.add   // peer_tile_notify";
  }
  return "?";
}

void EmitStmts(const std::vector<Stmt>& stmts, int indent,
               std::ostringstream& os) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (const Stmt& s : stmts) {
    if (s.loop) {
      os << pad << "for " << s.loop->var << ":\n";
      EmitStmts(s.loop->body, indent + 1, os);
      continue;
    }
    os << pad << Mnemonic(*s.op);
    if (!s.op->label.empty()) os << "    ; " << s.op->label;
    os << "\n";
    if (s.op->notify_after) {
      os << pad
         << "red.release.global.add   // peer_tile_notify (on completion)\n";
    }
  }
}

std::string EmitListing(const FusedKernelSpec& spec,
                        const CompilerOptions& options) {
  std::ostringstream os;
  os << "// tilelink kernel: " << spec.name << "\n";
  os << "// pipeline="
     << (options.pipeline == PipelineMode::kSafe ? "safe" : "none")
     << " unsafe_reorder=" << (options.unsafe_reorder ? 1 : 0) << "\n";
  int base = 0;
  for (const Role& role : spec.roles) {
    os << ".role " << role.name << "  (blocks " << base << ".."
       << base + role.blocks - 1 << ")\n";
    EmitStmts(role.program.stmts, 1, os);
    base += role.blocks;
  }
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Compile
// ---------------------------------------------------------------------------

CompiledKernel Compiler::Compile(FusedKernelSpec spec) const {
  TL_CHECK_GT(spec.total_blocks(), 0);
  if (options_.verify && !options_.unsafe_reorder) {
    for (const Role& role : spec.roles) {
      VerifyStmts(role.program.stmts, false, false,
                  spec.name + "/" + role.name);
    }
  }
  if (options_.unsafe_reorder) {
    for (Role& role : spec.roles) {
      UnsafeHoistLoads(role.program.stmts);
    }
  }
  CompiledKernel kernel;
  kernel.listing_ = EmitListing(spec, options_);
  kernel.spec_ = std::move(spec);
  kernel.options_ = options_;
  return kernel;
}

// ---------------------------------------------------------------------------
// Interpreter: executes a compiled block program as a block coroutine
// ---------------------------------------------------------------------------
namespace {

struct ExecCtx {
  rt::World* world;
  std::shared_ptr<const BlockChannel> bc;
  sim::CostModel cost;
  // Tracing (null/-1 when the world has no recorder): per-block track on
  // the rank's trace process, spans per costed op.
  sim::TraceRecorder* tr = nullptr;
  int pid = -1;
  int tid = 0;
};

// Checker registration honouring DataSpec strided runs: a column strip of a
// row-major tensor audits one run per covered row instead of the flat
// [lo, hi) span (which overlaps the neighbouring strips' bytes and would
// flag false races between disjoint strips).
void CheckReadRuns(rt::World& world, const DataSpec& d, sim::TimeNs t,
                   const std::string& label) {
  if (d.read_buf == nullptr || !world.checker().enabled()) return;
  if (d.read_pitch <= 0) {
    world.checker().CheckRead(d.read_buf, d.read_lo, d.read_hi, t, label);
    return;
  }
  for (int64_t lo = d.read_lo; lo < d.read_hi; lo += d.read_pitch) {
    world.checker().CheckRead(d.read_buf, lo,
                              std::min(lo + d.read_run, d.read_hi), t, label);
  }
}

void RecordWriteRuns(rt::World& world, const DataSpec& d, sim::TimeNs start,
                     sim::TimeNs end, const std::string& label) {
  if (d.write_buf == nullptr || !world.checker().enabled()) return;
  if (d.write_pitch <= 0) {
    world.checker().RecordWrite(d.write_buf, d.write_lo, d.write_hi, start,
                                end, label);
    return;
  }
  for (int64_t lo = d.write_lo; lo < d.write_hi; lo += d.write_pitch) {
    world.checker().RecordWrite(d.write_buf, lo,
                                std::min(lo + d.write_run, d.write_hi), start,
                                end, label);
  }
}

void FireNotify(const ExecCtx& ec, const NotifySpec& spec) {
  for (const NotifyEntry& e : spec.entries) {
    for (int target : e.targets) {
      ec.bc->set(e.space, target)->AddFrom(ec.bc->rank, e.channel, e.inc);
    }
  }
}

// Async DMA push: runs as its own root coroutine; the issuing block has
// already moved on (its functional payload was captured at issue time, when
// the data was handed to the DMA queue). Release semantics: notify_after
// fires only once the transfer has landed.
sim::Coro AsyncPush(ExecCtx ec, DataSpec d, NotifySpec after,
                    std::string label) {
  rt::World& world = *ec.world;
  co_await world.device(d.src_rank).copy_engines().Acquire();
  sim::ResourceLease lease(world.device(d.src_rank).copy_engines(), 1);
  co_await sim::Delay{world.spec().dma_setup_latency};
  const sim::TimeNs start = world.sim().Now();
  const uint64_t wt =
      d.write_buf != nullptr ? world.checker().OpenWrite(start) : 0;
  co_await world.Transfer(d.src_rank, d.dst_rank,
                          static_cast<uint64_t>(static_cast<double>(d.bytes) /
                                                world.spec().dma_efficiency));
  RecordWriteRuns(world, d, start, world.sim().Now(), label);
  world.checker().CloseWrite(wt);
  if (ec.tr != nullptr) {
    ec.tr->AddSpan(ec.pid, ec.tid, label, start, world.sim().Now(),
                   sim::kCatComm,
                   {sim::TraceArg::Num("bytes", static_cast<double>(d.bytes)),
                    sim::TraceArg::Num("src", d.src_rank),
                    sim::TraceArg::Num("dst", d.dst_rank),
                    sim::TraceArg::Str("dma", "1")});
  }
  FireNotify(ec, after);
}

sim::Coro ExecOp(const ExecCtx& ec, Env& env, const Op& op) {
  rt::World& world = *ec.world;
  switch (op.kind) {
    case OpKind::kNop:
      break;
    case OpKind::kConsumerWait:
    case OpKind::kPeerWait: {
      const WaitSpec spec = op.wait(env);
      rt::SignalSet* sig = ec.bc->local(spec.space);
      for (const ChannelWait& w : spec.waits) {
        co_await sig->Wait(w.channel, w.threshold);
      }
      break;
    }
    case OpKind::kProducerNotify:
    case OpKind::kPeerNotify: {
      // Release: all prior ops of this block already completed (the
      // coroutine is sequential); remote visibility latency is modeled
      // inside SignalSet::AddFrom.
      FireNotify(ec, op.notify(env));
      break;
    }
    case OpKind::kLoad: {
      if (op.data) {
        CheckReadRuns(world, op.data(env), world.sim().Now(), op.label);
      }
      if (op.cost) {
        const sim::TimeNs t0 = world.sim().Now();
        co_await sim::Delay{op.cost(env, ec.cost)};
        if (ec.tr != nullptr) {
          ec.tr->AddSpan(ec.pid, ec.tid, op.label, t0, world.sim().Now(),
                         sim::kCatCompute);
        }
      }
      if (op.math && world.functional()) op.math(env);
      break;
    }
    case OpKind::kStore: {
      if (op.math && world.functional()) op.math(env);
      if (op.data) {
        RecordWriteRuns(world, op.data(env), world.sim().Now(),
                        world.sim().Now(), op.label);
      }
      if (op.cost) {
        const sim::TimeNs t0 = world.sim().Now();
        co_await sim::Delay{op.cost(env, ec.cost)};
        if (ec.tr != nullptr) {
          ec.tr->AddSpan(ec.pid, ec.tid, op.label, t0, world.sim().Now(),
                         sim::kCatCompute);
        }
      }
      break;
    }
    case OpKind::kMma:
    case OpKind::kElementwise: {
      if (op.cost) {
        const sim::TimeNs t0 = world.sim().Now();
        co_await sim::Delay{op.cost(env, ec.cost)};
        if (ec.tr != nullptr) {
          ec.tr->AddSpan(ec.pid, ec.tid, op.label, t0, world.sim().Now(),
                         sim::kCatCompute);
        }
      }
      if (op.math && world.functional()) op.math(env);
      break;
    }
    case OpKind::kPushData:
    case OpKind::kPullData: {
      TL_CHECK_MSG(static_cast<bool>(op.data),
                   "push/pull op '" << op.label << "' lacks a DataSpec");
      const DataSpec d = op.data(env);
      if (op.async_dma) {
        // Hand off to a copy engine and continue; the payload value is
        // captured now (it enters the DMA queue), the completion notify
        // fires with release semantics when the data lands.
        NotifySpec after;
        if (op.notify_after) after = op.notify_after(env);
        if (op.math && world.functional()) op.math(env);
        world.sim().Spawn(AsyncPush(ec, d, std::move(after), op.label),
                          "async_push");
        break;
      }
      const sim::TimeNs start = world.sim().Now();
      CheckReadRuns(world, d, start, op.label);
      const uint64_t wt =
          d.write_buf != nullptr ? world.checker().OpenWrite(start) : 0;
      co_await world.Transfer(d.src_rank, d.dst_rank, d.bytes);
      if (op.math && world.functional()) op.math(env);
      RecordWriteRuns(world, d, start, world.sim().Now(), op.label);
      world.checker().CloseWrite(wt);
      if (ec.tr != nullptr) {
        ec.tr->AddSpan(
            ec.pid, ec.tid, op.label, start, world.sim().Now(), sim::kCatComm,
            {sim::TraceArg::Num("bytes", static_cast<double>(d.bytes)),
             sim::TraceArg::Num("src", d.src_rank),
             sim::TraceArg::Num("dst", d.dst_rank)});
      }
      if (op.notify_after) {
        FireNotify(ec, op.notify_after(env));
      }
      break;
    }
  }
}

sim::Coro ExecStmts(const ExecCtx& ec, Env& env,
                    const std::vector<Stmt>& stmts) {
  for (const Stmt& s : stmts) {
    if (s.loop) {
      const int64_t trips = s.loop->trip_count(env);
      for (int64_t i = 0; i < trips; ++i) {
        env.loop[static_cast<size_t>(s.loop->depth)] = i;
        co_await ExecStmts(ec, env, s.loop->body);
      }
      env.loop[static_cast<size_t>(s.loop->depth)] = 0;
      continue;
    }
    co_await ExecOp(ec, env, *s.op);
  }
}

sim::Coro RunBlock(ExecCtx ec, Env env, const BlockProgram* program,
                   std::string role_label) {
  const sim::TimeNs t0 = ec.world->sim().Now();
  std::shared_ptr<void> scratch;
  if (program->scratch_factory) {
    scratch = program->scratch_factory(env);
    env.scratch = scratch.get();
  }
  co_await sim::Delay{ec.cost.BlockPrologue()};
  co_await ExecStmts(ec, env, program->stmts);
  co_await sim::Delay{ec.cost.BlockEpilogue()};
  if (ec.tr != nullptr) {
    // Structural span: SM-resident time of this role block (kCatTask so the
    // profiler's critical path walks the leaf op spans instead).
    ec.tr->AddSpan(ec.pid, ec.tid, role_label, t0, ec.world->sim().Now(),
                   sim::kCatTask,
                   {sim::TraceArg::Num("block", env.block_id)});
  }
}

}  // namespace

std::shared_ptr<rt::KernelState> CompiledKernel::Launch(
    rt::RankCtx& ctx, rt::Stream& stream, const BlockChannel& bc) const {
  const int grid = spec_.total_blocks();
  // Copies shared by every block coroutine of this launch.
  auto spec_copy = std::make_shared<FusedKernelSpec>(spec_);
  auto bc_copy = std::make_shared<const BlockChannel>(bc);
  rt::World* world = ctx.world;
  auto body = [spec_copy, bc_copy, world](rt::BlockCtx bctx) -> sim::Coro {
    ExecCtx ec{world, bc_copy, sim::CostModel(bctx.dev->spec())};
    int base = 0;
    const Role* role = nullptr;
    int role_block = 0;
    for (const Role& r : spec_copy->roles) {
      if (bctx.block_id < base + r.blocks) {
        role = &r;
        role_block = bctx.block_id - base;
        break;
      }
      base += r.blocks;
    }
    TL_CHECK(role != nullptr);
    if (sim::TraceRecorder* tr = world->trace()) {
      ec.tr = tr;
      ec.pid = world->trace_pid(bc_copy->rank);
      ec.tid = tr->Track(ec.pid, spec_copy->name + "/" + role->name + ".b" +
                                     std::to_string(role_block));
    }
    Env env;
    env.rank = bc_copy->rank;
    env.grid = role->blocks;
    env.block_id = role_block;
    return RunBlock(std::move(ec), env, &role->program,
                    spec_copy->name + "/" + role->name);
  };
  return stream.LaunchKernel(grid, body, spec_.name);
}

}  // namespace tilelink::tl
