#include "models/transformer.h"

#include <algorithm>

#include "baselines/mlp_baselines.h"
#include "baselines/moe_baselines.h"
#include "common/check.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "runtime/world.h"
#include "sim/cost_model.h"
#include "tilelink/builder/tuning_space.h"
#include "tilelink/multinode/multinode_tuning.h"

namespace tilelink::models {
namespace {

// Seed for the deterministic MoE routing every MoE simulation shares.
constexpr uint64_t kMoeRoutingSeed = 1234;

// Coarse tiling for big shapes: total simulated GEMM time is invariant in
// bk (tile-step cost is linear in FLOPs), so a large bk shrinks event
// counts without changing results.
compute::GemmTiling CoarseTiling(int64_t k) {
  compute::GemmTiling t{128, 256, 64};
  t.bk = static_cast<int>(std::max<int64_t>(64, RoundUp<int64_t>(k / 8, 64)));
  return t;
}

rt::World MakeWorld(const sim::MachineSpec& spec) {
  return rt::World(spec, rt::ExecMode::kTimingOnly);
}

// Picks an RS chunk size that divides m_per_rank and is a multiple of bm
// (the shared layer-default rule; the fused multi-node seed uses it too).
int RsBlock(int64_t m_per_rank, int bm) {
  return tl::RsBlockRows(m_per_rank, bm);
}

// Adapts the hand-picked comm tiling to the per-rank shard: the largest
// power-of-two comm tile <= the requested one that divides the shard, then
// the largest channel count <= the requested one that divides the tiles.
// Training-scale shapes (shards that are multiples of 128 rows) keep the
// paper defaults untouched; serving-path shards padded to 32 rows shrink
// until the StaticMapping divisibility constraints hold.
void AdaptCommTiling(int64_t m, int tp, tl::TuneCandidate* c) {
  const int64_t per_rank = m / std::max(tp, 1);
  int tile = c->comm_tile_m;
  while (tile > 1 && per_rank % tile != 0) tile /= 2;
  c->comm_tile_m = tile;
  if (c->channels_per_rank > 0) {
    const int64_t tiles_per_rank = std::max<int64_t>(1, per_rank / tile);
    int cpr = c->channels_per_rank;
    while (cpr > 1 && tiles_per_rank % cpr != 0) cpr /= 2;
    c->channels_per_rank = cpr;
  }
}

// ---- Hand-picked TileLink configs (the paper's figure defaults, adapted
// to shapes the defaults cannot tile). These seed every tuner search, so
// tuned configs can only improve on them. --------------------------------

tl::TuneCandidate HandPickedFlash() {
  tl::TuneCandidate c;
  c.block_q = 128;
  c.block_kv = 1024;  // coarse: time is linear in kv extent
  return c;
}

tl::TuneCandidate HandPickedMoePart1(int64_t m, int tp, int64_t hidden) {
  tl::TuneCandidate c;
  c.gemm = CoarseTiling(hidden);
  c.gemm.bn = 128;
  c.comm_tile_m = 128;
  c.channels_per_rank = 4;
  c.comm = tl::CommResource::kSmPull;  // matches bench_fig9 tuning
  // Large-batch e2e shapes are compute-dominated: keep the comm role lean.
  c.comm_sms = 8;
  AdaptCommTiling(m, tp, &c);
  return c;
}

tl::TuneCandidate HandPickedMoePart2(int64_t m, int tp, int64_t inner) {
  tl::TuneCandidate c;
  c.gemm = CoarseTiling(inner);
  c.gemm.bn = 128;
  c.sorted_channel_rows = 2048;
  const int64_t per_rank = m / std::max(tp, 1);
  int rs_base = 128;
  while (rs_base > 1 && per_rank % rs_base != 0) rs_base /= 2;
  c.comm_tile_m = RsBlock(per_rank, rs_base);
  c.reduce_block_tokens = std::min(128, c.comm_tile_m);
  c.comm = tl::CommResource::kSmPush;  // matches bench_fig9 tuning
  c.comm_sms = 8;
  c.reduce_sms = 8;
  return c;
}

// Packs a search result into a cache entry, carrying the seed anchor and
// the full-fidelity evaluation count for the serving-path speedup and
// cold-tune accounting.
tl::TunedEntry EntryFromResult(const tl::TuneResult& r) {
  return tl::TunedEntry{r.best, r.best_cost, r.seed_cost,
                        static_cast<int>(r.evaluated.size())};
}

}  // namespace

tl::TuneCandidate DefaultAgGemmConfig(int64_t m, int64_t k, int tp) {
  tl::TuneCandidate c;
  c.gemm = CoarseTiling(k);
  c.comm_tile_m = 128;
  c.channels_per_rank = 4;
  c.comm = tl::CommResource::kDma;  // the paper's generated AG+GEMM
  AdaptCommTiling(m, tp, &c);
  return c;
}

tl::TuneCandidate DefaultGemmRsConfig(int64_t m, int64_t k, int tp) {
  tl::TuneCandidate c;
  c.gemm = CoarseTiling(k);
  // bm must divide the RS chunk, which must divide the per-rank shard:
  // shrink the GEMM row tile until the chunk rule has something to work
  // with (a no-op for training-scale shards).
  const int64_t per_rank = m / std::max(tp, 1);
  while (c.gemm.bm > 1 && per_rank % c.gemm.bm != 0) c.gemm.bm /= 2;
  c.comm_tile_m = RsBlock(per_rank, c.gemm.bm);
  c.comm = tl::CommResource::kDma;  // hybrid push (paper's best for GEMM+RS)
  c.order = tl::TileOrder::kNextRankFirst;
  return c;
}

tl::TuningSpace MlpTuningSpaceFor(int64_t m, int tp) {
  const int64_t per_rank = m / std::max(tp, 1);
  return per_rank < 1024 ? tl::TuningSpace::ServingMlp()
                         : tl::TuningSpace::Mlp();
}

E2eEstimator::E2eEstimator(int tp, int64_t batch, int64_t seq, bool two_node)
    : tp_(tp), batch_(batch), seq_(seq), two_node_(two_node) {}

void E2eEstimator::EnableTuning(tl::TunedConfigCache* cache, int tune_threads,
                                bool laddered) {
  tuned_cache_ = cache;
  tune_threads_ = std::max(1, tune_threads);
  laddered_ = laddered;
}

tl::Autotuner E2eEstimator::Tuner() const {
  tl::Autotuner::Options opts;
  opts.threads = tune_threads_;
  return tl::Autotuner(opts);
}

bool E2eEstimator::Lookup(const std::string& key, sim::TimeNs* t) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  *t = it->second;
  return true;
}

sim::TimeNs E2eEstimator::Store(const std::string& key, sim::TimeNs t) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_[key] = t;
  return t;
}

sim::MachineSpec E2eEstimator::Spec() const {
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  spec.num_devices = tp_;
  // TP groups wider than one node span the NIC fabric (the 16-GPU TP
  // layers); within-node TP keeps the single-node layout.
  spec.devices_per_node = std::min(tp_, spec.devices_per_node);
  return spec;
}

sim::MachineSpec E2eEstimator::TwoNodeSpec() const {
  // Two nodes of one TP group each; DP pairs span the node boundary.
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  spec.num_devices = 2 * tp_;
  spec.devices_per_node = tp_;
  return spec;
}

sim::TimeNs E2eEstimator::TimeAgGemm(Method method, int64_t m, int64_t k,
                                     int64_t n) {
  const bool tuned = tuning_enabled() && method == Method::kTileLink;
  const std::string key = StrFormat(
      "ag/%d/%d/%lld/%lld/%lld", static_cast<int>(method), tuned ? 1 : 0,
      (long long)m, (long long)k, (long long)n);
  sim::TimeNs t = 0;
  if (Lookup(key, &t)) return t;
  const sim::MachineSpec spec = Spec();
  if (method == Method::kTorch) {
    rt::World world = MakeWorld(spec);
    baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
    baselines::NonOverlapAgGemm bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  } else {
    const tl::MlpPartShape shape{m, k, n};
    // TP spanning the node boundary runs the generated fused hierarchical
    // AG + GEMM kernel (NIC rail + node-local NVLink ring in one RolePlan);
    // single-node TP — and multi-node shapes too small for its chunking —
    // run the single-fabric AgGemm (the spec in the cache key separates
    // multi-node fallback searches from the single-node ones).
    const tl::TuneCandidate seed = multinode::DefaultAgGemmHierCandidate(
        shape, tp_, CoarseTiling(k));
    const bool fused = spec.num_nodes() > 1 &&
                       multinode::AgGemmHierFeasible(spec, shape, seed);
    if (fused && tuned) {
      const tl::TunedEntry& e = tuned_cache_->GetOrTune(
          tl::TunedConfigCache::Key("ag_gemm_hier", {m, k, n}, spec), [&] {
            const tl::TuneResult r = multinode::TuneAgGemmHier(
                spec, shape, tl::TuningSpace::AgGemmHier(), seed, Tuner());
            return EntryFromResult(r);
          });
      t = multinode::SimulateAgGemmHier(spec, shape, e.config);
    } else if (fused) {
      t = multinode::SimulateAgGemmHier(spec, shape, seed);
    } else if (tuned) {
      const tl::TunedEntry& e = tuned_cache_->GetOrTune(
          tl::TunedConfigCache::Key("ag_gemm", {m, k, n}, spec), [&] {
            const tl::TuneCandidate hand = DefaultAgGemmConfig(m, k, tp_);
            const tl::TuningSpace space = MlpTuningSpaceFor(m, tp_);
            const tl::TuneResult r =
                laddered_
                    ? tl::TuneAgGemmLaddered(spec, shape, space, hand, Tuner())
                    : tl::TuneAgGemm(spec, shape, space, hand, Tuner());
            return EntryFromResult(r);
          });
      // Re-simulate the cached config rather than trusting its stored cost:
      // the key's calibration hash invalidates cost-model recalibrations,
      // but simulator/evaluator *code* changes leave keys intact — a
      // warm-started cache must stay honest across those too (the config
      // may then be stale-suboptimal, but never mis-timed).
      t = tl::SimulateAgGemm(spec, shape, e.config);
    } else {
      t = tl::SimulateAgGemm(spec, shape, DefaultAgGemmConfig(m, k, tp_));
    }
  }
  return Store(key, t);
}

sim::TimeNs E2eEstimator::TimeGemmRs(Method method, int64_t m, int64_t k,
                                     int64_t n) {
  const bool tuned = tuning_enabled() && method == Method::kTileLink;
  const std::string key = StrFormat(
      "rs/%d/%d/%lld/%lld/%lld", static_cast<int>(method), tuned ? 1 : 0,
      (long long)m, (long long)k, (long long)n);
  sim::TimeNs t = 0;
  if (Lookup(key, &t)) return t;
  const sim::MachineSpec spec = Spec();
  if (method == Method::kTorch) {
    rt::World world = MakeWorld(spec);
    baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
    baselines::NonOverlapGemmRs bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  } else {
    const tl::MlpPartShape shape{m, k, n};
    // TP spanning the node boundary runs the fused GEMM + hierarchical RS
    // kernel (NVLink ring + NIC rail in one RolePlan); single-node TP —
    // and multi-node shapes too small for the fused kernel's chunking —
    // run the single-fabric GemmRs (the spec in the cache key separates
    // multi-node fallback searches from the single-node ones).
    const tl::TuneCandidate seed = multinode::DefaultGemmHierRsCandidate(
        shape, tp_, CoarseTiling(k));
    const bool fused = spec.num_nodes() > 1 &&
                       multinode::GemmHierRsFeasible(spec, shape, seed);
    if (fused && tuned) {
      const tl::TunedEntry& e = tuned_cache_->GetOrTune(
          tl::TunedConfigCache::Key("gemm_hier_rs", {m, k, n}, spec), [&] {
            const tl::TuneResult r = multinode::TuneGemmHierRs(
                spec, shape, tl::TuningSpace::GemmHierRs(), seed, Tuner());
            return EntryFromResult(r);
          });
      t = multinode::SimulateGemmHierRs(spec, shape, e.config);
    } else if (fused) {
      t = multinode::SimulateGemmHierRs(spec, shape, seed);
    } else if (tuned) {
      const tl::TunedEntry& e = tuned_cache_->GetOrTune(
          tl::TunedConfigCache::Key("gemm_rs", {m, k, n}, spec), [&] {
            const tl::TuneCandidate hand = DefaultGemmRsConfig(m, k, tp_);
            const tl::TuningSpace space = MlpTuningSpaceFor(m, tp_);
            const tl::TuneResult r =
                laddered_
                    ? tl::TuneGemmRsLaddered(spec, shape, space, hand, Tuner())
                    : tl::TuneGemmRs(spec, shape, space, hand, Tuner());
            return EntryFromResult(r);
          });
      t = tl::SimulateGemmRs(spec, shape, e.config);
    } else {
      t = tl::SimulateGemmRs(spec, shape, DefaultGemmRsConfig(m, k, tp_));
    }
  }
  return Store(key, t);
}

sim::TimeNs E2eEstimator::TimeFlashCore(int64_t bh, int64_t sq, int64_t skv,
                                        int64_t d) {
  // The flash core is method-shared: both systems run the same attention
  // kernel (the paper's baseline uses the same flash library), so a tuned
  // flash config speeds up the Torch layer too — reported speedups are
  // conservative relative to a baseline stuck on the default blocks.
  const bool tuned = tuning_enabled();
  const std::string key =
      StrFormat("flash/%d/%lld/%lld/%lld/%lld", tuned ? 1 : 0, (long long)bh,
                (long long)sq, (long long)skv, (long long)d);
  sim::TimeNs t = 0;
  if (Lookup(key, &t)) return t;
  const sim::MachineSpec spec = Spec();
  const tl::FlashShape shape{bh, sq, skv, d};
  if (tuned) {
    const tl::TunedEntry& e = tuned_cache_->GetOrTune(
        tl::TunedConfigCache::Key("flash_core", {bh, sq, skv, d}, spec), [&] {
          const tl::TuningSpace space = tl::TuningSpace::Attention();
          const tl::TuneResult r =
              laddered_ ? tl::TuneFlashCoreLaddered(spec, shape, space,
                                                    HandPickedFlash(), Tuner())
                        : tl::TuneFlashCore(spec, shape, space,
                                            HandPickedFlash(), Tuner());
          return EntryFromResult(r);
        });
    t = tl::SimulateFlashCore(spec, shape, e.config);
  } else {
    t = tl::SimulateFlashCore(spec, shape, HandPickedFlash());
  }
  return Store(key, t);
}

sim::TimeNs E2eEstimator::TimeActivation(int64_t m, int64_t n) {
  // Memory-bound elementwise: read a, read b, write out on ~all SMs.
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const sim::CostModel cost(spec);
  return cost.MemoryBound(
             3ULL * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) * 2,
             spec.sms_per_device) +
         spec.kernel_launch_latency;
}

sim::TimeNs E2eEstimator::TimeMoe(Method method, const ModelConfig& model,
                                  int64_t m) {
  const bool tuned = tuning_enabled() && method == Method::kTileLink;
  const std::string key =
      StrFormat("moe/%d/%d/%lld/%s", static_cast<int>(method), tuned ? 1 : 0,
                (long long)m, model.name.c_str());
  sim::TimeNs t = 0;
  if (Lookup(key, &t)) return t;
  const sim::MachineSpec spec = Spec();
  const int64_t inner = std::max<int64_t>(1, model.intermediate / tp_);
  Rng rng(kMoeRoutingSeed);
  compute::MoeRouting routing =
      compute::RandomRouting(m, model.num_experts, model.topk, rng);
  if (method == Method::kTorch) {
    // Framework baseline: eager PyTorch MoE — a per-expert GEMM loop with
    // host-blocking index bookkeeping and unfused gather/scatter (this is
    // what torch eager actually executes; the paper's large MoE e2e gains
    // come from replacing exactly this).
    rt::World world = MakeWorld(spec);
    baselines::MoePartConfig cfg{m, model.hidden, inner, model.num_experts,
                                 model.topk, CoarseTiling(model.hidden)};
    baselines::MoePart1 part1(world, cfg, routing,
                              baselines::MoeImpl::kCublas);
    baselines::MoePartConfig cfg2 = cfg;
    cfg2.gemm = CoarseTiling(inner);
    baselines::MoePart2 part2(world, cfg2, routing,
                              baselines::MoeImpl::kCublas);
    t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await part1.Run(ctx);
      co_await part2.Run(ctx);
    });
  } else {
    const tl::MoeShape shape{m, model.hidden, inner, model.num_experts,
                             model.topk};
    tl::TuneCandidate part1 = HandPickedMoePart1(m, tp_, model.hidden);
    tl::TuneCandidate part2 = HandPickedMoePart2(m, tp_, inner);
    if (tuned) {
      const auto dims = {m, model.hidden, inner,
                         static_cast<int64_t>(model.num_experts),
                         static_cast<int64_t>(model.topk),
                         static_cast<int64_t>(kMoeRoutingSeed)};
      part1 =
          tuned_cache_
              ->GetOrTune(
                  tl::TunedConfigCache::Key("ag_moe", dims, spec),
                  [&] {
                    const tl::TuningSpace space = tl::TuningSpace::MoePart1();
                    const tl::TuneResult r =
                        laddered_ ? tl::TuneAgMoeLaddered(spec, shape, routing,
                                                          space, part1, Tuner())
                                  : tl::TuneAgMoe(spec, shape, routing, space,
                                                  part1, Tuner());
                    return EntryFromResult(r);
                  })
              .config;
      part2 =
          tuned_cache_
              ->GetOrTune(
                  tl::TunedConfigCache::Key("moe_rs", dims, spec),
                  [&] {
                    const tl::TuningSpace space = tl::TuningSpace::MoePart2();
                    const tl::TuneResult r =
                        laddered_ ? tl::TuneMoeRsLaddered(spec, shape, routing,
                                                          space, part2, Tuner())
                                  : tl::TuneMoeRs(spec, shape, routing, space,
                                                  part2, Tuner());
                    return EntryFromResult(r);
                  })
              .config;
    }
    // Both parts chained per rank inside one world, exactly as the fused
    // MoE layer executes (no global barrier between the parts).
    t = tl::SimulateMoeLayer(spec, shape, routing, part1, part2);
  }
  t += TimeActivation(m * model.topk, inner);
  return Store(key, t);
}

sim::TimeNs E2eEstimator::TimeDpSync(const ModelConfig& model) {
  // Method-shared like the flash core: both frameworks synchronize
  // gradients through the same NIC collective, so a tuned config times
  // both sides and the dilution stays a fabric property, not a framework
  // one.
  const uint64_t grad_bytes = multinode::LayerGradBytes(model, tp_);
  const bool tuned = tuning_enabled();
  const std::string key =
      StrFormat("dp/%d/%llu", tuned ? 1 : 0, (unsigned long long)grad_bytes);
  sim::TimeNs t = 0;
  if (Lookup(key, &t)) return t;
  const sim::MachineSpec spec = TwoNodeSpec();
  if (tuned) {
    const tl::TunedEntry& e = tuned_cache_->GetOrTune(
        tl::TunedConfigCache::Key(
            "dp_sync", {static_cast<int64_t>(grad_bytes)}, spec),
        [&] {
          const tl::TuneResult r = multinode::TuneDpSync(
              spec, grad_bytes, tl::TuningSpace::MultiNode(),
              multinode::DefaultDpSyncCandidate(), Tuner());
          return EntryFromResult(r);
        });
    t = multinode::SimulateDpSync(spec, grad_bytes, e.config);
  } else {
    t = multinode::SimulateDpSync(spec, grad_bytes,
                                  multinode::DefaultDpSyncCandidate());
  }
  return Store(key, t);
}

LayerBreakdown E2eEstimator::LayerTime(const ModelConfig& model,
                                       Method method) {
  LayerBreakdown out;
  const int64_t m = batch_ * seq_;
  const int64_t h = model.hidden;
  // Attention block: AG + QKV projection (column parallel), flash core on
  // local heads over the full sequence, out projection + RS (row parallel).
  const int64_t qkv_cols = 3 * h / tp_;
  out.attn_block += TimeAgGemm(method, m, h, qkv_cols);
  out.attn_block += TimeFlashCore(batch_ * model.heads / tp_, seq_, seq_,
                                  model.head_dim);
  out.attn_block += TimeGemmRs(method, m, h / tp_, h);
  // FFN block.
  if (model.is_moe) {
    out.ffn_block += TimeMoe(method, model, m);
    if (model.shared_expert_intermediate > 0) {
      const int64_t si = model.shared_expert_intermediate / tp_;
      out.ffn_block += TimeAgGemm(method, m, h, si);
      out.ffn_block += TimeActivation(m, si);
      out.ffn_block += TimeGemmRs(method, m, si, h);
    }
  } else {
    const int64_t inner = model.intermediate / tp_;
    out.ffn_block += TimeAgGemm(method, m, h, inner);
    out.ffn_block += TimeActivation(m, inner);
    out.ffn_block += TimeGemmRs(method, m, inner, h);
  }
  if (two_node_) {
    // Simulated per-layer DP gradient sync across the node boundary; the
    // identical absolute cost lands on both methods (the 1.32x -> 1.29x
    // Figure-11 dilution now emerges from the NIC flows).
    out.dp_sync = TimeDpSync(model);
  }
  return out;
}

sim::TimeNs E2eEstimator::ServingStepTime(const ModelConfig& model,
                                          Method method,
                                          const ServingStep& step) {
  const int64_t new_tokens = step.prefill_tokens + step.decode_requests;
  TL_CHECK_MSG(new_tokens > 0, "empty serving step");
  // Pad the GEMM token rows up to the serving quantum: per-rank shards stay
  // multiples of 32 rows, so the adapted seeds and the ServingMlp space tile
  // every ragged batch (down to a single decode token).
  const int64_t quantum = 32LL * std::max(tp_, 1);
  const int64_t m = RoundUp<int64_t>(std::max(new_tokens, quantum), quantum);
  const int64_t h = model.hidden;
  sim::TimeNs t = 0;
  // Attention block: the projections run over the padded union of prefill
  // and decode rows; the flash core splits into a square prefill pass over
  // the new prompt tokens and a one-query-row decode pass per request
  // against the (bucketed) KV context.
  t += TimeAgGemm(method, m, h, 3 * h / tp_);
  if (step.prefill_tokens > 0) {
    t += TimeFlashCore(model.heads / tp_, step.prefill_tokens,
                       step.prefill_tokens, model.head_dim);
  }
  if (step.decode_requests > 0) {
    const int64_t kv = std::max<int64_t>(step.kv_len, 1);
    t += TimeFlashCore(step.decode_requests * model.heads / tp_, 1, kv,
                       model.head_dim);
  }
  t += TimeGemmRs(method, m, h / tp_, h);
  // FFN block, same composition as LayerTime at the padded row count.
  if (model.is_moe) {
    t += TimeMoe(method, model, m);
    if (model.shared_expert_intermediate > 0) {
      const int64_t si = model.shared_expert_intermediate / tp_;
      t += TimeAgGemm(method, m, h, si);
      t += TimeActivation(m, si);
      t += TimeGemmRs(method, m, si, h);
    }
  } else {
    const int64_t inner = model.intermediate / tp_;
    t += TimeAgGemm(method, m, h, inner);
    t += TimeActivation(m, inner);
    t += TimeGemmRs(method, m, inner, h);
  }
  return t;
}

E2eResult E2eEstimator::Run(const ModelConfig& model) {
  E2eResult res;
  res.model = model.name;
  res.torch_breakdown = LayerTime(model, Method::kTorch);
  res.tilelink_breakdown = LayerTime(model, Method::kTileLink);
  res.torch_layer = res.torch_breakdown.total();
  res.tilelink_layer = res.tilelink_breakdown.total();
  res.torch_total = res.torch_layer * model.layers;
  res.tilelink_total = res.tilelink_layer * model.layers;
  res.speedup = static_cast<double>(res.torch_total) /
                static_cast<double>(res.tilelink_total);
  return res;
}

}  // namespace tilelink::models
