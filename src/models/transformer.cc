#include "models/transformer.h"

#include <algorithm>

#include "baselines/mlp_baselines.h"
#include "baselines/moe_baselines.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "compute/flash_attention.h"
#include "compute/memops.h"
#include "runtime/world.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/gemm_rs.h"
#include "tilelink/kernels/moe_rs.h"

namespace tilelink::models {
namespace {

// Coarse tiling for big shapes: total simulated GEMM time is invariant in
// bk (tile-step cost is linear in FLOPs), so a large bk shrinks event
// counts without changing results.
compute::GemmTiling CoarseTiling(int64_t k) {
  compute::GemmTiling t{128, 256, 64};
  t.bk = static_cast<int>(std::max<int64_t>(64, RoundUp<int64_t>(k / 8, 64)));
  return t;
}

rt::World MakeWorld(int tp) {
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  spec.num_devices = tp;
  spec.devices_per_node = tp;
  return rt::World(spec, rt::ExecMode::kTimingOnly);
}

// Picks an RS chunk size that divides m_per_rank and is a multiple of bm.
int RsBlock(int64_t m_per_rank, int bm) {
  int64_t chunk = m_per_rank / 8;
  chunk = std::max<int64_t>(bm, chunk - chunk % bm);
  while (m_per_rank % chunk != 0) chunk -= bm;
  return static_cast<int>(std::max<int64_t>(bm, chunk));
}

}  // namespace

E2eEstimator::E2eEstimator(int tp, int64_t batch, int64_t seq, bool two_node)
    : tp_(tp), batch_(batch), seq_(seq), two_node_(two_node) {}

sim::TimeNs E2eEstimator::TimeAgGemm(Method method, int64_t m, int64_t k,
                                     int64_t n) {
  const std::string key = StrFormat(
      "ag/%d/%lld/%lld/%lld", static_cast<int>(method), (long long)m,
      (long long)k, (long long)n);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  sim::TimeNs t = 0;
  if (method == Method::kTorch) {
    rt::World world = MakeWorld(tp_);
    baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
    baselines::NonOverlapAgGemm bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  } else {
    rt::World world = MakeWorld(tp_);
    tl::AgGemmConfig cfg;
    cfg.m = m;
    cfg.k = k;
    cfg.n = n;
    cfg.gemm = CoarseTiling(k);
    cfg.comm_tile_m = 128;
    cfg.channels_per_rank = 4;
    cfg.comm = tl::CommResource::kDma;  // the paper's generated AG+GEMM
    tl::AgGemm bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  }
  cache_[key] = t;
  return t;
}

sim::TimeNs E2eEstimator::TimeGemmRs(Method method, int64_t m, int64_t k,
                                     int64_t n) {
  const std::string key = StrFormat(
      "rs/%d/%lld/%lld/%lld", static_cast<int>(method), (long long)m,
      (long long)k, (long long)n);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  sim::TimeNs t = 0;
  if (method == Method::kTorch) {
    rt::World world = MakeWorld(tp_);
    baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
    baselines::NonOverlapGemmRs bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  } else {
    rt::World world = MakeWorld(tp_);
    tl::GemmRsConfig cfg;
    cfg.m = m;
    cfg.k = k;
    cfg.n = n;
    cfg.gemm = CoarseTiling(k);
    cfg.rs_block_m = RsBlock(m / tp_, cfg.gemm.bm);
    cfg.dma_push = true;  // hybrid mapping (paper's best for GEMM+RS)
    tl::GemmRs bench(world, cfg);
    t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  }
  cache_[key] = t;
  return t;
}

sim::TimeNs E2eEstimator::TimeFlashCore(int64_t bh, int64_t sq, int64_t skv,
                                        int64_t d) {
  const std::string key =
      StrFormat("flash/%lld/%lld/%lld/%lld", (long long)bh, (long long)sq,
                (long long)skv, (long long)d);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  rt::World world = MakeWorld(tp_);
  comm::SymTensor q, k, v, o;
  for (int r = 0; r < tp_; ++r) {
    q.push_back(Tensor::Alloc(world.device(r), "q", {bh, sq, d},
                              DType::kBF16));
    k.push_back(Tensor::Alloc(world.device(r), "k", {bh, skv, d},
                              DType::kBF16));
    v.push_back(Tensor::Alloc(world.device(r), "v", {bh, skv, d},
                              DType::kBF16));
    o.push_back(Tensor::Alloc(world.device(r), "o", {bh, sq, d},
                              DType::kBF16));
  }
  const sim::TimeNs t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
    compute::FlashOptions opt;
    opt.block_kv = 1024;  // coarse: time is linear in kv extent
    compute::LaunchFlashAttention(ctx, *ctx.stream,
                                  q[static_cast<size_t>(ctx.rank)],
                                  k[static_cast<size_t>(ctx.rank)],
                                  v[static_cast<size_t>(ctx.rank)],
                                  o[static_cast<size_t>(ctx.rank)], opt);
    co_await ctx.stream->Synchronize();
  });
  cache_[key] = t;
  return t;
}

sim::TimeNs E2eEstimator::TimeActivation(int64_t m, int64_t n) {
  // Memory-bound elementwise: read a, read b, write out on ~all SMs.
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const sim::CostModel cost(spec);
  return cost.MemoryBound(
             3ULL * static_cast<uint64_t>(m) * static_cast<uint64_t>(n) * 2,
             spec.sms_per_device) +
         spec.kernel_launch_latency;
}

sim::TimeNs E2eEstimator::TimeMoe(Method method, const ModelConfig& model) {
  const std::string key =
      StrFormat("moe/%d/%s", static_cast<int>(method), model.name.c_str());
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const int64_t m = batch_ * seq_;
  const int64_t inner = std::max<int64_t>(1, model.intermediate / tp_);
  Rng rng(1234);
  compute::MoeRouting routing =
      compute::RandomRouting(m, model.num_experts, model.topk, rng);
  sim::TimeNs t = 0;
  if (method == Method::kTorch) {
    // Framework baseline: eager PyTorch MoE — a per-expert GEMM loop with
    // host-blocking index bookkeeping and unfused gather/scatter (this is
    // what torch eager actually executes; the paper's large MoE e2e gains
    // come from replacing exactly this).
    rt::World world = MakeWorld(tp_);
    baselines::MoePartConfig cfg{m, model.hidden, inner, model.num_experts,
                                 model.topk, CoarseTiling(model.hidden)};
    baselines::MoePart1 part1(world, cfg, routing,
                              baselines::MoeImpl::kCublas);
    baselines::MoePartConfig cfg2 = cfg;
    cfg2.gemm = CoarseTiling(inner);
    baselines::MoePart2 part2(world, cfg2, routing,
                              baselines::MoeImpl::kCublas);
    t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await part1.Run(ctx);
      co_await part2.Run(ctx);
    });
  } else {
    rt::World world = MakeWorld(tp_);
    tl::AgMoeConfig cfg1;
    cfg1.m = m;
    cfg1.hidden = model.hidden;
    cfg1.n = inner;
    cfg1.num_experts = model.num_experts;
    cfg1.topk = model.topk;
    cfg1.gemm = CoarseTiling(model.hidden);
    cfg1.gemm.bn = 128;
    cfg1.channels_per_rank = 4;
    cfg1.comm = tl::CommResource::kSmPull;  // matches bench_fig9 tuning
    // Large-batch e2e shapes are compute-dominated: keep the comm role lean.
    cfg1.comm_sms = 8;
    tl::AgMoe part1(world, cfg1, routing);
    tl::MoeRsConfig cfg2;
    cfg2.m = m;
    cfg2.k = inner;
    cfg2.hidden = model.hidden;
    cfg2.num_experts = model.num_experts;
    cfg2.topk = model.topk;
    cfg2.gemm = CoarseTiling(inner);
    cfg2.gemm.bn = 128;
    cfg2.sorted_channel_rows = 2048;
    cfg2.reduce_block_tokens = 128;
    cfg2.rs_block_m = RsBlock(m / tp_, 128);
    cfg2.dma_push = false;  // matches bench_fig9 tuning
    cfg2.comm_sms = 8;
    cfg2.reduce_sms = 8;
    tl::MoeRs part2(world, cfg2, routing);
    t = world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await part1.Run(ctx);
      co_await part2.Run(ctx);
    });
  }
  t += TimeActivation(m * model.topk, inner);
  cache_[key] = t;
  return t;
}

LayerBreakdown E2eEstimator::LayerTime(const ModelConfig& model,
                                       Method method) {
  LayerBreakdown out;
  const int64_t m = batch_ * seq_;
  const int64_t h = model.hidden;
  // Attention block: AG + QKV projection (column parallel), flash core on
  // local heads over the full sequence, out projection + RS (row parallel).
  const int64_t qkv_cols = 3 * h / tp_;
  out.attn_block += TimeAgGemm(method, m, h, qkv_cols);
  out.attn_block += TimeFlashCore(batch_ * model.heads / tp_, seq_, seq_,
                                  model.head_dim);
  out.attn_block += TimeGemmRs(method, m, h / tp_, h);
  // FFN block.
  if (model.is_moe) {
    out.ffn_block += TimeMoe(method, model);
    if (model.shared_expert_intermediate > 0) {
      const int64_t si = model.shared_expert_intermediate / tp_;
      out.ffn_block += TimeAgGemm(method, m, h, si);
      out.ffn_block += TimeActivation(m, si);
      out.ffn_block += TimeGemmRs(method, m, si, h);
    }
  } else {
    const int64_t inner = model.intermediate / tp_;
    out.ffn_block += TimeAgGemm(method, m, h, inner);
    out.ffn_block += TimeActivation(m, inner);
    out.ffn_block += TimeGemmRs(method, m, inner, h);
  }
  return out;
}

E2eResult E2eEstimator::Run(const ModelConfig& model) {
  E2eResult res;
  res.model = model.name;
  const LayerBreakdown torch = LayerTime(model, Method::kTorch);
  const LayerBreakdown tl = LayerTime(model, Method::kTileLink);
  res.torch_layer = torch.total();
  res.tilelink_layer = tl.total();
  if (two_node_) {
    // Inter-node data-parallel synchronization per layer (batch doubled,
    // per-GPU work unchanged); identical absolute cost for both methods,
    // calibrated to the paper's 1.32x -> 1.29x dilution.
    const sim::TimeNs dp = static_cast<sim::TimeNs>(0.08 * res.torch_layer);
    res.torch_layer += dp;
    res.tilelink_layer += dp;
  }
  res.torch_total = res.torch_layer * model.layers;
  res.tilelink_total = res.tilelink_layer * model.layers;
  res.speedup = static_cast<double>(res.torch_total) /
                static_cast<double>(res.tilelink_total);
  return res;
}

}  // namespace tilelink::models
