// Model zoo for the end-to-end evaluation (paper Figure 11): five dense LLMs
// and three MoE LLMs, with the tensor-parallel layer structure used by the
// paper (sequence-parallel attention block + TP MLP / MoE block).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tilelink::models {

struct ModelConfig {
  std::string name;
  int64_t hidden = 0;
  int layers = 0;
  int heads = 0;
  int64_t head_dim = 128;
  int64_t intermediate = 0;  // dense FFN intermediate (per expert for MoE)
  bool is_moe = false;
  int num_experts = 0;
  int topk = 0;
  // Qwen1.5-MoE style shared expert: a dense MLP of this intermediate size
  // runs alongside the routed experts (0 = none).
  int64_t shared_expert_intermediate = 0;
};

// The eight models of Figure 11.
std::vector<ModelConfig> Figure11Models();

// Lookup by name (throws if unknown).
ModelConfig GetModel(const std::string& name);

}  // namespace tilelink::models
