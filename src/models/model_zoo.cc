#include "models/model_zoo.h"

#include "common/check.h"

namespace tilelink::models {

std::vector<ModelConfig> Figure11Models() {
  std::vector<ModelConfig> zoo;
  zoo.push_back(ModelConfig{"GPT3-6.7B", 4096, 32, 32, 128, 16384});
  zoo.push_back(ModelConfig{"LLaMA2-7B", 4096, 32, 32, 128, 11008});
  zoo.push_back(ModelConfig{"LLaMA2-13B", 5120, 40, 40, 128, 13824});
  zoo.push_back(ModelConfig{"LLaMA2-70B", 8192, 80, 64, 128, 28672});
  zoo.push_back(ModelConfig{"GPT3-175B", 12288, 96, 96, 128, 49152});
  zoo.push_back(ModelConfig{"Mixtral-8x7B", 4096, 32, 32, 128, 14336, true,
                            8, 2});
  zoo.push_back(ModelConfig{"Mixtral-8x22B", 6144, 56, 48, 128, 16384, true,
                            8, 2});
  // Qwen1.5-MoE-A2.7B: fine-grained experts plus a shared expert (the paper
  // combines the MLP layer and MoE layer to support it).
  zoo.push_back(ModelConfig{"Qwen1.5-2.7B", 2048, 24, 16, 128, 1408, true,
                            60, 4, /*shared=*/5632});
  return zoo;
}

ModelConfig GetModel(const std::string& name) {
  for (const ModelConfig& m : Figure11Models()) {
    if (m.name == name) return m;
  }
  throw Error("unknown model: " + name);
}

}  // namespace tilelink::models
