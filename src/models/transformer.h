// End-to-end transformer timing (Figure 11): composes per-layer component
// times — sequence-parallel attention block (AG + QKV GEMM, flash core,
// out-proj GEMM + RS) and TP MLP / MoE block — by *running the simulator*
// for each unique component shape (coarse tiling keeps event counts small;
// total simulated time is tiling-invariant because tile-step cost is linear
// in FLOPs). Results are memoized per shape across models.
//
// Two TileLink config sources: the hand-picked defaults (the configs the
// paper's figures hard-code), or — after EnableTuning(cache) — per-shape
// configs from Autotuner::Search routed through a TunedConfigCache, so
// identical layers and identical shapes across models share one search and
// benchmarks can warm-start from a previous run's cache file.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "models/model_zoo.h"
#include "sim/machine_spec.h"
#include "sim/time.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/builder/tuned_config_cache.h"

namespace tilelink::models {

enum class Method {
  kTorch,     // non-overlap: NCCL collectives + cuBLAS/flash kernels
  kTileLink,  // overlapped kernels from tilelink/kernels
};

struct LayerBreakdown {
  sim::TimeNs attn_block = 0;  // AG+QKV, flash core, out-proj+RS
  sim::TimeNs ffn_block = 0;   // MLP or MoE (plus shared expert if any)
  // Two-node runs only: simulated inter-node data-parallel gradient sync
  // (multinode::DpAllReduce over the NIC fabric), method-shared like the
  // flash core — both frameworks ride the same collective.
  sim::TimeNs dp_sync = 0;
  sim::TimeNs total() const { return attn_block + ffn_block + dp_sync; }
};

struct E2eResult {
  std::string model;
  sim::TimeNs torch_layer = 0;
  sim::TimeNs tilelink_layer = 0;
  sim::TimeNs torch_total = 0;
  sim::TimeNs tilelink_total = 0;
  double speedup = 0.0;
  LayerBreakdown torch_breakdown;
  LayerBreakdown tilelink_breakdown;
};

// One continuous-batching step of a serving replica: the ragged batch shape
// the scheduler feeds through the estimator. prefill_tokens are the prompt
// tokens entering this step (0 for decode-only steps); decode_requests are
// the running requests emitting one token each against a KV context of up
// to kv_len tokens. Callers on the serving path bucket these (see
// serving/shape_bucket.h) so near-miss shapes share configs.
struct ServingStep {
  int64_t prefill_tokens = 0;
  int64_t decode_requests = 0;
  int64_t kv_len = 0;

  friend bool operator==(const ServingStep&, const ServingStep&) = default;
};

// Hand-picked serving-path seed configs and spaces, exported so the serving
// bench's ladder gates and tests search exactly what the estimator searches.
// They reduce to the paper's figure defaults at training-scale shapes and
// adapt the comm tiling to per-rank shards too small for them (ragged
// decode batches), so the seed is feasible for every padded serving shape.
tl::TuneCandidate DefaultAgGemmConfig(int64_t m, int64_t k, int tp);
tl::TuneCandidate DefaultGemmRsConfig(int64_t m, int64_t k, int tp);
// Mlp() for training-scale per-rank shards, ServingMlp() below 1024 rows.
tl::TuningSpace MlpTuningSpaceFor(int64_t m, int tp);

class E2eEstimator {
 public:
  // tp = tensor-parallel degree. Up to 8 the TP group lives in one node; a
  // wider group (the 16-GPU TP layers) spans nodes on the NIC fabric, and
  // the row-parallel projections then run the fused GEMM + hierarchical
  // ReduceScatter kernel (kernels/gemm_hier_rs) instead of GemmRs.
  // two_node adds the inter-node data-parallel synchronization of the
  // paper's 16-GPU setup (batch doubles, per-GPU work unchanged): a
  // simulated per-layer gradient AllReduce across the node-spanning DP
  // pairs over the NIC fabric (tilelink/multinode), not a calibrated
  // constant — the Figure-11 dilution emerges from the flows.
  E2eEstimator(int tp, int64_t batch, int64_t seq, bool two_node);

  // Obtain every TileLink kernel config from Autotuner::Search through the
  // per-shape `cache` (not owned; must outlive the estimator) instead of
  // the hand-picked defaults. The hand-picked config seeds each search, so
  // a tuned component is never slower than its default. `tune_threads` is
  // forwarded to every Autotuner (parallel candidate evaluation; any value
  // yields bitwise-identical tuned configs). The estimator itself is
  // thread-safe once tuning is enabled — the memo map is mutex'd and the
  // cache is internally synchronized — so independent layers/models can be
  // timed from concurrent threads against one shared cache.
  // `laddered` switches every cold search to the laddered multi-fidelity
  // schedule (Tune*Laddered: 1/16 -> 1/4 -> full rungs, seed-anchored,
  // floor-gated) — the serving path's bounded cold-tune mode. The offline
  // benches keep the classic halved search (the default) so their cache
  // contents stay byte-identical to previous releases.
  void EnableTuning(tl::TunedConfigCache* cache, int tune_threads = 1,
                    bool laddered = false);
  bool tuning_enabled() const { return tuned_cache_ != nullptr; }

  LayerBreakdown LayerTime(const ModelConfig& model, Method method);
  E2eResult Run(const ModelConfig& model);

  // Per-layer time of one continuous-batching serving step. GEMM token rows
  // are padded up to the serving quantum (a multiple of 32*tp) so ragged
  // decode batches (m = 1..32) route through the same fused kernels without
  // tripping their divisibility constraints; attention is split into a
  // prefill flash core (square over the new prompt) and a decode flash core
  // (one query row per request against kv_len). Memoized per bucketed step
  // shape like every other component.
  sim::TimeNs ServingStepTime(const ModelConfig& model, Method method,
                              const ServingStep& step);

 private:
  sim::TimeNs TimeAgGemm(Method method, int64_t m, int64_t k, int64_t n);
  sim::TimeNs TimeGemmRs(Method method, int64_t m, int64_t k, int64_t n);
  sim::TimeNs TimeFlashCore(int64_t bh, int64_t sq, int64_t skv, int64_t d);
  sim::TimeNs TimeMoe(Method method, const ModelConfig& model, int64_t m);
  sim::TimeNs TimeActivation(int64_t m, int64_t n);
  sim::TimeNs TimeDpSync(const ModelConfig& model);

  sim::MachineSpec Spec() const;
  sim::MachineSpec TwoNodeSpec() const;
  tl::Autotuner Tuner() const;

  // Memoization helpers: Lookup returns true (and the memoized time) on a
  // hit; Store records the freshly simulated time. Racing Store calls for
  // one key write the same deterministic value, so last-wins is safe.
  bool Lookup(const std::string& key, sim::TimeNs* t);
  sim::TimeNs Store(const std::string& key, sim::TimeNs t);

  int tp_;
  int64_t batch_, seq_;
  bool two_node_;
  int tune_threads_ = 1;
  bool laddered_ = false;
  tl::TunedConfigCache* tuned_cache_ = nullptr;
  std::mutex cache_mu_;  // guards cache_
  std::map<std::string, sim::TimeNs> cache_;
};

}  // namespace tilelink::models
