#include "runtime/consistency.h"

namespace tilelink::rt {

void ConsistencyChecker::RecordWrite(const Buffer* buf, int64_t lo, int64_t hi,
                                     sim::TimeNs start, sim::TimeNs end,
                                     const std::string& writer) {
  if (!enabled_) return;
  writes_[buf].push_back(WriteInterval{lo, hi, start, end, writer});
  // Order-independent audit: a read probed earlier may fall inside this
  // just-committed interval.
  auto it = reads_.find(buf);
  if (it != reads_.end()) {
    for (const ReadProbe& r : it->second) {
      const bool range_overlap = r.lo < hi && lo < r.hi;
      const bool in_flight = start <= r.t && r.t < end;
      if (range_overlap && in_flight) {
        violations_.push_back(
            Violation{buf, r.lo, r.hi, r.t, start, end, r.reader, writer});
      }
    }
  }
}

void ConsistencyChecker::CheckRead(const Buffer* buf, int64_t lo, int64_t hi,
                                   sim::TimeNs t, const std::string& reader) {
  if (!enabled_) return;
  reads_[buf].push_back(ReadProbe{lo, hi, t, reader});
  auto it = writes_.find(buf);
  if (it == writes_.end()) return;
  for (const WriteInterval& w : it->second) {
    const bool range_overlap = lo < w.hi && w.lo < hi;
    const bool in_flight = w.start <= t && t < w.end;
    if (range_overlap && in_flight) {
      violations_.push_back(
          Violation{buf, lo, hi, t, w.start, w.end, reader, w.writer});
    }
  }
}

void ConsistencyChecker::Clear() {
  writes_.clear();
  reads_.clear();
  violations_.clear();
}

}  // namespace tilelink::rt
