#include "runtime/consistency.h"

#include <algorithm>

#include "sim/trace.h"

namespace tilelink::rt {

void ConsistencyChecker::TraceCounters(sim::TimeNs ts) {
  if (trace_ == nullptr || trace_pid_ < 0) return;
  trace_->AddCounter(trace_pid_, "checker.live", "writes", ts,
                     static_cast<double>(live_writes()));
  trace_->AddCounter(trace_pid_, "checker.live", "reads", ts,
                     static_cast<double>(live_reads()));
  trace_->AddCounter(trace_pid_, "checker.retired", "intervals", ts,
                     static_cast<double>(retired_));
}

uint64_t ConsistencyChecker::OpenWrite(sim::TimeNs start) {
  if (!enabled_) return 0;
  const uint64_t token = next_token_++;
  open_writes_.emplace(token, start);
  return token;
}

void ConsistencyChecker::CloseWrite(uint64_t token) {
  if (token == 0) return;
  open_writes_.erase(token);
}

void ConsistencyChecker::RecordWrite(const Buffer* buf, int64_t lo, int64_t hi,
                                     sim::TimeNs start, sim::TimeNs end,
                                     const std::string& writer, bool atomic) {
  if (!enabled_) return;
  if (lo >= hi) return;  // empty element ranges never report
  // Write-write audit: two in-flight writes overlapping in range and time
  // race regardless of commit order — unless both are commutative atomic
  // accumulations. Window-vs-window overlap is max(starts) < min(ends);
  // an instantaneous write (start == end) commits at one point and races
  // a window exactly like a read does ([start, end) half-open: at the
  // window's start races, at its end is the correct handoff). Two
  // instantaneous writes never time-overlap.
  {
    auto wit = writes_.find(buf);
    if (wit != writes_.end()) {
      for (const WriteInterval& w : wit->second) {
        const bool range_overlap = lo < w.hi && w.lo < hi;
        bool time_overlap;
        if (start == end) {
          time_overlap = w.start <= start && start < w.end;
        } else if (w.start == w.end) {
          time_overlap = start <= w.start && w.start < end;
        } else {
          time_overlap = std::max(start, w.start) < std::min(end, w.end);
        }
        if (range_overlap && time_overlap && !(atomic && w.atomic)) {
          violations_.push_back(Violation{buf, lo, hi, start, w.start, w.end,
                                          writer, w.writer,
                                          Violation::Kind::kWriteWrite});
        }
      }
    }
  }
  writes_[buf].push_back(WriteInterval{lo, hi, start, end, writer, atomic});
  horizon_ = std::max(horizon_, end);
  // Order-independent audit: a read probed earlier may fall inside this
  // just-committed interval.
  auto it = reads_.find(buf);
  if (it != reads_.end()) {
    for (const ReadProbe& r : it->second) {
      const bool range_overlap = r.lo < hi && lo < r.hi;
      const bool in_flight = start <= r.t && r.t < end;
      if (range_overlap && in_flight) {
        violations_.push_back(
            Violation{buf, r.lo, r.hi, r.t, start, end, r.reader, writer});
      }
    }
  }
  ++records_since_retire_;
  if (trace_ != nullptr && ++records_since_trace_ >= kTraceSamplePeriod) {
    records_since_trace_ = 0;
    TraceCounters(horizon_);
  }
  MaybeAutoRetire();
}

void ConsistencyChecker::CheckRead(const Buffer* buf, int64_t lo, int64_t hi,
                                   sim::TimeNs t, const std::string& reader) {
  if (!enabled_) return;
  if (lo >= hi) return;  // empty element ranges never report
  reads_[buf].push_back(ReadProbe{lo, hi, t, reader});
  horizon_ = std::max(horizon_, t);
  auto it = writes_.find(buf);
  if (it == writes_.end()) return;
  for (const WriteInterval& w : it->second) {
    const bool range_overlap = lo < w.hi && w.lo < hi;
    const bool in_flight = w.start <= t && t < w.end;
    if (range_overlap && in_flight) {
      violations_.push_back(
          Violation{buf, lo, hi, t, w.start, w.end, reader, w.writer});
    }
  }
}

void ConsistencyChecker::RetireUpTo(sim::TimeNs watermark) {
  // An open (announced but unrecorded) write bounds how far probes may be
  // discarded: its order-independent audit still needs every read probed
  // since its start.
  sim::TimeNs w = watermark;
  if (!open_writes_.empty()) {
    for (const auto& [token, start] : open_writes_) {
      w = std::min(w, start);
    }
  }
  for (auto it = writes_.begin(); it != writes_.end();) {
    auto& vec = it->second;
    const std::size_t before = vec.size();
    std::erase_if(vec, [w](const WriteInterval& wi) { return wi.end <= w; });
    retired_ += before - vec.size();
    it = vec.empty() ? writes_.erase(it) : std::next(it);
  }
  for (auto it = reads_.begin(); it != reads_.end();) {
    auto& vec = it->second;
    const std::size_t before = vec.size();
    // Keep reads at exactly `w`: a future write may start at `w` and a read
    // at a write's start races.
    std::erase_if(vec, [w](const ReadProbe& r) { return r.t < w; });
    retired_ += before - vec.size();
    it = vec.empty() ? reads_.erase(it) : std::next(it);
  }
  records_since_retire_ = 0;
  TraceCounters(std::max(watermark, horizon_));
}

void ConsistencyChecker::MaybeAutoRetire() {
  if (auto_retire_period_ == 0 ||
      records_since_retire_ < auto_retire_period_) {
    return;
  }
  // `horizon_` only ever holds completed event times, so it is a valid
  // (past-or-present) watermark.
  RetireUpTo(horizon_);
}

std::size_t ConsistencyChecker::live_writes() const {
  std::size_t n = 0;
  for (const auto& [buf, vec] : writes_) n += vec.size();
  return n;
}

std::size_t ConsistencyChecker::live_reads() const {
  std::size_t n = 0;
  for (const auto& [buf, vec] : reads_) n += vec.size();
  return n;
}

void ConsistencyChecker::Clear() {
  writes_.clear();
  reads_.clear();
  violations_.clear();
  open_writes_.clear();
  horizon_ = 0;
  records_since_retire_ = 0;
  retired_ = 0;
}

}  // namespace tilelink::rt
