// Streams, events and kernel launch on the simulated device.
//
// A Stream executes enqueued async ops strictly in order (a Flag counts
// completed ops; op i starts when the count reaches i). Kernel launch spawns
// one coroutine per thread block; blocks contend for the device's SM slots
// in block-id order, which reproduces the GPU work-distributor behaviour the
// paper's fused kernels rely on (comm blocks with low ids grab their SMs
// first, compute blocks fill the rest, excess blocks wait for a free SM).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "runtime/device.h"
#include "sim/coro.h"
#include "sim/flag.h"
#include "sim/simulator.h"

namespace tilelink::rt {

class Stream;

// Completion state of one launched kernel.
struct KernelState {
  KernelState(sim::Simulator* sim, int grid_dim, std::string kernel_name)
      : blocks_done(sim, kernel_name + ".blocks_done"), grid(grid_dim),
        name(std::move(kernel_name)) {}
  sim::Flag blocks_done;
  int grid;
  sim::TimeNs start_time = -1;
  sim::TimeNs end_time = -1;
  std::string name;

  sim::Flag::Awaiter Wait() { return blocks_done.WaitGe(grid); }
  bool done() const { return blocks_done.value() >= static_cast<uint64_t>(grid); }
};

// Per-block execution context handed to kernel body coroutines.
struct BlockCtx {
  Device* dev = nullptr;
  int block_id = 0;
  int grid = 0;
  KernelState* kernel = nullptr;

  bool functional() const { return dev->functional(); }
};

using BlockFn = std::function<sim::Coro(BlockCtx)>;

// A cross-stream synchronization event (cudaEvent analog).
class StreamEvent {
 public:
  explicit StreamEvent(sim::Simulator* sim) : flag_(sim, "stream_event") {}
  sim::Flag::Awaiter Wait() { return flag_.WaitGe(1); }
  void Record() { flag_.Set(1); }
  bool query() const { return flag_.value() >= 1; }

 private:
  sim::Flag flag_;
};

class Stream {
 public:
  Stream(Device* dev, std::string name)
      : dev_(dev), name_(std::move(name)),
        tail_(dev->sim(), name_ + ".tail") {}
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device* device() const { return dev_; }
  const std::string& name() const { return name_; }

  // Enqueues an async op. `make_op` is invoked when the op actually starts
  // (all prior ops on this stream done).
  void Enqueue(std::function<sim::Coro()> make_op);

  // Launches a kernel of `grid` blocks on this stream; returns its state.
  // The launch occupies the stream until every block has finished.
  std::shared_ptr<KernelState> LaunchKernel(int grid, BlockFn body,
                                            std::string kernel_name);

  // Records an event that fires when all currently-enqueued ops complete.
  std::shared_ptr<StreamEvent> RecordEvent();

  // Makes subsequent ops on this stream wait for `event`.
  void WaitEvent(std::shared_ptr<StreamEvent> event);

  // Host-side synchronization: completes when all enqueued ops are done,
  // then charges the host-sync latency.
  sim::Coro Synchronize();

  uint64_t ops_enqueued() const { return enqueued_; }
  bool idle() const { return tail_.value() >= enqueued_; }

 private:
  sim::Coro RunOp(uint64_t index, std::function<sim::Coro()> make_op);

  Device* dev_;
  std::string name_;
  sim::Flag tail_;
  uint64_t enqueued_ = 0;
};

}  // namespace tilelink::rt
