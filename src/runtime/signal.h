// Device-resident signal sets: the simulated analog of the barrier words that
// TileLink's lowered code manipulates with red.release / polls with
// ld.global.acquire (paper §3.2.1, §4.2).
//
// A SignalSet lives on one device. Writes from a peer rank become visible
// after the remote visibility latency; writes from the local rank after the
// (much smaller) local latency. Release semantics are the caller's contract:
// primitives only issue Set/Add after the producing stores' completion
// events, which the TileLink lowering enforces and the ConsistencyChecker
// audits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/flag.h"
#include "sim/machine_spec.h"
#include "sim/simulator.h"

namespace tilelink::rt {

class SignalSet {
 public:
  SignalSet(sim::Simulator* sim, const sim::MachineSpec* spec, int device,
            int count, std::string name)
      : sim_(sim), spec_(spec), device_(device), name_(std::move(name)) {
    TL_CHECK_GT(count, 0);
    flags_.reserve(count);
    for (int i = 0; i < count; ++i) {
      flags_.push_back(std::make_unique<sim::Flag>(
          sim, name_ + "[" + std::to_string(i) + "]"));
    }
  }
  SignalSet(const SignalSet&) = delete;
  SignalSet& operator=(const SignalSet&) = delete;

  int device() const { return device_; }
  int count() const { return static_cast<int>(flags_.size()); }
  uint64_t value(int idx) const { return flag(idx).value(); }

  // Raises flag idx to at least v, issued by from_rank. Visibility is
  // delayed by the fabric's signal latency when from_rank is remote.
  void SetFrom(int from_rank, int idx, uint64_t v) {
    sim::Flag* f = &flag(idx);
    sim_->After(SignalLatency(from_rank), [f, v] { f->Set(v); });
  }

  // Atomically adds d to flag idx (models red.global.add.release).
  void AddFrom(int from_rank, int idx, uint64_t d) {
    sim::Flag* f = &flag(idx);
    sim_->After(SignalLatency(from_rank), [f, d] { f->Add(d); });
  }

  // Acquire-side wait: suspends until flag idx >= threshold.
  sim::Flag::Awaiter Wait(int idx, uint64_t threshold) {
    return flag(idx).WaitGe(threshold);
  }

  void ResetAll() {
    for (auto& f : flags_) f->Reset();
  }

  sim::TimeNs SignalLatency(int from_rank) const {
    return from_rank == device_ ? spec_->local_signal_latency
                                : spec_->signal_visibility_latency;
  }

 private:
  sim::Flag& flag(int idx) {
    TL_CHECK_GE(idx, 0);
    TL_CHECK_LT(idx, count());
    return *flags_[idx];
  }
  const sim::Flag& flag(int idx) const {
    TL_CHECK_GE(idx, 0);
    TL_CHECK_LT(idx, count());
    return *flags_[idx];
  }

  sim::Simulator* sim_;
  const sim::MachineSpec* spec_;
  int device_;
  std::string name_;
  std::vector<std::unique_ptr<sim::Flag>> flags_;
};

}  // namespace tilelink::rt
