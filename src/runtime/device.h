// One simulated GPU: SM slots (FIFO work distributor), copy engines (DMA),
// a memory pool, and signal storage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/memory.h"
#include "runtime/signal.h"
#include "sim/machine_spec.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace tilelink::rt {

class Device {
 public:
  Device(sim::Simulator* sim, const sim::MachineSpec* spec, int id,
         ExecMode mode)
      : sim_(sim), spec_(spec), id_(id), mode_(mode), mem_(id),
        sms_(sim, spec->sms_per_device, "dev" + std::to_string(id) + ".sms"),
        copy_engines_(sim, spec->copy_engines_per_device,
                      "dev" + std::to_string(id) + ".ce") {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  sim::Simulator* sim() const { return sim_; }
  const sim::MachineSpec& spec() const { return *spec_; }
  ExecMode exec_mode() const { return mode_; }
  bool functional() const { return mode_ == ExecMode::kFunctional; }

  sim::Resource& sms() { return sms_; }
  sim::Resource& copy_engines() { return copy_engines_; }

  Buffer* Alloc(const std::string& name, int64_t num_elems) {
    return mem_.Alloc(name, num_elems, functional());
  }
  // Control buffers (routing tables, mapping tables) are always materialized
  // — they are tiny and the scheduling logic needs their contents even in
  // timing-only mode.
  Buffer* AllocControl(const std::string& name, int64_t num_elems) {
    return mem_.Alloc(name, num_elems, /*materialize=*/true);
  }

  SignalSet* AllocSignals(const std::string& name, int count) {
    signals_.push_back(std::make_unique<SignalSet>(
        sim_, spec_, id_, count, "dev" + std::to_string(id_) + "." + name));
    return signals_.back().get();
  }

 private:
  sim::Simulator* sim_;
  const sim::MachineSpec* spec_;
  int id_;
  ExecMode mode_;
  MemPool mem_;
  sim::Resource sms_;
  sim::Resource copy_engines_;
  std::vector<std::unique_ptr<SignalSet>> signals_;
};

}  // namespace tilelink::rt
