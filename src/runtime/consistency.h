// Memory-consistency checker (the testable analog of §4.2 of the paper).
//
// Simulated kernels register writes as (buffer, element range, start, end)
// intervals and reads as (buffer, element range, time) probes. A read that
// lands inside an in-flight write interval is a race: the consumer observed
// data before the producer's release made it visible. TileLink-lowered code
// never triggers this (waits carry acquire, notifies carry release and are
// scheduled after store completion); the deliberately-unsafe compiler mode
// used in fault-injection tests does.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace tilelink::rt {

class Buffer;

class ConsistencyChecker {
 public:
  struct Violation {
    const Buffer* buffer;
    int64_t lo, hi;           // read range
    sim::TimeNs read_time;
    sim::TimeNs write_start;
    sim::TimeNs write_end;
    std::string reader;
    std::string writer;
  };

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Registers a write of [lo, hi) on buf spanning [start, end) sim-time.
  // Also audits previously probed reads whose time falls inside this
  // interval (writes commit at transfer completion, so a racing read may
  // have been probed first — the check must be order-independent).
  void RecordWrite(const Buffer* buf, int64_t lo, int64_t hi,
                   sim::TimeNs start, sim::TimeNs end,
                   const std::string& writer);

  // Probes a read of [lo, hi) at time t; records a violation if it overlaps
  // an in-flight write (already recorded or recorded later).
  void CheckRead(const Buffer* buf, int64_t lo, int64_t hi, sim::TimeNs t,
                 const std::string& reader);

  const std::vector<Violation>& violations() const { return violations_; }
  void Clear();

 private:
  struct WriteInterval {
    int64_t lo, hi;
    sim::TimeNs start, end;
    std::string writer;
  };
  struct ReadProbe {
    int64_t lo, hi;
    sim::TimeNs t;
    std::string reader;
  };

  bool enabled_ = false;
  std::unordered_map<const Buffer*, std::vector<WriteInterval>> writes_;
  std::unordered_map<const Buffer*, std::vector<ReadProbe>> reads_;
  std::vector<Violation> violations_;
};

}  // namespace tilelink::rt
