// Memory-consistency checker (the testable analog of §4.2 of the paper).
//
// Simulated kernels register writes as (buffer, element range, start, end)
// intervals and reads as (buffer, element range, time) probes. A read that
// lands inside an in-flight write interval is a race: the consumer observed
// data before the producer's release made it visible. TileLink-lowered code
// never triggers this (waits carry acquire, notifies carry release and are
// scheduled after store completion); the deliberately-unsafe compiler mode
// used in fault-injection tests does.
//
// Semantics (pinned by tests/test_runtime.cc):
//  * A write interval [start, end) is half-open in time: a read at exactly
//    `end` is safe (publication and consumption at the same completion
//    instant are the correct acquire/release rendezvous), a read at exactly
//    `start` races.
//  * Element ranges [lo, hi) are half-open too; empty ranges (hi <= lo)
//    never report and are not stored.
//  * A read-modify-write actor probes its input at its wake instant and
//    records its own mutation window starting strictly after that probe
//    ([wake + 1, end)): its program-ordered self-access never matches,
//    while any other actor reading inside the mutation window still does.
//
// Scale: intervals are retired past a completed-time watermark so e2e-scale
// runs (the functional 16-GPU collectives register per-chunk intervals) stay
// bounded in memory and audit time. Writers that commit at completion time
// (transfer start < record time) must bracket the transfer with
// OpenWrite/CloseWrite so the watermark cannot advance past an in-flight
// write and retire the reads it still needs to audit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace tilelink::sim {
class TraceRecorder;
}  // namespace tilelink::sim

namespace tilelink::rt {

class Buffer;

class ConsistencyChecker {
 public:
  struct Violation {
    // kReadWrite: a read probed inside an in-flight write interval.
    // kWriteWrite: two in-flight write intervals on the same buffer overlap
    // in both element range and time (two writers racing on one range —
    // e.g. a mis-indexed rail staging slot receiving two concurrent NIC
    // chunks). For kWriteWrite the "read" fields describe the
    // later-recorded write: lo/hi its range, read_time its start, reader
    // its writer name.
    enum class Kind { kReadWrite, kWriteWrite };
    const Buffer* buffer;
    int64_t lo, hi;           // read range
    sim::TimeNs read_time;
    sim::TimeNs write_start;
    sim::TimeNs write_end;
    std::string reader;
    std::string writer;
    Kind kind = Kind::kReadWrite;
  };

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Announces a write that will be recorded at its completion time.
  // Retirement never advances past the earliest open start, so a racing
  // read probed while this write is in flight survives until the
  // order-independent audit in RecordWrite sees it. Returns a token for
  // CloseWrite (0 when the checker is disabled).
  uint64_t OpenWrite(sim::TimeNs start);
  void CloseWrite(uint64_t token);

  // Registers a write of [lo, hi) on buf spanning [start, end) sim-time.
  // Also audits previously probed reads whose time falls inside this
  // interval (writes commit at transfer completion, so a racing read may
  // have been probed first — the check must be order-independent), and
  // previously recorded writes whose interval overlaps this one in both
  // range and time (write-write race). An instantaneous write (start ==
  // end) models a store committing at one point: it races a window exactly
  // like a read does (inside or at the window's start races, at its end is
  // the correct handoff), and two instantaneous writes never race.
  // `atomic` marks a commutative accumulation (red.add-style reduction
  // epilogue): two atomic windows may overlap freely — concurrent per-peer
  // reducers folding into one accumulator are legal — but an atomic window
  // overlapping a plain write (e.g. a chunk copy landing mid-reduction)
  // still races, as do two plain writes (a mis-indexed staging slot).
  // OpenWrite bracketing keeps both audits sound under retirement: a live
  // in-flight write pins the watermark, so an earlier overlapping interval
  // cannot retire before the later one is recorded.
  void RecordWrite(const Buffer* buf, int64_t lo, int64_t hi,
                   sim::TimeNs start, sim::TimeNs end,
                   const std::string& writer, bool atomic = false);

  // Probes a read of [lo, hi) at time t; records a violation if it overlaps
  // an in-flight write (already recorded or recorded later).
  void CheckRead(const Buffer* buf, int64_t lo, int64_t hi, sim::TimeNs t,
                 const std::string& reader);

  // Drops write intervals that ended at or before `watermark` and read
  // probes strictly before it — they can no longer participate in any
  // violation. The effective watermark is clamped to the earliest open
  // write so in-flight audits are never lost. Callers must pass a
  // watermark <= the current simulated time. Violations are never dropped.
  void RetireUpTo(sim::TimeNs watermark);

  // Auto-retirement: every `n` recorded writes, RetireUpTo(latest completed
  // time seen). 0 disables. Defaults to kDefaultAutoRetirePeriod so
  // long-running functional simulations stay bounded without manual calls.
  static constexpr std::size_t kDefaultAutoRetirePeriod = 4096;
  void set_auto_retire_period(std::size_t n) { auto_retire_period_ = n; }

  // Live/retired interval counts (for the retirement regression tests).
  std::size_t live_writes() const;
  std::size_t live_reads() const;
  std::size_t retired_intervals() const { return retired_; }

  const std::vector<Violation>& violations() const { return violations_; }
  void Clear();

  // --- tracing ---
  // Emits live-write/live-read/retired counters onto trace process `pid`
  // ("checker" counter tracks): sampled every kTraceSamplePeriod recorded
  // writes and at every retirement, so the timeline shows checker pressure
  // without one counter point per interval. Null recorder disables.
  static constexpr std::size_t kTraceSamplePeriod = 64;
  void set_trace(sim::TraceRecorder* trace, int pid) {
    trace_ = trace;
    trace_pid_ = pid;
    records_since_trace_ = 0;
  }

 private:
  struct WriteInterval {
    int64_t lo, hi;
    sim::TimeNs start, end;
    std::string writer;
    bool atomic;
  };
  struct ReadProbe {
    int64_t lo, hi;
    sim::TimeNs t;
    std::string reader;
  };

  void MaybeAutoRetire();
  // Emits the live/retired counter sample at sim-time `ts` (trace only).
  void TraceCounters(sim::TimeNs ts);

  bool enabled_ = false;
  std::unordered_map<const Buffer*, std::vector<WriteInterval>> writes_;
  std::unordered_map<const Buffer*, std::vector<ReadProbe>> reads_;
  std::vector<Violation> violations_;
  std::map<uint64_t, sim::TimeNs> open_writes_;  // token -> start
  uint64_t next_token_ = 1;
  sim::TimeNs horizon_ = 0;  // latest completed time seen
  std::size_t auto_retire_period_ = kDefaultAutoRetirePeriod;
  std::size_t records_since_retire_ = 0;
  std::size_t retired_ = 0;
  sim::TraceRecorder* trace_ = nullptr;  // non-owning
  int trace_pid_ = -1;
  std::size_t records_since_trace_ = 0;
};

}  // namespace tilelink::rt
