#include "runtime/world.h"

#include <algorithm>

#include "sim/trace.h"

namespace tilelink::rt {

World::World(const sim::MachineSpec& spec, ExecMode mode)
    : spec_(spec), mode_(mode), cost_(spec) {
  intra_ = std::make_unique<sim::Network>(&sim_, spec.num_devices,
                                          spec.nvlink_gbps,
                                          spec.nvlink_latency, "nvlink");
  inter_ = std::make_unique<sim::Network>(&sim_, spec.num_devices,
                                          spec.nic_gbps, spec.nic_latency,
                                          "nic");
  inter_->set_local_copy_bw_gbps(spec.hbm_gbps);
  intra_->set_local_copy_bw_gbps(spec.hbm_gbps);
  inter_->ConfigureRails(spec.nic_rails);
  devices_.reserve(spec.num_devices);
  for (int d = 0; d < spec.num_devices; ++d) {
    devices_.push_back(std::make_unique<Device>(&sim_, &spec_, d, mode));
  }
  rank_ctxs_.reserve(spec.num_devices);
  for (int d = 0; d < spec.num_devices; ++d) {
    streams_.push_back(std::make_unique<Stream>(
        devices_[d].get(), "dev" + std::to_string(d) + ".stream0"));
    Stream* compute = streams_.back().get();
    streams_.push_back(std::make_unique<Stream>(
        devices_[d].get(), "dev" + std::to_string(d) + ".stream1"));
    Stream* comm = streams_.back().get();
    rank_ctxs_.push_back(RankCtx{this, d, devices_[d].get(), compute, comm});
  }
  barrier_ = std::make_unique<HostBarrier>(&sim_, spec.num_devices, "world");
  comm_barrier_ =
      std::make_unique<HostBarrier>(&sim_, spec.num_devices, "world.comm");
}

sim::Network& World::fabric_for(int src, int dst) {
  return spec_.node_of(src) == spec_.node_of(dst) ? *intra_ : *inter_;
}

sim::Coro World::Transfer(int src, int dst, uint64_t bytes) {
  co_await fabric_for(src, dst).Transfer(src, dst, bytes);
}

void World::set_fault_plan(const sim::FaultPlan* plan) {
  fault_plan_ = plan;
  intra_->SetFaultPlan(plan);
  inter_->SetFaultPlan(plan);
}

sim::FaultStats World::fault_stats() const {
  sim::FaultStats out = intra_->fault_stats();
  out += inter_->fault_stats();
  return out;
}

void World::set_trace(sim::TraceRecorder* trace, int pid_base,
                      const std::string& label) {
  trace_ = trace;
  trace_pid_base_ = pid_base;
  sim_.set_trace(trace);
  if (trace == nullptr) {
    intra_->set_trace_pid(-1);
    inter_->set_trace_pid(-1);
    checker_.set_trace(nullptr, -1);
    sim_.set_trace_pid(0);
    return;
  }
  const std::string prefix = label.empty() ? std::string() : label + " ";
  const int n = size();
  for (int r = 0; r < n; ++r) {
    trace->SetProcessName(pid_base + r, prefix + "rank" + std::to_string(r));
  }
  intra_->set_trace_pid(pid_base + n);
  trace->SetProcessName(pid_base + n, prefix + "fabric nvlink");
  inter_->set_trace_pid(pid_base + n + 1);
  trace->SetProcessName(pid_base + n + 1, prefix + "fabric nic");
  checker_.set_trace(trace, pid_base + n + 2);
  trace->SetProcessName(pid_base + n + 2, prefix + "checker");
  sim_.set_trace_pid(pid_base + n + 3);
  trace->SetProcessName(pid_base + n + 3, prefix + "host");
}

std::vector<Buffer*> World::AllocSymmetric(const std::string& name,
                                           int64_t num_elems) {
  std::vector<Buffer*> out;
  out.reserve(size());
  for (int r = 0; r < size(); ++r) {
    out.push_back(device(r).Alloc(name, num_elems));
  }
  return out;
}

std::vector<SignalSet*> World::AllocSymmetricSignals(const std::string& name,
                                                     int count) {
  std::vector<SignalSet*> out;
  out.reserve(size());
  for (int r = 0; r < size(); ++r) {
    out.push_back(device(r).AllocSignals(name, count));
  }
  return out;
}

namespace {

sim::Coro RankProgram(RankCtx& ctx,
                      std::function<sim::Coro(RankCtx&)> program,
                      sim::TimeNs* finish) {
  co_await program(ctx);
  *finish = ctx.sim()->Now();
}

}  // namespace

sim::TimeNs World::RunSpmd(
    const std::function<sim::Coro(RankCtx&)>& program) {
  const sim::TimeNs start = sim_.Now();
  std::vector<sim::TimeNs> finish(static_cast<size_t>(size()), start);
  for (int r = 0; r < size(); ++r) {
    sim_.Spawn(RankProgram(rank_ctxs_[r], program, &finish[r]),
               "rank" + std::to_string(r));
  }
  sim_.Run();
  // All in-flight writes have committed (the event loop drained), so every
  // still-live interval is past its audit window: retire them so successive
  // SPMD runs on one world don't accumulate checker state. Violations found
  // so far are kept.
  checker_.RetireUpTo(sim_.Now());
  sim::TimeNs latest = start;
  for (sim::TimeNs t : finish) latest = std::max(latest, t);
  return latest - start;
}

}  // namespace tilelink::rt
