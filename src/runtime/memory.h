// Simulated device memory.
//
// A Buffer is a named allocation that lives on one simulated device. In
// functional mode buffers are materialized as host float storage so kernels
// compute real numerics; in timing-only mode (paper-scale shapes) buffers
// track sizes but hold no payload. The *logical* dtype width (e.g. BF16 = 2
// bytes) is what communication and memory-bound cost functions bill, while
// functional math always runs in fp32 — see DESIGN.md §1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace tilelink::rt {

enum class ExecMode {
  kFunctional,  // real numerics + timing (tests, examples)
  kTimingOnly,  // timing only, payloads not materialized (paper-scale bench)
};

class Buffer {
 public:
  Buffer(int device, std::string name, int64_t num_elems, bool materialize)
      : device_(device), name_(std::move(name)), num_elems_(num_elems) {
    TL_CHECK_GE(num_elems, 0);
    if (materialize) {
      data_.assign(static_cast<size_t>(num_elems), 0.0f);
    }
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  int device() const { return device_; }
  const std::string& name() const { return name_; }
  int64_t num_elems() const { return num_elems_; }
  bool materialized() const { return !data_.empty() || num_elems_ == 0; }

  std::span<float> data() {
    TL_CHECK_MSG(materialized(), "buffer '" << name_
                                            << "' used functionally in "
                                               "timing-only mode");
    return std::span<float>(data_);
  }
  std::span<const float> data() const {
    TL_CHECK_MSG(materialized(), "buffer '" << name_
                                            << "' used functionally in "
                                               "timing-only mode");
    return std::span<const float>(data_);
  }

  float& at(int64_t i) {
    TL_DCHECK(i >= 0 && i < num_elems_);
    return data()[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    TL_DCHECK(i >= 0 && i < num_elems_);
    return data()[static_cast<size_t>(i)];
  }

  void Zero() {
    if (!data_.empty()) data_.assign(data_.size(), 0.0f);
  }

 private:
  int device_;
  std::string name_;
  int64_t num_elems_;
  std::vector<float> data_;
};

// Per-device arena owning buffers; pointers remain stable for the arena's
// lifetime.
class MemPool {
 public:
  explicit MemPool(int device) : device_(device) {}

  Buffer* Alloc(const std::string& name, int64_t num_elems, bool materialize) {
    buffers_.push_back(
        std::make_unique<Buffer>(device_, name, num_elems, materialize));
    return buffers_.back().get();
  }

  int64_t total_elems() const {
    int64_t n = 0;
    for (const auto& b : buffers_) n += b->num_elems();
    return n;
  }

 private:
  int device_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace tilelink::rt
