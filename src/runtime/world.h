// SPMD world: owns the simulator, devices, fabrics, cost model and the
// consistency checker; launches one host coroutine per rank (the analog of
// the paper's NVSHMEM-initialized multi-process launch, Figure 7) and
// provides symmetric allocation across ranks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/consistency.h"
#include "runtime/device.h"
#include "runtime/stream.h"
#include "sim/cost_model.h"
#include "sim/machine_spec.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tilelink::rt {

class World;

// Reusable all-rank host barrier.
class HostBarrier {
 public:
  HostBarrier(sim::Simulator* sim, int world_size, std::string name)
      : count_(sim, std::move(name)), world_size_(world_size) {}

  // Coroutine: arrive and wait for the current generation to complete.
  sim::Coro Arrive() {
    const uint64_t seq = next_seq_++;
    const uint64_t target = (seq / world_size_ + 1) * world_size_;
    count_.Add(1);
    co_await count_.WaitGe(target);
  }

 private:
  sim::Flag count_;
  int world_size_;
  uint64_t next_seq_ = 0;
};

// Per-rank context handed to SPMD host programs.
struct RankCtx {
  World* world = nullptr;
  int rank = 0;
  Device* dev = nullptr;
  Stream* stream = nullptr;       // default compute stream
  Stream* comm_stream = nullptr;  // secondary stream for comm kernels / DMA

  bool functional() const { return dev->functional(); }
  sim::Simulator* sim() const { return dev->sim(); }
};

class World {
 public:
  World(const sim::MachineSpec& spec, ExecMode mode);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return spec_.num_devices; }
  const sim::MachineSpec& spec() const { return spec_; }
  ExecMode exec_mode() const { return mode_; }
  bool functional() const { return mode_ == ExecMode::kFunctional; }

  sim::Simulator& sim() { return sim_; }
  const sim::CostModel& cost() const { return cost_; }
  ConsistencyChecker& checker() { return checker_; }
  Device& device(int rank) { return *devices_.at(rank); }
  RankCtx& rank_ctx(int rank) { return rank_ctxs_.at(rank); }
  HostBarrier& barrier() { return *barrier_; }
  // Dedicated barrier used by operator-centric collectives for rendezvous,
  // kept separate from the user barrier so workloads cannot cross-talk.
  // Collectives on one world must not run concurrently with each other.
  HostBarrier& comm_barrier() { return *comm_barrier_; }

  // Moves `bytes` from device src to device dst over the appropriate fabric
  // (NVLink within a node, NIC across nodes).
  sim::Coro Transfer(int src, int dst, uint64_t bytes);

  // The fabric Transfer(src, dst, ...) rides: NVLink when both devices
  // share a node, the NIC otherwise.
  sim::Network& fabric_for(int src, int dst);

  sim::Network& intra_fabric() { return *intra_; }
  sim::Network& inter_fabric() { return *inter_; }

  // Attach a read-only fault plan to both fabrics (caller keeps it alive for
  // the world's lifetime; nullptr detaches). The plan is immutable and
  // stateless, so Autotuner workers can share one plan across their Worlds.
  void set_fault_plan(const sim::FaultPlan* plan);
  const sim::FaultPlan* fault_plan() const { return fault_plan_; }
  // Fault counters summed over both fabrics.
  sim::FaultStats fault_stats() const;

  // --- tracing ---
  // Attach a trace recorder (caller keeps it alive; nullptr detaches).
  // Assigns this world a contiguous trace-pid block starting at `pid_base`:
  // ranks 0..size-1, then the nvlink fabric, nic fabric, checker and host
  // event loop. `label` prefixes the process names so one recorder can hold
  // several worlds (give each a disjoint pid_base). Tracing is strictly
  // observational: with no recorder every emission site is skipped, and
  // makespans are bitwise identical either way (pinned by test_trace).
  void set_trace(sim::TraceRecorder* trace, int pid_base = 0,
                 const std::string& label = "");
  sim::TraceRecorder* trace() const { return trace_; }
  // Trace pid of one rank's spans, or -1 when untraced.
  int trace_pid(int rank) const {
    return trace_ != nullptr ? trace_pid_base_ + rank : -1;
  }

  // Symmetric allocation: one identically-sized buffer per rank. Index the
  // result by rank; remote entries model NVSHMEM symmetric-heap peers.
  std::vector<Buffer*> AllocSymmetric(const std::string& name,
                                      int64_t num_elems);
  std::vector<SignalSet*> AllocSymmetricSignals(const std::string& name,
                                                int count);

  // Runs `program` on every rank SPMD-style; returns the makespan (time from
  // launch until the slowest rank's host program finishes).
  sim::TimeNs RunSpmd(const std::function<sim::Coro(RankCtx&)>& program);

 private:
  sim::MachineSpec spec_;
  ExecMode mode_;
  sim::Simulator sim_;
  sim::CostModel cost_;
  ConsistencyChecker checker_;
  std::unique_ptr<sim::Network> intra_;
  std::unique_ptr<sim::Network> inter_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<Stream>> streams_;  // owns all rank streams
  std::vector<RankCtx> rank_ctxs_;
  std::unique_ptr<HostBarrier> barrier_;
  std::unique_ptr<HostBarrier> comm_barrier_;
  const sim::FaultPlan* fault_plan_ = nullptr;  // non-owning
  sim::TraceRecorder* trace_ = nullptr;         // non-owning
  int trace_pid_base_ = 0;
};

}  // namespace tilelink::rt
