#include "runtime/stream.h"

namespace tilelink::rt {
namespace {

// Root coroutine for one thread block: queue for an SM slot, run the body,
// free the slot, tick the kernel's completion counter.
sim::Coro BlockWrapper(BlockCtx ctx, BlockFn body,
                       std::shared_ptr<KernelState> state) {
  co_await ctx.dev->sms().Acquire();
  try {
    co_await body(ctx);
  } catch (...) {
    ctx.dev->sms().Release();
    throw;
  }
  ctx.dev->sms().Release();
  state->blocks_done.Add(1);
  if (state->done()) {
    state->end_time = ctx.dev->sim()->Now();
  }
}

}  // namespace

void Stream::Enqueue(std::function<sim::Coro()> make_op) {
  const uint64_t index = enqueued_++;
  dev_->sim()->Spawn(RunOp(index, std::move(make_op)), name_ + ".op");
}

sim::Coro Stream::RunOp(uint64_t index, std::function<sim::Coro()> make_op) {
  co_await tail_.WaitGe(index);
  co_await make_op();
  tail_.Set(index + 1);
}

std::shared_ptr<KernelState> Stream::LaunchKernel(int grid, BlockFn body,
                                                  std::string kernel_name) {
  TL_CHECK_GT(grid, 0);
  auto state =
      std::make_shared<KernelState>(dev_->sim(), grid, std::move(kernel_name));
  Device* dev = dev_;
  Enqueue([dev, grid, body = std::move(body), state]() -> sim::Coro {
    co_await sim::Delay{dev->spec().kernel_launch_latency};
    state->start_time = dev->sim()->Now();
    for (int b = 0; b < grid; ++b) {
      dev->sim()->Spawn(
          BlockWrapper(BlockCtx{dev, b, grid, state.get()}, body, state),
          state->name + ".block");
    }
    co_await state->Wait();
  });
  return state;
}

std::shared_ptr<StreamEvent> Stream::RecordEvent() {
  auto event = std::make_shared<StreamEvent>(dev_->sim());
  Enqueue([event]() -> sim::Coro {
    event->Record();
    co_return;
  });
  return event;
}

void Stream::WaitEvent(std::shared_ptr<StreamEvent> event) {
  Enqueue([event]() -> sim::Coro { co_await event->Wait(); });
}

sim::Coro Stream::Synchronize() {
  co_await tail_.WaitGe(enqueued_);
  co_await sim::Delay{dev_->spec().host_sync_latency};
}

}  // namespace tilelink::rt
