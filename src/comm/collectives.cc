#include "comm/collectives.h"

#include "comm/p2p.h"
#include "common/math_utils.h"
#include "sim/coro_utils.h"
#include "tensor/tensor_ops.h"

namespace tilelink::comm {
namespace {

// Rendezvous + NCCL-analog setup cost paid by every collective call.
sim::Coro CollectiveEntry(rt::RankCtx& ctx) {
  co_await ctx.world->comm_barrier().Arrive();
  co_await sim::Delay{ctx.world->spec().collective_setup_latency};
}

// Billed time of the SM-side reduction epilogue over `bytes` (read partial,
// read acc, write acc), using the ~20 SMs NCCL-class kernels occupy.
sim::TimeNs ReduceCost(rt::World& world, uint64_t bytes) {
  return world.cost().MemoryBound(3 * bytes, 20);
}

}  // namespace

sim::Coro AllGather(rt::RankCtx& ctx, const SymTensor& shards,
                    const SymTensor& outs, Algo algo) {
  rt::World& world = *ctx.world;
  const int r = ctx.rank;
  const int R = world.size();
  TL_CHECK_EQ(static_cast<int>(shards.size()), R);
  TL_CHECK_EQ(static_cast<int>(outs.size()), R);
  const int64_t m_per_rank = shards[static_cast<size_t>(r)].dim(0);
  TL_CHECK_EQ(outs[static_cast<size_t>(r)].dim(0), m_per_rank * R);

  co_await CollectiveEntry(ctx);

  // Place the local shard (HBM-local copy).
  Tensor local_dst =
      outs[static_cast<size_t>(r)].Slice(0, r * m_per_rank, m_per_rank);
  std::vector<sim::Coro> work;
  work.push_back(CopyTensorSM(world, shards[static_cast<size_t>(r)],
                               local_dst));
  if (algo == Algo::kFullMesh) {
    for (int p = 0; p < R; ++p) {
      if (p == r) continue;
      Tensor dst =
          outs[static_cast<size_t>(r)].Slice(0, p * m_per_rank, m_per_rank);
      work.push_back(
          CopyTensorSM(world, shards[static_cast<size_t>(p)], dst));
    }
    co_await sim::WhenAll(std::move(work));
  } else {
    co_await sim::WhenAll(std::move(work));
    // Ring: step s moves the chunk originating at rank (r - s) around the
    // ring; per-step rendezvous models the neighbor dependency.
    for (int s = 0; s < R - 1; ++s) {
      const int src_rank = (r - 1 + R) % R;
      const int chunk = (src_rank - s + R) % R;
      Tensor src =
          outs[static_cast<size_t>(src_rank)].Slice(0, chunk * m_per_rank,
                                                    m_per_rank);
      Tensor dst =
          outs[static_cast<size_t>(r)].Slice(0, chunk * m_per_rank,
                                             m_per_rank);
      co_await CopyTensorSM(world, src, dst);
      co_await world.comm_barrier().Arrive();
    }
  }
}

sim::Coro ReduceScatter(rt::RankCtx& ctx, const SymTensor& ins,
                        const SymTensor& outs, Algo algo) {
  rt::World& world = *ctx.world;
  const int r = ctx.rank;
  const int R = world.size();
  TL_CHECK_EQ(static_cast<int>(ins.size()), R);
  TL_CHECK_EQ(static_cast<int>(outs.size()), R);
  const int64_t m_per_rank = outs[static_cast<size_t>(r)].dim(0);
  TL_CHECK_EQ(ins[static_cast<size_t>(r)].dim(0), m_per_rank * R);

  co_await CollectiveEntry(ctx);

  const uint64_t chunk_bytes =
      outs[static_cast<size_t>(r)].logical_bytes();
  if (algo == Algo::kRing) {
    // Timing: R-1 ring steps, each moving one accumulated chunk to the
    // neighbor and reducing it there on SMs.
    for (int s = 0; s < R - 1; ++s) {
      co_await world.Transfer((r - 1 + R) % R, r, chunk_bytes);
      co_await sim::Delay{ReduceCost(world, chunk_bytes)};
      co_await world.comm_barrier().Arrive();
    }
  } else {
    // Full-mesh pull of every peer's partial for my block, then local adds.
    std::vector<sim::Coro> pulls;
    for (int p = 0; p < R; ++p) {
      if (p == r) continue;
      pulls.push_back(world.Transfer(p, r, chunk_bytes));
    }
    co_await sim::WhenAll(std::move(pulls));
    co_await sim::Delay{
        ReduceCost(world, chunk_bytes * static_cast<uint64_t>(R - 1))};
  }

  // Functional result (rank-ordered fp32 accumulation; identical across
  // algorithms by construction).
  if (world.functional()) {
    Tensor out = outs[static_cast<size_t>(r)];
    for (int64_t i = 0; i < m_per_rank; ++i) {
      for (int64_t c = 0; c < out.dim(1); ++c) {
        float acc = 0.0f;
        for (int p = 0; p < R; ++p) {
          acc += ins[static_cast<size_t>(p)].at({r * m_per_rank + i, c});
        }
        out.at({i, c}) = acc;
      }
    }
  }
  int64_t lo = 0, hi = 0;
  outs[static_cast<size_t>(r)].BufferRange(&lo, &hi);
  world.checker().RecordWrite(outs[static_cast<size_t>(r)].buffer(), lo, hi,
                              world.sim().Now(), world.sim().Now(),
                              "reduce_scatter");
}

sim::Coro AllReduce(rt::RankCtx& ctx, const SymTensor& ins,
                    const SymTensor& outs) {
  rt::World& world = *ctx.world;
  const int r = ctx.rank;
  const int R = world.size();
  const int64_t m = outs[static_cast<size_t>(r)].dim(0);
  TL_CHECK_EQ(m % R, 0);
  const int64_t m_per_rank = m / R;
  (void)r;
  (void)world;
  // RS into my row block of outs, then AG the blocks.
  SymTensor rs_out;
  rs_out.reserve(static_cast<size_t>(R));
  for (int p = 0; p < R; ++p) {
    rs_out.push_back(
        outs[static_cast<size_t>(p)].Slice(0, p * m_per_rank, m_per_rank));
  }
  co_await ReduceScatter(ctx, ins, rs_out, Algo::kRing);
  co_await AllGather(ctx, rs_out, outs, Algo::kFullMesh);
}

sim::Coro AllToAll(rt::RankCtx& ctx, const SymTensor& ins,
                   const SymTensor& outs) {
  rt::World& world = *ctx.world;
  const int r = ctx.rank;
  const int R = world.size();
  const int64_t m = ins[static_cast<size_t>(r)].dim(0);
  TL_CHECK_EQ(m % R, 0);
  const int64_t blk = m / R;
  co_await CollectiveEntry(ctx);
  std::vector<sim::Coro> work;
  for (int p = 0; p < R; ++p) {
    // outs[r] block p <- ins[p] block r (pull model).
    Tensor src = ins[static_cast<size_t>(p)].Slice(0, r * blk, blk);
    Tensor dst = outs[static_cast<size_t>(r)].Slice(0, p * blk, blk);
    work.push_back(CopyTensorSM(world, src, dst));
  }
  co_await sim::WhenAll(std::move(work));
}

void AllGatherRef(const SymTensor& shards, const SymTensor& outs) {
  const int R = static_cast<int>(shards.size());
  const int64_t m_per_rank = shards[0].dim(0);
  for (int r = 0; r < R; ++r) {
    for (int p = 0; p < R; ++p) {
      Tensor dst = outs[static_cast<size_t>(r)].Slice(0, p * m_per_rank,
                                                      m_per_rank);
      CopyTensor(shards[static_cast<size_t>(p)], dst);
    }
  }
}

void ReduceScatterRef(const SymTensor& ins, const SymTensor& outs) {
  const int R = static_cast<int>(ins.size());
  const int64_t m_per_rank = outs[0].dim(0);
  for (int r = 0; r < R; ++r) {
    Tensor out = outs[static_cast<size_t>(r)];
    for (int64_t i = 0; i < m_per_rank; ++i) {
      for (int64_t c = 0; c < out.dim(1); ++c) {
        float acc = 0.0f;
        for (int p = 0; p < R; ++p) {
          acc += ins[static_cast<size_t>(p)].at({r * m_per_rank + i, c});
        }
        out.at({i, c}) = acc;
      }
    }
  }
}

}  // namespace tilelink::comm
